"""Calc, sort/topn, pack (exchange union), slices, scans, literals."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import OperatorError
from repro.operators import (
    Calc,
    FRACTION_UNITS,
    Literal,
    Pack,
    PartitionSlice,
    Scan,
    Sort,
    TopN,
    equal_partitions,
)
from repro.storage import BAT, Candidates, Column, DBL, LNG, Scalar


def bat(heads, tails, dtype=LNG) -> BAT:
    return BAT(np.asarray(heads), np.asarray(tails), dtype)


class TestCalc:
    def test_vector_vector(self):
        out = Calc("*").evaluate([bat([0, 1], [2, 3]), bat([0, 1], [10, 20])])
        np.testing.assert_array_equal(out.tail, [20, 60])
        np.testing.assert_array_equal(out.head, [0, 1])

    def test_scalar_vector(self):
        out = Calc("-").evaluate([Scalar(100, LNG), bat([0, 1], [1, 2])])
        np.testing.assert_array_equal(out.tail, [99, 98])

    def test_vector_scalar(self):
        out = Calc("+").evaluate([bat([5, 6], [1, 2]), Scalar(10, LNG)])
        np.testing.assert_array_equal(out.tail, [11, 12])
        np.testing.assert_array_equal(out.head, [5, 6])

    def test_scalar_scalar(self):
        out = Calc("/").evaluate([Scalar(7, LNG), Scalar(2, LNG)])
        assert isinstance(out, Scalar)
        assert out.value == pytest.approx(3.5)
        assert out.dtype is DBL

    def test_division_promotes_to_double(self):
        out = Calc("/").evaluate([bat([0], [7]), Scalar(2, LNG)])
        assert out.dtype is DBL

    def test_misaligned_heads_rejected(self):
        with pytest.raises(OperatorError):
            Calc("+").evaluate([bat([0, 1], [1, 2]), bat([5, 6, 7], [1, 2, 3])])

    def test_unknown_op_rejected(self):
        with pytest.raises(OperatorError):
            Calc("%")

    def test_slice_inputs(self):
        col = Column("v", LNG, np.array([1, 2, 3]))
        out = Calc("*").evaluate([col.full_slice(), col.full_slice()])
        np.testing.assert_array_equal(out.tail, [1, 4, 9])


class TestSortTopN:
    def test_sort_ascending_stable(self):
        out = Sort().evaluate([bat([0, 1, 2, 3], [3, 1, 3, 2])])
        np.testing.assert_array_equal(out.tail, [1, 2, 3, 3])
        np.testing.assert_array_equal(out.head, [1, 3, 0, 2])

    def test_sort_descending(self):
        out = Sort(descending=True).evaluate([bat([0, 1, 2], [1, 3, 2])])
        np.testing.assert_array_equal(out.tail, [3, 2, 1])

    def test_sort_by_head(self):
        out = Sort(by="head").evaluate([bat([5, 2, 9], [1, 2, 3])])
        np.testing.assert_array_equal(out.head, [2, 5, 9])

    def test_sort_rejects_candidates(self):
        with pytest.raises(OperatorError):
            Sort().evaluate([Candidates(np.array([1]))])

    def test_topn(self):
        out = TopN(2).evaluate([bat([0, 1, 2], [9, 8, 7])])
        assert len(out) == 2
        np.testing.assert_array_equal(out.tail, [9, 8])

    def test_topn_larger_than_input(self):
        out = TopN(10).evaluate([bat([0], [1])])
        assert len(out) == 1

    def test_topn_rejects_negative(self):
        with pytest.raises(OperatorError):
            TopN(-1)


class TestPack:
    def test_pack_candidates_in_order(self):
        out = Pack().evaluate(
            [Candidates(np.array([1, 3])), Candidates(np.array([5, 7]))]
        )
        np.testing.assert_array_equal(out.oids, [1, 3, 5, 7])

    def test_pack_candidates_out_of_order_rejected(self):
        """The ordering invariant of Section 2.3."""
        with pytest.raises(OperatorError, match="order"):
            Pack().evaluate(
                [Candidates(np.array([5, 7])), Candidates(np.array([1, 3]))]
            )

    def test_pack_bats(self):
        out = Pack().evaluate([bat([0, 1], [10, 11]), bat([2], [12])])
        np.testing.assert_array_equal(out.head, [0, 1, 2])
        np.testing.assert_array_equal(out.tail, [10, 11, 12])

    def test_pack_bat_dtype_mismatch_rejected(self):
        with pytest.raises(OperatorError):
            Pack().evaluate([bat([0], [1], LNG), bat([1], [1.5], DBL)])

    def test_pack_scalars_to_bat(self):
        out = Pack().evaluate([Scalar(3, LNG), Scalar(4, LNG)])
        np.testing.assert_array_equal(out.tail, [3, 4])

    def test_pack_mixed_types_rejected(self):
        with pytest.raises(OperatorError):
            Pack().evaluate([Scalar(3, LNG), bat([0], [1])])

    def test_pack_needs_input(self):
        with pytest.raises(OperatorError):
            Pack().evaluate([])

    def test_pack_work_is_copy_bound(self):
        a, b = bat([0], [1]), bat([1], [2])
        out = Pack().evaluate([a, b])
        profile = Pack().work_profile([a, b], out)
        assert profile.bytes_read == profile.bytes_written == a.nbytes + b.nbytes


class TestPartitionSlice:
    def test_slice_column_slice(self):
        col = Column("v", LNG, np.arange(100))
        out = PartitionSlice(0, FRACTION_UNITS // 2).evaluate([col.full_slice()])
        assert (out.lo, out.hi) == (0, 50)

    def test_slice_candidates(self):
        cands = Candidates(np.array([1, 5, 9, 12]))
        out = PartitionSlice(FRACTION_UNITS // 2, FRACTION_UNITS).evaluate([cands])
        np.testing.assert_array_equal(out.oids, [9, 12])

    def test_slice_bat(self):
        out = PartitionSlice(0, FRACTION_UNITS // 4).evaluate(
            [bat([0, 1, 2, 3], [9, 8, 7, 6])]
        )
        np.testing.assert_array_equal(out.head, [0])

    def test_adjacent_slices_tile_exactly(self):
        col = Column("v", LNG, np.arange(101))  # odd length
        parts = equal_partitions(8)
        covered = []
        for part in parts:
            view = part.evaluate([col.full_slice()])
            covered.extend(range(view.lo, view.hi))
        assert covered == list(range(101))

    def test_split_preserves_bounds(self):
        parent = PartitionSlice(100, 200)
        left, right = parent.split()
        assert left.lo == 100 and right.hi == 200 and left.hi == right.lo

    def test_invalid_fractions_rejected(self):
        with pytest.raises(OperatorError):
            PartitionSlice(-1, 10)
        with pytest.raises(OperatorError):
            PartitionSlice(10, 5)

    def test_scalar_input_rejected(self):
        with pytest.raises(OperatorError):
            PartitionSlice.full().evaluate([Scalar(1, LNG)])


class TestScanLiteral:
    def test_scan_emits_slice(self):
        col = Column("v", LNG, np.arange(10))
        out = Scan(col).evaluate([])
        assert (out.lo, out.hi) == (0, 10)

    def test_scan_subrange(self):
        col = Column("v", LNG, np.arange(10))
        out = Scan(col, 2, 6).evaluate([])
        assert (out.lo, out.hi) == (2, 6)

    def test_scan_split(self):
        col = Column("v", LNG, np.arange(10))
        left, right = Scan(col).split()
        assert left.hi == right.lo == 5

    def test_scan_rejects_inputs(self):
        col = Column("v", LNG, np.arange(3))
        with pytest.raises(OperatorError):
            Scan(col).evaluate([col.full_slice()])

    def test_scan_bad_range(self):
        col = Column("v", LNG, np.arange(3))
        with pytest.raises(OperatorError):
            Scan(col, 0, 9)

    def test_literal(self):
        out = Literal(42).evaluate([])
        assert out.value == 42
        assert out.dtype is LNG

    def test_literal_float_dtype(self):
        assert Literal(1.5).dtype is DBL

    def test_literal_rejects_strings(self):
        with pytest.raises(OperatorError):
            Literal("x")  # type: ignore[arg-type]

    def test_clone_gets_fresh_uid(self):
        op = Literal(1)
        dup = op.clone()
        assert dup.uid != op.uid
        assert dup.value == op.value
