"""The HAVING operator (tail filter over grouped BATs)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import OperatorError
from repro.operators import RangePredicate, TailFilter
from repro.storage import BAT, Candidates, LNG


def grouped(keys, aggs) -> BAT:
    return BAT(np.asarray(keys), np.asarray(aggs), LNG)


class TestTailFilter:
    def test_keeps_qualifying_groups(self):
        out = TailFilter(RangePredicate(lo=10)).evaluate(
            [grouped([1, 2, 3], [5, 10, 20])]
        )
        np.testing.assert_array_equal(out.head, [2, 3])
        np.testing.assert_array_equal(out.tail, [10, 20])

    def test_empty_result(self):
        out = TailFilter(RangePredicate(lo=100)).evaluate(
            [grouped([1, 2], [5, 10])]
        )
        assert len(out) == 0

    def test_rejects_candidates(self):
        with pytest.raises(OperatorError):
            TailFilter(RangePredicate(lo=1)).evaluate([Candidates(np.array([1]))])

    def test_arity(self):
        with pytest.raises(OperatorError):
            TailFilter(RangePredicate(lo=1)).evaluate([])

    def test_work_is_linear_in_input(self):
        op = TailFilter(RangePredicate(lo=10))
        bat = grouped(range(100), range(100))
        out = op.evaluate([bat])
        profile = op.work_profile([bat], out)
        assert profile.tuples_in == 100
        assert profile.tuples_out == 90

    def test_describe_mentions_having(self):
        assert "having" in TailFilter(RangePredicate(lo=1)).describe()
