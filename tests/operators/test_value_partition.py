"""Value-based partitioning (the paper's Section 5 / Vertica discussion)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import OperatorError
from repro.operators import (
    Join,
    Pack,
    ValuePartition,
    value_partition_bounds,
)
from repro.storage import Column, LNG


@pytest.fixture()
def column() -> Column:
    rng = np.random.default_rng(3)
    return Column("v", LNG, rng.integers(0, 100, 500))


class TestValuePartition:
    def test_keeps_rows_in_range(self, column):
        out = ValuePartition(20, 40).evaluate([column.full_slice()])
        assert np.all((out.tail >= 20) & (out.tail < 40))
        np.testing.assert_array_equal(
            out.head, np.flatnonzero((column.values >= 20) & (column.values < 40))
        )

    def test_open_bounds(self, column):
        low = ValuePartition(hi=50).evaluate([column.full_slice()])
        high = ValuePartition(lo=50).evaluate([column.full_slice()])
        assert len(low) + len(high) == len(column)

    def test_needs_a_bound(self):
        with pytest.raises(OperatorError):
            ValuePartition()

    def test_partitions_cover_input_disjointly(self, column):
        bounds = value_partition_bounds(column.values, 4)
        parts = [
            ValuePartition(lo, hi).evaluate([column.full_slice()])
            for lo, hi in bounds
        ]
        total = sum(len(p) for p in parts)
        assert total == len(column)
        all_heads = np.concatenate([p.head for p in parts])
        assert len(np.unique(all_heads)) == len(column)

    def test_quantile_bounds_balance_partitions(self, column):
        bounds = value_partition_bounds(column.values, 4)
        sizes = [
            len(ValuePartition(lo, hi).evaluate([column.full_slice()]))
            for lo, hi in bounds
        ]
        assert max(sizes) < 2 * min(sizes)

    def test_single_partition_is_identity(self, column):
        (bound,) = value_partition_bounds(column.values, 1)
        assert bound == (None, None)

    def test_bounds_rejects_zero_parts(self, column):
        with pytest.raises(OperatorError):
            value_partition_bounds(column.values, 0)


class TestVerticaStyleJoinParallelization:
    def test_value_partitioned_join_equals_serial_as_multiset(self):
        """The paper's Vertica scenario: partition the expensive join's
        outer input by *value*, clone the join per partition, union the
        results.  The multiset of matches equals the serial join's."""
        rng = np.random.default_rng(9)
        outer = Column("o", LNG, rng.integers(0, 50, 1_000))
        inner = Column("i", LNG, np.arange(50))
        serial = Join().evaluate([outer.full_slice(), inner.full_slice()])
        bounds = value_partition_bounds(outer.values, 4)
        clones = []
        for lo, hi in bounds:
            part = ValuePartition(lo, hi).evaluate([outer.full_slice()])
            clones.append(Join().evaluate([part, inner.full_slice()]))
        packed = Pack().evaluate(clones)
        assert len(packed) == len(serial)
        # Value partitioning reorders matches (grouped per partition),
        # so compare as sorted pair multisets.
        serial_pairs = sorted(zip(serial.head.tolist(), serial.tail.tolist()))
        packed_pairs = sorted(zip(packed.head.tolist(), packed.tail.tolist()))
        assert serial_pairs == packed_pairs
