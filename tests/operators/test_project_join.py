"""Tuple reconstruction (fetch/mirror/heads) and joins."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import AlignmentError, OperatorError
from repro.operators import Fetch, HeadsOf, Join, Mirror, SemiJoin, hash_join_pairs
from repro.storage import BAT, Candidates, Column, LNG, OID


@pytest.fixture()
def column() -> Column:
    return Column("v", LNG, np.array([10, 11, 12, 13, 14, 15, 16, 17]))


class TestFetch:
    def test_fetch_by_candidates(self, column):
        cands = Candidates(np.array([1, 3, 6]))
        out = Fetch().evaluate([cands, column.full_slice()])
        np.testing.assert_array_equal(out.head, [1, 3, 6])
        np.testing.assert_array_equal(out.tail, [11, 13, 16])

    def test_fetch_trims_misaligned_candidates(self, column):
        """Figure 9D: overshooting boundaries are adjusted."""
        cands = Candidates(np.array([1, 3, 6]))
        out = Fetch(alignment="trim").evaluate([cands, column.slice(0, 5)])
        np.testing.assert_array_equal(out.head, [1, 3])

    def test_fetch_strict_raises_on_misalignment(self, column):
        cands = Candidates(np.array([1, 3, 6]))
        with pytest.raises(AlignmentError):
            Fetch(alignment="strict").evaluate([cands, column.slice(0, 5)])

    def test_fetch_via_join_bat(self, column):
        mapping = BAT(np.array([100, 101]), np.array([2, 7]), OID)
        out = Fetch().evaluate([mapping, column.full_slice()])
        np.testing.assert_array_equal(out.head, [100, 101])
        np.testing.assert_array_equal(out.tail, [12, 17])

    def test_fetch_bat_trims_out_of_slice_oids(self, column):
        mapping = BAT(np.array([100, 101]), np.array([2, 7]), OID)
        out = Fetch(alignment="trim").evaluate([mapping, column.slice(0, 5)])
        np.testing.assert_array_equal(out.head, [100])
        np.testing.assert_array_equal(out.tail, [12])

    def test_fetch_bat_strict_raises(self, column):
        mapping = BAT(np.array([100]), np.array([7]), OID)
        with pytest.raises(AlignmentError):
            Fetch(alignment="strict").evaluate([mapping, column.slice(0, 5)])

    def test_split_fetch_pack_equals_serial(self, column):
        """Value-column split + trim reproduces the serial projection."""
        cands = Candidates(np.array([0, 2, 4, 6]))
        serial = Fetch().evaluate([cands, column.full_slice()])
        left = Fetch().evaluate([cands, column.slice(0, 4)])
        right = Fetch().evaluate([cands, column.slice(4, 8)])
        np.testing.assert_array_equal(
            np.concatenate([left.head, right.head]), serial.head
        )
        np.testing.assert_array_equal(
            np.concatenate([left.tail, right.tail]), serial.tail
        )

    def test_dictionary_travels(self):
        col = Column.from_strings("s", ["a", "b", "c"])
        out = Fetch().evaluate([Candidates(np.array([0, 2])), col.full_slice()])
        assert out.dictionary == col.dictionary

    def test_unknown_alignment_policy(self):
        with pytest.raises(OperatorError):
            Fetch(alignment="whatever")

    def test_work_profile_counts_trimmed_gathers(self, column):
        cands = Candidates(np.array([1, 3, 6]))
        op = Fetch()
        view = column.slice(0, 5)
        out = op.evaluate([cands, view])
        profile = op.work_profile([cands, view], out)
        assert profile.random_reads == 2


class TestMirrorHeads:
    def test_mirror_candidates(self):
        out = Mirror().evaluate([Candidates(np.array([2, 5]))])
        np.testing.assert_array_equal(out.head, [2, 5])
        np.testing.assert_array_equal(out.tail, [2, 5])

    def test_mirror_slice(self, column):
        out = Mirror().evaluate([column.slice(2, 4)])
        np.testing.assert_array_equal(out.head, [2, 3])

    def test_heads_of_bat(self):
        bat = BAT(np.array([3, 7]), np.array([30, 70]), LNG)
        out = HeadsOf().evaluate([bat])
        np.testing.assert_array_equal(out.oids, [3, 7])

    def test_heads_rejects_candidates(self):
        with pytest.raises(OperatorError):
            HeadsOf().evaluate([Candidates(np.array([1]))])


class TestHashJoinPairs:
    def test_all_pairs_in_outer_order(self):
        left, right = hash_join_pairs(
            np.array([100, 101, 102]),
            np.array([1, 2, 1]),
            np.array([200, 201, 202]),
            np.array([1, 1, 3]),
        )
        np.testing.assert_array_equal(left, [100, 100, 102, 102])
        np.testing.assert_array_equal(right, [200, 201, 200, 201])

    def test_empty_inputs(self):
        left, right = hash_join_pairs(
            np.array([], dtype=np.int64),
            np.array([], dtype=np.int64),
            np.array([1]),
            np.array([1]),
        )
        assert len(left) == len(right) == 0

    def test_no_matches(self):
        left, __ = hash_join_pairs(
            np.array([1]), np.array([10]), np.array([2]), np.array([20])
        )
        assert len(left) == 0


class TestJoin:
    def test_join_slices(self):
        outer = Column("o", LNG, np.array([5, 6, 5, 7]))
        inner = Column("i", LNG, np.array([7, 5]))
        out = Join().evaluate([outer.full_slice(), inner.full_slice()])
        # outer oids 0,2 match inner oid 1 (value 5); outer oid 3 matches 0.
        np.testing.assert_array_equal(out.head, [0, 2, 3])
        np.testing.assert_array_equal(out.tail, [1, 1, 0])

    def test_join_outer_split_pack_equals_serial(self):
        rng = np.random.default_rng(5)
        outer = Column("o", LNG, rng.integers(0, 20, 200))
        inner = Column("i", LNG, np.arange(20))
        serial = Join().evaluate([outer.full_slice(), inner.full_slice()])
        left = Join().evaluate([outer.slice(0, 100), inner.full_slice()])
        right = Join().evaluate([outer.slice(100, 200), inner.full_slice()])
        np.testing.assert_array_equal(
            np.concatenate([left.head, right.head]), serial.head
        )
        np.testing.assert_array_equal(
            np.concatenate([left.tail, right.tail]), serial.tail
        )

    def test_join_reports_build_bytes(self):
        outer = Column("o", LNG, np.array([1, 2]))
        inner = Column("i", LNG, np.array([1, 2, 3]))
        op = Join()
        out = op.evaluate([outer.full_slice(), inner.full_slice()])
        profile = op.work_profile([outer.full_slice(), inner.full_slice()], out)
        assert profile.build_bytes == 3 * 8  # the inner column's bytes
        assert profile.random_reads == 2

    def test_join_accepts_candidates_as_identity_views(self):
        # A candidate list joins as its own (oid, oid) identity view --
        # equivalent to joining the mirrored BAT, without the Mirror.
        outer = Candidates(np.array([1, 3, 5]))
        inner = Candidates(np.array([3, 5, 7]))
        out = Join().evaluate([outer, inner])
        mirrored = Join().evaluate(
            [Mirror().evaluate([outer]), Mirror().evaluate([inner])]
        )
        np.testing.assert_array_equal(out.head, mirrored.head)
        np.testing.assert_array_equal(out.tail, mirrored.tail)


class TestSemiJoin:
    def test_semijoin_keeps_matching_outer(self):
        outer = Column("o", LNG, np.array([5, 6, 7, 8]))
        inner = Column("i", LNG, np.array([6, 8]))
        out = SemiJoin().evaluate([outer.full_slice(), inner.full_slice()])
        np.testing.assert_array_equal(out.head, [1, 3])
        np.testing.assert_array_equal(out.tail, [6, 8])

    def test_antijoin(self):
        outer = Column("o", LNG, np.array([5, 6, 7, 8]))
        inner = Column("i", LNG, np.array([6, 8]))
        out = SemiJoin(negate=True).evaluate([outer.full_slice(), inner.full_slice()])
        np.testing.assert_array_equal(out.head, [0, 2])

    def test_semijoin_duplicate_outer_kept(self):
        outer = Column("o", LNG, np.array([6, 6, 7]))
        inner = Column("i", LNG, np.array([6]))
        out = SemiJoin().evaluate([outer.full_slice(), inner.full_slice()])
        assert len(out) == 2

    def test_semijoin_over_bats(self):
        outer = BAT(np.array([10, 11]), np.array([1, 2]), LNG)
        inner = BAT(np.array([0]), np.array([2]), LNG)
        out = SemiJoin().evaluate([outer, inner])
        np.testing.assert_array_equal(out.head, [11])
