"""Grouped and scalar aggregation, and the AP-aware partial merge."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import OperatorError
from repro.operators import Aggregate, AggrMerge, GroupAggregate, Pack, merge_func_for
from repro.storage import BAT, Candidates, Column, DBL, LNG, Scalar


@pytest.fixture()
def keys() -> Column:
    return Column("k", LNG, np.array([1, 2, 1, 3, 2, 1]))


@pytest.fixture()
def values() -> Column:
    return Column("v", LNG, np.array([10, 20, 30, 40, 50, 60]))


class TestGroupAggregate:
    def test_grouped_sum(self, keys, values):
        out = GroupAggregate("sum").evaluate([keys.full_slice(), values.full_slice()])
        np.testing.assert_array_equal(out.head, [1, 2, 3])
        np.testing.assert_array_equal(out.tail, [100, 70, 40])

    def test_grouped_count(self, keys):
        out = GroupAggregate("count").evaluate([keys.full_slice()])
        np.testing.assert_array_equal(out.head, [1, 2, 3])
        np.testing.assert_array_equal(out.tail, [3, 2, 1])

    def test_grouped_min_max(self, keys, values):
        lo = GroupAggregate("min").evaluate([keys.full_slice(), values.full_slice()])
        hi = GroupAggregate("max").evaluate([keys.full_slice(), values.full_slice()])
        np.testing.assert_array_equal(lo.tail, [10, 20, 40])
        np.testing.assert_array_equal(hi.tail, [60, 50, 40])

    def test_float_values_stay_float(self, keys):
        vals = Column("v", DBL, np.array([1.5, 2.5, 3.5, 4.5, 5.5, 6.5]))
        out = GroupAggregate("sum").evaluate([keys.full_slice(), vals.full_slice()])
        assert out.dtype is DBL
        np.testing.assert_allclose(out.tail, [11.5, 8.0, 4.5])

    def test_misaligned_inputs_rejected(self, keys):
        vals = Column("v", LNG, np.arange(3))
        with pytest.raises(OperatorError):
            GroupAggregate("sum").evaluate([keys.full_slice(), vals.full_slice()])

    def test_count_arity(self, keys, values):
        with pytest.raises(OperatorError):
            GroupAggregate("count").evaluate([keys.full_slice(), values.full_slice()])

    def test_unknown_func_rejected(self):
        with pytest.raises(OperatorError):
            GroupAggregate("median")

    def test_partials_pack_merge_equals_serial(self, keys, values):
        """The advanced-mutation identity: groupagg per partition, pack,
        merge == serial groupagg."""
        serial = GroupAggregate("sum").evaluate(
            [keys.full_slice(), values.full_slice()]
        )
        p1 = GroupAggregate("sum").evaluate([keys.slice(0, 3), values.slice(0, 3)])
        p2 = GroupAggregate("sum").evaluate([keys.slice(3, 6), values.slice(3, 6)])
        packed = Pack().evaluate([p1, p2])
        merged = AggrMerge(merge_func_for("sum")).evaluate([packed])
        np.testing.assert_array_equal(merged.head, serial.head)
        np.testing.assert_array_equal(merged.tail, serial.tail)

    def test_count_partials_merge_with_sum(self, keys):
        serial = GroupAggregate("count").evaluate([keys.full_slice()])
        p1 = GroupAggregate("count").evaluate([keys.slice(0, 4)])
        p2 = GroupAggregate("count").evaluate([keys.slice(4, 6)])
        merged = AggrMerge(merge_func_for("count")).evaluate(
            [Pack().evaluate([p1, p2])]
        )
        np.testing.assert_array_equal(merged.tail, serial.tail)

    def test_min_partials_merge_with_min(self, keys, values):
        serial = GroupAggregate("min").evaluate(
            [keys.full_slice(), values.full_slice()]
        )
        p1 = GroupAggregate("min").evaluate([keys.slice(0, 2), values.slice(0, 2)])
        p2 = GroupAggregate("min").evaluate([keys.slice(2, 6), values.slice(2, 6)])
        merged = AggrMerge("min").evaluate([Pack().evaluate([p1, p2])])
        np.testing.assert_array_equal(merged.tail, serial.tail)


class TestAggrMerge:
    def test_rejects_non_bat(self):
        with pytest.raises(OperatorError):
            AggrMerge("sum").evaluate([Candidates(np.array([1]))])

    def test_rejects_count(self):
        with pytest.raises(OperatorError):
            AggrMerge("count")

    def test_merge_func_mapping(self):
        assert merge_func_for("sum") == "sum"
        assert merge_func_for("count") == "sum"
        assert merge_func_for("min") == "min"
        assert merge_func_for("max") == "max"
        with pytest.raises(OperatorError):
            merge_func_for("avg")


class TestAggregate:
    def test_sum_over_slice(self, values):
        out = Aggregate("sum").evaluate([values.full_slice()])
        assert out.value == 210

    def test_sum_over_bat(self):
        bat = BAT(np.array([0, 1]), np.array([3, 4]), LNG)
        assert Aggregate("sum").evaluate([bat]).value == 7

    def test_count_over_candidates(self):
        out = Aggregate("count").evaluate([Candidates(np.array([1, 5, 9]))])
        assert out.value == 3

    def test_sum_over_candidates_rejected(self):
        with pytest.raises(OperatorError):
            Aggregate("sum").evaluate([Candidates(np.array([1]))])

    def test_min_max(self, values):
        assert Aggregate("min").evaluate([values.full_slice()]).value == 10
        assert Aggregate("max").evaluate([values.full_slice()]).value == 60

    def test_empty_input_sum_is_zero(self):
        col = Column("v", LNG, np.array([], dtype=np.int64))
        assert Aggregate("sum").evaluate([col.full_slice()]).value == 0

    def test_float_sum(self):
        col = Column("v", DBL, np.array([0.5, 1.5]))
        out = Aggregate("sum").evaluate([col.full_slice()])
        assert out.dtype is DBL
        assert out.value == 2.0

    def test_scalar_partials_pack_merge(self, values):
        """Aggregate partials packed and re-aggregated equal the serial
        scalar (the advanced-mutation identity for sums)."""
        serial = Aggregate("sum").evaluate([values.full_slice()])
        p1 = Aggregate("sum").evaluate([values.slice(0, 3)])
        p2 = Aggregate("sum").evaluate([values.slice(3, 6)])
        packed = Pack().evaluate([p1, p2])
        merged = Aggregate("sum").evaluate([packed])
        assert merged.value == serial.value

    def test_scalar_is_scalar(self, values):
        out = Aggregate("sum").evaluate([values.full_slice()])
        assert isinstance(out, Scalar)
