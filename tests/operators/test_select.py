"""Selection operators and predicates."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import OperatorError
from repro.operators import (
    CandIntersect,
    CandUnion,
    EqualsPredicate,
    InPredicate,
    LikePredicate,
    RangePredicate,
    Select,
)
from repro.storage import Candidates, Column, LNG


@pytest.fixture()
def column() -> Column:
    return Column("v", LNG, np.array([5, 3, 8, 1, 9, 3, 7, 2, 6, 4]))


class TestPredicates:
    def test_range_inclusive(self, column):
        mask = RangePredicate(3, 7).mask(column.values, None)
        np.testing.assert_array_equal(
            np.flatnonzero(mask), [0, 1, 5, 6, 8, 9]
        )

    def test_range_exclusive_bounds(self, column):
        mask = RangePredicate(3, 7, lo_inclusive=False, hi_inclusive=False).mask(
            column.values, None
        )
        np.testing.assert_array_equal(np.flatnonzero(mask), [0, 8, 9])

    def test_range_open_ended(self, column):
        assert RangePredicate(hi=3).mask(column.values, None).sum() == 4

    def test_range_requires_a_bound(self):
        with pytest.raises(OperatorError):
            RangePredicate()

    def test_equals_and_negate(self, column):
        assert EqualsPredicate(3).mask(column.values, None).sum() == 2
        assert EqualsPredicate(3, negate=True).mask(column.values, None).sum() == 8

    def test_equals_string_on_dictionary(self):
        col = Column.from_strings("s", ["aa", "bb", "aa", "cc"])
        mask = EqualsPredicate("aa").mask(col.values, col.dictionary)
        np.testing.assert_array_equal(np.flatnonzero(mask), [0, 2])

    def test_equals_unknown_string_matches_nothing(self):
        col = Column.from_strings("s", ["aa", "bb"])
        assert EqualsPredicate("zz").mask(col.values, col.dictionary).sum() == 0
        assert (
            EqualsPredicate("zz", negate=True).mask(col.values, col.dictionary).sum()
            == 2
        )

    def test_equals_string_without_dictionary_raises(self, column):
        with pytest.raises(OperatorError):
            EqualsPredicate("x").mask(column.values, None)

    def test_in_list_numeric(self, column):
        mask = InPredicate([3, 9]).mask(column.values, None)
        np.testing.assert_array_equal(np.flatnonzero(mask), [1, 4, 5])

    def test_in_list_negated(self, column):
        assert InPredicate([3, 9], negate=True).mask(column.values, None).sum() == 7

    def test_in_list_strings(self):
        col = Column.from_strings("s", ["aa", "bb", "cc", "bb"])
        mask = InPredicate(["bb", "cc"]).mask(col.values, col.dictionary)
        np.testing.assert_array_equal(np.flatnonzero(mask), [1, 2, 3])

    def test_in_list_empty_rejected(self):
        with pytest.raises(OperatorError):
            InPredicate([])

    def test_like_prefix(self):
        col = Column.from_strings("s", ["PROMO BRASS", "STD TIN", "PROMO TIN"])
        mask = LikePredicate("PROMO%").mask(col.values, col.dictionary)
        np.testing.assert_array_equal(np.flatnonzero(mask), [0, 2])

    def test_like_infix_and_negate(self):
        col = Column.from_strings("s", ["A BRASS X", "B TIN Y", "C BRASS Z"])
        assert LikePredicate("%BRASS%").mask(col.values, col.dictionary).sum() == 2
        assert (
            LikePredicate("%BRASS%", negate=True).mask(col.values, col.dictionary).sum()
            == 1
        )

    def test_like_underscore_wildcard(self):
        col = Column.from_strings("s", ["cat", "cut", "cart"])
        mask = LikePredicate("c_t").mask(col.values, col.dictionary)
        np.testing.assert_array_equal(np.flatnonzero(mask), [0, 1])

    def test_like_on_numeric_column_raises(self, column):
        with pytest.raises(OperatorError):
            LikePredicate("x%").mask(column.values, None)


class TestSelect:
    def test_full_scan_returns_global_oids(self, column):
        out = Select(RangePredicate(hi=4)).evaluate([column.full_slice()])
        np.testing.assert_array_equal(out.oids, [1, 3, 5, 7, 9])

    def test_slice_offsets_oids(self, column):
        out = Select(RangePredicate(hi=4)).evaluate([column.slice(5, 10)])
        np.testing.assert_array_equal(out.oids, [5, 7, 9])

    def test_candidate_conjunction(self, column):
        cands = Candidates(np.array([0, 1, 3, 4, 5]))
        out = Select(RangePredicate(hi=4)).evaluate([column.full_slice(), cands])
        np.testing.assert_array_equal(out.oids, [1, 3, 5])

    def test_candidates_outside_slice_ignored(self, column):
        cands = Candidates(np.array([1, 3, 7, 9]))
        out = Select(RangePredicate(hi=4)).evaluate([column.slice(0, 5), cands])
        np.testing.assert_array_equal(out.oids, [1, 3])

    def test_split_partitions_union_to_serial(self, column):
        """Basic-mutation correctness at operator level: the union of
        per-slice selections equals the full selection."""
        op = Select(RangePredicate(hi=4))
        serial = op.evaluate([column.full_slice()])
        left = op.evaluate([column.slice(0, 6)])
        right = op.evaluate([column.slice(6, 10)])
        merged = np.concatenate([left.oids, right.oids])
        np.testing.assert_array_equal(merged, serial.oids)

    def test_wrong_input_type_rejected(self, column):
        with pytest.raises(OperatorError):
            Select(RangePredicate(hi=4)).evaluate([Candidates(np.array([1]))])

    def test_wrong_arity_rejected(self, column):
        with pytest.raises(OperatorError):
            Select(RangePredicate(hi=4)).evaluate([])

    def test_work_profile_counts_restricted_candidates(self, column):
        op = Select(RangePredicate(hi=4))
        view = column.slice(0, 5)
        cands = Candidates(np.array([1, 3, 7, 9]))
        out = op.evaluate([view, cands])
        profile = op.work_profile([view, cands], out)
        assert profile.tuples_in == 2  # only oids 1 and 3 fall in [0, 5)

    def test_work_profile_full_scan(self, column):
        op = Select(RangePredicate(hi=4))
        view = column.full_slice()
        out = op.evaluate([view])
        profile = op.work_profile([view], out)
        assert profile.tuples_in == 10
        assert profile.bytes_read == 80


class TestCandSetOps:
    def test_union_dedupes_and_sorts(self):
        a = Candidates(np.array([1, 3, 5]))
        b = Candidates(np.array([3, 4]))
        out = CandUnion().evaluate([a, b])
        np.testing.assert_array_equal(out.oids, [1, 3, 4, 5])

    def test_union_needs_input(self):
        with pytest.raises(OperatorError):
            CandUnion().evaluate([])

    def test_intersect(self):
        a = Candidates(np.array([1, 3, 5, 7]))
        b = Candidates(np.array([3, 7, 9]))
        out = CandIntersect().evaluate([a, b])
        np.testing.assert_array_equal(out.oids, [3, 7])

    def test_intersect_three_way(self):
        a = Candidates(np.array([1, 2, 3, 4]))
        b = Candidates(np.array([2, 3, 4]))
        c = Candidates(np.array([3, 4, 9]))
        out = CandIntersect().evaluate([a, b, c])
        np.testing.assert_array_equal(out.oids, [3, 4])
