"""Unit tests for the wall-clock report helpers (no heavy runs)."""

from __future__ import annotations

import pytest

from repro.bench.wallclock import (
    SCHEMA,
    check_report,
    resolve_backends,
    resolve_workers,
)
from repro.errors import BackendUnavailableError, ReproError


class TestResolveWorkers:
    def test_default_includes_one_and_host(self):
        counts = resolve_workers(None)
        assert counts[0] == 1
        assert counts == tuple(sorted(set(counts)))

    def test_explicit_list_keeps_one_and_dedupes(self):
        assert resolve_workers([4, 2, 4]) == (1, 2, 4)

    def test_one_alone_collapses(self):
        assert resolve_workers([1]) == (1,)

    def test_rejects_nonpositive(self):
        with pytest.raises(ReproError):
            resolve_workers([0])


class TestResolveBackends:
    def test_default_is_thread(self):
        assert resolve_backends(None) == ("thread",)

    def test_dedupes_preserving_order(self):
        assert resolve_backends(["process", "thread", "process"]) == (
            "process",
            "thread",
        )

    def test_unknown_backend_rejected_up_front(self):
        with pytest.raises(BackendUnavailableError):
            resolve_backends(["gpu"])


def _report(
    *,
    identical: bool = True,
    hit_rate: float = 0.9,
    speedup: float = 2.0,
    slowdown: float = 1.0,
    host_cpus: int = 1,
    by_backend: dict | None = None,
) -> dict:
    if by_backend is None:
        by_backend = {"thread": 1.0 / slowdown if slowdown else 0.0}
    return {
        "schema": SCHEMA,
        "quick": True,
        "host_cpus": host_cpus,
        "workers_swept": [1, 2],
        "backends_swept": sorted(by_backend),
        "workloads": [{"name": "w", "identical": identical}],
        "summary": {
            "min_wallclock_speedup": speedup,
            "min_worker_speedup": max(by_backend.values(), default=0.0),
            "worker_speedup_by_backend": by_backend,
            "max_worker_slowdown": slowdown,
            "min_hit_rate": hit_rate,
            "all_identical": identical,
        },
    }


class TestCheckReport:
    def test_passes_within_gates(self):
        check_report(
            _report(),
            min_hit_rate=0.5,
            min_speedup=1.0,
            max_worker_slowdown=1.2,
        )

    def test_divergence_always_fails(self):
        with pytest.raises(ReproError, match="diverged"):
            check_report(_report(identical=False))

    def test_hit_rate_gate(self):
        with pytest.raises(ReproError, match="hit rate"):
            check_report(_report(hit_rate=0.1), min_hit_rate=0.5)

    def test_speedup_gate(self):
        with pytest.raises(ReproError, match="speedup"):
            check_report(_report(speedup=1.1), min_speedup=1.5)

    def test_worker_slowdown_gate(self):
        with pytest.raises(ReproError, match="slower"):
            check_report(_report(slowdown=1.4), max_worker_slowdown=1.15)

    def test_worker_slowdown_unchecked_by_default(self):
        check_report(_report(slowdown=3.0))


class TestProcessSpeedupGate:
    def test_fails_below_floor_on_multicore(self):
        report = _report(host_cpus=8, by_backend={"process": 1.1, "thread": 0.9})
        with pytest.raises(ReproError, match="process-backend"):
            check_report(report, min_process_speedup=1.5)

    def test_passes_at_or_above_floor(self):
        report = _report(host_cpus=8, by_backend={"process": 1.8, "thread": 0.9})
        check_report(report, min_process_speedup=1.5)

    def test_skipped_on_single_cpu_host(self):
        # A 1-CPU runner physically cannot show parallel speedup; the
        # gate must skip rather than fail there.
        report = _report(host_cpus=1, by_backend={"process": 0.4})
        check_report(report, min_process_speedup=1.5)

    def test_skipped_when_process_not_swept(self):
        report = _report(host_cpus=8, by_backend={"thread": 0.9})
        check_report(report, min_process_speedup=1.5)

    def test_unchecked_by_default(self):
        report = _report(host_cpus=8, by_backend={"process": 0.2})
        check_report(report)
