"""Unit tests for the wall-clock report helpers (no heavy runs)."""

from __future__ import annotations

import pytest

from repro.bench.wallclock import SCHEMA, check_report, resolve_workers
from repro.errors import ReproError


class TestResolveWorkers:
    def test_default_includes_one_and_host(self):
        counts = resolve_workers(None)
        assert counts[0] == 1
        assert counts == tuple(sorted(set(counts)))

    def test_explicit_list_keeps_one_and_dedupes(self):
        assert resolve_workers([4, 2, 4]) == (1, 2, 4)

    def test_one_alone_collapses(self):
        assert resolve_workers([1]) == (1,)

    def test_rejects_nonpositive(self):
        with pytest.raises(ReproError):
            resolve_workers([0])


def _report(
    *,
    identical: bool = True,
    hit_rate: float = 0.9,
    speedup: float = 2.0,
    slowdown: float = 1.0,
) -> dict:
    return {
        "schema": SCHEMA,
        "quick": True,
        "host_cpus": 1,
        "workers_swept": [1, 2],
        "workloads": [{"name": "w", "identical": identical}],
        "summary": {
            "min_wallclock_speedup": speedup,
            "min_worker_speedup": 1.0 / slowdown if slowdown else 0.0,
            "max_worker_slowdown": slowdown,
            "min_hit_rate": hit_rate,
            "all_identical": identical,
        },
    }


class TestCheckReport:
    def test_passes_within_gates(self):
        check_report(
            _report(),
            min_hit_rate=0.5,
            min_speedup=1.0,
            max_worker_slowdown=1.2,
        )

    def test_divergence_always_fails(self):
        with pytest.raises(ReproError, match="diverged"):
            check_report(_report(identical=False))

    def test_hit_rate_gate(self):
        with pytest.raises(ReproError, match="hit rate"):
            check_report(_report(hit_rate=0.1), min_hit_rate=0.5)

    def test_speedup_gate(self):
        with pytest.raises(ReproError, match="speedup"):
            check_report(_report(speedup=1.1), min_speedup=1.5)

    def test_worker_slowdown_gate(self):
        with pytest.raises(ReproError, match="slower"):
            check_report(_report(slowdown=1.4), max_worker_slowdown=1.15)

    def test_worker_slowdown_unchecked_by_default(self):
        check_report(_report(slowdown=3.0))
