"""Benchmark reporting helpers."""

from __future__ import annotations

from repro.bench import ExperimentReport
from repro.config import two_socket_machine


class TestExperimentReport:
    def make(self) -> ExperimentReport:
        report = ExperimentReport(
            experiment="Figure X: something",
            claim="things hold",
            machine=two_socket_machine(),
        )
        report.add("case a", 1.5, 1.621, unit="s", note="close")
        report.add("case b", "~35", 33)
        report.extra.append("free-form footnote")
        return report

    def test_format_contains_all_rows(self):
        text = self.make().format()
        assert "Figure X" in text
        assert "case a" in text and "case b" in text
        assert "1.62" in text
        assert "~35" in text
        assert "free-form footnote" in text

    def test_format_mentions_machine(self):
        assert "Xeon" in self.make().format()

    def test_numbers_formatted_compactly(self):
        report = ExperimentReport("e", "c", two_socket_machine())
        report.add("x", 0.123456789, 12345.6789)
        text = report.format()
        assert "0.123" in text
        assert "1.23e+04" in text or "12345" in text

    def test_print_smoke(self, capsys):
        self.make().print()
        assert "Figure X" in capsys.readouterr().out
