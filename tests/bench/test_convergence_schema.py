"""Unit tests for the convergence-bench helpers (no heavy runs)."""

from __future__ import annotations

import xml.dom.minidom

import pytest

from repro.bench.convergence import (
    SCHEMA,
    check_convergence_report,
    format_convergence_report,
)
from repro.errors import ReproError
from repro.viz.policies import render_policy_figure


def _policy(runs_to_gme, total_work_ms, policy="credit_debit", total_runs=100):
    return {
        "policy": policy,
        "warm_start": policy.startswith("warmstart"),
        "total_runs": total_runs,
        "runs_to_gme": runs_to_gme,
        "total_work_ms": total_work_ms,
        "serial_ms": 120.0,
        "gme_ms": 20.0,
        "sim_speedup": 6.0,
    }


def _report(*, warm_ratio=0.2, bandit_wins=2, suite=2):
    queries = {}
    for i in range(suite):
        wins = i < bandit_wins
        queries[f"q{i}"] = {
            "cold": _policy(40, 2000.0),
            "warmstart": _policy(8, 1500.0, "warmstart+credit_debit"),
            "bandit": _policy(6, 1000.0 if wins else 3000.0, "bandit", 12),
        }
    cold_runs = 30
    return {
        "schema": SCHEMA,
        "quick": True,
        "queries": queries,
        "repeated": {
            "workload": "tpch_q1_style",
            "encounters": [
                _policy(cold_runs, 2000.0, "warmstart+credit_debit"),
                _policy(int(cold_runs * warm_ratio), 1400.0, "warmstart+credit_debit"),
                _policy(int(cold_runs * warm_ratio), 1400.0, "warmstart+credit_debit"),
            ],
            "warm_ratio": warm_ratio,
        },
        "summary": {
            "suite_size": suite,
            "bandit_work_wins": bandit_wins,
            "bandit_win_fraction": bandit_wins / suite,
            "mean_warm_ratio": 0.2,
            "repeated_warm_ratio": warm_ratio,
        },
    }


class TestCheckConvergenceReport:
    def test_passes_within_gates(self):
        check_convergence_report(
            _report(), max_warm_ratio=0.7, min_bandit_win=0.5
        )

    def test_warm_ratio_gate(self):
        with pytest.raises(ReproError, match="runs-to-GME ratio"):
            check_convergence_report(_report(warm_ratio=0.9), max_warm_ratio=0.7)

    def test_bandit_win_gate(self):
        with pytest.raises(ReproError, match="bandit"):
            check_convergence_report(
                _report(bandit_wins=0), min_bandit_win=0.5
            )

    def test_unchecked_by_default(self):
        check_convergence_report(_report(warm_ratio=0.99, bandit_wins=0))


class TestFormatConvergenceReport:
    def test_mentions_every_query_and_policy(self):
        text = format_convergence_report(_report())
        assert "q0" in text and "q1" in text
        assert "cold" in text and "warmstart" in text and "bandit" in text
        assert "warm ratio 0.20" in text
        assert "bandit work wins 2/2" in text


class TestPolicyFigure:
    def test_figure_is_wellformed_svg(self):
        svg = render_policy_figure(_report())
        doc = xml.dom.minidom.parseString(svg)
        assert doc.documentElement.tagName == "svg"
        rects = doc.getElementsByTagName("rect")
        # Background + legend(3) + 3 policies x 2 queries x 2 panels.
        assert len(rects) >= 1 + 3 + 12
        text = svg.lower()
        assert "runs to gme" in text
        assert "tpch_q1_style" in text

    def test_figure_escapes_and_scales(self):
        report = _report()
        report["queries"]["<evil>"] = report["queries"].pop("q1")
        svg = render_policy_figure(report)
        assert "<evil>" not in svg
        assert "&lt;evil&gt;" in svg
        xml.dom.minidom.parseString(svg)
