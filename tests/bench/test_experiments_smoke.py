"""Smoke tests for every experiment runner at miniature scale.

These don't assert paper shapes (the benchmarks do, at full scale);
they assert the runners execute, produce well-formed reports, and
populate their result structures.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import (
    ablations,
    fig01_dop,
    fig11_trace,
    fig12_skew,
    fig16_workload,
    fig17_tpcds,
    fig18_chaos,
    fig18_robustness,
    fig19_util,
)
from repro.workloads import SkewedSelectWorkload, TpcdsDataset, TpchDataset

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def tiny_tpch() -> TpchDataset:
    return TpchDataset(scale_factor=1)


@pytest.fixture(scope="module")
def tiny_tpcds() -> TpcdsDataset:
    return TpcdsDataset(scale_factor=5)


class TestRunnersExecute:
    def test_fig01(self, tiny_tpch):
        result = fig01_dop.run(tiny_tpch, clients=4, horizon=0.5)
        assert len(result.times) == len(fig01_dop.QUERIES) * len(fig01_dop.DOPS)
        assert all(t > 0 for t in result.times.values())
        assert "Figure 1" in result.report.format()

    def test_fig11(self):
        result = fig11_trace.run(outer_mb=320, inner_mb=16)
        assert result.trace[0] == result.adaptive.serial_time
        assert result.adaptive.gme_time < result.trace[0]
        assert "Figure 11" in result.report.format()

    def test_fig12(self):
        workload = SkewedSelectWorkload(tuples_m=50)
        result = fig12_skew.run(workload, skews=(10,))
        assert (10, "static8") in result.times
        assert (10, "dynamic") in result.times
        assert result.report is not None

    def test_fig16(self, tiny_tpch):
        result = fig16_workload.run(
            tiny_tpch, queries=("q6", "q14"), clients=4, horizon=0.5
        )
        assert result.isolated[("q6", "HP")] > 0
        assert result.concurrent[("q14", "AP")] > 0
        assert ("q6" in result.ap_plans) and ("q14" in result.ap_plans)

    def test_fig17(self, tiny_tpcds):
        result = fig17_tpcds.run(tiny_tpcds, queries=("ds5",), max_runs=80)
        assert result.times_ms[("ds5", "HP", "2s")] > 0
        assert result.times_ms[("ds5", "AP", "4s")] > 0
        assert result.hp_over_ap("ds5") > 0

    def test_fig18(self, tiny_tpch):
        result = fig18_robustness.run(tiny_tpch, queries=("q6",), invocations=2)
        lo, hi = result.spread("q6", "total_runs")
        assert 0 < lo <= hi
        assert "q6 A: total runs" in result.report.format()

    def test_fig18_chaos(self, tiny_tpch):
        result = fig18_chaos.run(tiny_tpch, queries=("q6",))
        assert result.injected["q6"] > 0
        assert result.chaos["q6"].gme_time <= result.chaos["q6"].serial_time
        assert "q6 C: faults absorbed" in result.report.format()

    def test_fig19(self, tiny_tpch):
        result = fig19_util.run(tiny_tpch)
        assert 0 < result.ap_utilization <= 1
        assert 0 < result.hp_utilization <= 1
        assert "tomograph" in result.report.format()

    def test_ablation_gme(self):
        result = ablations.run_gme_threshold(thresholds=(0.0, 0.2))
        assert len(result.rows) == 2

    def test_ablation_batch(self):
        result = ablations.run_mutations_per_run(batch_sizes=(1, 4))
        assert result.rows["batch=4"][1] <= result.rows["batch=1"][1] * 2
