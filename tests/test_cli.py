"""Command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestInfo:
    def test_info_prints_machines(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro" in out
        assert "E5-2650" in out and "E5-4657" in out


class TestRun:
    def test_serial_run(self, capsys):
        code = main(
            ["run", "SELECT COUNT(*) FROM lineitem WHERE l_quantity < 5", "--sf", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "serial:" in out
        assert "output[0]" in out

    def test_heuristic_run_with_plan(self, capsys):
        code = main(
            [
                "run",
                "SELECT SUM(l_extendedprice) FROM lineitem WHERE l_quantity < 5",
                "--sf",
                "1",
                "--parallelize",
                "heuristic",
                "--partitions",
                "4",
                "--show-plan",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "heuristic(4):" in out
        assert "select" in out  # plan listing

    def test_tomograph_flag(self, capsys):
        code = main(
            [
                "run",
                "SELECT COUNT(*) FROM lineitem WHERE l_quantity < 5",
                "--sf",
                "1",
                "--parallelize",
                "heuristic",
                "--tomograph",
            ]
        )
        assert code == 0
        assert "parallelism usage" in capsys.readouterr().out

    def test_dot_output(self, capsys, tmp_path):
        target = tmp_path / "plan.dot"
        code = main(
            [
                "run",
                "SELECT COUNT(*) FROM lineitem WHERE l_quantity < 5",
                "--sf",
                "1",
                "--dot",
                str(target),
            ]
        )
        assert code == 0
        assert target.read_text().startswith("digraph")

    def test_group_output_summarized(self, capsys):
        code = main(
            [
                "run",
                "SELECT l_discount, COUNT(*) FROM lineitem GROUP BY l_discount",
                "--sf",
                "1",
            ]
        )
        assert code == 0
        assert "groups" in capsys.readouterr().out or "{" in capsys.readouterr().out

    def test_sql_error_reports_cleanly(self, capsys):
        code = main(["run", "SELECT nope FROM lineitem", "--sf", "1"])
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestAdapt:
    def test_adapt_named_query(self, capsys):
        code = main(["adapt", "--query", "q6", "--sf", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "GME" in out and "converged" in out

    def test_adapt_with_trace(self, capsys):
        code = main(
            [
                "adapt",
                "--sql",
                "SELECT SUM(l_extendedprice) FROM lineitem WHERE l_quantity < 25",
                "--sf",
                "1",
                "--trace",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "execution time vs run" in out
        assert "mutations by scheme" in out

    def test_unknown_query_fails(self, capsys):
        code = main(["adapt", "--query", "q99", "--sf", "1"])
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestBench:
    def test_bench_list(self, capsys):
        assert main(["bench", "list"]) == 0
        out = capsys.readouterr().out
        assert "fig11" in out and "fig17" in out

    def test_bench_rejects_unknown(self):
        with pytest.raises(SystemExit):
            main(["bench", "fig99"])
