"""Command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


class TestInfo:
    def test_info_prints_machines(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro" in out
        assert "E5-2650" in out and "E5-4657" in out


class TestRun:
    def test_serial_run(self, capsys):
        code = main(
            ["run", "SELECT COUNT(*) FROM lineitem WHERE l_quantity < 5", "--sf", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "serial:" in out
        assert "output[0]" in out

    def test_heuristic_run_with_plan(self, capsys):
        code = main(
            [
                "run",
                "SELECT SUM(l_extendedprice) FROM lineitem WHERE l_quantity < 5",
                "--sf",
                "1",
                "--parallelize",
                "heuristic",
                "--partitions",
                "4",
                "--show-plan",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "heuristic(4):" in out
        assert "select" in out  # plan listing

    def test_tomograph_flag(self, capsys):
        code = main(
            [
                "run",
                "SELECT COUNT(*) FROM lineitem WHERE l_quantity < 5",
                "--sf",
                "1",
                "--parallelize",
                "heuristic",
                "--tomograph",
            ]
        )
        assert code == 0
        assert "parallelism usage" in capsys.readouterr().out

    def test_dot_output(self, capsys, tmp_path):
        target = tmp_path / "plan.dot"
        code = main(
            [
                "run",
                "SELECT COUNT(*) FROM lineitem WHERE l_quantity < 5",
                "--sf",
                "1",
                "--dot",
                str(target),
            ]
        )
        assert code == 0
        assert target.read_text().startswith("digraph")

    def test_group_output_summarized(self, capsys):
        code = main(
            [
                "run",
                "SELECT l_discount, COUNT(*) FROM lineitem GROUP BY l_discount",
                "--sf",
                "1",
            ]
        )
        assert code == 0
        assert "groups" in capsys.readouterr().out or "{" in capsys.readouterr().out

    def test_sql_error_reports_cleanly(self, capsys):
        code = main(["run", "SELECT nope FROM lineitem", "--sf", "1"])
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestAdapt:
    def test_adapt_named_query(self, capsys):
        code = main(["adapt", "--query", "q6", "--sf", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "GME" in out and "converged" in out

    def test_adapt_with_trace(self, capsys):
        code = main(
            [
                "adapt",
                "--sql",
                "SELECT SUM(l_extendedprice) FROM lineitem WHERE l_quantity < 25",
                "--sf",
                "1",
                "--trace",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "execution time vs run" in out
        assert "mutations by scheme" in out

    def test_unknown_query_fails(self, capsys):
        code = main(["adapt", "--query", "q99", "--sf", "1"])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_adapt_bandit_policy_with_explain(self, capsys):
        code = main(
            ["adapt", "--query", "q6", "--sf", "1", "--policy", "bandit", "--explain"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "policy: bandit" in out
        assert "DOP decision provenance:" in out
        assert "dop.bandit_arm" in out

    def test_adapt_unknown_policy_fails(self, capsys):
        code = main(["adapt", "--query", "q6", "--sf", "1", "--policy", "zen"])
        assert code == 1
        assert "unknown convergence policy" in capsys.readouterr().err

    def test_adapt_warmstart_round_trip_and_learn(self, capsys, tmp_path):
        store = tmp_path / "exp.json"
        base = [
            "adapt", "--query", "q6", "--sf", "1",
            "--policy", "warmstart", "--experience", str(store),
        ]
        assert main(base + ["--explain"]) == 0
        first = capsys.readouterr().out
        assert "policy: warmstart+credit_debit (cold)" in first
        assert "dop.cold_fallback" in first
        assert store.exists()
        assert main(base) == 0
        second = capsys.readouterr().out
        assert "(warm-started)" in second

        # The learn command inspects what adapt recorded.
        assert main(["learn", str(store)]) == 0
        listing = capsys.readouterr().out
        assert "1 record(s)" in listing
        assert "dop=" in listing

    def test_learn_json_output(self, capsys, tmp_path):
        store = tmp_path / "exp.json"
        assert main(
            ["adapt", "--query", "q6", "--sf", "1", "--experience", str(store)]
        ) == 0
        capsys.readouterr()
        assert main(["learn", str(store), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["records"][0]["dop"] > 0
        assert doc["capacity_bytes"] > doc["size_bytes"] > 0

    def test_learn_missing_store_fails(self, capsys, tmp_path):
        assert main(["learn", str(tmp_path / "nope.json")]) == 1
        assert "no experience store" in capsys.readouterr().err


class TestLint:
    def test_lint_clean_named_query(self, capsys):
        code = main(["lint", "--query", "q6", "--sf", "1"])
        assert code == 0
        assert "clean" in capsys.readouterr().out

    def test_lint_clean_sql(self, capsys):
        code = main(
            [
                "lint",
                "--sql",
                "SELECT COUNT(*) FROM lineitem WHERE l_quantity < 5",
                "--sf",
                "1",
            ]
        )
        assert code == 0
        assert "clean" in capsys.readouterr().out

    def test_lint_corrupted_plan_json_fails(self, capsys, tmp_path):
        import json

        from repro.engine import execute
        from repro.core import PlanMutator
        from repro.plan import to_json
        from repro.workloads import TpchDataset

        dataset = TpchDataset(scale_factor=1)
        plan = dataset.plan("q6")
        mutator = PlanMutator(plan)
        profile = execute(plan, dataset.sim_config()).profile
        for __ in range(3):
            mutator.mutate(profile)
            profile = execute(plan, dataset.sim_config()).profile
        document = json.loads(to_json(plan))
        for spec in document["nodes"]:
            if spec["op"]["kind"] == "slice" and spec["op"]["lo"] == 0:
                spec["op"]["hi"] //= 2  # open a coverage gap
                break
        target = tmp_path / "bad_plan.json"
        target.write_text(json.dumps(document))
        code = main(["lint", "--plan-json", str(target), "--sf", "1"])
        assert code == 1
        out = capsys.readouterr().out
        assert "error" in out and "partition." in out

    def test_lint_strict_fails_on_warnings(self, capsys, tmp_path):
        import json

        from repro.engine import execute
        from repro.core import PlanMutator
        from repro.plan import to_json
        from repro.workloads import TpchDataset

        dataset = TpchDataset(scale_factor=1)
        plan = dataset.plan("q6")
        mutator = PlanMutator(plan)
        profile = execute(plan, dataset.sim_config()).profile
        for __ in range(3):
            mutator.mutate(profile)
            profile = execute(plan, dataset.sim_config()).profile
        document = json.loads(to_json(plan))
        # Two pack branches claiming the same partition position is a
        # warn-level determinism smell (determinism.duplicate-key).
        pack_spec = next(s for s in document["nodes"] if s["op"]["kind"] == "pack")
        first, second = pack_spec["inputs"][:2]
        document["nodes"][second]["order_key"] = document["nodes"][first]["order_key"]
        target = tmp_path / "plan.json"
        target.write_text(json.dumps(document))
        assert main(["lint", "--plan-json", str(target), "--sf", "1"]) == 0
        capsys.readouterr()
        assert main(["lint", "--plan-json", str(target), "--sf", "1", "--strict"]) == 1
        assert "warn" in capsys.readouterr().out


class TestAdaptVerbose:
    def test_adapt_verbose_prints_analyzer_summaries(self, capsys):
        code = main(
            [
                "adapt",
                "--sql",
                "SELECT SUM(l_extendedprice) FROM lineitem WHERE l_quantity < 25",
                "--sf",
                "1",
                "--verbose",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "analyzer: clean" in out


class TestChaos:
    ARGS = ["chaos", "--sf", "1", "--horizon", "0.3", "--clients", "2"]

    def test_chaos_demo_workload_half(self, capsys):
        assert main(self.ARGS + ["--no-adapt"]) == 0
        out = capsys.readouterr().out
        assert "faults injected:" in out
        assert "admission:" in out

    def test_chaos_demo_is_deterministic(self, capsys):
        assert main(self.ARGS + ["--no-adapt"]) == 0
        first = capsys.readouterr().out
        assert main(self.ARGS + ["--no-adapt"]) == 0
        assert capsys.readouterr().out == first

    def test_chaos_demo_full(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "faults injected:" in out
        assert "under chaos:" in out
        assert "chaos GME / clean GME:" in out

    def test_chaos_heavy_level(self, capsys):
        assert main(self.ARGS + ["--no-adapt", "--level", "heavy"]) == 0
        out = capsys.readouterr().out
        assert "chaos level: heavy" in out


class TestBench:
    def test_bench_list(self, capsys):
        assert main(["bench", "list"]) == 0
        out = capsys.readouterr().out
        assert "fig11" in out and "fig17" in out
        assert "fig18chaos" in out

    def test_bench_rejects_unknown(self):
        with pytest.raises(SystemExit):
            main(["bench", "fig99"])

    def test_bench_requires_name_or_wallclock(self, capsys):
        assert main(["bench"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_bench_wallclock_quick(self, capsys, tmp_path):
        out_file = tmp_path / "wallclock.json"
        code = main(
            [
                "bench",
                "--wallclock",
                "--quick",
                "--output",
                str(out_file),
                "--min-hit-rate",
                "0.5",
                "--workers",
                "2",
                "--max-worker-slowdown",
                "2.0",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "tpch_q1_style" in out and "join_micro" in out
        report = json.loads(out_file.read_text())
        assert report["summary"]["all_identical"] is True
        assert report["summary"]["min_hit_rate"] > 0.5
        assert report["workers_swept"] == [1, 2]
        for workload in report["workloads"]:
            assert [run["workers"] for run in workload["cold"]] == [1, 2]
            assert workload["stages"]["build_seconds"] >= 0
            # The pooled run reports its host-side batch counters.
            assert workload["cold"][1]["pool"]["jobs"] > 0

    def test_bench_wallclock_gate_failure(self, capsys, tmp_path):
        code = main(
            [
                "bench",
                "--wallclock",
                "--quick",
                "--output",
                str(tmp_path / "w.json"),
                "--min-hit-rate",
                "0.999",
            ]
        )
        assert code == 1
        assert "hit rate" in capsys.readouterr().err
