"""Workload generators: TPC-H, TPC-DS, micro-benchmarks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import execute
from repro.errors import WorkloadError
from repro.plan import validate_plan
from repro.workloads import (
    JoinMicroWorkload,
    SelectMicroWorkload,
    SkewedSelectWorkload,
    TpcdsDataset,
    TpchDataset,
    clustered_skew,
    uniform_ints,
    zipf_ints,
)

# Module-scoped datasets: generation is cheap but not free.
_tpch = TpchDataset(scale_factor=10)
_tpcds = TpcdsDataset(scale_factor=100)


class TestGenerators:
    def test_uniform_bounds(self, rng):
        values = uniform_ints(rng, 1_000, 5, 10)
        assert values.min() >= 5 and values.max() < 10

    def test_zipf_is_skewed(self, rng):
        values = zipf_ints(rng, 20_000, 100)
        counts = np.bincount(values, minlength=100)
        assert counts[0] > 5 * counts[50]

    def test_clustered_skew_layout(self, rng):
        """Figure 13: random first half, 5 constant runs in the second."""
        values = clustered_skew(rng, 10_000, 1_000)
        head, tail = values[:5_000], values[5_000:]
        assert len(np.unique(head)) > 500
        assert len(np.unique(tail)) == 5
        run = len(tail) // 5
        for i in range(5):
            chunk = tail[i * run : (i + 1) * run]
            assert len(np.unique(chunk)) == 1

    def test_generators_deterministic(self):
        a = zipf_ints(np.random.default_rng(3), 100, 10)
        b = zipf_ints(np.random.default_rng(3), 100, 10)
        np.testing.assert_array_equal(a, b)


class TestTpch:
    def test_row_counts_scale(self):
        assert _tpch.rows("lineitem") == 60_000
        assert _tpch.rows("orders") == 15_000
        assert len(_tpch.catalog.table("nation")) == 25

    def test_all_queries_plan_and_validate(self):
        for name in _tpch.query_names():
            validate_plan(_tpch.plan(name))

    def test_queries_return_nonempty_results(self):
        config = _tpch.sim_config()
        for name in _tpch.query_names():
            result = execute(_tpch.plan(name), config)
            assert result.outputs, name
            first = result.outputs[0]
            size = getattr(first, "value", None)
            if size is None:
                assert len(first) > 0, name
            else:
                assert size != 0, name

    def test_q6_matches_ground_truth(self):
        from repro.storage import date_value

        config = _tpch.sim_config()
        result = execute(_tpch.plan("q6"), config)
        li = _tpch.catalog.table("lineitem")
        ship = li.column("l_shipdate").values
        disc = li.column("l_discount").values
        qty = li.column("l_quantity").values
        price = li.column("l_extendedprice").values
        mask = (
            (ship >= date_value("1994-01-01"))
            & (ship < date_value("1995-01-01"))
            & (disc >= 5)
            & (disc <= 7)
            & (qty < 24)
        )
        assert result.outputs[0].value == int((price[mask] * disc[mask]).sum())

    def test_q22_finds_customers_without_orders(self):
        config = _tpch.sim_config()
        result = execute(_tpch.plan("q22"), config)
        count = result.outputs[0].value
        assert count > 0
        custkeys = set(_tpch.catalog.column("orders", "o_custkey").values.tolist())
        balances = _tpch.catalog.column("customer", "c_acctbal").values
        keys = _tpch.catalog.column("customer", "c_custkey").values
        expected = sum(
            1
            for key, bal in zip(keys, balances)
            if bal > 500_000 and int(key) not in custkeys
        )
        assert count == expected

    def test_same_seed_same_data(self):
        other = TpchDataset(scale_factor=10)
        a = _tpch.catalog.column("lineitem", "l_quantity").values
        b = other.catalog.column("lineitem", "l_quantity").values
        np.testing.assert_array_equal(a, b)

    def test_unknown_query_rejected(self):
        with pytest.raises(WorkloadError):
            _tpch.plan("q99")

    def test_sim_config_restores_logical_scale(self):
        assert _tpch.sim_config().data_scale == 1000.0


class TestTpcds:
    def test_fact_table_is_date_ordered(self):
        dates = _tpcds.catalog.column("store_sales", "ss_sold_date_sk").values
        assert np.all(np.diff(dates) >= 0)

    def test_seasonal_density(self):
        """Holiday months must carry several times more sales."""
        dates = _tpcds.catalog.column("store_sales", "ss_sold_date_sk").values
        month = (dates % 365) // 31 + 1
        december = np.sum(month == 12)
        june = np.sum(month == 6)
        assert december > 2 * june

    def test_item_popularity_zipf(self):
        items = _tpcds.catalog.column("store_sales", "ss_item_sk").values
        counts = np.bincount(items)
        assert counts.max() > 10 * np.median(counts[counts > 0])

    def test_all_queries_plan_validate_and_run(self):
        config = _tpcds.sim_config()
        for name in _tpcds.query_names():
            plan = _tpcds.plan(name)
            validate_plan(plan)
            result = execute(plan, config)
            assert result.outputs, name

    def test_four_socket_config(self):
        config = _tpcds.four_socket_config()
        assert config.machine.hardware_threads == 96

    def test_unknown_query_rejected(self):
        with pytest.raises(WorkloadError):
            _tpcds.plan("ds9")


class TestMicroWorkloads:
    def test_skewed_select_selectivity_steps(self):
        workload = SkewedSelectWorkload(tuples_m=100)
        config = workload.sim_config()
        matches = []
        for skew in (10, 30, 50):
            result = execute(workload.plan(skew), config)
            profile = [
                r for r in result.profile.records if r.kind == "select"
            ][0]
            matches.append(profile.tuples_out)
        # Each extra cluster adds ~10% of the column.
        n = 100 * 1_000_000 // 1000
        assert matches[0] == pytest.approx(0.1 * n, rel=0.05)
        assert matches[2] == pytest.approx(0.5 * n, rel=0.05)

    def test_skewed_select_rejects_bad_skew(self):
        with pytest.raises(WorkloadError):
            SkewedSelectWorkload(tuples_m=100).plan(15)

    def test_join_micro_every_outer_matches(self):
        workload = JoinMicroWorkload(outer_mb=64, inner_mb=16)
        result = execute(workload.plan(), workload.sim_config())
        outer_rows = 64 * 1_000_000 // 8 // 1000
        assert result.outputs[0].value == outer_rows

    def test_select_micro_selectivity_convention(self):
        """Paper convention: 0% -> all output, 100% -> none."""
        all_out = SelectMicroWorkload(size_gb=1, selectivity_pct=0)
        none_out = SelectMicroWorkload(size_gb=1, selectivity_pct=100)
        config = all_out.sim_config()
        r_all = execute(all_out.plan(), config)
        r_none = execute(none_out.plan(), none_out.sim_config())
        select_all = [r for r in r_all.profile.records if r.kind == "select"][0]
        select_none = [r for r in r_none.profile.records if r.kind == "select"][0]
        assert select_all.tuples_out == all_out.actual_rows
        assert select_none.tuples_out == 0

    def test_select_micro_data_scale(self):
        workload = SelectMicroWorkload(size_gb=10, actual_rows=250_000)
        assert workload.data_scale == pytest.approx(10e9 / 8 / 250_000)

    def test_select_micro_validates_selectivity(self):
        with pytest.raises(WorkloadError):
            SelectMicroWorkload(selectivity_pct=120)
