"""SQL lexer and parser."""

from __future__ import annotations

import pytest

from repro.errors import SqlLexError, SqlParseError
from repro.sql import parse, tokenize
from repro.sql.ast import (
    AggExpr,
    And,
    Between,
    BinaryExpr,
    ColumnRef,
    Comparison,
    InList,
    InSubquery,
    JoinCondition,
    Like,
    NumberLit,
    Or,
)
from repro.storage import date_value


class TestLexer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("select FROM Where")
        assert [t.type for t in tokens[:-1]] == ["KEYWORD"] * 3
        assert [t.value for t in tokens[:-1]] == ["SELECT", "FROM", "WHERE"]

    def test_identifiers_lowercased(self):
        tokens = tokenize("LineItem l_ShipDate")
        assert tokens[0].value == "lineitem"
        assert tokens[1].value == "l_shipdate"

    def test_numbers(self):
        tokens = tokenize("42 3.14 .5")
        assert [t.value for t in tokens[:-1]] == ["42", "3.14", ".5"]

    def test_strings(self):
        tokens = tokenize("'hello world'")
        assert tokens[0].type == "STRING"
        assert tokens[0].value == "hello world"

    def test_unterminated_string(self):
        with pytest.raises(SqlLexError):
            tokenize("'oops")

    def test_two_char_operators(self):
        tokens = tokenize("a <= b >= c <> d")
        ops = [t.value for t in tokens if t.type == "PUNCT"]
        assert ops == ["<=", ">=", "<>"]

    def test_qualified_name_dots(self):
        tokens = tokenize("t1.col")
        assert [t.value for t in tokens[:-1]] == ["t1", ".", "col"]

    def test_unexpected_character(self):
        with pytest.raises(SqlLexError):
            tokenize("a ! b")

    def test_eof_token(self):
        assert tokenize("")[-1].type == "EOF"


class TestParser:
    def test_minimal_select(self):
        stmt = parse("SELECT a FROM t")
        assert stmt.tables == ("t",)
        assert stmt.items[0].expr == ColumnRef("a")

    def test_aggregates(self):
        stmt = parse("SELECT SUM(a), COUNT(*), AVG(b) FROM t")
        assert stmt.items[0].expr == AggExpr("sum", ColumnRef("a"))
        assert stmt.items[1].expr == AggExpr("count", None)
        assert stmt.items[2].expr == AggExpr("avg", ColumnRef("b"))

    def test_arithmetic_precedence(self):
        stmt = parse("SELECT a + b * c FROM t")
        expr = stmt.items[0].expr
        assert isinstance(expr, BinaryExpr) and expr.op == "+"
        assert isinstance(expr.right, BinaryExpr) and expr.right.op == "*"

    def test_parenthesised_expression(self):
        stmt = parse("SELECT (a + b) * c FROM t")
        expr = stmt.items[0].expr
        assert expr.op == "*"
        assert isinstance(expr.left, BinaryExpr) and expr.left.op == "+"

    def test_where_conjunction(self):
        stmt = parse("SELECT a FROM t WHERE a < 5 AND b >= 3")
        assert isinstance(stmt.where, And)
        assert len(stmt.where.parts) == 2

    def test_where_disjunction_groups(self):
        stmt = parse("SELECT a FROM t WHERE (a < 5 AND b > 1) OR (a > 9)")
        assert isinstance(stmt.where, Or)
        assert isinstance(stmt.where.parts[0], And)

    def test_between(self):
        stmt = parse("SELECT a FROM t WHERE a BETWEEN 2 AND 6")
        assert stmt.where == Between(ColumnRef("a"), 2, 6)

    def test_like_and_not_like(self):
        stmt = parse("SELECT a FROM t WHERE s LIKE 'X%' AND s NOT LIKE '%Y'")
        like, notlike = stmt.where.parts
        assert like == Like(ColumnRef("s"), "X%")
        assert notlike == Like(ColumnRef("s"), "%Y", negate=True)

    def test_in_list(self):
        stmt = parse("SELECT a FROM t WHERE a IN (1, 2, 3)")
        assert stmt.where == InList(ColumnRef("a"), (1, 2, 3))

    def test_not_in_subquery(self):
        stmt = parse(
            "SELECT a FROM t WHERE a NOT IN (SELECT b FROM u WHERE b > 2)"
        )
        assert isinstance(stmt.where, InSubquery)
        assert stmt.where.negate
        assert stmt.where.subquery.tables == ("u",)

    def test_join_condition_detected(self):
        stmt = parse("SELECT a FROM t, u WHERE t.a = u.b")
        assert stmt.where == JoinCondition(
            ColumnRef("a", "t"), ColumnRef("b", "u")
        )

    def test_date_literal(self):
        stmt = parse("SELECT a FROM t WHERE d >= DATE '1994-01-01'")
        assert stmt.where == Comparison(
            ColumnRef("d"), ">=", date_value("1994-01-01")
        )

    def test_negative_literal(self):
        stmt = parse("SELECT a FROM t WHERE a > -5")
        assert stmt.where.value == -5

    def test_group_order_limit(self):
        stmt = parse(
            "SELECT a, SUM(b) FROM t GROUP BY a ORDER BY a DESC LIMIT 10"
        )
        assert stmt.group_by == ColumnRef("a")
        assert stmt.order_by[0].descending
        assert stmt.limit == 10

    def test_alias(self):
        stmt = parse("SELECT SUM(a) AS total FROM t")
        assert stmt.items[0].alias == "total"

    def test_number_literal_item(self):
        stmt = parse("SELECT 100 * SUM(a) FROM t")
        expr = stmt.items[0].expr
        assert expr.left == NumberLit(100)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SqlParseError):
            parse("SELECT a FROM t extra")

    def test_missing_from_rejected(self):
        with pytest.raises(SqlParseError):
            parse("SELECT a")

    def test_not_without_like_or_in_rejected(self):
        with pytest.raises(SqlParseError):
            parse("SELECT a FROM t WHERE a NOT = 3")

    def test_empty_predicate_rejected(self):
        with pytest.raises(SqlParseError):
            parse("SELECT a FROM t WHERE a")
