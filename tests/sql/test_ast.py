"""AST node behaviour: string forms and equality semantics."""

from __future__ import annotations

from repro.sql.ast import (
    AggExpr,
    BinaryExpr,
    ColumnRef,
    NumberLit,
    OrderItem,
    SelectItem,
)


class TestStringForms:
    def test_column_ref(self):
        assert str(ColumnRef("a")) == "a"
        assert str(ColumnRef("a", table="t")) == "t.a"

    def test_number(self):
        assert str(NumberLit(42)) == "42"
        assert str(NumberLit(2.5)) == "2.5"

    def test_binary_nested(self):
        expr = BinaryExpr("*", ColumnRef("a"), BinaryExpr("+", NumberLit(1), ColumnRef("b")))
        assert str(expr) == "(a * (1 + b))"

    def test_agg(self):
        assert str(AggExpr("sum", ColumnRef("x"))) == "sum(x)"
        assert str(AggExpr("count", None)) == "count(*)"


class TestEquality:
    def test_column_refs_compare_structurally(self):
        assert ColumnRef("a") == ColumnRef("a")
        assert ColumnRef("a") != ColumnRef("a", table="t")

    def test_order_item_matching_uses_expression(self):
        """The planner locates ORDER BY targets by expression equality."""
        agg = AggExpr("sum", ColumnRef("price"))
        assert OrderItem(agg).expr == AggExpr("sum", ColumnRef("price"))

    def test_select_item_alias_not_part_of_expr_identity(self):
        a = SelectItem(ColumnRef("x"), alias="one")
        b = SelectItem(ColumnRef("x"), alias="two")
        assert a.expr == b.expr
        assert a != b
