"""SQL planner: compiled plans must compute the numpy ground truth."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import SimulationConfig, laptop_machine
from repro.engine import execute
from repro.errors import SqlPlanError
from repro.plan import validate_plan
from repro.sql import plan_sql
from repro.storage import Catalog, LNG, STR, Table


@pytest.fixture()
def catalog(rng) -> Catalog:
    n, m, s = 10_000, 200, 20
    cat = Catalog()
    cat.add(
        Table.from_arrays(
            "sales",
            {
                "item_id": (LNG, rng.integers(0, m, n)),
                "shop_id": (LNG, rng.integers(0, s, n)),
                "amount": (LNG, rng.integers(1, 100, n)),
                "price": (LNG, rng.integers(10, 1_000, n)),
            },
        )
    )
    cat.add(
        Table.from_arrays(
            "items",
            {
                "item_pk": (LNG, np.arange(m)),
                "category": (LNG, rng.integers(0, 5, m)),
                "label": (STR, [f"label-{i % 11}" for i in range(m)]),
            },
        )
    )
    cat.add(
        Table.from_arrays(
            "shops",
            {
                "shop_pk": (LNG, np.arange(s)),
                "region": (LNG, rng.integers(0, 4, s)),
            },
        )
    )
    return cat


@pytest.fixture()
def config() -> SimulationConfig:
    return SimulationConfig(machine=laptop_machine(8), data_scale=100.0)


def run_sql(sql: str, catalog: Catalog, config: SimulationConfig):
    plan = plan_sql(sql, catalog)
    validate_plan(plan)
    return execute(plan, config)


class TestScalarQueries:
    def test_filtered_sum(self, catalog, config):
        result = run_sql(
            "SELECT SUM(price) FROM sales WHERE amount < 50", catalog, config
        )
        sales = catalog.table("sales")
        mask = sales.column("amount").values < 50
        assert result.outputs[0].value == int(sales.column("price").values[mask].sum())

    def test_count_star_no_filter(self, catalog, config):
        result = run_sql("SELECT COUNT(*) FROM sales", catalog, config)
        assert result.outputs[0].value == 10_000

    def test_expression_aggregate(self, catalog, config):
        result = run_sql(
            "SELECT SUM(price * amount) FROM sales WHERE amount BETWEEN 10 AND 20",
            catalog,
            config,
        )
        sales = catalog.table("sales")
        a = sales.column("amount").values
        mask = (a >= 10) & (a <= 20)
        expected = int((sales.column("price").values[mask] * a[mask]).sum())
        assert result.outputs[0].value == expected

    def test_avg_is_sum_over_count(self, catalog, config):
        result = run_sql(
            "SELECT AVG(price) FROM sales WHERE amount < 10", catalog, config
        )
        sales = catalog.table("sales")
        mask = sales.column("amount").values < 10
        expected = sales.column("price").values[mask].mean()
        assert result.outputs[0].value == pytest.approx(expected)

    def test_min_max(self, catalog, config):
        result = run_sql(
            "SELECT MIN(price), MAX(price) FROM sales WHERE amount = 7",
            catalog,
            config,
        )
        sales = catalog.table("sales")
        mask = sales.column("amount").values == 7
        assert result.outputs[0].value == int(sales.column("price").values[mask].min())
        assert result.outputs[1].value == int(sales.column("price").values[mask].max())


class TestJoins:
    def _ground_truth(self, catalog):
        sales = catalog.table("sales")
        items = catalog.table("items")
        cat_per_row = items.column("category").values[
            sales.column("item_id").values
        ]
        return sales, cat_per_row

    def test_semijoin_reduction(self, catalog, config):
        result = run_sql(
            "SELECT SUM(price) FROM sales, items "
            "WHERE item_id = item_pk AND category = 2",
            catalog,
            config,
        )
        sales, cat_per_row = self._ground_truth(catalog)
        expected = int(sales.column("price").values[cat_per_row == 2].sum())
        assert result.outputs[0].value == expected

    def test_group_by_dimension_column(self, catalog, config):
        result = run_sql(
            "SELECT category, SUM(price) FROM sales, items "
            "WHERE item_id = item_pk GROUP BY category ORDER BY category",
            catalog,
            config,
        )
        sales, cat_per_row = self._ground_truth(catalog)
        out = result.outputs[0]
        for key, total in zip(out.head, out.tail):
            expected = int(sales.column("price").values[cat_per_row == key].sum())
            assert total == expected

    def test_two_dimensions(self, catalog, config):
        result = run_sql(
            "SELECT SUM(amount) FROM sales, items, shops "
            "WHERE item_id = item_pk AND shop_id = shop_pk "
            "AND category = 1 AND region = 3",
            catalog,
            config,
        )
        sales = catalog.table("sales")
        cat_per_row = catalog.column("items", "category").values[
            sales.column("item_id").values
        ]
        reg_per_row = catalog.column("shops", "region").values[
            sales.column("shop_id").values
        ]
        mask = (cat_per_row == 1) & (reg_per_row == 3)
        assert result.outputs[0].value == int(
            sales.column("amount").values[mask].sum()
        )

    def test_string_dimension_predicate(self, catalog, config):
        result = run_sql(
            "SELECT COUNT(*) FROM sales, items "
            "WHERE item_id = item_pk AND label LIKE 'label-1'",
            catalog,
            config,
        )
        items = catalog.table("items")
        codes = items.column("label")
        wanted = {i for i, s in enumerate(codes.dictionary) if s == "label-1"}
        hit_items = {
            int(pk)
            for pk, c in zip(
                items.column("item_pk").values, codes.values
            )
            if int(c) in wanted
        }
        sales_items = catalog.column("sales", "item_id").values
        expected = int(np.isin(sales_items, list(hit_items)).sum())
        assert result.outputs[0].value == expected

    def test_or_across_fact_and_dim(self, catalog, config):
        result = run_sql(
            "SELECT COUNT(*) FROM sales, items WHERE item_id = item_pk AND "
            "((amount < 5 AND category = 1) OR (amount > 95 AND category = 2))",
            catalog,
            config,
        )
        sales = catalog.table("sales")
        cat_per_row = catalog.column("items", "category").values[
            sales.column("item_id").values
        ]
        a = sales.column("amount").values
        mask = ((a < 5) & (cat_per_row == 1)) | ((a > 95) & (cat_per_row == 2))
        assert result.outputs[0].value == int(mask.sum())

    def test_in_subquery(self, catalog, config):
        result = run_sql(
            "SELECT COUNT(*) FROM items WHERE item_pk IN "
            "(SELECT item_id FROM sales WHERE amount > 97)",
            catalog,
            config,
        )
        hot = np.unique(
            catalog.column("sales", "item_id").values[
                catalog.column("sales", "amount").values > 97
            ]
        )
        expected = int(
            np.isin(catalog.column("items", "item_pk").values, hot).sum()
        )
        assert result.outputs[0].value == expected

    def test_limit_truncates(self, catalog, config):
        result = run_sql(
            "SELECT shop_id, COUNT(*) FROM sales GROUP BY shop_id "
            "ORDER BY shop_id LIMIT 5",
            catalog,
            config,
        )
        assert len(result.outputs[0]) == 5

    def test_order_by_aggregate_desc(self, catalog, config):
        result = run_sql(
            "SELECT shop_id, SUM(price) FROM sales GROUP BY shop_id "
            "ORDER BY SUM(price) DESC LIMIT 3",
            catalog,
            config,
        )
        out = result.outputs[0]
        assert list(out.tail) == sorted(out.tail, reverse=True)


class TestPlannerErrors:
    def test_unknown_table(self, catalog):
        with pytest.raises(SqlPlanError):
            plan_sql("SELECT a FROM nope", catalog)

    def test_unknown_column(self, catalog):
        with pytest.raises(SqlPlanError):
            plan_sql("SELECT nope FROM sales", catalog)

    def test_cross_product_rejected(self, catalog):
        with pytest.raises(SqlPlanError, match="cross products"):
            plan_sql("SELECT COUNT(*) FROM sales, items", catalog)

    def test_group_by_without_aggregate(self, catalog):
        with pytest.raises(SqlPlanError):
            plan_sql("SELECT shop_id FROM sales GROUP BY shop_id", catalog)

    def test_order_by_unknown_expression(self, catalog):
        with pytest.raises(SqlPlanError):
            plan_sql(
                "SELECT shop_id, SUM(price) FROM sales GROUP BY shop_id "
                "ORDER BY SUM(amount)",
                catalog,
            )

    def test_subquery_must_select_one_column(self, catalog):
        with pytest.raises(SqlPlanError):
            plan_sql(
                "SELECT COUNT(*) FROM items WHERE item_pk IN "
                "(SELECT item_id, amount FROM sales)",
                catalog,
            )


class TestOutputLabels:
    def test_aggregate_output_labelled(self, catalog):
        plan = plan_sql("SELECT SUM(price) FROM sales WHERE amount < 5", catalog)
        assert plan.outputs[0].label == "sum(price)"

    def test_alias_wins(self, catalog):
        plan = plan_sql(
            "SELECT SUM(price) AS total FROM sales WHERE amount < 5", catalog
        )
        assert plan.outputs[0].label == "total"

    def test_grouped_output_labelled(self, catalog):
        plan = plan_sql(
            "SELECT shop_id, COUNT(*) FROM sales GROUP BY shop_id", catalog
        )
        assert plan.outputs[0].label == "count(*)"


class TestHavingDistinct:
    def test_having_filters_groups(self, catalog, config):
        result = run_sql(
            "SELECT shop_id, COUNT(*) FROM sales GROUP BY shop_id "
            "HAVING COUNT(*) > 520 ORDER BY shop_id",
            catalog,
            config,
        )
        out = result.outputs[0]
        assert len(out) > 0
        assert all(int(v) > 520 for v in out.tail)
        shop = catalog.column("sales", "shop_id").values
        import numpy as np

        full = np.bincount(shop)
        expected = {int(s) for s in np.flatnonzero(full > 520)}
        assert set(int(k) for k in out.head) == expected

    def test_having_conjunction(self, catalog, config):
        result = run_sql(
            "SELECT shop_id, SUM(price) FROM sales GROUP BY shop_id "
            "HAVING SUM(price) > 230000 AND SUM(price) < 270000",
            catalog,
            config,
        )
        out = result.outputs[0]
        assert all(230_000 < int(v) < 270_000 for v in out.tail)

    def test_having_requires_group_by(self, catalog):
        with pytest.raises(SqlPlanError, match="GROUP BY"):
            plan_sql("SELECT SUM(price) FROM sales HAVING SUM(price) > 1", catalog)

    def test_having_must_match_select_aggregate(self, catalog):
        with pytest.raises(SqlPlanError, match="reference"):
            plan_sql(
                "SELECT shop_id, SUM(price) FROM sales GROUP BY shop_id "
                "HAVING COUNT(*) > 3",
                catalog,
            )

    def test_having_multiple_aggregates_unsupported(self, catalog):
        with pytest.raises(SqlPlanError, match="single aggregate"):
            plan_sql(
                "SELECT shop_id, SUM(price), COUNT(*) FROM sales "
                "GROUP BY shop_id HAVING SUM(price) > 1",
                catalog,
            )

    def test_distinct_values(self, catalog, config):
        result = run_sql(
            "SELECT DISTINCT shop_id FROM sales WHERE amount > 95",
            catalog,
            config,
        )
        import numpy as np

        shop = catalog.column("sales", "shop_id").values
        amount = catalog.column("sales", "amount").values
        expected = set(np.unique(shop[amount > 95]).tolist())
        assert set(result.outputs[0].head.tolist()) == expected

    def test_distinct_single_plain_column_only(self, catalog):
        with pytest.raises(SqlPlanError, match="DISTINCT"):
            plan_sql("SELECT DISTINCT shop_id, item_id FROM sales", catalog)
        with pytest.raises(SqlPlanError, match="DISTINCT"):
            plan_sql("SELECT DISTINCT SUM(price) FROM sales", catalog)

    def test_distinct_with_limit(self, catalog, config):
        result = run_sql(
            "SELECT DISTINCT shop_id FROM sales LIMIT 3", catalog, config
        )
        assert len(result.outputs[0]) == 3
