"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.config import SimulationConfig, laptop_machine
from repro.storage import DATE, LNG, STR, Catalog, Table


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture()
def small_catalog(rng: np.random.Generator) -> Catalog:
    """A two-table catalog small enough for exhaustive checks."""
    n, m = 2_000, 100
    catalog = Catalog("test")
    catalog.add(
        Table.from_arrays(
            "facts",
            {
                "fk": (LNG, rng.integers(0, m, n)),
                "val": (LNG, rng.integers(0, 1_000, n)),
                "qty": (LNG, rng.integers(1, 50, n)),
                "day": (DATE, rng.integers(8_000, 9_000, n)),
            },
        )
    )
    catalog.add(
        Table.from_arrays(
            "dims",
            {
                "pk": (LNG, np.arange(m)),
                "size": (LNG, rng.integers(1, 10, m)),
                "name": (STR, [f"name-{i % 7}" for i in range(m)]),
            },
        )
    )
    return catalog


@pytest.fixture()
def sim_config() -> SimulationConfig:
    """A small, fast simulated machine for unit tests."""
    return SimulationConfig(machine=laptop_machine(8), data_scale=100.0)


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--regen-golden",
        action="store_true",
        default=False,
        help="rewrite the golden-trace fixtures under tests/observe/golden/ "
        "instead of comparing against them",
    )


@pytest.fixture()
def regen_golden(request: pytest.FixtureRequest) -> bool:
    """True when the run should rewrite golden fixtures, not assert."""
    return bool(request.config.getoption("--regen-golden"))


@pytest.fixture(autouse=True)
def no_shm_leaks():
    """Fail any test that leaks a repro-* shared-memory segment.

    The process evaluation backend publishes columns and scratch
    results into ``multiprocessing.shared_memory``; every segment must
    be unlinked by the time the owning pool is closed.  A segment left
    in /dev/shm would survive the interpreter and eventually fill the
    tmpfs, so treat any leak as a test failure at the test that caused
    it.
    """
    import repro.engine.shm as shm

    def snapshot() -> set[str]:
        try:
            return {n for n in os.listdir("/dev/shm") if n.startswith("repro-")}
        except OSError:  # non-POSIX host: fall back to our own registry
            return set(shm.live_segment_names())

    before = snapshot()
    yield
    leaked = snapshot() - before
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"


@pytest.fixture()
def host_workers() -> int | None:
    """Evaluation-pool width for suites honoring the CI chaos matrix.

    The chaos-matrix CI job runs the chaos/resilience suites with
    ``REPRO_TEST_WORKERS`` set to 1 and 2; simulated results must be
    bit-identical either way.  Unset locally (= inline evaluation).
    """
    value = os.environ.get("REPRO_TEST_WORKERS")
    return int(value) if value else None
