"""Tomograph rendering and ASCII plots."""

from __future__ import annotations

import pytest

from repro.core import HeuristicParallelizer
from repro.engine import execute
from repro.operators import RangePredicate
from repro.plan import PlanBuilder
from repro.viz import bar_chart, line_plot, render_tomograph, utilization_summary


@pytest.fixture()
def profile(small_catalog, sim_config):
    b = PlanBuilder(small_catalog)
    sel = b.select(b.scan("facts", "val"), RangePredicate(hi=500))
    proj = b.fetch(sel, b.scan("facts", "qty"))
    plan = HeuristicParallelizer(4).parallelize(b.build(b.aggregate("sum", proj)))
    return execute(plan, sim_config).profile


class TestTomograph:
    def test_renders_one_row_per_thread(self, profile):
        text = render_tomograph(profile, 8)
        rows = [line for line in text.splitlines() if "|" in line and line.strip().startswith("t")]
        assert len(rows) == 8

    def test_reports_utilization_percentage(self, profile):
        text = render_tomograph(profile, 8)
        assert "parallelism usage" in text
        assert "%" in text

    def test_contains_operator_marks(self, profile):
        text = render_tomograph(profile, 8)
        assert "S" in text  # selects ran
        assert "." in text  # some idleness

    def test_unfinished_profile_rejected(self, profile):
        profile.finish_time = None
        with pytest.raises(ValueError):
            render_tomograph(profile, 8)

    def test_summary_numbers(self, profile):
        summary = utilization_summary(profile, 8)
        assert summary["span_ms"] > 0
        assert 0 < summary["multicore_utilization"] <= 1
        assert summary["operators_executed"] == len(profile.records)
        assert summary["threads_used"] <= 8


class TestAsciiPlots:
    def test_line_plot_draws_series(self):
        text = line_plot({"a": [3.0, 2.0, 1.0], "b": [1.0, 2.0, 3.0]})
        assert "*" in text and "+" in text
        assert "a" in text and "b" in text

    def test_line_plot_empty_rejected(self):
        with pytest.raises(ValueError):
            line_plot({})
        with pytest.raises(ValueError):
            line_plot({"a": []})

    def test_line_plot_title(self):
        assert line_plot({"a": [1.0]}, title="hello").startswith("hello")

    def test_bar_chart_shows_values(self):
        text = bar_chart(
            ["g1", "g2"], {"HP": [1.0, 2.0], "AP": [0.5, 0.25]}, unit="s"
        )
        assert "g1:" in text and "g2:" in text
        assert "0.25 s" in text

    def test_bar_chart_scales_to_peak(self):
        text = bar_chart(["g"], {"x": [10.0], "y": [5.0]}, width=20)
        x_bar = next(line for line in text.splitlines() if line.strip().startswith("x"))
        y_bar = next(line for line in text.splitlines() if line.strip().startswith("y"))
        assert x_bar.count("#") == 20
        assert y_bar.count("#") == 10

    def test_bar_chart_empty_rejected(self):
        with pytest.raises(ValueError):
            bar_chart(["g"], {})


class TestChromeTrace:
    def test_trace_contains_one_event_per_operator(self, profile):
        import json

        from repro.viz import to_chrome_trace

        document = json.loads(to_chrome_trace(profile))
        complete = [e for e in document["traceEvents"] if e["ph"] == "X"]
        assert len(complete) == len(profile.records)

    def test_trace_timestamps_in_microseconds(self, profile):
        import json

        from repro.viz import to_chrome_trace

        document = json.loads(to_chrome_trace(profile))
        span_us = (profile.finish_time - profile.submit_time) * 1e6
        for event in document["traceEvents"]:
            if event["ph"] == "X":
                assert 0 <= event["ts"] <= span_us + 1e-6
                assert event["dur"] >= 0

    def test_trace_rejects_unfinished_profile(self, profile):
        from repro.viz import to_chrome_trace

        profile.finish_time = None
        import pytest as _pytest

        with _pytest.raises(ValueError):
            to_chrome_trace(profile)

    def test_trace_categorizes_kinds(self, profile):
        import json

        from repro.viz import to_chrome_trace

        document = json.loads(to_chrome_trace(profile))
        categories = {e.get("cat") for e in document["traceEvents"] if e["ph"] == "X"}
        assert "filter" in categories
