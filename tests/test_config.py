"""Configuration objects: machines, noise, simulation config."""

from __future__ import annotations

import pytest

from repro.config import (
    NOISY,
    QUIET,
    MachineSpec,
    NoiseConfig,
    SimulationConfig,
    laptop_machine,
    two_socket_machine,
)


class TestMachineSpecValidation:
    def test_rejects_no_cores(self):
        with pytest.raises(ValueError):
            MachineSpec(
                name="x", sockets=0, cores_per_socket=8, threads_per_core=2,
                ghz=2.0, l1_kb=32, l2_kb=256, l3_mb=20, memory_gb=64,
                mem_bandwidth_gbps=40.0,
            )

    def test_rejects_bad_hyperthread_yield(self):
        with pytest.raises(ValueError):
            MachineSpec(
                name="x", sockets=1, cores_per_socket=4, threads_per_core=2,
                ghz=2.0, l1_kb=32, l2_kb=256, l3_mb=20, memory_gb=64,
                mem_bandwidth_gbps=40.0, hyperthread_yield=0.9,
            )

    def test_rejects_bad_numa_factor(self):
        with pytest.raises(ValueError):
            MachineSpec(
                name="x", sockets=1, cores_per_socket=4, threads_per_core=2,
                ghz=2.0, l1_kb=32, l2_kb=256, l3_mb=20, memory_gb=64,
                mem_bandwidth_gbps=40.0, numa_remote_factor=0.0,
            )

    def test_describe_mentions_threads(self):
        text = two_socket_machine().describe()
        assert "32 threads" in text
        assert "20 MB" in text

    def test_derived_quantities(self):
        spec = two_socket_machine()
        assert spec.cycles_per_second == 2e9
        assert spec.l3_bytes == 20 * 1024 * 1024


class TestNoiseConfig:
    def test_quiet_disabled(self):
        assert not QUIET.enabled

    def test_noisy_enabled(self):
        assert NOISY.enabled

    def test_jitter_only_enabled(self):
        assert NoiseConfig(jitter=0.1).enabled

    def test_peak_without_magnitude_disabled(self):
        assert not NoiseConfig(peak_probability=0.5).enabled

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            NoiseConfig(jitter=-1.0)

    def test_probability_over_one_rejected(self):
        with pytest.raises(ValueError):
            NoiseConfig(peak_probability=1.5)


class TestSimulationConfig:
    def test_defaults(self):
        config = SimulationConfig()
        assert config.machine.hardware_threads == 32
        assert config.effective_threads == 32

    def test_effective_threads_capped_by_machine(self):
        config = SimulationConfig(machine=laptop_machine(8), max_threads=100)
        assert config.effective_threads == 8

    def test_with_helpers_return_new_objects(self):
        base = SimulationConfig()
        assert base.with_threads(4).effective_threads == 4
        assert base.with_seed(9).seed == 9
        assert base.with_noise(NOISY).noise is NOISY
        assert base.with_machine(laptop_machine(4)).machine.hardware_threads == 4
        assert base.effective_threads == 32  # unchanged

    def test_invalid_data_scale(self):
        with pytest.raises(ValueError):
            SimulationConfig(data_scale=0)

    def test_invalid_max_threads(self):
        with pytest.raises(ValueError):
            SimulationConfig(max_threads=0)

    def test_rng_deterministic(self):
        config = SimulationConfig(seed=5)
        assert config.rng().random() == config.rng().random()
