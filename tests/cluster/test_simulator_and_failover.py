"""Cluster execution: scaling, network accounting, metrics, failover.

The nodes=1 byte-identity and the workers/backend invariance live in
``tests/integration/test_determinism_matrix.py``; here we pin the
*cluster-specific* physics -- shared-nothing speedup, the wire cost of
a paid placement move, per-node observability labels -- and the
retry-on-replica resilience loop end to end.
"""

from __future__ import annotations

import pytest

from repro.chaos.faults import FaultPlan
from repro.cluster import (
    ClusterSimulator,
    ClusterSpec,
    ScaleoutWorkload,
    cluster_execute,
    execute_with_failover,
    move_shard,
)
from repro.config import SimulationConfig, laptop_machine
from repro.errors import ClusterError
from repro.observe import Observer


@pytest.fixture(scope="module")
def workload():
    return ScaleoutWorkload(tuples_m=10)


def one_node_failure_plan() -> FaultPlan:
    return FaultPlan(
        operator_exception_rate=0.1,
        straggler_rate=0.0,
        mem_pressure_rate=0.0,
        disconnect_rate=0.0,
        max_faults=1,
    )


class TestScaling:
    def test_four_nodes_clear_the_acceptance_bar(self, workload):
        times = {}
        for nodes in (1, 4):
            cluster = workload.cluster(nodes, threads=2)
            result = cluster_execute(
                workload.plan(workload.sharded(nodes)),
                cluster,
                workload.sim_config(cluster),
            )
            times[nodes] = result.response_time
        assert times[1] / times[4] > 1.8

    def test_values_identical_at_any_node_count(self, workload):
        values = set()
        for nodes in (1, 2, 3, 4):
            cluster = workload.cluster(nodes, threads=2)
            result = cluster_execute(
                workload.plan(workload.sharded(nodes)),
                cluster,
                workload.sim_config(cluster),
            )
            values.add(int(result.outputs[0].value))
        assert len(values) == 1

    def test_repeat_run_bit_identical(self, workload):
        cluster = workload.cluster(3, threads=2)

        def run():
            return cluster_execute(
                workload.plan(workload.sharded(3)),
                cluster,
                workload.sim_config(cluster),
            )

        first, second = run(), run()
        assert first.response_time == second.response_time
        assert int(first.outputs[0].value) == int(second.outputs[0].value)


class TestNetworkAccounting:
    def test_paid_move_costs_wire_time(self, workload):
        cluster = workload.cluster(3, threads=2)
        config = workload.sim_config(cluster)
        sharded = workload.sharded(3)
        shard = sharded.shard_map.shards[0]
        baseline = cluster_execute(
            workload.plan(sharded), cluster, config
        ).response_time

        free = workload.plan(sharded)
        assert move_shard(free, shard, shard.replica) == "placement-replica"
        free_t = cluster_execute(free, cluster, config).response_time

        outside = next(
            n for n in range(3) if n not in shard.holders()
        )
        paid = workload.plan(sharded)
        assert move_shard(paid, shard, outside) == "placement-move"
        paid_t = cluster_execute(paid, cluster, config).response_time

        # The exchange's bytes flow through the destination's NIC: a
        # paid move must cost strictly more than re-homing onto the
        # replica, which costs nothing but a different queue.
        assert paid_t > free_t
        assert paid_t > baseline

    def test_moves_preserve_the_value(self, workload):
        cluster = workload.cluster(3, threads=2)
        config = workload.sim_config(cluster)
        sharded = workload.sharded(3)
        shard = sharded.shard_map.shards[0]
        expected = int(
            cluster_execute(workload.plan(sharded), cluster, config)
            .outputs[0]
            .value
        )
        for dst in range(3):
            plan = workload.plan(sharded)
            move_shard(plan, shard, dst)
            moved = cluster_execute(plan, cluster, config)
            assert int(moved.outputs[0].value) == expected

    def test_node_metrics_and_span_attrs(self, workload):
        cluster = workload.cluster(3, threads=2)
        config = workload.sim_config(cluster)
        sharded = workload.sharded(3)
        plan = workload.plan(sharded)
        shard = sharded.shard_map.shards[0]
        outside = next(n for n in range(3) if n not in shard.holders())
        move_shard(plan, shard, outside)
        observer = Observer()
        cluster_execute(plan, cluster, config, trace=observer)
        observer.finish()
        metrics = observer.metrics.collect()
        tasks = {
            k: v
            for k, v in metrics.items()
            if k.startswith("repro_cluster_node_tasks_total")
        }
        assert any('node="n0"' in k for k in tasks)
        assert sum(tasks.values()) > 0
        net = {
            k: v
            for k, v in metrics.items()
            if k.startswith("repro_cluster_net_bytes_total")
        }
        assert any(f'node="n{outside}"' in k for k in net)
        assert sum(net.values()) > 0
        # Operator spans carry their node id (an integer attribute; the
        # metric labels use the "n{k}" form).
        nodes_seen = {
            span.attrs.get("node")
            for span in observer.tracer.spans
            if span.attrs.get("node") is not None
        }
        assert nodes_seen >= {0, outside}


class TestValidation:
    def test_config_must_describe_one_node(self, workload):
        cluster = workload.cluster(2, threads=2)
        wrong = SimulationConfig(machine=laptop_machine(16))
        with pytest.raises(ClusterError, match="per-node spec"):
            ClusterSimulator(cluster, wrong)

    def test_executor_defaults_config_to_the_node(self, workload):
        cluster = ClusterSpec(node=workload.node_machine(2), nodes=2)
        result = cluster_execute(
            workload.plan(workload.sharded(2)), cluster
        )
        assert result.response_time > 0


class TestFailover:
    def test_node_failure_survived_deterministically(self, workload):
        cluster = workload.cluster(3, threads=2)
        config = workload.sim_config(cluster)
        shard_map = workload.sharded(3).shard_map
        clean = cluster_execute(
            workload.plan_for_map(shard_map), cluster, config
        )

        def survive():
            return execute_with_failover(
                workload.plan_for_map,
                shard_map,
                cluster,
                config,
                faults=one_node_failure_plan(),
            )

        first, second = survive(), survive()
        assert first.attempts == 2
        assert len(first.failed_nodes) == 1
        assert first.attempts == second.attempts
        assert first.failed_nodes == second.failed_nodes
        assert int(first.result.outputs[0].value) == int(
            clean.outputs[0].value
        )
        assert (
            first.result.response_time == second.result.response_time
        )

    def test_surviving_map_stripped_of_dead_node(self, workload):
        cluster = workload.cluster(3, threads=2)
        config = workload.sim_config(cluster)
        outcome = execute_with_failover(
            workload.plan_for_map,
            workload.sharded(3).shard_map,
            cluster,
            config,
            faults=one_node_failure_plan(),
        )
        (dead,) = outcome.failed_nodes
        for shard in outcome.shard_map.shards:
            assert dead not in shard.holders()

    def test_failover_budget_exhaustion_raises(self, workload):
        cluster = workload.cluster(3, threads=2)
        config = workload.sim_config(cluster)
        with pytest.raises(ClusterError, match="failover"):
            execute_with_failover(
                workload.plan_for_map,
                workload.sharded(3).shard_map,
                cluster,
                config,
                faults=one_node_failure_plan(),
                max_failovers=0,
            )

    def test_clean_run_needs_no_failover(self, workload):
        cluster = workload.cluster(3, threads=2)
        config = workload.sim_config(cluster)
        outcome = execute_with_failover(
            workload.plan_for_map,
            workload.sharded(3).shard_map,
            cluster,
            config,
        )
        assert outcome.attempts == 1
        assert outcome.failed_nodes == ()
