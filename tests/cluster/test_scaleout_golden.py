"""Golden pinning + gates for the scale-out benchmark report.

The quick-mode report is a pure function of the workload seed, so its
serialized form is pinned byte for byte -- the clean sections and the
CHAOS_LIGHT-style node-failure section separately.  Run
``pytest tests/cluster --regen-golden`` after an *intentional* change
to the cluster model and review the fixture diff like code.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.bench.scaleout import (
    SCHEMA,
    check_scaleout_report,
    format_scaleout_report,
    run_scaleout,
)
from repro.errors import ReproError
from repro.viz.scaleout import render_scaleout_figure

GOLDEN_DIR = Path(__file__).parent / "golden"


def _check_golden(name: str, payload: str, regen: bool) -> None:
    path = GOLDEN_DIR / name
    if regen:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(payload + "\n")
        pytest.skip(f"regenerated {path.name}")
    assert path.exists(), (
        f"golden fixture {path} is missing -- run "
        "pytest tests/cluster --regen-golden"
    )
    assert payload + "\n" == path.read_text(), (
        f"scaleout report diverged from {path.name}; if the change is "
        "intentional, regenerate with --regen-golden and review the diff"
    )


@pytest.fixture(scope="module")
def quick_report():
    return run_scaleout(quick=True)


class TestGolden:
    def test_quick_clean_golden(self, quick_report, regen_golden):
        clean = {k: v for k, v in quick_report.items() if k != "chaos"}
        _check_golden(
            "scaleout_quick_clean.json",
            json.dumps(clean, indent=2, sort_keys=True),
            regen_golden,
        )

    def test_quick_chaos_golden(self, quick_report, regen_golden):
        _check_golden(
            "scaleout_quick_chaos.json",
            json.dumps(quick_report["chaos"], indent=2, sort_keys=True),
            regen_golden,
        )


class TestReportShape:
    def test_schema_and_sweep(self, quick_report):
        assert quick_report["schema"] == SCHEMA
        assert [row["nodes"] for row in quick_report["sweep"]] == [1, 2, 4]
        assert quick_report["sweep"][0]["speedup"] == 1.0
        # The distributed aggregate is bit-exact at every node count.
        assert len({row["value"] for row in quick_report["sweep"]}) == 1

    def test_acceptance_gates_pass(self, quick_report):
        check_scaleout_report(
            quick_report, min_speedup=1.8, max_skew_gap=1.1
        )

    def test_skew_section_documents_the_straggler(self, quick_report):
        skew = quick_report["skew"]
        assert skew["gap_before"] > 1.8
        assert skew["gap_after"] < 1.1
        assert skew["placement_moves"]
        assert skew["value_preserved"]

    def test_chaos_section_survives_identically(self, quick_report):
        chaos = quick_report["chaos"]
        assert chaos["attempts"] >= 2
        assert chaos["failed_nodes"]
        assert chaos["value_identical"]

    def test_gates_fail_loudly(self, quick_report):
        with pytest.raises(ReproError, match="below the required"):
            check_scaleout_report(quick_report, min_speedup=1000.0)
        with pytest.raises(ReproError, match="straggler gap"):
            check_scaleout_report(quick_report, max_skew_gap=0.5)

    def test_bad_node_counts_rejected(self):
        with pytest.raises(ReproError, match=">= 1"):
            run_scaleout(quick=True, nodes=(0, 2))

    def test_format_mentions_every_section(self, quick_report):
        text = format_scaleout_report(quick_report)
        assert "speedup" in text
        assert "straggler gap" in text
        assert "value identical" in text

    def test_figure_renders_both_panels(self, quick_report):
        import xml.dom.minidom

        svg = render_scaleout_figure(quick_report)
        xml.dom.minidom.parseString(svg)
        assert "Speedup vs nodes" in svg
        assert "Straggler gap" in svg
