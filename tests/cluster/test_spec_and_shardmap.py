"""Cluster topology and shard-placement units.

The spec side pins the flattening identity (nodes == 1 *is* the node
machine; N nodes are N disjoint socket groups); the storage side pins
the partition-cover invariant of shard maps and the failover rules the
resilience layer leans on -- most importantly that a dead node is
stripped from every replica slot, so repeated failovers can never
promote a shard onto a node that died earlier.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import ClusterSpec, LinkSpec
from repro.config import laptop_machine
from repro.errors import ClusterError, StorageError
from repro.storage import LNG, Table
from repro.storage.sharded import Shard, ShardMap, ShardedTable, range_shard


class TestClusterSpec:
    def test_single_node_flattens_to_the_node_itself(self):
        node = laptop_machine(8)
        assert ClusterSpec(node=node, nodes=1).flatten() is node

    def test_flatten_multiplies_sockets_and_memory(self):
        node = laptop_machine(8)
        flat = ClusterSpec(node=node, nodes=4).flatten()
        assert flat.sockets == node.sockets * 4
        assert flat.memory_gb == node.memory_gb * 4
        # Per-core compute and per-socket bandwidth are unchanged: a
        # node inside the cluster is exactly the standalone machine.
        assert flat.hardware_threads == node.hardware_threads * 4
        assert flat.mem_bandwidth_gbps == node.mem_bandwidth_gbps

    def test_socket_groups_partition_the_cluster(self):
        cluster = ClusterSpec(node=laptop_machine(8), nodes=3)
        seen = []
        for node_id in range(3):
            for socket_id in cluster.sockets_of(node_id):
                assert cluster.node_of_socket(socket_id) == node_id
                seen.append(socket_id)
        assert seen == list(range(cluster.flatten().sockets))

    def test_total_threads(self):
        cluster = ClusterSpec(node=laptop_machine(4), nodes=3)
        assert cluster.total_threads == 12

    def test_validation(self):
        with pytest.raises(ClusterError, match=">= 1 node"):
            ClusterSpec(nodes=0)
        with pytest.raises(ClusterError, match="node 5"):
            ClusterSpec(nodes=2).sockets_of(5)
        with pytest.raises(ClusterError, match="latency"):
            LinkSpec(latency_s=-1.0)
        with pytest.raises(ClusterError, match="bandwidth"):
            LinkSpec(bandwidth_gbps=0.0)


class TestRangeShard:
    def test_uniform_tiles_exactly(self):
        shard_map = range_shard(1000, 4, shards_per_node=2)
        bounds = shard_map.bounds()
        assert bounds[0][0] == 0 and bounds[-1][1] == 1000
        for (_, hi), (lo, _) in zip(bounds, bounds[1:]):
            assert hi == lo
        assert shard_map.skew() == pytest.approx(1.0)

    def test_round_robin_placement_with_replicas(self):
        shard_map = range_shard(100, 3)
        assert [s.primary for s in shard_map.shards] == [0, 1, 2]
        assert [s.replica for s in shard_map.shards] == [1, 2, 0]
        for shard in shard_map.shards:
            assert shard.holders() == (shard.primary, shard.replica)

    def test_single_node_has_no_replica(self):
        (shard,) = range_shard(100, 1).shards
        assert shard.holders() == (0,)

    def test_weights_skew_sizes_not_placement(self):
        shard_map = range_shard(1000, 2, weights=(3.0, 1.0))
        assert len(shard_map.shards[0]) == 750
        assert len(shard_map.shards[1]) == 250
        assert shard_map.skew() == pytest.approx(1.5)

    def test_weight_validation(self):
        with pytest.raises(StorageError, match="weights"):
            range_shard(100, 2, weights=(1.0,))
        with pytest.raises(StorageError, match="non-negative"):
            range_shard(100, 2, weights=(1.0, -1.0))

    def test_node_of(self):
        shard_map = range_shard(100, 2)
        assert shard_map.node_of(0) == 0
        assert shard_map.node_of(99) == 1
        with pytest.raises(StorageError, match="outside"):
            shard_map.node_of(100)

    def test_map_rejects_gap_and_bad_node(self):
        with pytest.raises(StorageError):
            ShardMap(
                rows=10,
                nodes=2,
                shards=(
                    Shard(0, 0, 4, 0, 1),
                    Shard(1, 5, 10, 1, 0),  # gap at [4, 5)
                ),
            )
        with pytest.raises(StorageError, match="node 7"):
            ShardMap(
                rows=10, nodes=2, shards=(Shard(0, 0, 10, 0, 7),)
            )


class TestFailover:
    def test_promotes_dead_nodes_shards(self):
        shard_map = range_shard(90, 3)
        survived = shard_map.failover(0)
        promoted = survived.shards[0]
        assert promoted.primary == 1  # was 0, replica was 1
        assert promoted.replica == 1  # no second copy anymore
        # Boundaries never move on failover.
        assert survived.bounds() == shard_map.bounds()

    def test_strips_dead_node_from_replica_slots(self):
        shard_map = range_shard(90, 3)
        survived = shard_map.failover(0)
        for shard in survived.shards:
            assert 0 not in shard.holders()

    def test_repeated_failovers_never_use_dead_nodes(self):
        # Kill 3 then 1: every shard still has a copy on 0 or 2, and no
        # holder may name a dead node (3's replica slot on shard 2 was
        # stripped in the first failover, 1's in the second).
        shard_map = range_shard(120, 4)
        survived = shard_map.failover(3).failover(1)
        for shard in survived.shards:
            for node in shard.holders():
                assert node in (0, 2)

    def test_orphaned_shard_raises(self):
        # Shard 0 lives on nodes {0, 1}; kill both and the second
        # failover must refuse rather than invent a copy.
        shard_map = range_shard(90, 3).failover(1)
        with pytest.raises(StorageError, match="no replica outside"):
            shard_map.failover(0)


class TestShardedTable:
    def _table(self, n=100):
        return Table.from_arrays(
            "t", {"v": (LNG, np.arange(n, dtype=np.int64))}
        )

    def test_create_matches_table_rows(self):
        sharded = ShardedTable.create(self._table(100), 4)
        assert sharded.shard_map.rows == 100
        assert len(sharded.shard_map) == 4

    def test_rejects_mismatched_map(self):
        with pytest.raises(StorageError, match="covers 90"):
            ShardedTable(self._table(100), range_shard(90, 2))
