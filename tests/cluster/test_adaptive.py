"""Placement mutations: the skew straggler gap and how the loop closes it.

The scenario is the documented one from ``docs/scaleout.md``: placement
skew as shard *count* (node 0 hoards equal-size shards; with two
threads per node the hoarded serial chains queue in waves), because a
node's finish time is lower-bounded by its longest serial chain --
oversized shards would make a straggler no placement move can fix.
"""

from __future__ import annotations

import pytest

from repro.cluster import (
    ClusterAdaptiveParallelizer,
    ClusterMutator,
    ScaleoutWorkload,
    cluster_execute,
)
from repro.config import SimulationConfig, laptop_machine
from repro.core.mutation import PlanMutator
from repro.errors import ClusterError

NODES = 4


@pytest.fixture(scope="module")
def workload():
    return ScaleoutWorkload(tuples_m=10)


@pytest.fixture(scope="module")
def cluster(workload):
    return workload.cluster(NODES, threads=2)


@pytest.fixture(scope="module")
def skew_outcome(workload, cluster):
    """One adaptive optimization of the skewed map, shared by tests."""
    config = workload.sim_config(cluster)
    skewed = workload.sharded(NODES, skewed=True)
    skewed_run = cluster_execute(workload.plan(skewed), cluster, config)
    adaptive = ClusterAdaptiveParallelizer(
        cluster, skewed.shard_map, config
    )
    outcome = adaptive.optimize(workload.plan(skewed))
    adapted_run = cluster_execute(outcome.best_plan, cluster, config)
    balanced = workload.sharded(NODES, shards_per_node=2)
    balanced_run = cluster_execute(
        workload.plan(balanced), cluster, config
    )
    return {
        "outcome": outcome,
        "skewed": skewed_run,
        "adapted": adapted_run,
        "balanced": balanced_run,
        "map": skewed.shard_map,
    }


class TestSkewScenario:
    def test_skewed_map_manufactures_a_straggler(self, skew_outcome):
        gap = (
            skew_outcome["skewed"].response_time
            / skew_outcome["balanced"].response_time
        )
        assert skew_outcome["map"].skew() > 2.0
        assert gap > 1.8

    def test_placement_mutations_close_the_gap(self, skew_outcome):
        gap_after = (
            skew_outcome["adapted"].response_time
            / skew_outcome["balanced"].response_time
        )
        assert gap_after < 1.1

    def test_moves_are_free_replica_rehomes(self, skew_outcome):
        moves = [
            m
            for m in skew_outcome["outcome"].mutations
            if m.scheme.startswith("placement")
        ]
        assert moves, "no placement mutation was accepted"
        # The skewed map spreads replicas across the cool nodes, so the
        # whole rebalance proceeds without paying the wire.
        assert all(m.scheme == "placement-replica" for m in moves)

    def test_each_shard_moved_at_most_once(self, skew_outcome):
        described = [
            m.description
            for m in skew_outcome["outcome"].mutations
            if m.scheme.startswith("placement")
        ]
        shards = [d.split(" ")[0] for d in described]
        assert len(shards) == len(set(shards))

    def test_value_bit_identical_through_adaptation(self, skew_outcome):
        assert int(skew_outcome["adapted"].outputs[0].value) == int(
            skew_outcome["skewed"].outputs[0].value
        )


class TestBalancedStaysPut:
    def test_no_placement_moves_below_threshold(self, workload, cluster):
        config = workload.sim_config(cluster)
        balanced = workload.sharded(NODES, shards_per_node=2)
        adaptive = ClusterAdaptiveParallelizer(
            cluster, balanced.shard_map, config
        )
        outcome = adaptive.optimize(workload.plan(balanced))
        assert not [
            m
            for m in outcome.mutations
            if m.scheme.startswith("placement")
        ]


class TestMutatorUnits:
    def test_threshold_validation(self, workload, cluster):
        sharded = workload.sharded(NODES)
        plan = workload.plan(sharded)
        with pytest.raises(ClusterError, match="threshold"):
            ClusterMutator(
                plan,
                PlanMutator(plan),
                cluster,
                sharded.shard_map,
                imbalance_threshold=1.0,
            )

    def test_node_busy_sums_per_node(self, workload, cluster):
        config = workload.sim_config(cluster)
        sharded = workload.sharded(NODES)
        plan = workload.plan(sharded)
        profile = cluster_execute(plan, cluster, config).profile
        mutator = ClusterMutator(
            plan, PlanMutator(plan), cluster, sharded.shard_map
        )
        busy = mutator.node_busy(profile)
        assert len(busy) == NODES
        assert all(b > 0 for b in busy)
        assert sum(busy) == pytest.approx(
            sum(r.end - r.start for r in profile.records)
        )


class TestDriverValidation:
    def test_config_machine_must_match_node(self, workload, cluster):
        sharded = workload.sharded(NODES)
        with pytest.raises(ClusterError, match="cluster.node"):
            ClusterAdaptiveParallelizer(
                cluster,
                sharded.shard_map,
                SimulationConfig(machine=laptop_machine(16)),
            )

    def test_convergence_budget_defaults_to_cluster_threads(
        self, workload, cluster
    ):
        sharded = workload.sharded(NODES)
        adaptive = ClusterAdaptiveParallelizer(
            cluster, sharded.shard_map, workload.sim_config(cluster)
        )
        assert (
            adaptive.convergence.number_of_cores == cluster.total_threads
        )
