"""Sharded plan construction, placement moves, and the shard lineage pass.

Everything the adaptive layer relies on structurally: sparse placements
resolve by first-input inheritance, ``move_shard`` picks the free
(replica) regime exactly when the destination holds a copy, and the
``ShardLineagePass`` analyzer stays inert on placement-free plans while
catching cross-node edges and gather unions that double-count rows.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import (
    NET_KINDS,
    move_shard,
    resolve_placements,
    shard_label,
    shard_scans,
    sharded_aggregate_plan,
    sharded_select_plan,
)
from repro.errors import ClusterError
from repro.operators import Aggregate, Gather, RangePredicate, Scan, Select
from repro.plan.analysis import ShardLineagePass, analyze_plan
from repro.plan.graph import Plan
from repro.storage import LNG, Table
from repro.storage.sharded import ShardedTable


@pytest.fixture()
def table():
    rng = np.random.default_rng(7)
    return Table.from_arrays(
        "t",
        {
            "k": (LNG, rng.integers(0, 1000, 600)),
            "v": (LNG, rng.integers(0, 100, 600)),
        },
    )


@pytest.fixture()
def sharded(table):
    return ShardedTable.create(table, 3)


def agg_plan(sharded):
    return sharded_aggregate_plan(
        sharded, value="v", func="sum", filter_on="k", lo=0, hi=500
    )


class TestShardedPlans:
    def test_aggregate_plan_analyzes_clean(self, sharded):
        report = analyze_plan(agg_plan(sharded))
        assert not report.has_errors, report.format()

    def test_select_plan_analyzes_clean(self, sharded):
        plan = sharded_select_plan(sharded, filter_on="k", lo=0, hi=500)
        report = analyze_plan(plan)
        assert not report.has_errors, report.format()

    def test_scans_pinned_to_primaries(self, sharded):
        plan = agg_plan(sharded)
        for shard in sharded.shard_map.shards:
            for scan in shard_scans(plan, shard.index):
                assert scan.op.placement == shard.primary
                assert (scan.op.lo, scan.op.hi) == (shard.lo, shard.hi)

    def test_placements_resolve_by_inheritance(self, sharded):
        plan = agg_plan(sharded)
        placements = resolve_placements(plan, sharded.shard_map.nodes)
        for shard in sharded.shard_map.shards:
            label = shard_label(shard.index)
            for node in plan.nodes():
                if node.label == label and node.kind != "exchange":
                    assert placements[node.nid] == shard.primary
        # The gather and the final merge land on the coordinator.
        for out in plan.outputs:
            assert placements[out.nid] == 0

    def test_out_of_range_placement_rejected(self, sharded):
        plan = agg_plan(sharded)
        shard_scans(plan, 0)[0].op.placement = 9
        with pytest.raises(ClusterError, match="9"):
            resolve_placements(plan, sharded.shard_map.nodes)


class TestMoveShard:
    def test_replica_move_is_free(self, sharded):
        plan = agg_plan(sharded)
        shard = sharded.shard_map.shards[0]
        scheme = move_shard(plan, shard, shard.replica)
        assert scheme == "placement-replica"
        # No exchange spliced; the scans simply re-homed.
        assert all(n.kind != "exchange" for n in plan.nodes())
        for scan in shard_scans(plan, shard.index):
            assert scan.op.placement == shard.replica
        assert not analyze_plan(plan).has_errors

    def test_non_holder_move_splices_exchange(self, sharded):
        plan = agg_plan(sharded)
        shard = sharded.shard_map.shards[0]
        dst = next(
            n for n in range(sharded.shard_map.nodes)
            if n not in shard.holders()
        )
        scheme = move_shard(plan, shard, dst)
        assert scheme == "placement-move"
        exchanges = [n for n in plan.nodes() if n.kind == "exchange"]
        # One exchange per scan of the shard, targeted at dst, and the
        # data stays where it lives.
        assert len(exchanges) == len(shard_scans(plan, shard.index))
        for exchange in exchanges:
            assert exchange.op.placement == dst
            assert exchange.inputs[0].op.placement == shard.primary
        assert not analyze_plan(plan).has_errors, analyze_plan(plan).format()

    def test_second_move_retargets_existing_exchange(self, sharded):
        plan = agg_plan(sharded)
        shard = sharded.shard_map.shards[0]
        holders = shard.holders()
        outside = [
            n for n in range(sharded.shard_map.nodes) if n not in holders
        ]
        move_shard(plan, shard, outside[0])
        before = len([n for n in plan.nodes() if n.kind == "exchange"])
        move_shard(plan, shard, holders[-1])
        after = [n for n in plan.nodes() if n.kind == "exchange"]
        # Back onto a holder: the exchanges retarget, none are added.
        assert len(after) == before
        for exchange in after:
            assert exchange.op.placement == holders[-1]

    def test_unknown_shard_rejected(self, sharded):
        plan = agg_plan(sharded)
        ghost = sharded.shard_map.shards[0]
        object.__setattr__(ghost, "index", 99)
        with pytest.raises(ClusterError, match="no scans"):
            move_shard(plan, ghost, 1)


class TestShardLineagePass:
    def test_inert_on_placement_free_plans(self, table):
        plan = Plan()
        scan = plan.add(Scan(table.column("v"), 0, len(table)))
        plan.set_outputs([plan.add(Aggregate("sum"), [scan])])
        report = analyze_plan(plan, passes=[ShardLineagePass()])
        assert not report.diagnostics

    def test_cross_node_edge_flagged(self, sharded):
        plan = agg_plan(sharded)
        # The coordinator-side merge suddenly claims to run on node 2
        # while its gather input stays on node 0: a network edge with no
        # exchange-family operator to carry it.
        plan.outputs[0].op.placement = 2
        report = analyze_plan(plan)
        assert any(
            d.rule == "cluster.cross-node-edge" and d.severity == "error"
            for d in report.diagnostics
        )

    def test_gather_overlap_flagged(self, sharded):
        plan = sharded_select_plan(sharded, filter_on="k", lo=0, hi=500)
        gather = plan.outputs[0]
        scan = gather.inputs[0].inputs[0]
        # Stretch shard 0's scan into shard 1's range: the gathered
        # union now double-counts the overlapped rows.
        scan.op.hi = scan.op.hi + 50
        report = analyze_plan(plan)
        assert any(
            d.rule == "cluster.gather-overlap" and d.severity == "error"
            for d in report.diagnostics
        )

    def test_gather_gap_warned(self, sharded):
        plan = sharded_select_plan(sharded, filter_on="k", lo=0, hi=500)
        gather = plan.outputs[0]
        scan = gather.inputs[0].inputs[0]
        scan.op.hi = scan.op.hi - 50  # drop the tail of shard 0
        report = analyze_plan(plan)
        assert any(
            d.rule == "cluster.gather-gap" and d.severity == "warn"
            for d in report.diagnostics
        )

    def test_net_kinds_cover_the_exchange_family(self, sharded):
        plan = agg_plan(sharded)
        move_shard(
            plan,
            sharded.shard_map.shards[0],
            next(
                n for n in range(3)
                if n not in sharded.shard_map.shards[0].holders()
            ),
        )
        kinds = {n.kind for n in plan.nodes()}
        assert "exchange" in kinds and "gather" in kinds
        assert kinds & set(NET_KINDS) == {"exchange", "gather"}
