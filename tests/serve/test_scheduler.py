"""Unit behaviour of the weighted-fair admission scheduler.

The scheduler is clock-free and pure, so every discipline -- fair
ordering, caps, queue limits, idle-credit reset -- is pinned here with
hand-built sequences; the hypothesis suite generalizes them.
"""

from __future__ import annotations

import pytest

from repro.errors import ServeError
from repro.serve import FairScheduler, TenantDirectory, TenantSpec


def _directory(**weights: int) -> TenantDirectory:
    return TenantDirectory(
        tuple(
            TenantSpec(name, weight=w, queue_limit=1000)
            for name, w in weights.items()
        )
    )


def _drain_counts(sched: FairScheduler, n: int) -> dict[str, int]:
    """Admit ``n`` items, releasing immediately (no cap pressure)."""
    counts: dict[str, int] = {}
    for _ in range(n):
        spec, _item = sched.next_ready()
        counts[spec.name] = counts.get(spec.name, 0) + 1
        sched.release(spec.name)
    return counts


class TestFairOrdering:
    def test_weighted_share_under_backlog(self):
        sched = FairScheduler(_directory(a=3, b=2, c=1), max_in_flight=100)
        for name in ("a", "b", "c"):
            for i in range(120):
                assert sched.offer(name, (name, i))
        counts = _drain_counts(sched, 120)
        assert counts == {"a": 60, "b": 40, "c": 20}

    def test_fifo_within_tenant(self):
        sched = FairScheduler(_directory(a=1), max_in_flight=10)
        for i in range(5):
            sched.offer("a", i)
        admitted = [sched.next_ready()[1] for _ in range(5)]
        assert admitted == [0, 1, 2, 3, 4]

    def test_idle_tenant_earns_no_credit(self):
        # b idles while a consumes service; when b wakes it must share
        # fairly from *now*, not burst through its banked vtime.
        sched = FairScheduler(_directory(a=1, b=1), max_in_flight=100)
        for i in range(50):
            sched.offer("a", i)
        _drain_counts(sched, 20)
        for i in range(50):
            sched.offer("b", i)
        counts = _drain_counts(sched, 20)
        assert abs(counts["a"] - counts["b"]) <= 1

    def test_ties_break_by_name(self):
        sched = FairScheduler(_directory(b=1, a=1), max_in_flight=10)
        sched.offer("b", "x")
        sched.offer("a", "y")
        spec, _ = sched.next_ready()
        assert spec.name == "a"


class TestCaps:
    def test_queue_limit_rejects(self):
        directory = TenantDirectory((TenantSpec("t", queue_limit=2),))
        sched = FairScheduler(directory, max_in_flight=1)
        assert sched.offer("t", 1) and sched.offer("t", 2)
        assert not sched.offer("t", 3)
        stats = sched.stats("t")
        assert stats.offered == 3 and stats.rejected == 1

    def test_tenant_in_flight_cap(self):
        directory = TenantDirectory(
            (TenantSpec("a", max_in_flight=1), TenantSpec("b"))
        )
        sched = FairScheduler(directory, max_in_flight=10)
        sched.offer("a", 1)
        sched.offer("a", 2)
        sched.offer("b", 3)
        names = [sched.next_ready()[0].name, sched.next_ready()[0].name]
        assert names == ["a", "b"]  # a's second item blocked by its cap
        assert sched.next_ready() is None
        sched.release("a")
        assert sched.next_ready()[0].name == "a"

    def test_service_wide_cap(self):
        sched = FairScheduler(_directory(a=1), max_in_flight=2)
        for i in range(4):
            sched.offer("a", i)
        assert len(sched.pump()) == 2
        assert sched.next_ready() is None
        sched.release("a")
        assert sched.next_ready() is not None

    def test_invalid_cap(self):
        with pytest.raises(ServeError):
            FairScheduler(_directory(a=1), max_in_flight=0)


class TestBookkeeping:
    def test_release_without_admission_raises(self):
        sched = FairScheduler(_directory(a=1), max_in_flight=2)
        with pytest.raises(ServeError, match="without matching admission"):
            sched.release("a")

    def test_unknown_tenant_raises(self):
        sched = FairScheduler(_directory(a=1), max_in_flight=2)
        with pytest.raises(ServeError, match="unknown tenant"):
            sched.offer("nope", 1)

    def test_drain_and_idle(self):
        sched = FairScheduler(_directory(a=1, b=2), max_in_flight=1)
        assert sched.idle
        sched.offer("a", 1)
        sched.offer("b", 2)
        sched.pump()
        assert not sched.idle
        leftovers = sched.drain()
        assert len(leftovers) == 1
        sched.release(
            "b" if leftovers[0][0].name == "a" else "a", completed=False
        )
        assert sched.idle

    def test_peaks_and_counters(self):
        sched = FairScheduler(_directory(a=1), max_in_flight=4)
        for i in range(3):
            sched.offer("a", i)
        sched.pump()
        stats = sched.stats("a")
        assert stats.peak_queue_depth == 3
        assert stats.peak_in_flight == 3
        assert stats.admitted == 3
        assert sched.peak_in_flight == 3
        for _ in range(3):
            sched.release("a")
        assert stats.completed == 3
        assert stats.as_dict()["offered"] == 3
