"""Tenant and SLO-class configuration: validation and parsing."""

from __future__ import annotations

import json

import pytest

from repro.errors import ServeError
from repro.serve import (
    BATCH,
    BUILTIN_CLASSES,
    INTERACTIVE,
    STANDARD,
    SloClass,
    TenantDirectory,
    TenantSpec,
    default_tenants,
    parse_tenants,
)


class TestSloClass:
    def test_builtin_tiers(self):
        assert set(BUILTIN_CLASSES) == {"interactive", "standard", "batch"}
        assert INTERACTIVE.p99_target < STANDARD.p99_target < BATCH.p99_target
        assert BATCH.timeout is None

    @pytest.mark.parametrize(
        "kw",
        [
            {"name": ""},
            {"p50_target": 0.0},
            {"p50_target": 2.0, "p99_target": 1.0},
            {"timeout": 0.0},
            {"max_retries": -1},
            {"default_weight": 0},
        ],
    )
    def test_validation(self, kw):
        base = {"name": "c", "p50_target": 0.1, "p99_target": 1.0}
        with pytest.raises(ServeError):
            SloClass(**{**base, **kw})


class TestTenantSpec:
    def test_effective_weight_falls_back_to_class(self):
        assert TenantSpec("t", slo=INTERACTIVE).effective_weight == 4
        assert TenantSpec("t", slo=INTERACTIVE, weight=9).effective_weight == 9

    @pytest.mark.parametrize(
        "kw",
        [
            {"name": ""},
            {"weight": -1},
            {"max_in_flight": 0},
            {"queue_limit": -1},
            {"max_threads": 0},
        ],
    )
    def test_validation(self, kw):
        base = {"name": "t"}
        with pytest.raises(ServeError):
            TenantSpec(**{**base, **kw})


class TestDirectory:
    def test_lookup_and_default(self):
        directory = default_tenants()
        assert len(directory) == 3
        assert directory.get("gold").slo is INTERACTIVE
        assert directory.default.name == "gold"
        assert [spec.name for spec in directory] == ["gold", "silver", "bronze"]

    def test_unknown_tenant_lists_known(self):
        with pytest.raises(ServeError, match="bronze, gold, silver"):
            default_tenants().get("nope")

    def test_rejects_duplicates_and_empty(self):
        with pytest.raises(ServeError, match="duplicate"):
            TenantDirectory((TenantSpec("a"), TenantSpec("a")))
        with pytest.raises(ServeError, match="at least one"):
            TenantDirectory(())


class TestParseTenants:
    def test_round_trip_with_custom_class(self):
        doc = {
            "classes": {"rt": {"p50_target": 0.1, "p99_target": 0.5, "timeout": 1.0}},
            "tenants": [
                {"name": "acme", "class": "rt", "weight": 3},
                {"name": "bulk", "class": "batch", "queue_limit": 16},
            ],
        }
        directory = parse_tenants(json.dumps(doc))
        acme = directory.get("acme")
        assert acme.slo.name == "rt" and acme.effective_weight == 3
        assert directory.get("bulk").slo is BATCH
        assert directory.get("bulk").queue_limit == 16

    def test_defaults_to_standard_class(self):
        directory = parse_tenants({"tenants": [{"name": "t"}]})
        assert directory.get("t").slo is STANDARD

    @pytest.mark.parametrize(
        "doc,match",
        [
            ("not json", "malformed"),
            (json.dumps([1]), "JSON object"),
            ({"tenants": []}, "non-empty"),
            ({"tenants": [{"name": "t", "class": "nope"}]}, "unknown SLO class"),
            ({"tenants": [{"name": "t", "bogus": 1}]}, "tenant entry"),
            ({"classes": {"c": {"p50_target": 1}}, "tenants": [{"name": "t"}]},
             "SLO class"),
        ],
    )
    def test_bad_documents(self, doc, match):
        with pytest.raises(ServeError, match=match):
            parse_tenants(doc)
