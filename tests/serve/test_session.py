"""Session lifecycle: the NEW -> READY -> CLOSED state machine."""

from __future__ import annotations

from repro.serve import Request, Session, default_tenants


def _session() -> Session:
    return Session(default_tenants())


class TestLifecycle:
    def test_hello_binds_tenant(self):
        session = _session()
        response = session.handle(Request(op="hello", tenant="silver", id=1))
        assert response.ok and response.type == "hello"
        assert response.body["tenant"] == "silver"
        assert response.body["slo_class"] == "standard"
        assert session.tenant.name == "silver"

    def test_hello_unknown_tenant(self):
        session = _session()
        response = session.handle(Request(op="hello", tenant="nope"))
        assert not response.ok and response.kind == "session"
        assert session.tenant is None

    def test_no_rebinding(self):
        session = _session()
        session.handle(Request(op="hello", tenant="gold"))
        response = session.handle(Request(op="hello", tenant="silver"))
        assert not response.ok and "already bound" in response.error
        assert session.tenant.name == "gold"

    def test_query_before_hello_is_session_error(self):
        session = _session()
        response = session.handle(Request(op="query", sql="SELECT 1 FROM t"))
        assert not response.ok and response.kind == "session"
        assert session.stats.errors == 1

    def test_admitted_query_returns_none(self):
        session = _session()
        session.handle(Request(op="hello", tenant="gold"))
        assert session.handle(Request(op="query", sql="SELECT 1 FROM t")) is None
        assert session.stats.queries == 1

    def test_ping_any_time(self):
        session = _session()
        assert session.handle(Request(op="ping", id=5)).type == "pong"
        session.handle(Request(op="hello", tenant="gold"))
        assert session.handle(Request(op="ping")).type == "pong"

    def test_goodbye_closes(self):
        session = _session()
        session.handle(Request(op="hello", tenant="gold"))
        response = session.handle(Request(op="goodbye", id=9))
        assert response.type == "goodbye" and session.closed
        after = session.handle(Request(op="ping"))
        assert not after.ok and after.kind == "session"

    def test_session_ids_are_unique(self):
        assert _session().session_id != _session().session_id


class TestCounters:
    def test_note_result(self):
        session = _session()
        session.handle(Request(op="hello", tenant="gold"))
        for _ in range(3):
            session.handle(Request(op="query", sql="SELECT 1 FROM t"))
        session.note_result(ok=True)
        session.note_result(ok=False)
        session.note_result(ok=False, rejected=True)
        assert session.stats.queries == 3
        assert session.stats.completed == 1
        assert session.stats.errors == 1
        assert session.stats.rejected == 1
