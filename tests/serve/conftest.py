"""Fixtures for the serving suite.

Socket tests always bind port 0 (the kernel picks a free port), so
parallel test runs never collide; ``server_runner`` owns the full
start/stop lifecycle so a failing test body cannot leak a listener or
an evaluation-pool worker.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.config import SimulationConfig, laptop_machine
from repro.serve import ReproServer
from repro.sql import plan_sql

#: Statements that plan against the shared ``small_catalog`` fixture.
COUNT_SQL = "SELECT COUNT(*) FROM facts"
SUM_SQL = "SELECT SUM(val) FROM facts WHERE qty < 25"
GROUP_SQL = "SELECT fk, COUNT(*) FROM facts GROUP BY fk ORDER BY fk"


@pytest.fixture()
def serve_config() -> SimulationConfig:
    """A small simulated machine, same shape the unit suites use."""
    return SimulationConfig(machine=laptop_machine(8), data_scale=100.0)


@pytest.fixture()
def serve_plans(small_catalog):
    return {
        "count": plan_sql(COUNT_SQL, small_catalog),
        "sum": plan_sql(SUM_SQL, small_catalog),
        "group": plan_sql(GROUP_SQL, small_catalog),
    }


class NdjsonClient:
    """A minimal test client for the NDJSON wire protocol."""

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self.reader = reader
        self.writer = writer

    @classmethod
    async def connect(cls, host: str, port: int) -> "NdjsonClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def send_raw(self, data: bytes) -> None:
        self.writer.write(data)
        await self.writer.drain()

    async def recv(self) -> dict:
        line = await self.reader.readline()
        assert line, "server closed the connection unexpectedly"
        return json.loads(line)

    async def call(self, **doc) -> dict:
        await self.send_raw(json.dumps(doc).encode() + b"\n")
        return await self.recv()

    async def closed_by_server(self) -> bool:
        return await self.reader.readline() == b""

    async def close(self) -> None:
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except ConnectionError:
            pass


@pytest.fixture()
def ndjson_client():
    return NdjsonClient


@pytest.fixture()
def server_runner(serve_config, small_catalog):
    """Run an async test body against a live server, then tear down.

    Usage::

        def test_x(server_runner):
            async def body(server):
                ...
            server_runner(body, workers=2, backend="thread")
    """

    def run(body, *, config=None, catalog=None, **server_kw):
        async def main():
            server = ReproServer(
                config if config is not None else serve_config,
                catalog if catalog is not None else small_catalog,
                **server_kw,
            )
            await server.start()
            try:
                return await body(server)
            finally:
                await server.stop()

        return asyncio.run(main())

    return run


async def http_get(host: str, port: int, path: str) -> tuple[int, str]:
    """One-shot HTTP GET; returns (status, body)."""
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(f"GET {path} HTTP/1.1\r\nHost: t\r\n\r\n".encode())
    await writer.drain()
    data = await reader.read()
    writer.close()
    await writer.wait_closed()
    status = int(data.split(b" ", 2)[1])
    return status, data.partition(b"\r\n\r\n")[2].decode()


async def http_post(host: str, port: int, path: str, body: bytes) -> tuple[int, str]:
    reader, writer = await asyncio.open_connection(host, port)
    head = (
        f"POST {path} HTTP/1.1\r\nHost: t\r\n"
        f"Content-Length: {len(body)}\r\n\r\n"
    ).encode()
    writer.write(head + body)
    await writer.drain()
    data = await reader.read()
    writer.close()
    await writer.wait_closed()
    status = int(data.split(b" ", 2)[1])
    return status, data.partition(b"\r\n\r\n")[2].decode()


@pytest.fixture()
def http():
    class _Http:
        get = staticmethod(http_get)
        post = staticmethod(http_post)

    return _Http
