"""The simulated-time multi-tenant service core.

These tests drive :class:`TenantLoadService` over the small unit
catalog -- full service discipline (fair admission, SLO timeouts,
retries, chaos) at sub-second host cost -- and pin the determinism
contract the loadgen goldens rely on.
"""

from __future__ import annotations

import json

import pytest

from repro.chaos import CHAOS_HEAVY, CHAOS_LIGHT
from repro.errors import ServeError
from repro.observe import MetricsRegistry
from repro.serve import (
    TenantDirectory,
    TenantLoad,
    TenantLoadService,
    TenantSpec,
    default_tenants,
)
from repro.serve.tenants import BATCH, INTERACTIVE, SloClass


def _loads(serve_plans, clients=(6, 4, 3)) -> list[TenantLoad]:
    gold, silver, bronze = clients
    return [
        TenantLoad("gold", gold, (serve_plans["count"], serve_plans["sum"])),
        TenantLoad("silver", silver, (serve_plans["group"],)),
        TenantLoad("bronze", bronze, (serve_plans["sum"],), think_mean=0.4),
    ]


def _run(serve_config, serve_plans, **kw):
    service = TenantLoadService(
        serve_config, default_tenants(), _loads(serve_plans),
        horizon=1.0, **kw,
    )
    return service.run()


def _report_bytes(report) -> str:
    return json.dumps(report.as_dict(), sort_keys=True)


class TestDeterminism:
    def test_repeat_runs_byte_identical(self, serve_config, serve_plans):
        a = _report_bytes(_run(serve_config, serve_plans))
        b = _report_bytes(_run(serve_config, serve_plans))
        assert a == b

    def test_worker_count_and_backend_invariant(self, serve_config, serve_plans):
        base = _report_bytes(_run(serve_config, serve_plans))
        threaded = _report_bytes(
            _run(serve_config, serve_plans, workers=3, backend="thread")
        )
        assert base == threaded

    def test_chaos_run_byte_identical(self, serve_config, serve_plans):
        a = _report_bytes(_run(serve_config, serve_plans, faults=CHAOS_LIGHT))
        b = _report_bytes(_run(serve_config, serve_plans, faults=CHAOS_LIGHT))
        assert a == b

    def test_seed_changes_the_run(self, serve_config, serve_plans):
        service = TenantLoadService(
            serve_config, default_tenants(), _loads(serve_plans), horizon=1.0
        )
        a = service.run(seed=1)
        b = service.run(seed=2)
        assert a.seed == 1 and b.seed == 2
        assert _report_bytes(a) != _report_bytes(b)

    def test_same_service_reusable(self, serve_config, serve_plans):
        service = TenantLoadService(
            serve_config, default_tenants(), _loads(serve_plans), horizon=1.0
        )
        assert _report_bytes(service.run(seed=7)) == _report_bytes(
            service.run(seed=7)
        )


class TestServiceDiscipline:
    def test_all_tenants_served(self, serve_config, serve_plans):
        report = _run(serve_config, serve_plans)
        for name in ("gold", "silver", "bronze"):
            outcome = report.outcome(name)
            assert outcome.completed > 0
            assert outcome.issued >= outcome.completed
            assert len(outcome.response_times) == outcome.completed
        assert report.last_completion > 0
        assert report.throughput() > 0

    def test_admission_rejects_when_queue_tiny(self, serve_config, serve_plans):
        directory = TenantDirectory(
            (
                TenantSpec("gold", slo=INTERACTIVE, max_in_flight=1,
                           queue_limit=1),
                TenantSpec("silver"),
                TenantSpec("bronze", slo=BATCH),
            )
        )
        loads = [
            TenantLoad("gold", 40, (serve_plans["group"],), think_mean=0.001),
            TenantLoad("silver", 1, (serve_plans["count"],)),
            TenantLoad("bronze", 1, (serve_plans["count"],)),
        ]
        service = TenantLoadService(
            serve_config, directory, loads, horizon=1.0, max_in_flight=2,
        )
        report = service.run()
        gold = report.outcome("gold")
        assert gold.rejected > 0
        assert gold.admitted == gold.issued - gold.rejected

    def test_chaos_triggers_retries_and_faults(self, serve_config, serve_plans):
        report = _run(serve_config, serve_plans, faults=CHAOS_HEAVY)
        assert report.faults_injected > 0
        assert len(report.fault_schedule) == report.faults_injected
        totals = report.as_dict()["totals"]
        assert totals["retries"] > 0 or totals["timeouts"] > 0

    def test_timeouts_respect_slo_class(self, serve_config, serve_plans):
        # A 1ms-timeout class against real latencies: every attempt
        # times out, burns its retry budget, and is abandoned.
        twitchy = SloClass("twitchy", p50_target=0.001, p99_target=0.001,
                           timeout=0.001, max_retries=1)
        directory = TenantDirectory((TenantSpec("gold", slo=twitchy),))
        service = TenantLoadService(
            serve_config, directory,
            [TenantLoad("gold", 4, (serve_plans["group"],))],
            horizon=0.5,
        )
        report = service.run()
        outcome = report.outcome("gold")
        assert outcome.timeouts > 0
        assert outcome.abandoned > 0
        assert outcome.completed == 0  # verdicts arrived after the timeout

    def test_live_metrics_populated(self, serve_config, serve_plans):
        registry = MetricsRegistry()
        service = TenantLoadService(
            serve_config, default_tenants(), _loads(serve_plans),
            horizon=1.0, metrics=registry,
        )
        service.run()
        text = registry.to_prometheus()
        assert 'repro_serve_queries_total{tenant="gold"}' in text
        assert "repro_serve_completed_total" in text
        assert "repro_serve_latency_seconds_bucket" in text

    def test_metrics_do_not_change_report(self, serve_config, serve_plans):
        plain = _report_bytes(_run(serve_config, serve_plans))
        observed = _report_bytes(
            _run(serve_config, serve_plans, metrics=MetricsRegistry())
        )
        assert plain == observed


class TestValidation:
    def test_bad_horizon_and_loads(self, serve_config, serve_plans):
        directory = default_tenants()
        with pytest.raises(ServeError, match="horizon"):
            TenantLoadService(serve_config, directory,
                              _loads(serve_plans), horizon=0.0)
        with pytest.raises(ServeError, match="at least one"):
            TenantLoadService(serve_config, directory, [], horizon=1.0)
        with pytest.raises(ServeError, match="unknown tenant"):
            TenantLoadService(
                serve_config, directory,
                [TenantLoad("nope", 1, (serve_plans["count"],))],
                horizon=1.0,
            )
        with pytest.raises(ServeError, match="duplicate"):
            TenantLoadService(
                serve_config, directory,
                [
                    TenantLoad("gold", 1, (serve_plans["count"],)),
                    TenantLoad("gold", 1, (serve_plans["count"],)),
                ],
                horizon=1.0,
            )

    def test_bad_load_fields(self, serve_plans):
        with pytest.raises(ServeError, match="client"):
            TenantLoad("t", 0, (serve_plans["count"],))
        with pytest.raises(ServeError, match="plan"):
            TenantLoad("t", 1, ())
        with pytest.raises(ServeError, match="think_mean"):
            TenantLoad("t", 1, (serve_plans["count"],), think_mean=-1.0)
