"""Seeded load generation: byte-identical SLO reports, pinned by goldens.

These tests run the ``tiny`` preset (18 simulated clients, 3 tenants)
against the real TPC-H catalog at scale factor 1 -- the same path
``repro serve --loadgen`` takes -- and assert the serialized
:class:`ServeReport` never drifts.  Run
``pytest tests/serve --regen-golden`` after an *intentional* change to
the service discipline and review the fixture diff like code.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.errors import ServeError
from repro.serve import (
    PRESETS,
    LoadgenSpec,
    TenantMix,
    build_service,
    chaos_plan,
    preset,
    run_loadgen,
)

GOLDEN_DIR = Path(__file__).parent / "golden"


def _report_json(report) -> str:
    return json.dumps(report.as_dict(), indent=2, sort_keys=True)


def _check_golden(name: str, payload: str, regen: bool) -> None:
    path = GOLDEN_DIR / name
    if regen:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(payload + "\n")
        pytest.skip(f"regenerated {path.name}")
    assert path.exists(), (
        f"golden fixture {path} is missing -- run "
        "pytest tests/serve --regen-golden"
    )
    assert payload + "\n" == path.read_text(), (
        f"SLO report diverged from {path.name}; if the change is "
        "intentional, regenerate with --regen-golden and review the diff"
    )


@pytest.fixture(scope="module")
def tiny_clean_report():
    return run_loadgen(preset("tiny"))


class TestGolden:
    def test_tiny_clean_golden(self, tiny_clean_report, regen_golden):
        _check_golden(
            "loadgen_tiny_clean.json", _report_json(tiny_clean_report),
            regen_golden,
        )

    def test_tiny_chaos_light_golden(self, regen_golden):
        report = run_loadgen(preset("tiny", chaos="light"))
        assert report.faults_injected > 0
        _check_golden(
            "loadgen_tiny_chaos_light.json", _report_json(report),
            regen_golden,
        )


class TestDeterminism:
    def test_repeat_run_byte_identical(self, tiny_clean_report):
        again = run_loadgen(preset("tiny"))
        assert _report_json(again) == _report_json(tiny_clean_report)

    # Worker-count and process-backend invariance moved to the
    # consolidated sweep in tests/integration/test_determinism_matrix.py
    # (scenario "serve").

    def test_chaos_light_repeatable(self):
        spec = preset("tiny", chaos="light")
        assert _report_json(run_loadgen(spec)) == _report_json(
            run_loadgen(spec)
        )

    def test_seed_changes_report(self, tiny_clean_report):
        reseeded = run_loadgen(preset("tiny", seed=99))
        assert _report_json(reseeded) != _report_json(tiny_clean_report)

    def test_report_meets_shape_contract(self, tiny_clean_report):
        doc = tiny_clean_report.as_dict()
        assert doc["schema"] == "repro/serve/slo/v1"
        assert set(doc["tenants"]) == {"gold", "silver", "bronze"}
        for outcome in doc["tenants"].values():
            assert outcome["admitted"] == outcome["issued"] - outcome["rejected"]
            assert outcome["completed"] <= outcome["admitted"]
        totals = doc["totals"]
        assert totals["issued"] == sum(
            o["issued"] for o in doc["tenants"].values()
        )


class TestSpecs:
    def test_presets_scale_monotonically(self):
        sizes = [PRESETS[n].total_clients for n in ("tiny", "smoke", "quick")]
        assert sizes == sorted(sizes)
        assert PRESETS["quick"].total_clients >= 1000
        assert len(PRESETS["quick"].mixes) >= 3

    def test_preset_unknown(self):
        with pytest.raises(ServeError, match="unknown preset"):
            preset("nope")

    def test_chaos_plan_labels(self):
        assert chaos_plan("none") is None
        assert chaos_plan("light") is not None
        assert chaos_plan("heavy") is not None
        with pytest.raises(ServeError, match="chaos"):
            chaos_plan("medium")

    def test_spec_validation(self):
        mix = TenantMix("gold", clients=1, statements=("SELECT 1 FROM t",))
        with pytest.raises(ServeError, match="mix"):
            LoadgenSpec("x", mixes=())
        with pytest.raises(ServeError, match="horizon"):
            LoadgenSpec("x", mixes=(mix,), horizon=0.0)
        with pytest.raises(ServeError, match="client"):
            TenantMix("gold", clients=0, statements=("SELECT 1 FROM t",))
        with pytest.raises(ServeError, match="statement"):
            TenantMix("gold", clients=1, statements=())

    def test_build_service_requires_paired_config(self, serve_config):
        with pytest.raises(ServeError, match="both"):
            build_service(preset("tiny"), config=serve_config)
