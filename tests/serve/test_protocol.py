"""Wire-protocol framing: NDJSON codecs and the minimal HTTP layer."""

from __future__ import annotations

import json

import pytest

from repro.errors import FramingError, ProtocolError
from repro.serve import (
    MAX_LINE_BYTES,
    Request,
    Response,
    decode_request,
    decode_response,
    encode_request,
    encode_response,
    error_response,
)
from repro.serve.protocol import (
    http_response,
    is_http_preamble,
    parse_http_head,
)


class TestRequests:
    def test_round_trip(self):
        for request in (
            Request(op="hello", tenant="gold", id=1),
            Request(op="query", sql="SELECT 1 FROM t", limit=4, id="q-9"),
            Request(op="query", sql="SELECT 1 FROM t", canonical=True),
            Request(op="ping"),
            Request(op="goodbye"),
        ):
            line = encode_request(request)
            assert line.endswith(b"\n") and line.count(b"\n") == 1
            assert decode_request(line) == request

    @pytest.mark.parametrize(
        "doc,match",
        [
            ({"op": "teleport"}, "unknown op"),
            ({"op": "hello"}, "needs a tenant"),
            ({"op": "query"}, "non-empty sql"),
            ({"op": "query", "sql": "SELECT 1 FROM t", "limit": 0}, "positive"),
            ({"op": "query", "sql": "SELECT 1 FROM t", "limit": "x"}, "positive"),
            ({"op": 7}, "string 'op'"),
            ({"op": "ping", "id": [1]}, "id must be"),
            ({"op": "ping", "tenant": 3}, "tenant must be"),
        ],
    )
    def test_schema_violations(self, doc, match):
        with pytest.raises(ProtocolError, match=match):
            decode_request(json.dumps(doc).encode() + b"\n")

    @pytest.mark.parametrize(
        "line", [b"\n", b"not json\n", b"[1, 2]\n", b"x" * (MAX_LINE_BYTES + 1)]
    )
    def test_framing_violations(self, line):
        # Framing errors are the subtype that closes the connection.
        with pytest.raises(FramingError):
            decode_request(line)

    def test_framing_is_a_protocol_error(self):
        assert issubclass(FramingError, ProtocolError)


class TestResponses:
    def test_result_round_trip(self):
        response = Response(type="result", id=3, body={"rows": [1, 2]})
        decoded = decode_response(encode_response(response))
        assert decoded.ok and decoded.id == 3
        assert decoded.body == {"rows": [1, 2]}

    def test_error_round_trip(self):
        decoded = decode_response(
            encode_response(error_response("rejected", "queue full", id=8))
        )
        assert not decoded.ok
        assert decoded.kind == "rejected" and decoded.id == 8
        assert "queue full" in decoded.error

    def test_unknown_error_kind_refused(self):
        with pytest.raises(ProtocolError, match="unknown error kind"):
            error_response("mystery", "boom")

    def test_deterministic_bytes(self):
        response = Response(type="result", id=1, body={"b": 2, "a": 1})
        assert encode_response(response) == encode_response(response)
        assert encode_response(response) == (
            b'{"a":1,"b":2,"id":1,"ok":true,"type":"result"}\n'
        )


class TestHttp:
    def test_sniffing(self):
        assert is_http_preamble(b"GET /metrics HTTP/1.1\r\n")
        assert is_http_preamble(b"POST /query HTTP/1.1\r\n")
        assert not is_http_preamble(b'{"op":"hello"}\n')

    def test_parse_head(self):
        head = b"GET /metrics?x=1 HTTP/1.1\r\nHost: h\r\nAccept: */*\r\n\r\n"
        request = parse_http_head(head)
        assert request.method == "GET"
        assert request.path == "/metrics?x=1"
        assert request.headers["host"] == "h"

    @pytest.mark.parametrize(
        "head", [b"GET\r\n\r\n", b"GET / SPDY/9\r\n\r\n", b"GET / HTTP/1.1\r\nbad\r\n\r\n"]
    )
    def test_parse_head_rejects(self, head):
        with pytest.raises(ProtocolError):
            parse_http_head(head)

    def test_http_response_shape(self):
        raw = http_response(429, "slow down\n")
        head, _, body = raw.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 429 Too Many Requests")
        assert b"Content-Length: 10" in head
        assert b"Connection: close" in head
        assert body == b"slow down\n"
