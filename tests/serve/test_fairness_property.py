"""Property-based fairness and accounting invariants.

The hand-built sequences in ``test_scheduler.py`` pin exact behaviour;
here hypothesis searches the weight/backlog space for violations of the
three disciplines the scheduler promises:

* **weighted share** -- under full backlog, each tenant's admission
  count stays within one round of its weight-proportional share;
* **no starvation** -- a backlogged tenant is never passed over more
  than ``ceil(W_total / w_i)`` consecutive admissions;
* **conservation** -- offered = admitted-so-far + queued + rejected at
  every step, and the end-to-end :class:`ServeReport` reconciles.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.serve import (
    FairScheduler,
    TenantDirectory,
    TenantLoad,
    TenantLoadService,
    TenantSpec,
    default_tenants,
)

weights = st.lists(
    st.integers(min_value=1, max_value=16), min_size=2, max_size=5
)


def _scheduler(ws: list[int]) -> tuple[FairScheduler, list[str]]:
    names = [f"t{i}" for i in range(len(ws))]
    directory = TenantDirectory(
        tuple(
            TenantSpec(name, weight=w, queue_limit=10_000)
            for name, w in zip(names, ws)
        )
    )
    return FairScheduler(directory, max_in_flight=100_000), names


@given(ws=weights, rounds=st.integers(min_value=1, max_value=40))
@settings(max_examples=60, deadline=None)
def test_weighted_share_within_one_round(ws, rounds):
    """Backlogged tenants receive admissions proportional to weight.

    After N admissions from a permanently-backlogged set, tenant i with
    weight w_i must hold n_i with |n_i - N * w_i / W| bounded by one
    full scheduling round (the worst instantaneous deviation start-time
    WFQ allows).
    """
    sched, names = _scheduler(ws)
    total_weight = sum(ws)
    n = rounds * total_weight
    for name in names:
        for i in range(n):
            assert sched.offer(name, i)
    counts = dict.fromkeys(names, 0)
    for _ in range(n):
        spec, _ = sched.next_ready()
        counts[spec.name] += 1
        sched.release(spec.name)
    for name, w in zip(names, ws):
        share = n * w / total_weight
        assert abs(counts[name] - share) <= w + 1, (
            f"{name}: got {counts[name]}, fair share {share:.1f}"
        )


@given(ws=weights)
@settings(max_examples=60, deadline=None)
def test_no_starvation_gap_bound(ws):
    """Max admissions between a tenant's consecutive turns is bounded.

    With every tenant backlogged, tenant i's k-th admission carries
    virtual start time k / w_i.  Between two of its turns, tenant j can
    slot at most ``floor(w_j / w_i) + 1`` admissions (its vtimes inside
    the interval, plus one boundary tie), so the total gap is bounded
    by the sum of those terms -- no tenant starves.
    """
    sched, names = _scheduler(ws)
    total_weight = sum(ws)
    n = 30 * total_weight
    for name in names:
        for i in range(n):
            assert sched.offer(name, i)
    bounds = {
        name: sum(wj // w + 1 for j, wj in enumerate(ws) if names[j] != name)
        + 1
        for name, w in zip(names, ws)
    }
    last_seen = dict.fromkeys(names, 0)
    for step in range(1, n + 1):
        spec, _ = sched.next_ready()
        sched.release(spec.name)
        last_seen[spec.name] = step
        for name, w in zip(names, ws):
            gap = step - last_seen[name]
            assert gap <= bounds[name], (
                f"{name} (weight {w}) starved for {gap} admissions "
                f"(bound {bounds[name]})"
            )


@given(
    ws=weights,
    offers=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=4),  # tenant index (mod)
            st.booleans(),                          # admit something after?
        ),
        min_size=1,
        max_size=200,
    ),
)
@settings(max_examples=60, deadline=None)
def test_counters_conserve(ws, offers):
    """offered == admitted + queued + rejected, at every interleaving."""
    names = [f"t{i}" for i in range(len(ws))]
    directory = TenantDirectory(
        tuple(
            TenantSpec(name, weight=w, queue_limit=3, max_in_flight=2)
            for name, w in zip(names, ws)
        )
    )
    sched = FairScheduler(directory, max_in_flight=4)
    in_flight: list[str] = []
    item = 0
    for idx, then_admit in offers:
        name = names[idx % len(names)]
        sched.offer(name, item)
        item += 1
        if then_admit:
            ready = sched.next_ready()
            if ready is not None:
                in_flight.append(ready[0].name)
            elif in_flight:
                sched.release(in_flight.pop())
    queued = {name: 0 for name in names}
    for spec, _ in sched.drain():
        queued[spec.name] = queued.get(spec.name, 0) + 1
    flying = {name: in_flight.count(name) for name in names}
    for name in names:
        stats = sched.stats(name)
        assert stats.offered == (
            stats.admitted + queued[name] + stats.rejected
        )
        assert stats.admitted - stats.completed >= flying[name]


@settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[
        HealthCheck.too_slow,
        # serve_config is frozen and read-only; sharing it across
        # generated examples is safe.
        HealthCheck.function_scoped_fixture,
    ],
)
@given(
    clients=st.tuples(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=6),
    ),
    seed=st.integers(min_value=1, max_value=2**31),
)
def test_report_reconciles_end_to_end(
    serve_config, serve_plans, clients, seed
):
    """The full service's WorkloadReport sums match per-tenant stats."""
    gold, silver, bronze = clients
    service = TenantLoadService(
        serve_config,
        default_tenants(),
        [
            TenantLoad("gold", gold, (serve_plans["count"],)),
            TenantLoad("silver", silver, (serve_plans["sum"],)),
            TenantLoad("bronze", bronze, (serve_plans["group"],),
                       think_mean=0.4),
        ],
        horizon=0.5,
    )
    report = service.run(seed=seed)
    doc = report.as_dict()
    totals = doc["totals"]
    for key in ("issued", "admitted", "rejected", "completed", "timeouts"):
        assert totals[key] == sum(
            o[key] for o in doc["tenants"].values()
        ), key
    for name, outcome in doc["tenants"].items():
        assert outcome["admitted"] == outcome["issued"] - outcome["rejected"]
        assert outcome["completed"] <= outcome["admitted"]
        assert len(report.outcome(name).response_times) == outcome["completed"]
    workload = report.workload_report()
    assert workload.completed() == totals["completed"]
    assert workload.retries == totals["retries"]
    assert workload.timeouts == totals["timeouts"]
