"""The asyncio front end: sockets, HTTP, admission, graceful shutdown.

No fixed ports anywhere: every server binds port 0 and reports what the
kernel picked, so parallel test processes cannot collide.  Tests are
plain sync functions running their async bodies via the
``server_runner`` fixture (which owns start/stop), since the harness
has no asyncio plugin.
"""

from __future__ import annotations

import asyncio
import json
import threading

import pytest

from repro.serve import ReproServer, TenantDirectory, TenantSpec
from repro.serve.tenants import INTERACTIVE

from tests.serve.conftest import COUNT_SQL, GROUP_SQL


class TestLifecycle:
    def test_port_zero_resolves(self, server_runner):
        async def body(server):
            assert server.port != 0
            assert server.serving

        server_runner(body)

    def test_two_servers_no_collision(self, serve_config, small_catalog):
        async def main():
            a = ReproServer(serve_config, small_catalog)
            b = ReproServer(serve_config, small_catalog)
            await a.start()
            await b.start()
            try:
                assert a.port != b.port
            finally:
                await a.stop()
                await b.stop()

        asyncio.run(main())

    def test_start_stop_idempotent(self, serve_config, small_catalog):
        async def main():
            server = ReproServer(serve_config, small_catalog)
            await server.start()
            port = server.port
            await server.start()  # no-op
            assert server.port == port
            await server.stop()
            await server.stop()  # no-op
            assert not server.serving
            assert not server.engine.running

        asyncio.run(main())

    def test_stop_closes_idle_connections(self, server_runner, ndjson_client):
        async def body(server):
            client = await ndjson_client.connect(server.host, server.port)
            response = await client.call(op="hello", tenant="gold")
            assert response["ok"]
            await server.stop()
            assert await client.closed_by_server()
            await client.close()

        server_runner(body)


class TestNdjsonSessions:
    def test_full_session_flow(self, server_runner, ndjson_client):
        async def body(server):
            client = await ndjson_client.connect(server.host, server.port)
            hello = await client.call(op="hello", tenant="gold", id=1)
            assert hello["ok"] and hello["tenant"] == "gold"
            assert hello["protocol"] == 1
            result = await client.call(op="query", id=2, sql=COUNT_SQL)
            assert result["ok"]
            assert result["id"] == 2
            assert result["rows"] == [{"kind": "scalar", "value": 2000}]
            assert result["simulated_ms"] > 0
            pong = await client.call(op="ping", id=3)
            assert pong["type"] == "pong"
            bye = await client.call(op="goodbye", id=4)
            assert bye["type"] == "goodbye" and bye["queries"] == 1
            assert await client.closed_by_server()
            await client.close()

        server_runner(body)

    def test_query_before_hello(self, server_runner, ndjson_client):
        async def body(server):
            client = await ndjson_client.connect(server.host, server.port)
            response = await client.call(op="query", sql=COUNT_SQL)
            assert not response["ok"] and response["kind"] == "session"
            # Connection stays usable: bind and retry.
            assert (await client.call(op="hello", tenant="silver"))["ok"]
            assert (await client.call(op="query", sql=COUNT_SQL))["ok"]
            await client.close()

        server_runner(body)

    def test_bad_sql_is_typed_error(self, server_runner, ndjson_client):
        async def body(server):
            client = await ndjson_client.connect(server.host, server.port)
            await client.call(op="hello", tenant="gold")
            response = await client.call(op="query", id=7, sql="SELECT nope FROM facts")
            assert not response["ok"]
            assert response["kind"] == "sql" and response["id"] == 7
            # ... and the session survives.
            assert (await client.call(op="query", sql=COUNT_SQL))["ok"]
            await client.close()

        server_runner(body)

    def test_schema_error_keeps_connection(self, server_runner, ndjson_client):
        async def body(server):
            client = await ndjson_client.connect(server.host, server.port)
            response = await client.call(op="teleport")
            assert response["kind"] == "protocol"
            assert (await client.call(op="ping"))["type"] == "pong"
            await client.close()

        server_runner(body)

    def test_framing_error_closes_connection(self, server_runner, ndjson_client):
        async def body(server):
            client = await ndjson_client.connect(server.host, server.port)
            await client.send_raw(b"this is not json\n")
            response = await client.recv()
            assert response["kind"] == "protocol"
            assert await client.closed_by_server()
            await client.close()

        server_runner(body)


class TestHttp:
    def test_healthz_and_metrics(self, server_runner, http):
        async def body(server):
            status, text = await http.get(server.host, server.port, "/healthz")
            assert status == 200
            doc = json.loads(text)
            assert doc["ok"] and doc["tenants"] == ["gold", "silver", "bronze"]
            status, text = await http.get(server.host, server.port, "/metrics")
            assert status == 200

        server_runner(body)

    def test_metrics_live_after_queries(self, server_runner, http, ndjson_client):
        async def body(server):
            client = await ndjson_client.connect(server.host, server.port)
            await client.call(op="hello", tenant="gold")
            await client.call(op="query", sql=COUNT_SQL)
            await client.close()
            _, text = await http.get(server.host, server.port, "/metrics")
            assert 'repro_serve_queries_total{tenant="gold"} 1' in text
            assert 'repro_serve_completed_total{tenant="gold"} 1' in text
            assert "repro_serve_latency_seconds_bucket" in text

        server_runner(body)

    def test_post_query(self, server_runner, http):
        async def body(server):
            body_bytes = json.dumps({"sql": COUNT_SQL, "tenant": "silver"}).encode()
            status, text = await http.post(
                server.host, server.port, "/query", body_bytes
            )
            assert status == 200
            doc = json.loads(text)
            assert doc["ok"] and doc["rows"][0]["value"] == 2000

        server_runner(body)

    def test_post_query_bad_requests(self, server_runner, http):
        async def body(server):
            status, _ = await http.post(server.host, server.port, "/query", b"{}")
            assert status == 400
            status, _ = await http.post(
                server.host, server.port, "/query",
                json.dumps({"sql": "SELECT nope FROM facts"}).encode(),
            )
            assert status == 400

        server_runner(body)

    def test_unknown_path_and_wrong_method(self, server_runner, http):
        async def body(server):
            status, _ = await http.get(server.host, server.port, "/nope")
            assert status == 404
            status, _ = await http.post(server.host, server.port, "/metrics", b"")
            assert status == 405

        server_runner(body)


def _gate_engine(server) -> tuple[threading.Event, threading.Event]:
    """Block the engine's batch execution until released (test hook)."""
    release = threading.Event()
    entered = threading.Event()
    original = server.engine._execute_batch

    def gated(batch):
        entered.set()
        assert release.wait(timeout=30), "test forgot to release the engine"
        original(batch)

    server.engine._execute_batch = gated
    return release, entered


class TestAdmission:
    def _tiny_directory(self) -> TenantDirectory:
        return TenantDirectory(
            (TenantSpec("gold", slo=INTERACTIVE, max_in_flight=1,
                        queue_limit=1),)
        )

    def test_queue_full_rejects_deterministically(
        self, server_runner, ndjson_client
    ):
        async def body(server):
            release, entered = _gate_engine(server)
            clients = []
            for _ in range(3):
                client = await ndjson_client.connect(server.host, server.port)
                await client.call(op="hello", tenant="gold")
                clients.append(client)
            # q1 admitted (in flight, held by the gate), q2 queued,
            # q3 must bounce off the queue limit.
            for client in clients:
                await client.send_raw(
                    json.dumps({"op": "query", "sql": COUNT_SQL}).encode() + b"\n"
                )
                await asyncio.sleep(0.05)
            rejected = await clients[2].recv()
            assert not rejected["ok"] and rejected["kind"] == "rejected"
            release.set()
            assert (await clients[0].recv())["ok"]
            assert (await clients[1].recv())["ok"]
            for client in clients:
                await client.close()

        server_runner(body, tenants=self._tiny_directory(), max_in_flight=1)

    def test_rejection_counted_in_metrics(self, server_runner, http, ndjson_client):
        async def body(server):
            release, entered = _gate_engine(server)
            clients = []
            for _ in range(3):
                client = await ndjson_client.connect(server.host, server.port)
                await client.call(op="hello", tenant="gold")
                clients.append(client)
            for client in clients:
                await client.send_raw(
                    json.dumps({"op": "query", "sql": COUNT_SQL}).encode() + b"\n"
                )
                await asyncio.sleep(0.05)
            await clients[2].recv()
            _, text = await http.get(server.host, server.port, "/metrics")
            assert 'repro_serve_rejected_total{tenant="gold"} 1' in text
            release.set()
            await clients[0].recv()
            await clients[1].recv()
            for client in clients:
                await client.close()

        server_runner(body, tenants=self._tiny_directory(), max_in_flight=1)


class TestGracefulShutdown:
    def test_in_flight_queries_drain(self, serve_config, small_catalog, ndjson_client):
        async def main():
            server = ReproServer(serve_config, small_catalog)
            await server.start()
            release, entered = _gate_engine(server)
            client = await ndjson_client.connect(server.host, server.port)
            await client.call(op="hello", tenant="gold")
            await client.send_raw(
                json.dumps({"op": "query", "id": 1, "sql": GROUP_SQL}).encode()
                + b"\n"
            )
            await asyncio.get_running_loop().run_in_executor(
                None, lambda: entered.wait(timeout=30)
            )
            stopper = asyncio.create_task(server.stop())
            await asyncio.sleep(0.05)
            release.set()
            # The in-flight query's response must still arrive.
            response = await client.recv()
            assert response["ok"] and response["id"] == 1
            await stopper
            assert not server.engine.running
            await client.close()

        asyncio.run(main())

    def test_new_queries_refused_while_stopping(
        self, serve_config, small_catalog, http
    ):
        async def main():
            server = ReproServer(serve_config, small_catalog)
            await server.start()
            await server.stop()
            # Direct API check: post-stop execution is refused as shed load.
            from repro.errors import AdmissionError
            from repro.serve import Request

            with pytest.raises(AdmissionError, match="shutting down"):
                await server.execute_query(
                    "gold", Request(op="query", sql=COUNT_SQL)
                )

        asyncio.run(main())

    def test_no_orphaned_pool_workers(self, serve_config, small_catalog):
        # The autouse no_shm_leaks fixture asserts the process backend
        # left nothing behind; here we just drive it through the server.
        async def main():
            server = ReproServer(
                serve_config, small_catalog, workers=2, backend="process"
            )
            await server.start()
            reader, writer = await asyncio.open_connection(
                server.host, server.port
            )
            writer.write(b'{"op":"hello","tenant":"gold"}\n')
            writer.write(
                json.dumps({"op": "query", "sql": COUNT_SQL}).encode() + b"\n"
            )
            await writer.drain()
            assert json.loads(await reader.readline())["ok"]
            assert json.loads(await reader.readline())["ok"]
            writer.close()
            await writer.wait_closed()
            await server.stop()
            assert server.engine._pool is not None
            assert server.engine._pool._closed

        asyncio.run(main())
