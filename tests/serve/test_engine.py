"""The batching execution engine behind the live server."""

from __future__ import annotations

import threading

import pytest

from repro.errors import ServeError, SqlPlanError
from repro.serve import ServeEngine, render_outputs
from repro.serve.engine import _Job  # noqa: F401  (existence check)
from repro.storage import BAT, LNG, Candidates, Scalar
import numpy as np

from tests.serve.conftest import COUNT_SQL, GROUP_SQL, SUM_SQL


@pytest.fixture()
def engine(serve_config, small_catalog):
    eng = ServeEngine(serve_config, small_catalog).start()
    yield eng
    eng.close()


class TestExecution:
    def test_submit_and_result(self, engine, serve_config, small_catalog):
        payload = engine.submit_sql(COUNT_SQL).result(timeout=30)
        assert payload["rows"] == [{"kind": "scalar", "value": 2000}]
        assert payload["simulated_ms"] > 0
        assert payload["batch"] >= 1
        assert "host_batch_ms" in payload

    def test_micro_batching_shares_one_machine(self, engine):
        futures = [engine.submit_sql(SUM_SQL) for _ in range(8)]
        payloads = [f.result(timeout=30) for f in futures]
        values = {p["rows"][0]["value"] for p in payloads}
        assert len(values) == 1  # same statement, same answer
        # At least some of the 8 were co-scheduled on one simulator.
        assert max(p["batch"] for p in payloads) >= 2 or engine.stats.batches >= 1

    def test_group_limit_truncates(self, engine):
        payload = engine.submit_sql(GROUP_SQL, limit=3).result(timeout=30)
        (out,) = payload["rows"]
        assert out["kind"] == "bat"
        assert out["n"] == 100 and len(out["pairs"]) == 3

    def test_sql_error_resolves_future(self, engine):
        future = engine.submit_sql("SELECT nope FROM facts")
        with pytest.raises(SqlPlanError):
            future.result(timeout=30)
        assert engine.stats.failures >= 1

    def test_plan_cache_reused(self, engine):
        for _ in range(3):
            engine.submit_sql(COUNT_SQL).result(timeout=30)
        assert engine.plans.hits >= 2


class TestCanonical:
    def test_canonical_bytes_returned(self, engine):
        payload = engine.submit_sql(COUNT_SQL, canonical=True).result(timeout=30)
        assert payload["canonical"].startswith("{")
        assert payload["batch"] == 1

    def test_canonical_invariant_to_memo_history(
        self, serve_config, small_catalog
    ):
        # A cold engine and one that already memoized the statement
        # must produce identical canonical bytes.
        cold = ServeEngine(serve_config, small_catalog).start()
        try:
            a = cold.submit_sql(SUM_SQL, canonical=True).result(timeout=30)
        finally:
            cold.close()
        warm = ServeEngine(serve_config, small_catalog).start()
        try:
            warm.submit_sql(SUM_SQL).result(timeout=30)
            warm.submit_sql(SUM_SQL).result(timeout=30)
            b = warm.submit_sql(SUM_SQL, canonical=True).result(timeout=30)
        finally:
            warm.close()
        assert a["canonical"] == b["canonical"]


class TestLifecycle:
    def test_submit_before_start_refused(self, serve_config, small_catalog):
        engine = ServeEngine(serve_config, small_catalog)
        with pytest.raises(ServeError, match="not started"):
            engine.submit_sql(COUNT_SQL)
        engine.close()

    def test_start_idempotent(self, serve_config, small_catalog):
        engine = ServeEngine(serve_config, small_catalog)
        assert engine.start() is engine.start()
        assert engine.running
        engine.close()

    def test_close_drains_accepted_work(self, serve_config, small_catalog):
        engine = ServeEngine(serve_config, small_catalog).start()
        futures = [engine.submit_sql(COUNT_SQL) for _ in range(10)]
        engine.close()
        for future in futures:
            assert future.result(timeout=1)["rows"][0]["value"] == 2000
        assert not engine.running

    def test_close_idempotent_and_refuses_after(
        self, serve_config, small_catalog
    ):
        engine = ServeEngine(serve_config, small_catalog).start()
        engine.close()
        engine.close()
        with pytest.raises(ServeError, match="closed"):
            engine.submit_sql(COUNT_SQL)

    def test_thread_pool_closed_with_engine(self, serve_config, small_catalog):
        engine = ServeEngine(
            serve_config, small_catalog, workers=2, backend="thread"
        ).start()
        engine.submit_sql(COUNT_SQL).result(timeout=30)
        pool = engine._pool
        assert pool is not None
        engine.close()
        assert pool._closed

    def test_engine_thread_survives_bad_sql(self, engine):
        with pytest.raises(SqlPlanError):
            engine.submit_sql("SELECT broken FROM facts").result(timeout=30)
        assert engine.running
        assert engine.submit_sql(COUNT_SQL).result(timeout=30)["rows"]


class TestRenderOutputs:
    def test_scalar_bat_candidates(self):
        head = np.arange(5, dtype=np.int64)
        bat = BAT(head, head * 2, LNG)
        cands = Candidates(np.array([1, 5, 9], dtype=np.int64))
        rendered = render_outputs([Scalar(7, LNG), bat, cands], limit=2)
        assert rendered[0] == {"kind": "scalar", "value": 7}
        assert rendered[1] == {"kind": "bat", "n": 5, "pairs": [[0, 0], [1, 2]]}
        assert rendered[2] == {"kind": "candidates", "n": 3, "oids": [1, 5]}

    def test_values_are_json_native(self):
        rendered = render_outputs([Scalar(np.int64(3), LNG)])
        assert type(rendered[0]["value"]) is int


def test_concurrent_submitters(serve_config, small_catalog):
    """Many host threads submitting at once: every future settles."""
    engine = ServeEngine(serve_config, small_catalog).start()
    results = []
    errors = []

    def hammer():
        try:
            results.append(engine.submit_sql(COUNT_SQL).result(timeout=30))
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=hammer) for _ in range(16)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    engine.close()
    assert not errors
    assert len(results) == 16
    assert all(r["rows"][0]["value"] == 2000 for r in results)
