"""The DOP experience store: bounds, persistence, and corrupt loads."""

from __future__ import annotations

import json
import os

import pytest

from repro.errors import LearnError
from repro.learn import ExperienceRecord, ExperienceStore, resolve_store


def rec(plan="p" * 32, machine="2s8c2t", dop=4, gme_ms=50.0, **kwargs):
    defaults = dict(
        plan=plan,
        machine=machine,
        dop=dop,
        gme_run=dop,
        total_runs=dop + 10,
        serial_ms=100.0,
        gme_ms=gme_ms,
    )
    defaults.update(kwargs)
    return ExperienceRecord(**defaults)


class TestRecordValidation:
    def test_rejects_negative_fields(self):
        with pytest.raises(LearnError):
            rec(dop=-1)
        with pytest.raises(LearnError):
            rec(gme_ms=-0.5)

    def test_speedup(self):
        assert rec(gme_ms=50.0).speedup == pytest.approx(2.0)

    def test_as_dict_round_trips_json(self):
        doc = json.dumps(rec().as_dict())
        assert json.loads(doc)["dop"] == 4


class TestLookupAndRecency:
    def test_hit_miss_and_shape_mismatch_counters(self):
        store = ExperienceStore()
        store.record(rec(machine="2s8c2t"))
        assert store.lookup("p" * 32, "2s8c2t") is not None
        # Same template, different machine shape: refused, counted.
        assert store.lookup("p" * 32, "4s12c2t") is None
        # Unknown template: a plain miss.
        assert store.lookup("q" * 32, "2s8c2t") is None
        stats = store.stats()
        assert (stats.hits, stats.misses, stats.shape_mismatches) == (1, 1, 1)

    def test_lookup_refreshes_recency(self):
        store = ExperienceStore(capacity_bytes=3 * 220)
        store.record(rec(plan="a" * 32))
        store.record(rec(plan="b" * 32))
        store.lookup("a" * 32, "2s8c2t")  # a becomes MRU
        # Evict until something must go: b should be the LRU victim.
        for fill in ("c" * 32, "d" * 32):
            store.record(rec(plan=fill))
        remaining = {r.plan for r in store.records()}
        assert "a" * 32 in remaining or store.stats().evictions > 0
        assert store.current_bytes <= store.capacity_bytes

    def test_byte_bound_never_exceeded(self):
        store = ExperienceStore(capacity_bytes=1000)
        for i in range(50):
            store.record(rec(plan=f"{i:032d}"))
        assert store.current_bytes <= 1000
        assert store.stats().evictions > 0
        assert len(store) < 50

    def test_oversized_record_raises(self):
        store = ExperienceStore(capacity_bytes=64)
        with pytest.raises(LearnError):
            store.record(rec())

    def test_upsert_keeps_better_outcome(self):
        store = ExperienceStore()
        store.record(rec(dop=8, gme_ms=40.0))
        # A later, unluckier instance must not overwrite the better DOP.
        store.record(rec(dop=3, gme_ms=90.0))
        kept = store.lookup("p" * 32, "2s8c2t")
        assert kept.dop == 8
        assert kept.gme_ms == 40.0
        assert kept.updates == 2


class TestPersistence:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "exp.json"
        store = ExperienceStore(path)
        store.record(rec())
        store.close()
        reread = ExperienceStore(path)
        assert reread.lookup("p" * 32, "2s8c2t").dop == 4

    def test_flush_is_atomic_document(self, tmp_path):
        path = tmp_path / "exp.json"
        store = ExperienceStore(path)
        store.record(rec())
        store.flush()
        doc = json.loads(path.read_text())
        assert doc["schema"].startswith("repro/learn_experience/")
        assert len(doc["entries"]) == 1
        assert not [p for p in os.listdir(tmp_path) if p != "exp.json"]

    def test_close_idempotent_and_refuses_writes(self, tmp_path):
        store = ExperienceStore(tmp_path / "exp.json")
        store.record(rec())
        store.close()
        store.close()  # second close is a no-op
        assert store.closed
        with pytest.raises(LearnError):
            store.record(rec(plan="x" * 32))

    def test_missing_file_starts_empty(self, tmp_path):
        store = ExperienceStore(tmp_path / "nope.json")
        assert len(store) == 0


class TestCorruptLoad:
    def test_unparseable_file_warns_and_starts_empty(self, tmp_path):
        path = tmp_path / "exp.json"
        path.write_text("{not json")
        with pytest.warns(UserWarning, match="unreadable"):
            store = ExperienceStore(path)
        assert len(store) == 0
        # The store is still fully usable afterwards.
        store.record(rec())
        assert len(store) == 1

    def test_unknown_schema_warns_and_starts_empty(self, tmp_path):
        path = tmp_path / "exp.json"
        path.write_text(json.dumps({"schema": "something/else", "entries": []}))
        with pytest.warns(UserWarning):
            store = ExperienceStore(path)
        assert len(store) == 0

    def test_partial_corruption_skips_only_bad_records(self, tmp_path):
        path = tmp_path / "exp.json"
        good = rec().as_dict()
        bad_type = dict(good, plan=123, machine="zzz")
        bad_missing = {"plan": "q" * 32}
        bad_bool = dict(good, plan="r" * 32, dop=True)
        doc = {
            "schema": "repro/learn_experience/v1",
            "capacity_bytes": 262144,
            "entries": [bad_type, good, bad_missing, "not-a-dict", bad_bool],
        }
        path.write_text(json.dumps(doc))
        with pytest.warns(UserWarning, match="skip"):
            store = ExperienceStore(path)
        assert len(store) == 1
        assert store.stats().load_skipped == 4
        assert store.lookup("p" * 32, "2s8c2t") is not None


class TestResolveStore:
    def test_instance_passthrough(self):
        store = ExperienceStore()
        assert resolve_store(store) is store

    def test_none(self):
        assert resolve_store(None) is None

    def test_path_constructs(self, tmp_path):
        store = resolve_store(tmp_path / "exp.json")
        assert isinstance(store, ExperienceStore)
        store.close()
