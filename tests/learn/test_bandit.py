"""The seeded UCB advisor over DOP arms."""

from __future__ import annotations

import pytest

from repro.errors import LearnError
from repro.learn import BanditAdvisor, default_dop_arms


class TestArms:
    def test_default_arms_geometric(self):
        assert default_dop_arms(32) == (0, 1, 2, 4, 8, 16, 32)

    def test_max_dop_always_included(self):
        assert default_dop_arms(12) == (0, 1, 2, 4, 8, 12)

    def test_degenerate_single_core(self):
        assert default_dop_arms(1) == (0, 1)

    def test_invalid_max(self):
        with pytest.raises(LearnError):
            default_dop_arms(0)


class TestSelect:
    def test_initial_sweep_covers_every_arm(self):
        advisor = BanditAdvisor((0, 1, 2, 4), seed=1)
        pulled = []
        for __ in range(4):
            index = advisor.select()
            pulled.append(advisor.arms[index].dop)
            advisor.observe(index, 1.0)
        assert sorted(pulled) == [0, 1, 2, 4]

    def test_warm_arm_pulled_first(self):
        advisor = BanditAdvisor((0, 1, 2, 4, 8), seed=1, warm_arm=7)
        index = advisor.select()
        assert advisor.arms[index].dop == 8  # nearest arm to 7

    def test_deterministic_pull_sequence(self):
        def run():
            advisor = BanditAdvisor((0, 2, 4, 8), seed=42)
            rewards = {0: 1.0, 2: 1.5, 4: 2.5, 8: 2.4}
            sequence = []
            for __ in range(12):
                index = advisor.select()
                sequence.append(index)
                advisor.observe(index, rewards[advisor.arms[index].dop])
            return sequence

        assert run() == run()

    def test_exploitation_prefers_best_arm(self):
        advisor = BanditAdvisor((0, 4), seed=3, confidence_pulls=5)
        for __ in range(2):
            index = advisor.select()
            advisor.observe(index, 3.0 if advisor.arms[index].dop == 4 else 1.0)
        wins = 0
        for __ in range(10):
            index = advisor.select()
            good = advisor.arms[index].dop == 4
            wins += good
            advisor.observe(index, 3.0 if good else 1.0)
        assert wins >= 8


class TestConvergence:
    def test_requires_full_sweep(self):
        advisor = BanditAdvisor((0, 4), seed=1)
        advisor.observe(0, 1.0)
        assert not advisor.converged()

    def test_confidence_pulls_of_incumbent(self):
        advisor = BanditAdvisor((0, 4), seed=1, confidence_pulls=2)
        advisor.observe(0, 1.0)
        advisor.observe(1, 2.0)
        assert not advisor.converged()
        advisor.observe(1, 2.0)
        assert advisor.converged()
        assert advisor.arms[advisor.best_index()].dop == 4

    def test_best_index_ties_prefer_lower_dop(self):
        advisor = BanditAdvisor((0, 2, 4), seed=1)
        for index in range(3):
            advisor.observe(index, 2.0)
        assert advisor.arms[advisor.best_index()].dop == 0

    def test_summary_table(self):
        advisor = BanditAdvisor((0, 4), seed=1)
        advisor.observe(1, 2.0)
        table = advisor.summary()
        assert table[1] == {"dop": 4, "pulls": 1, "mean_reward": 2.0}


class TestValidation:
    def test_rejects_empty_and_duplicates(self):
        with pytest.raises(LearnError):
            BanditAdvisor((), seed=1)
        with pytest.raises(LearnError):
            BanditAdvisor((2, 2), seed=1)

    def test_rejects_bad_observe_index(self):
        advisor = BanditAdvisor((0, 2), seed=1)
        with pytest.raises(LearnError):
            advisor.observe(5, 1.0)
