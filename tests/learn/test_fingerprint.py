"""Template signatures: portable keys for the experience store."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import SimulationConfig, laptop_machine, two_socket_machine
from repro.learn import config_signature, machine_signature, plan_signature
from repro.operators import RangePredicate
from repro.plan import PlanBuilder
from repro.storage import Catalog, LNG, Table


def make_catalog(n=2_000, name="t"):
    rng = np.random.default_rng(7)
    cat = Catalog()
    cat.add(
        Table.from_arrays(
            name,
            {
                "a": (LNG, rng.integers(0, 1_000, n)),
                "b": (LNG, rng.integers(0, 100, n)),
            },
        )
    )
    return cat


def make_plan(catalog, hi=500, table="t"):
    b = PlanBuilder(catalog)
    sel = b.select(b.scan(table, "a"), RangePredicate(hi=hi))
    proj = b.fetch(sel, b.scan(table, "b"))
    return b.build(b.aggregate("sum", proj))


class TestPlanSignature:
    def test_identical_structure_same_signature(self):
        # Two distinct catalogs with identical column names/dtypes/sizes
        # must hash identically -- the whole point of template params
        # over process-local column uids.
        sig_a = plan_signature(make_plan(make_catalog()))
        sig_b = plan_signature(make_plan(make_catalog()))
        assert sig_a == sig_b

    def test_plan_copy_same_signature(self):
        plan = make_plan(make_catalog())
        assert plan_signature(plan) == plan_signature(plan.copy())

    def test_different_predicate_differs(self):
        cat = make_catalog()
        assert plan_signature(make_plan(cat, hi=500)) != plan_signature(
            make_plan(cat, hi=501)
        )

    def test_different_column_length_differs(self):
        assert plan_signature(make_plan(make_catalog(2_000))) != plan_signature(
            make_plan(make_catalog(2_001))
        )

    def test_engine_fingerprints_not_portable(self):
        """The contrast that motivates the template signature."""
        plan_a = make_plan(make_catalog())
        plan_b = make_plan(make_catalog())
        fps_a = [out.fingerprint() for out in plan_a.outputs]
        fps_b = [out.fingerprint() for out in plan_b.outputs]
        assert fps_a != fps_b  # column uids differ
        assert plan_signature(plan_a) == plan_signature(plan_b)

    def test_hex_and_stable_width(self):
        sig = plan_signature(make_plan(make_catalog()))
        assert len(sig) == 32
        int(sig, 16)  # pure hex


class TestMachineSignature:
    def test_topology_format(self):
        assert machine_signature(two_socket_machine()) == "2s8c2t"

    def test_thread_cap_suffix(self):
        assert machine_signature(two_socket_machine(), 16) == "2s8c2t-cap16"

    def test_config_signature_uses_machine_and_cap(self):
        config = SimulationConfig(machine=laptop_machine(8))
        sig = config_signature(config)
        assert sig.startswith(
            f"{config.machine.sockets}s{config.machine.cores_per_socket}c"
        )

    def test_different_topologies_differ(self):
        assert machine_signature(two_socket_machine()) != machine_signature(
            laptop_machine(8)
        )
