"""Convergence policies driving the adaptive loop end to end."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import SimulationConfig, laptop_machine, two_socket_machine
from repro.core import AdaptiveParallelizer
from repro.errors import LearnError
from repro.learn import (
    POLICY_BANDIT,
    POLICY_CREDIT_DEBIT,
    POLICY_WARMSTART,
    DopDecision,
    ExperienceRecord,
    ExperienceStore,
    config_signature,
    plan_signature,
    resolve_policy,
)
from repro.operators import RangePredicate
from repro.plan import PlanBuilder, validate_plan
from repro.storage import Catalog, LNG, Table


@pytest.fixture()
def catalog(rng) -> Catalog:
    n = 20_000
    cat = Catalog()
    cat.add(
        Table.from_arrays(
            "t",
            {
                "a": (LNG, rng.integers(0, 1_000, n)),
                "b": (LNG, rng.integers(0, 100, n)),
            },
        )
    )
    return cat


@pytest.fixture()
def config() -> SimulationConfig:
    return SimulationConfig(machine=laptop_machine(8), data_scale=1000.0)


def make_plan(catalog):
    b = PlanBuilder(catalog)
    sel = b.select(b.scan("t", "a"), RangePredicate(hi=500))
    proj = b.fetch(sel, b.scan("t", "b"))
    return b.build(b.aggregate("sum", proj))


def run(config, plan, **kwargs):
    parallelizer = AdaptiveParallelizer(config, **kwargs)
    try:
        return parallelizer.optimize(plan)
    finally:
        parallelizer.close()


class TestResolvePolicy:
    def test_default_and_aliases(self):
        assert resolve_policy(None) == POLICY_CREDIT_DEBIT
        assert resolve_policy("warmstart") == POLICY_WARMSTART
        assert resolve_policy("warm-start") == POLICY_WARMSTART
        assert resolve_policy("cd") == POLICY_CREDIT_DEBIT
        assert resolve_policy("bandit") == POLICY_BANDIT

    def test_unknown_raises(self):
        with pytest.raises(LearnError):
            resolve_policy("thompson")

    def test_decision_diagnostic_convention(self):
        diag = DopDecision(3, "warm_start", 7, detail="why").as_diagnostic()
        assert diag.rule == "dop.warm_start"
        assert diag.severity == "info"
        assert "dop=7" in diag.message and "why" in diag.message


class TestDefaultPolicyUnchanged:
    def test_default_result_matches_explicit_credit_debit(self, catalog, config):
        base = run(config, make_plan(catalog))
        explicit = run(config, make_plan(catalog), policy="credit_debit")
        assert base.exec_times() == explicit.exec_times()
        assert base.gme_run == explicit.gme_run
        assert base.policy == POLICY_CREDIT_DEBIT

    def test_decisions_collected_even_for_default(self, catalog, config):
        result = run(config, make_plan(catalog))
        assert result.decisions[0].source == "serial"
        assert all(d.source == "credit_debit" for d in result.decisions[1:])
        assert len(result.decisions) == result.total_runs


class TestWarmStart:
    def test_second_encounter_converges_faster(self, catalog, config):
        store = ExperienceStore()
        cold = run(config, make_plan(catalog), policy="warmstart", experience=store)
        warm = run(config, make_plan(catalog), policy="warmstart", experience=store)
        assert not cold.warm_start
        assert warm.warm_start
        assert warm.runs_to_gme < cold.runs_to_gme
        assert any(d.source == "warm_start" for d in warm.decisions)
        validate_plan(warm.best_plan)
        # Both converge to equally good plans (same GME band).
        assert warm.gme_time <= cold.gme_time * (1 + cold.gme_threshold * 2)

    def test_warm_trace_is_deterministic(self, catalog, config):
        def encounter():
            store = ExperienceStore()
            run(config, make_plan(catalog), policy="warmstart", experience=store)
            result = run(
                config, make_plan(catalog), policy="warmstart", experience=store
            )
            return result.exec_times(), [d.as_dict() for d in result.decisions]

        assert encounter() == encounter()

    def test_machine_shape_mismatch_falls_back_cold(self, catalog, config):
        store = ExperienceStore()
        plan = make_plan(catalog)
        # A record learned on a *different* topology must be refused.
        store.record(
            ExperienceRecord(
                plan=plan_signature(plan),
                machine="4s24c2t",
                dop=30,
                gme_run=30,
                total_runs=60,
                serial_ms=100.0,
                gme_ms=20.0,
            )
        )
        result = run(config, plan, policy="warmstart", experience=store)
        assert not result.warm_start
        fallback = result.decisions[0]
        assert fallback.source == "cold_fallback"
        assert "machine-shape mismatch" in fallback.detail
        assert store.stats().shape_mismatches == 1
        # And the cold walk still converges normally.
        assert result.gme_time < result.serial_time

    def test_fingerprint_collision_degrades_gracefully(self, catalog, config):
        """A colliding record (wrong plan, same key) must only cost runs.

        Simulated by priming the store with an absurd DOP under this
        plan's key -- exactly what a template collision with a much
        bigger query would produce.  The search must still converge to
        a valid plan in the GME band, never crash or mis-verify.
        """
        store = ExperienceStore()
        plan = make_plan(catalog)
        store.record(
            ExperienceRecord(
                plan=plan_signature(plan),
                machine=config_signature(config),
                dop=500,  # far beyond what this plan supports
                gme_run=500,
                total_runs=600,
                serial_ms=100.0,
                gme_ms=10.0,
            )
        )
        result = run(
            config, plan, policy="warmstart", experience=store, verify=True
        )
        assert result.warm_start
        assert result.gme_time < result.serial_time
        validate_plan(result.best_plan)

    def test_corrupt_store_never_crashes_adapt(self, catalog, config, tmp_path):
        path = tmp_path / "exp.json"
        path.write_text("{definitely: not json")
        with pytest.warns(UserWarning):
            result = run(
                config,
                make_plan(catalog),
                policy="warmstart",
                experience=path,
            )
        assert result.gme_time < result.serial_time

    def test_default_policy_records_experience(self, catalog, config):
        store = ExperienceStore()
        run(config, make_plan(catalog), experience=store)
        assert len(store) == 1
        record = store.records()[0]
        assert record.dop > 0
        # ... which warm-starts a later warm-capable encounter.
        warm = run(config, make_plan(catalog), policy="warmstart", experience=store)
        assert warm.warm_start


class TestBandit:
    def test_converges_with_fewer_runs_and_less_work(self, catalog, config):
        cold = run(config, make_plan(catalog))
        bandit = run(config, make_plan(catalog), policy="bandit")
        assert bandit.policy == POLICY_BANDIT
        assert bandit.total_runs < cold.total_runs
        assert bandit.total_work < cold.total_work
        assert bandit.gme_time < bandit.serial_time
        assert bandit.bandit_arms  # per-arm table present
        validate_plan(bandit.best_plan)

    def test_deterministic_for_fixed_seed(self, catalog, config):
        a = run(config, make_plan(catalog), policy="bandit")
        b = run(config, make_plan(catalog), policy="bandit")
        assert a.exec_times() == b.exec_times()
        assert [d.as_dict() for d in a.decisions] == [
            d.as_dict() for d in b.decisions
        ]
        assert a.bandit_arms == b.bandit_arms

    def test_seed_independent_quality(self, catalog, config):
        a = run(config, make_plan(catalog), policy="bandit")
        b = run(
            config.with_seed(config.seed + 1), make_plan(catalog), policy="bandit"
        )
        # A noise-free simulation's times depend only on plan structure:
        # reseeding may reorder tie-broken pulls but not change quality.
        assert b.gme_time == pytest.approx(a.gme_time, rel=0.05)

    def test_verify_mode_passes(self, catalog, config):
        result = run(config, make_plan(catalog), policy="bandit", verify=True)
        assert result.total_runs > 1

    def test_serial_kept_when_parallelism_never_helps(self, config):
        cat = Catalog()
        cat.add(Table.from_arrays("tiny", {"v": (LNG, np.arange(4))}))
        b = PlanBuilder(cat)
        plan = b.build(b.aggregate("sum", b.scan("tiny", "v")))
        result = run(config, plan, policy="bandit")
        assert result.gme_run == 0
        assert result.gme_time == result.serial_time


class TestClose:
    def test_close_flushes_owned_store(self, catalog, config, tmp_path):
        path = tmp_path / "exp.json"
        parallelizer = AdaptiveParallelizer(
            config, policy="warmstart", experience=path
        )
        parallelizer.optimize(make_plan(catalog))
        parallelizer.close()
        assert parallelizer.experience.closed
        reread = ExperienceStore(path)
        assert len(reread) == 1

    def test_close_idempotent(self, catalog, config, tmp_path):
        parallelizer = AdaptiveParallelizer(
            config, policy="warmstart", experience=tmp_path / "exp.json"
        )
        parallelizer.optimize(make_plan(catalog))
        parallelizer.close()
        parallelizer.close()  # must not raise

    def test_shared_store_flushed_not_closed(self, catalog, config, tmp_path):
        store = ExperienceStore(tmp_path / "exp.json")
        parallelizer = AdaptiveParallelizer(
            config, policy="warmstart", experience=store
        )
        parallelizer.optimize(make_plan(catalog))
        parallelizer.close()
        assert not store.closed  # other owners may still use it
        assert len(ExperienceStore(tmp_path / "exp.json")) == 1  # flushed
        store.close()

    def test_bandit_confidence_validated(self, config):
        with pytest.raises(Exception):
            AdaptiveParallelizer(config, bandit_confidence=0)
