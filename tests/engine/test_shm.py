"""Shared-memory column publication, scratch arena, and codec."""

from __future__ import annotations

import numpy as np
import pytest

import repro.engine.shm as shm
from repro.engine.shm import (
    SCRATCH_MIN_BYTES,
    ColumnAttachments,
    ColumnRegistry,
    HostCodec,
    ScratchArena,
    ScratchReader,
    collect_column_uids,
    intermediate_host_nbytes,
    live_segment_names,
    shared_memory_available,
)
from repro.errors import ReproError
from repro.storage import LNG
from repro.storage.column import BAT, Candidates, Column, ColumnSlice, Scalar

pytestmark = pytest.mark.skipif(
    not shared_memory_available(), reason="multiprocessing.shared_memory missing"
)


def lng_column(name: str, values) -> Column:
    return Column(name, LNG, np.asarray(values, dtype=LNG.numpy_dtype))


class TestColumnRegistry:
    def test_publish_is_idempotent_per_uid(self):
        registry = ColumnRegistry()
        try:
            col = lng_column("v", np.arange(100))
            meta_a = registry.publish(col)
            meta_b = registry.publish(col)
            assert meta_a is meta_b
            assert len(registry) == 1
            assert registry.published_bytes == col.nbytes
        finally:
            registry.close()

    def test_roundtrip_through_attachments(self):
        registry = ColumnRegistry()
        attachments = ColumnAttachments()
        try:
            col = lng_column("v", np.arange(1000) * 3)
            meta = registry.publish(col)
            attachments.learn([meta])
            remote = attachments.column(col.uid)
            assert remote.uid == col.uid
            assert remote.name == col.name
            np.testing.assert_array_equal(remote.values, col.values)
            assert not remote.values.flags.writeable
        finally:
            attachments.close()
            registry.close()

    def test_unknown_uid_fails_loudly(self):
        attachments = ColumnAttachments()
        try:
            with pytest.raises(ReproError, match="no attachment"):
                attachments.column(10**9)
        finally:
            attachments.close()

    def test_close_unlinks_and_is_idempotent(self):
        registry = ColumnRegistry()
        meta = registry.publish(lng_column("v", np.arange(10)))
        assert meta.segment in live_segment_names()
        registry.close()
        registry.close()
        assert meta.segment not in live_segment_names()
        with pytest.raises(ReproError, match="closed"):
            registry.publish(lng_column("w", np.arange(5)))


class TestScratchArena:
    def test_blocks_reused_across_generations(self):
        arena = ScratchArena("test")
        try:
            arena.place(np.arange(1000, dtype=np.int64), generation=1)
            arena.reclaim(1)
            arena.place(np.arange(900, dtype=np.int64), generation=2)
            assert arena.block_count == 1
        finally:
            arena.close()

    def test_stale_descriptor_detected(self):
        arena = ScratchArena("test")
        reader = ScratchReader()
        try:
            desc = arena.place(np.arange(100, dtype=np.int64), generation=1)
            arena.reclaim(1)
            arena.place(np.arange(100, dtype=np.int64), generation=2)
            with pytest.raises(ReproError, match="reclaimed"):
                reader.read(desc, copy=True)
        finally:
            reader.close()
            arena.close()

    def test_reader_roundtrip_copy_and_view(self):
        arena = ScratchArena("test")
        reader = ScratchReader()
        try:
            data = np.arange(5000, dtype=np.float64) * 0.5
            desc = arena.place(data, generation=3)
            copied = reader.read(desc, copy=True)
            np.testing.assert_array_equal(copied, data)
            assert copied.flags.writeable
            view = reader.read(desc, copy=False)
            np.testing.assert_array_equal(view, data)
            assert not view.flags.writeable
        finally:
            reader.close()
            arena.close()

    def test_close_unlinks_all_blocks(self):
        arena = ScratchArena("test")
        arena.place(np.arange(10, dtype=np.int64), generation=1)
        assert live_segment_names()
        before = live_segment_names()
        arena.close()
        assert live_segment_names() < before


class TestHostCodec:
    def test_column_slice_roundtrips_to_original_object(self):
        codec = HostCodec()
        try:
            col = lng_column("v", np.arange(500))
            value = ColumnSlice(col, 10, 200)
            decoded = codec.decode_intermediate(codec.encode_intermediate(value))
            assert isinstance(decoded, ColumnSlice)
            assert decoded.column is col  # identity, not a copy
            assert (decoded.lo, decoded.hi) == (10, 200)
        finally:
            codec.close()

    def test_view_of_published_column_ships_as_descriptor(self):
        codec = HostCodec()
        try:
            col = lng_column("v", np.arange(50_000))
            codec.registry.publish(col)
            view = col.values[1000:40_000]
            kind, desc = codec.encode_array(view)
            assert kind == "col"
            assert desc == (col.uid, 1000 * 8, 39_000)
            decoded = codec.decode_array((kind, desc))
            assert decoded.base is not None
            np.testing.assert_array_equal(decoded, view)
        finally:
            codec.close()

    def test_large_foreign_array_spills_to_scratch(self):
        codec = HostCodec()
        try:
            codec.begin_batch()
            big = np.arange(SCRATCH_MIN_BYTES, dtype=np.int64)
            kind, __ = codec.encode_array(big)
            assert kind == "scr"
            assert codec.shipped_bytes == big.nbytes
        finally:
            codec.close()

    def test_small_foreign_array_rides_the_pipe(self):
        codec = HostCodec()
        try:
            kind, payload = codec.encode_array(np.arange(16, dtype=np.int64))
            assert kind == "raw"
            np.testing.assert_array_equal(payload, np.arange(16))
        finally:
            codec.close()

    def test_candidates_bat_scalar_roundtrip(self):
        codec = HostCodec()
        try:
            codec.begin_batch()
            for value in (
                Candidates(np.arange(100, dtype=np.int64), unique=True),
                BAT(
                    np.arange(50, dtype=np.int64),
                    np.arange(50, dtype=np.int64) * 2,
                    LNG,
                ),
                Scalar(42.5, LNG),
            ):
                decoded = codec.decode_intermediate(
                    codec.encode_intermediate(value)
                )
                assert type(decoded) is type(value)
        finally:
            codec.close()


class TestWorkerCodec:
    """The worker side of the transport, driven in-process (coverage of
    the codec paths that normally only run inside pool workers)."""

    def _pair(self):
        from repro.engine.shm import WorkerCodec

        host = HostCodec()
        worker = WorkerCodec()
        return host, worker

    def test_decodes_column_payload_zero_copy(self):
        host, worker = self._pair()
        try:
            col = lng_column("v", np.arange(20_000))
            host.registry.publish(col)
            worker.learn([host.registry.meta(col.uid)])
            payload = host.encode_array(col.values[100:15_000])
            decoded = worker.decode_array(payload)
            np.testing.assert_array_equal(decoded, col.values[100:15_000])
            assert not decoded.flags.writeable  # view of the shared pages
        finally:
            worker.close()
            host.close()

    def test_worker_slice_of_attached_column_roundtrips(self):
        host, worker = self._pair()
        try:
            col = lng_column("v", np.arange(1000))
            host.registry.publish(col)
            worker.learn([host.registry.meta(col.uid)])
            remote = worker.attachments.column(col.uid)
            encoded = worker.encode_intermediate(ColumnSlice(remote, 5, 500))
            assert encoded == ("slice", col.uid, 5, 500)
            decoded = host.decode_intermediate(encoded)
            assert decoded.column is col
        finally:
            worker.close()
            host.close()

    def test_worker_slice_of_unpublished_column_fails(self):
        host, worker = self._pair()
        try:
            private = lng_column("local", np.arange(100))
            with pytest.raises(ReproError, match="unpublished"):
                worker.encode_intermediate(ColumnSlice(private, 0, 10))
        finally:
            worker.close()
            host.close()

    def test_worker_scratch_result_read_by_host(self):
        host, worker = self._pair()
        try:
            worker.begin_job(1)
            oids = np.arange(SCRATCH_MIN_BYTES, dtype=np.int64)
            payload = worker.encode_intermediate(
                Candidates(oids, check_sorted=False, unique=True)
            )
            assert payload[1][0] == "scr"
            decoded = host.decode_intermediate(payload)
            np.testing.assert_array_equal(decoded.oids, oids)
            # The host copies scratch payloads out, so the worker arena
            # can reuse the block next generation without corruption.
            worker.begin_job(2)
            worker.encode_intermediate(
                Candidates(oids * 0, check_sorted=False, unique=True)
            )
            np.testing.assert_array_equal(decoded.oids, oids)
        finally:
            worker.close()
            host.close()

    def test_begin_job_reclaims_older_generations_only(self):
        __, worker = self._pair()
        try:
            worker.begin_job(1)
            worker._place_scratch(np.arange(100, dtype=np.int64))
            worker.begin_job(1)  # same generation: nothing reclaimed
            assert any(b.in_use for b in worker.arena._blocks)
            worker.begin_job(2)  # next batch: older blocks reusable
            assert not any(b.in_use for b in worker.arena._blocks)
        finally:
            worker.close()

    def test_unknown_payload_kinds_rejected(self):
        host, worker = self._pair()
        try:
            with pytest.raises(ReproError, match="unknown array payload"):
                worker.decode_array(("bogus", None))
            with pytest.raises(ReproError, match="unknown intermediate"):
                host.decode_intermediate(("bogus",))
            with pytest.raises(ReproError, match="cannot ship"):
                host.encode_intermediate(object())
        finally:
            worker.close()
            host.close()


class TestPayloadHelpers:
    def test_collect_column_uids(self):
        codec = HostCodec()
        try:
            col = lng_column("v", np.arange(200))
            payload = codec.encode_intermediate(ColumnSlice(col, 0, 100))
            uids: set[int] = set()
            collect_column_uids(payload, uids)
            assert uids == {col.uid}
            # A pickled candidates payload references no columns.
            raw = codec.encode_intermediate(
                Candidates(np.arange(8, dtype=np.int64), unique=True)
            )
            assert collect_column_uids(raw, set()) == set()
        finally:
            codec.close()

    def test_intermediate_host_nbytes(self):
        col = lng_column("v", np.arange(100))
        assert intermediate_host_nbytes(ColumnSlice(col, 0, 50)) == 50 * 8
        cand = Candidates(np.arange(10, dtype=np.int64), unique=True)
        assert intermediate_host_nbytes(cand) == cand.nbytes


class TestLeakRegistry:
    def test_forget_inherited_segments_clears_only_registry(self):
        registry = ColumnRegistry()
        meta = registry.publish(lng_column("v", np.arange(10)))
        assert meta.segment in live_segment_names()
        shm.forget_inherited_segments()
        # Registry forgot the name (a forked child must not unlink the
        # parent's segments at exit) but the segment itself still exists
        # for the owner to clean up.
        assert meta.segment not in live_segment_names()
        registry.close()  # still unlinks its own handle
