"""Hash-build amortization across join clones (MonetDB BAT hash caching)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import SimulationConfig, laptop_machine
from repro.engine import execute
from repro.operators import Aggregate, Join, PartitionSlice, Pack
from repro.operators.slice import FRACTION_UNITS
from repro.plan import Plan
from repro.plan.graph import PlanNode
from repro.operators.scan import Scan
from repro.storage import Catalog, Column, LNG, Table


@pytest.fixture()
def config() -> SimulationConfig:
    return SimulationConfig(machine=laptop_machine(8), data_scale=2000.0)


def two_clone_join_plan(rng) -> Plan:
    outer = Column("o", LNG, rng.integers(0, 5_000, 40_000))
    inner = Column("i", LNG, np.arange(5_000))
    plan = Plan()
    outer_scan = plan.add(Scan(outer), label="t.o")
    inner_scan = plan.add(Scan(inner), label="d.i")
    half = FRACTION_UNITS // 2
    left_slice = plan.add(PartitionSlice(0, half), [outer_scan], order_key=0)
    right_slice = plan.add(PartitionSlice(half, FRACTION_UNITS), [outer_scan], order_key=half)
    left = plan.add(Join(), [left_slice, inner_scan], order_key=0)
    right = plan.add(Join(), [right_slice, inner_scan], order_key=half)
    packed = plan.add(Pack(), [left, right])
    plan.set_outputs([plan.add(Aggregate("count"), [packed])])
    return plan


class TestBuildAmortization:
    def test_second_clone_probes_shared_hash(self, rng, config):
        """Two join clones over the same inner input: only one pays the
        build, so their durations differ by the build cost."""
        plan = two_clone_join_plan(rng)
        result = execute(plan, config)
        joins = sorted(
            (r for r in result.profile.records if r.kind == "join"),
            key=lambda r: r.cpu_cycles,
        )
        assert len(joins) == 2
        # The amortized clone skips the build cycles despite identical
        # probe work (equal outer halves); durations can tie when both
        # end up memory-bound.
        assert joins[0].cpu_cycles < joins[1].cpu_cycles
        assert joins[0].duration <= joins[1].duration

    def test_amortization_is_per_submission(self, rng, config):
        """A different submission of the same plan re-pays the build
        (caches are per-execution in the simulator)."""
        from repro.engine import Simulator

        plan = two_clone_join_plan(rng)
        sim = Simulator(config)
        a = sim.submit(plan.copy())
        b = sim.submit(plan.copy())
        sim.run()
        for sid in (a, b):
            joins = [r for r in sim.result(sid).profile.records if r.kind == "join"]
            cycles = sorted(r.cpu_cycles for r in joins)
            assert cycles[0] < cycles[1]

    def test_distinct_inners_both_pay(self, rng, config):
        outer = Column("o", LNG, rng.integers(0, 5_000, 40_000))
        inner_a = Column("a", LNG, np.arange(5_000))
        inner_b = Column("b", LNG, np.arange(5_000))
        plan = Plan()
        outer_scan = plan.add(Scan(outer), label="t.o")
        join_a = plan.add(Join(), [outer_scan, plan.add(Scan(inner_a), label="d.a")])
        join_b = plan.add(Join(), [outer_scan, plan.add(Scan(inner_b), label="d.b")])
        plan.set_outputs([
            plan.add(Aggregate("count"), [join_a]),
            plan.add(Aggregate("count"), [join_b]),
        ])
        result = execute(plan, config)
        joins = [r for r in result.profile.records if r.kind == "join"]
        # Different build inputs: neither is discounted, durations match.
        assert joins[0].cpu_cycles == pytest.approx(joins[1].cpu_cycles, rel=1e-6)
