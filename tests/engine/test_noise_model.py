"""The noise model in isolation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import NOISY, QUIET, NoiseConfig
from repro.engine import NoiseModel


class TestNoiseModel:
    def test_quiet_always_one(self):
        model = NoiseModel(QUIET, np.random.default_rng(0))
        assert all(model.factor() == 1.0 for __ in range(100))
        assert model.peaks_injected == 0

    def test_jitter_bounded(self):
        model = NoiseModel(NoiseConfig(jitter=0.1), np.random.default_rng(0))
        factors = [model.factor() for __ in range(500)]
        assert all(0.9 <= f <= 1.1 for f in factors)
        assert len(set(factors)) > 100  # actually varies

    def test_peaks_counted(self):
        config = NoiseConfig(peak_probability=0.5, peak_magnitude=5.0)
        model = NoiseModel(config, np.random.default_rng(1))
        factors = [model.factor() for __ in range(200)]
        assert model.peaks_injected > 50
        assert max(factors) > 2.0

    def test_peak_magnitude_bounded(self):
        config = NoiseConfig(peak_probability=1.0, peak_magnitude=3.0)
        model = NoiseModel(config, np.random.default_rng(2))
        assert all(model.factor() <= 4.0 + 1e-9 for __ in range(200))

    def test_factor_never_collapses_to_zero(self):
        # Extreme jitter could drive 1 + jitter*U(-1,1) negative; the
        # model floors the factor at a small positive bound.
        model = NoiseModel(NoiseConfig(jitter=5.0), np.random.default_rng(3))
        assert all(model.factor() >= 0.05 for __ in range(500))

    def test_noisy_preset_sane(self):
        model = NoiseModel(NOISY, np.random.default_rng(4))
        factors = [model.factor() for __ in range(1_000)]
        # Mostly near 1, occasionally large.
        near_one = sum(1 for f in factors if 0.9 < f < 1.1)
        assert near_one > 900
        assert max(factors) > 1.5
