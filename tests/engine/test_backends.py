"""Pluggable evaluation backends: selection, worker sizing, and the
process pool's shipping mechanics.

The backend x workers determinism sweeps that used to live here were
consolidated into ``tests/integration/test_determinism_matrix.py``;
this module keeps the backend-registry, ``default_workers``, and
process-boundary (shared memory, certification, spawn) unit tests.
"""

from __future__ import annotations

import threading

import pytest

import repro.engine.backends as backends
from repro.analysis.certificates import CertificateRegistry
from repro.core.adaptive import intermediates_equal
from repro.engine import EvalPool, execute
from repro.engine.backends import (
    ProcessBackend,
    available_backends,
    create_backend,
    resolve_backend_name,
)
from repro.engine.evalpool import _cgroup_cpu_limit, default_workers
from repro.engine.shm import shared_memory_available
from repro.errors import BackendUnavailableError, ReproError, UncertifiedKernelError
from repro.operators import RangePredicate
from repro.plan import PlanBuilder

needs_shm = pytest.mark.skipif(
    not shared_memory_available(), reason="multiprocessing.shared_memory missing"
)


def q1_style_plan(catalog):
    builder = PlanBuilder(catalog)
    sel = builder.select(builder.scan("facts", "val"), RangePredicate(hi=700))
    proj = builder.fetch(sel, builder.scan("facts", "qty"))
    return builder.build(builder.aggregate("sum", proj))


@pytest.fixture()
def ship_everything(monkeypatch):
    """Force the process backend to ship every job through shared memory
    (test datasets are small enough that the 16 KiB inline threshold
    would otherwise keep most kernels on the main thread)."""
    monkeypatch.setattr(backends, "PROCESS_MIN_SHIP_BYTES", 0)


class TestRegistry:
    def test_core_backends_registered(self):
        names = available_backends()
        for name in ("inline", "thread", "process", "subinterpreter"):
            assert name in names

    def test_default_is_thread(self, monkeypatch):
        monkeypatch.delenv(backends.BACKEND_ENV, raising=False)
        assert resolve_backend_name(None) == "thread"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(backends.BACKEND_ENV, "inline")
        assert resolve_backend_name(None) == "inline"

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(backends.BACKEND_ENV, "inline")
        assert resolve_backend_name("process") == "process"

    def test_unknown_backend_rejected(self):
        with pytest.raises(BackendUnavailableError, match="unknown"):
            resolve_backend_name("gpu")

    def test_subinterpreter_is_a_stub(self):
        with pytest.raises(BackendUnavailableError, match="stub"):
            create_backend("subinterpreter", 2)


class TestDefaultWorkers:
    """``default_workers`` respects affinity masks and cgroup quotas."""

    def test_positive_and_bounded_by_visible_cpus(self):
        import os

        count = default_workers()
        assert count >= 1
        if hasattr(os, "sched_getaffinity"):
            assert count <= len(os.sched_getaffinity(0))

    def test_cgroup_v2_quota(self, tmp_path):
        (tmp_path / "cpu.max").write_text("200000 100000\n")
        assert _cgroup_cpu_limit(str(tmp_path)) == 2

    def test_cgroup_v2_unlimited(self, tmp_path):
        (tmp_path / "cpu.max").write_text("max 100000\n")
        assert _cgroup_cpu_limit(str(tmp_path)) is None

    def test_cgroup_v2_fractional_quota_floors_to_one(self, tmp_path):
        (tmp_path / "cpu.max").write_text("50000 100000\n")
        assert _cgroup_cpu_limit(str(tmp_path)) == 1

    def test_cgroup_v1_quota(self, tmp_path):
        v1 = tmp_path / "cpu"
        v1.mkdir()
        (v1 / "cpu.cfs_quota_us").write_text("300000\n")
        (v1 / "cpu.cfs_period_us").write_text("100000\n")
        assert _cgroup_cpu_limit(str(tmp_path)) == 3

    def test_cgroup_v1_unlimited(self, tmp_path):
        v1 = tmp_path / "cpu"
        v1.mkdir()
        (v1 / "cpu.cfs_quota_us").write_text("-1\n")
        (v1 / "cpu.cfs_period_us").write_text("100000\n")
        assert _cgroup_cpu_limit(str(tmp_path)) is None

    def test_missing_cgroup_files_mean_unlimited(self, tmp_path):
        assert _cgroup_cpu_limit(str(tmp_path)) is None

    def test_quota_caps_default_workers(self, tmp_path):
        (tmp_path / "cpu.max").write_text("100000 100000\n")
        assert default_workers(_cgroup_base=str(tmp_path)) == 1

    def test_memoized_per_process(self, tmp_path, monkeypatch):
        """Repeated calls probe the cgroup filesystem exactly once.

        The probe showed up in wallclock-bench stage timings, so
        ``default_workers`` memoizes per (process, cgroup base);
        ``cache_clear()`` forces a re-probe.
        """
        import repro.engine.evalpool as evalpool

        probes = []
        real = evalpool._cgroup_cpu_limit
        monkeypatch.setattr(
            evalpool,
            "_cgroup_cpu_limit",
            lambda base: probes.append(base) or real(base),
        )
        (tmp_path / "cpu.max").write_text("200000 100000\n")
        default_workers.cache_clear()
        first = default_workers(_cgroup_base=str(tmp_path))
        for _ in range(5):
            assert default_workers(_cgroup_base=str(tmp_path)) == first
        assert probes == [str(tmp_path)]
        default_workers.cache_clear()
        assert default_workers(_cgroup_base=str(tmp_path)) == first
        assert len(probes) == 2


class TestEvalPoolBackendSelection:
    def test_inline_backend_never_leaves_main_thread(self):
        with EvalPool(4, backend="inline") as pool:
            main = threading.get_ident()
            seen = pool.run_batch([threading.get_ident for _ in range(8)])
            assert set(seen) == {main}
            assert pool.stats().parallel_batches == 0
            assert pool.backend == "inline"

    def test_env_backend_reaches_pool(self, monkeypatch):
        monkeypatch.setenv(backends.BACKEND_ENV, "inline")
        with EvalPool(4) as pool:
            assert pool.backend == "inline"

    def test_unknown_backend_fails_at_construction(self):
        with pytest.raises(BackendUnavailableError):
            EvalPool(4, backend="gpu")

    def test_close_is_idempotent_and_refuses_parallel_batches(self):
        pool = EvalPool(4, backend="thread")
        pool.run_batch([lambda: 1, lambda: 2])
        pool.close()
        pool.close()  # atexit-safe
        # Inline evaluation still works after close (a close racing a
        # final below-threshold batch must not crash) ...
        assert pool.run_batch([lambda: 3]) == [3]
        # ... but new parallel batches refuse instead of respawning.
        with pytest.raises(ReproError, match="closed"):
            pool.run_batch([lambda: 1, lambda: 2])


@needs_shm
class TestProcessBackend:
    def test_ships_jobs_through_shared_memory(
        self, small_catalog, sim_config, ship_everything
    ):
        from repro.core import HeuristicParallelizer

        # A partitioned plan frees several siblings per dispatch round,
        # so batches clear MIN_PARALLEL_BATCH and actually ship.
        def plan():
            return HeuristicParallelizer(4).parallelize(
                q1_style_plan(small_catalog)
            )

        baseline = execute(plan(), sim_config)
        pool = EvalPool(2, backend="process")
        try:
            result = execute(plan(), sim_config, evalpool=pool)
            stats = pool.stats()
        finally:
            pool.close()
        assert result.response_time == baseline.response_time
        assert intermediates_equal(result.outputs[0], baseline.outputs[0])
        assert stats.backend_stats["shipped_jobs"] > 0
        assert stats.backend_stats["published_columns"] > 0
        # Everything observability exports must be numeric.
        assert all(
            float(v) == float(v) for v in stats.as_dict().values()
        )

    # The backend x workers determinism sweeps (plain execution, the
    # adaptive trace + memo counters, chaos canonical bytes) moved to
    # the consolidated matrix in
    # tests/integration/test_determinism_matrix.py.

    def test_spawn_start_method(
        self, small_catalog, sim_config, ship_everything, monkeypatch
    ):
        """Spawned (not forked) workers attach and evaluate correctly."""
        import multiprocessing

        if "spawn" not in multiprocessing.get_all_start_methods():
            pytest.skip("spawn start method unavailable")
        monkeypatch.setenv(backends.PROCESS_START_ENV, "spawn")
        baseline = execute(q1_style_plan(small_catalog), sim_config)
        result = execute(
            q1_style_plan(small_catalog), sim_config, workers=2, backend="process"
        )
        assert result.response_time == baseline.response_time
        assert intermediates_equal(result.outputs[0], baseline.outputs[0])

    def test_unknown_start_method_rejected(self, monkeypatch):
        monkeypatch.setenv(backends.PROCESS_START_ENV, "teleport")
        with pytest.raises(BackendUnavailableError, match="teleport"):
            ProcessBackend(2)

    def test_thunk_only_batches_stay_on_main_thread(self):
        with EvalPool(2, backend="process") as pool:
            main = threading.get_ident()
            seen = pool.run_batch([threading.get_ident for _ in range(8)])
            assert set(seen) == {main}

    def test_uncertified_op_refused_at_process_boundary(self, small_catalog):
        # A locally-defined class is pure (thread-safe) but cannot be
        # pickled across a process boundary: thread dispatch passes,
        # process dispatch fails closed.
        class LocalOp:
            def evaluate(self, inputs):
                return inputs[0]

            def work_profile(self, inputs, output):
                return None

        op = LocalOp()
        registry = CertificateRegistry()
        cert = registry.check(op, "thread")
        assert cert.pure and not cert.shared_memory_eligible
        with pytest.raises(UncertifiedKernelError, match="process boundary"):
            registry.check(op, "process")
        with EvalPool(2, backend="process") as pool:
            jobs = [lambda: 1, lambda: 2]
            with pytest.raises(UncertifiedKernelError, match="process boundary"):
                pool.run_batch(jobs, ops=[op, op], inputs=[[], []])


class TestUnavailableSharedMemory:
    def test_process_backend_fails_closed(self, monkeypatch):
        monkeypatch.setattr(backends, "shared_memory_available", lambda: False)
        with pytest.raises(BackendUnavailableError, match="shared_memory"):
            ProcessBackend(2)
        # Name resolution still works (the error surfaces when the pool
        # first needs the backend, with an actionable message) ...
        pool = EvalPool(2, backend="process")
        with pytest.raises(BackendUnavailableError):
            pool.run_batch([lambda: 1, lambda: 2], ops=None, inputs=None)
        pool.close()
        # ... and every other backend keeps working.
        with EvalPool(2, backend="thread") as pool:
            assert pool.run_batch([lambda: 1, lambda: 2]) == [1, 2]
