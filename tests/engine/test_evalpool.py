"""The host evaluation pool and its determinism barrier.

The pool only changes *where* ``Operator.evaluate`` runs (which host
thread); the scheduler's dispatch-order commit keeps every simulated
observable -- results, per-run times, memo counters, GME choice --
bit-identical for any worker count.
"""

from __future__ import annotations

import threading

import pytest

from repro.bench.wallclock import q1_style_plan as tpch_q1_style_plan
from repro.config import SimulationConfig, laptop_machine
from repro.core import AdaptiveParallelizer, ConvergenceParams
from repro.core.adaptive import intermediates_equal
from repro.engine import EvalPool, IntermediateCache, execute
from repro.engine.evalpool import MIN_PARALLEL_BATCH, default_workers
from repro.errors import ReproError
from repro.operators import RangePredicate
from repro.plan import PlanBuilder
from repro.workloads import JoinMicroWorkload, TpchDataset

WORKER_COUNTS = (1, 2, 8)


def q1_style_plan(catalog):
    builder = PlanBuilder(catalog)
    sel = builder.select(builder.scan("facts", "val"), RangePredicate(hi=700))
    proj = builder.fetch(sel, builder.scan("facts", "qty"))
    return builder.build(builder.aggregate("sum", proj))


class TestEvalPool:
    def test_results_in_submission_order(self):
        with EvalPool(4) as pool:
            jobs = [lambda i=i: i * i for i in range(32)]
            assert pool.run_batch(jobs) == [i * i for i in range(32)]

    def test_single_worker_runs_inline(self):
        with EvalPool(1) as pool:
            main = threading.get_ident()
            seen = pool.run_batch([threading.get_ident for _ in range(8)])
            assert set(seen) == {main}
            assert pool.stats().parallel_batches == 0

    def test_small_batches_stay_inline(self):
        with EvalPool(4) as pool:
            pool.run_batch([lambda: 1] * (MIN_PARALLEL_BATCH - 1))
            stats = pool.stats()
            assert stats.parallel_batches == 0
            assert stats.inline_jobs == MIN_PARALLEL_BATCH - 1

    def test_exceptions_surface_in_submission_order(self):
        def boom_a():
            raise ValueError("a")

        def boom_b():
            raise KeyError("b")

        with EvalPool(4) as pool:
            with pytest.raises(ValueError):
                pool.run_batch([boom_a, boom_b, lambda: 3])

    def test_stats_snapshot_is_frozen(self):
        with EvalPool(2) as pool:
            pool.run_batch([lambda: 1, lambda: 2, lambda: 3])
            stats = pool.stats()
            with pytest.raises(AttributeError):
                stats.jobs = 0  # type: ignore[misc]
            assert stats.jobs == 3
            assert stats.max_batch == 3

    def test_default_workers_positive(self):
        assert default_workers() >= 1

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ReproError):
            EvalPool(0)


class TestSimulatorDeterminism:
    def test_single_execution_identical_across_workers(
        self, small_catalog, sim_config
    ):
        baseline = execute(q1_style_plan(small_catalog), sim_config)
        for workers in WORKER_COUNTS[1:]:
            result = execute(
                q1_style_plan(small_catalog), sim_config, workers=workers
            )
            assert result.response_time == baseline.response_time
            assert intermediates_equal(result.outputs[0], baseline.outputs[0])

    def test_memo_counters_identical_across_workers(self, small_catalog, sim_config):
        traces = []
        for workers in WORKER_COUNTS:
            memo = IntermediateCache()
            execute(
                q1_style_plan(small_catalog), sim_config, memo=memo, workers=workers
            )
            execute(
                q1_style_plan(small_catalog), sim_config, memo=memo, workers=workers
            )
            traces.append(memo.stats())
        assert traces[0] == traces[1] == traces[2]
        assert traces[0].hits > 0


def adaptive_trace(plan_factory, config, workers):
    ap = AdaptiveParallelizer(
        config,
        convergence=ConvergenceParams(number_of_cores=8, max_runs=10),
        workers=workers,
    )
    try:
        result = ap.optimize(plan_factory())
        memo_stats = ap.memo.stats() if ap.memo is not None else None
        return result, memo_stats
    finally:
        ap.close()


class TestAdaptiveDeterminism:
    """Seeded adaptive instances are bit-identical at workers=1, 2, 8."""

    def check(self, plan_factory, config):
        results = {
            w: adaptive_trace(plan_factory, config, w) for w in WORKER_COUNTS
        }
        base, base_memo = results[WORKER_COUNTS[0]]
        # Node ids are allocated from a process-global counter, so
        # compare the multiset of structural fingerprints, not the
        # nid-keyed dict.
        base_fp = sorted(base.best_plan.fingerprints().values())
        for workers in WORKER_COUNTS[1:]:
            result, memo_stats = results[workers]
            assert result.exec_times() == base.exec_times()
            assert result.gme_run == base.gme_run
            assert result.gme_time == base.gme_time
            assert result.total_runs == base.total_runs
            assert sorted(result.best_plan.fingerprints().values()) == base_fp
            assert memo_stats == base_memo

    def test_q1_style_tpch(self):
        dataset = TpchDataset(scale_factor=1)
        self.check(
            lambda: tpch_q1_style_plan(dataset), dataset.sim_config(seed=7)
        )

    def test_figure15_join_micro(self):
        workload = JoinMicroWorkload(outer_mb=64, inner_mb=16)
        self.check(workload.plan, workload.sim_config(seed=11))

    def test_adaptive_outputs_identical(self, small_catalog):
        config = SimulationConfig(machine=laptop_machine(8), data_scale=100.0)
        outputs = []
        for workers in WORKER_COUNTS:
            ap = AdaptiveParallelizer(
                config,
                convergence=ConvergenceParams(number_of_cores=8, max_runs=6),
                workers=workers,
            )
            try:
                result = ap.optimize(q1_style_plan(small_catalog))
            finally:
                ap.close()
            final = execute(result.best_plan, config)
            outputs.append(final.outputs[0])
        assert intermediates_equal(outputs[0], outputs[1])
        assert intermediates_equal(outputs[0], outputs[2])
