"""Degenerate-profile guards: zero-duration operators, empty records.

``multicore_utilization`` and the tomograph used to assume a finished,
non-empty profile on a positive-thread machine; memoized-everything
runs and direct API use violate all three.
"""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.engine.profiler import OpRecord, QueryProfile
from repro.viz import render_tomograph, render_trace_tomograph, utilization_summary
from repro.observe import Observer, Tracer


def _record(start: float, end: float, kind: str = "scan", thread: int = 0) -> OpRecord:
    return OpRecord(
        node=SimpleNamespace(nid=0),
        kind=kind,
        describe=kind,
        start=start,
        end=end,
        thread_id=thread,
        socket_id=0,
        cpu_cycles=1.0,
        mem_bytes=1.0,
    )


def test_empty_profile_utilization_is_zero():
    profile = QueryProfile(submit_time=0.0, finish_time=1.0)
    assert profile.multicore_utilization(8) == 0.0


def test_unfinished_profile_utilization_is_zero():
    profile = QueryProfile(submit_time=0.0, records=[_record(0.0, 0.5)])
    assert profile.multicore_utilization(8) == 0.0


def test_zero_duration_span_utilization_is_zero():
    """Every operator memoized/free: submit == finish, no division."""
    profile = QueryProfile(
        submit_time=1.0, finish_time=1.0, records=[_record(1.0, 1.0)]
    )
    assert profile.multicore_utilization(8) == 0.0


def test_nonpositive_thread_count_rejected():
    profile = QueryProfile(
        submit_time=0.0, finish_time=1.0, records=[_record(0.0, 0.5)]
    )
    for bad in (0, -4):
        with pytest.raises(ValueError):
            profile.multicore_utilization(bad)


def test_normal_utilization_unchanged():
    profile = QueryProfile(
        submit_time=0.0,
        finish_time=1.0,
        records=[_record(0.0, 0.5), _record(0.5, 1.0, thread=1)],
    )
    assert profile.multicore_utilization(2) == pytest.approx(0.5)


def test_utilization_summary_requires_finish_time():
    with pytest.raises(ValueError, match="no finish time"):
        utilization_summary(QueryProfile(submit_time=0.0), 8)


def test_utilization_summary_on_zero_duration_profile():
    profile = QueryProfile(
        submit_time=1.0, finish_time=1.0, records=[_record(1.0, 1.0)]
    )
    summary = utilization_summary(profile, 8)
    assert summary["span_ms"] == 0.0
    assert summary["multicore_utilization"] == 0.0
    assert summary["operators_executed"] == 1


def test_render_tomograph_zero_duration_operator():
    """A zero-duration record still paints (at least) one cell."""
    profile = QueryProfile(
        submit_time=0.0,
        finish_time=1.0,
        records=[_record(0.5, 0.5, kind="select")],
    )
    art = render_tomograph(profile, 2, width=10)
    assert "S" in art


def test_render_tomograph_requires_finish_time():
    with pytest.raises(ValueError, match="no finish time"):
        render_tomograph(QueryProfile(submit_time=0.0), 2)


def test_render_trace_tomograph_from_observer():
    observer = Observer()
    tracer = observer.tracer
    tracer.add("select", "task", 0.0, 0.4, thread=0, socket=0)
    tracer.add("join", "task", 0.4, 1.0, thread=1, socket=0)
    tracer.advance(1.0)
    tracer.add("select", "task", 0.0, 0.2, thread=0, socket=0)
    observer.finish()
    art = render_trace_tomograph(observer, 2, width=20)
    assert "trace tomograph" in art
    assert "tasks=3" in art
    assert "S" in art and "J" in art


def test_render_trace_tomograph_requires_tasks():
    with pytest.raises(ValueError, match="no finished task spans"):
        render_trace_tomograph(Tracer(), 2)
