"""IntermediateCache bounds, LRU policy, counters, and engine reuse."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import SimulationConfig
from repro.engine import IntermediateCache, Simulator, execute
from repro.errors import ReproError
from repro.operators import Aggregate, Fetch, RangePredicate, Scan, Select
from repro.operators.base import WorkProfile
from repro.plan import Plan
from repro.storage import Column, LNG
from repro.storage.column import BAT, Scalar


def make_bat(n: int) -> BAT:
    return BAT(np.arange(n), np.arange(n), LNG)


def profile() -> WorkProfile:
    return WorkProfile(tuples_in=1, tuples_out=1)


class TestCachePolicy:
    def test_get_put_roundtrip(self):
        cache = IntermediateCache()
        value, prof = make_bat(8), profile()
        assert cache.get(b"k") is None
        cache.put(b"k", value, prof)
        hit = cache.get(b"k")
        assert hit is not None and hit[0] is value and hit[1] is prof

    def test_capacity_must_be_positive(self):
        with pytest.raises(ReproError):
            IntermediateCache(0)

    def test_lru_eviction_by_bytes(self):
        bat = make_bat(64)  # 64 * 16 = 1024 payload bytes
        cache = IntermediateCache(3 * (bat.nbytes + 200))
        for key in (b"a", b"b", b"c"):
            cache.put(key, make_bat(64), profile())
        cache.get(b"a")  # refresh: b becomes LRU
        cache.put(b"d", make_bat(64), profile())
        assert cache.get(b"b") is None
        assert cache.get(b"a") is not None
        assert cache.get(b"c") is not None
        assert cache.get(b"d") is not None
        assert cache.stats().evictions == 1

    def test_oversized_entry_refused(self):
        cache = IntermediateCache(256)
        cache.put(b"big", make_bat(1024), profile())
        assert len(cache) == 0
        assert cache.stats().oversized == 1
        assert cache.current_bytes == 0

    def test_replacement_does_not_leak_bytes(self):
        cache = IntermediateCache()
        cache.put(b"k", make_bat(64), profile())
        before = cache.current_bytes
        cache.put(b"k", make_bat(64), profile())
        assert cache.current_bytes == before
        assert len(cache) == 1

    def test_views_charged_overhead_only(self):
        """Scalars (and slices) are views/constants: caching them must
        not charge the underlying data bytes."""
        cache = IntermediateCache()
        cache.put(b"s", Scalar(1.5, LNG), profile())
        assert cache.current_bytes < 1024

    def test_clear_keeps_counters(self):
        cache = IntermediateCache()
        cache.put(b"k", make_bat(8), profile())
        cache.get(b"k")
        cache.clear()
        assert len(cache) == 0 and cache.current_bytes == 0
        assert cache.stats().hits == 1 and cache.stats().insertions == 1

    def test_stats_hit_rate(self):
        cache = IntermediateCache()
        assert cache.stats().hit_rate == 0.0
        cache.put(b"k", make_bat(4), profile())
        cache.get(b"k")
        cache.get(b"missing")
        assert cache.stats().hit_rate == pytest.approx(0.5)
        as_dict = cache.stats().as_dict()
        assert as_dict["hits"] == 1 and as_dict["misses"] == 1


def small_plan() -> Plan:
    col = Column("v", LNG, np.arange(4_000) % 97)
    plan = Plan()
    scan = plan.add(Scan(col))
    sel = plan.add(Select(RangePredicate(hi=40)), [scan])
    fetch = plan.add(Fetch(), [sel, scan])
    agg = plan.add(Aggregate("sum"), [fetch])
    plan.set_outputs([agg])
    return plan


class TestThreadSafety:
    def test_concurrent_get_put_keeps_counters_consistent(self):
        """Hammer one cache from many threads; invariants must hold.

        The evaluation pool only ever *reads* inputs concurrently (all
        cache mutation happens on the commit path), but the cache's
        single-lock design is meant to survive arbitrary interleaving.
        """
        import threading

        cache = IntermediateCache(capacity_bytes=64 * 1024)
        profile = WorkProfile(tuples_out=8)
        rounds = 200

        def worker(tid: int) -> None:
            for i in range(rounds):
                key = f"{tid % 3}:{i % 17}".encode()
                if cache.get(key) is None:
                    cache.put(key, make_bat(8), profile)
                cache.peek(key)
                len(cache)

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stats = cache.stats()
        assert stats.hits + stats.misses == 8 * rounds
        # Every miss is followed by exactly one (small) put.
        assert stats.insertions == stats.misses
        assert stats.lookups == stats.hits + stats.misses


class TestEngineIntegration:
    def test_repeat_execution_hits_cache(self):
        config = SimulationConfig(seed=7)
        memo = IntermediateCache()
        plan = small_plan()
        execute(plan.copy(), config, memo=memo)
        first_misses = memo.stats().misses
        execute(plan.copy(), config, memo=memo)
        assert memo.stats().hits == first_misses  # every operator reused
        assert memo.stats().misses == first_misses

    def test_cached_results_identical(self):
        config = SimulationConfig(seed=7)
        plan = small_plan()
        plain = execute(plan.copy(), config)
        memo = IntermediateCache()
        execute(plan.copy(), config, memo=memo)
        warm = execute(plan.copy(), config, memo=memo)
        assert warm.response_time == plain.response_time
        assert warm.outputs[0].value == plain.outputs[0].value
        records = [
            (r.kind, r.start, r.end, r.thread_id) for r in plain.profile.records
        ]
        warm_records = [
            (r.kind, r.start, r.end, r.thread_id) for r in warm.profile.records
        ]
        assert records == warm_records

    def test_simulator_without_memo_skips_fingerprints(self):
        sim = Simulator(SimulationConfig(seed=7))
        sid = sim.submit(small_plan())
        sim.run()
        assert sim.result(sid).outputs  # plain path still works
