"""NUMA placement modes: first-touch vs strict producer locality."""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.config import SimulationConfig, two_socket_machine
from repro.core import HeuristicParallelizer
from repro.engine import execute
from repro.operators import RangePredicate
from repro.plan import PlanBuilder
from repro.storage import Catalog, LNG, Table


@pytest.fixture()
def catalog(rng) -> Catalog:
    cat = Catalog()
    cat.add(
        Table.from_arrays(
            "t",
            {
                "a": (LNG, rng.integers(0, 1000, 50_000)),
                "b": (LNG, rng.integers(0, 100, 50_000)),
            },
        )
    )
    return cat


def make_plan(catalog):
    b = PlanBuilder(catalog)
    sel = b.select(b.scan("t", "a"), RangePredicate(hi=500))
    return b.build(b.aggregate("sum", b.fetch(sel, b.scan("t", "b"))))


def config_with(machine) -> SimulationConfig:
    return SimulationConfig(machine=machine, data_scale=1000.0)


class TestNumaModes:
    def test_first_touch_is_default(self):
        assert two_socket_machine().numa_first_touch

    def test_strict_numa_never_faster(self, catalog):
        """Remote-socket reads can only slow a parallel plan down."""
        plan = HeuristicParallelizer(32).parallelize(make_plan(catalog))
        oblivious = execute(plan, config_with(two_socket_machine()))
        strict_machine = replace(
            two_socket_machine(), numa_first_touch=False, numa_remote_factor=0.5
        )
        strict = execute(plan, config_with(strict_machine))
        assert strict.response_time >= oblivious.response_time

    def test_strict_numa_changes_times_not_results(self, catalog):
        plan = HeuristicParallelizer(16).parallelize(make_plan(catalog))
        oblivious = execute(plan, config_with(two_socket_machine()))
        strict_machine = replace(
            two_socket_machine(), numa_first_touch=False, numa_remote_factor=0.3
        )
        strict = execute(plan, config_with(strict_machine))
        assert strict.outputs[0].value == oblivious.outputs[0].value

    def test_remote_factor_one_equals_oblivious(self, catalog):
        """With no bandwidth penalty the placement mode is irrelevant."""
        plan = HeuristicParallelizer(16).parallelize(make_plan(catalog))
        oblivious = execute(plan, config_with(two_socket_machine()))
        neutral = replace(
            two_socket_machine(), numa_first_touch=False, numa_remote_factor=1.0
        )
        strict = execute(plan, config_with(neutral))
        assert strict.response_time == pytest.approx(
            oblivious.response_time, rel=1e-9
        )

    def test_single_socket_unaffected_by_mode(self, catalog):
        from repro.config import laptop_machine

        plan = HeuristicParallelizer(8).parallelize(make_plan(catalog))
        base = execute(plan, config_with(laptop_machine(8)))
        strict_machine = replace(
            laptop_machine(8), numa_first_touch=False, numa_remote_factor=0.3
        )
        strict = execute(plan, config_with(strict_machine))
        assert strict.response_time == pytest.approx(base.response_time, rel=1e-9)
