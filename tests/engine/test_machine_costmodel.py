"""Machine state, placement policy, and the cost model."""

from __future__ import annotations

import pytest

from repro.config import MachineSpec, laptop_machine, two_socket_machine
from repro.costmodel import CostContext, CostParams, compute_work, thread_bandwidth_cap
from repro.engine.machine import MachineState
from repro.errors import SchedulerError
from repro.operators import WorkProfile


class TestMachineSpec:
    def test_two_socket_preset_matches_table1(self):
        spec = two_socket_machine()
        assert spec.hardware_threads == 32
        assert spec.physical_cores == 16
        assert spec.l3_mb == 20
        assert spec.memory_gb == 256
        assert spec.ghz == 2.0

    def test_four_socket_preset_matches_table1(self):
        spec = MachineSpec.__call__  # appease linters; real check below
        from repro.config import four_socket_machine

        spec = four_socket_machine()
        assert spec.hardware_threads == 96
        assert spec.l3_mb == 30
        assert spec.memory_gb == 1024

    def test_socket_of_core(self):
        spec = two_socket_machine()
        assert spec.socket_of_core(0) == 0
        assert spec.socket_of_core(8) == 1
        with pytest.raises(ValueError):
            spec.socket_of_core(16)

    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError):
            laptop_machine(7)


class TestMachineState:
    def test_pick_prefers_idle_physical_cores(self):
        state = MachineState(laptop_machine(8))
        first = state.pick_thread()
        state.acquire(first)
        second = state.pick_thread()
        assert second.core_id != first.core_id

    def test_pick_spreads_across_sockets(self):
        state = MachineState(two_socket_machine())
        t0 = state.pick_thread()
        state.acquire(t0)
        t1 = state.pick_thread()
        assert t1.socket_id != t0.socket_id

    def test_hyperthread_used_when_cores_full(self):
        state = MachineState(laptop_machine(4))
        threads = []
        for __ in range(4):
            t = state.pick_thread()
            state.acquire(t)
            threads.append(t)
        assert state.pick_thread() is None
        cores = {t.core_id for t in threads}
        assert len(cores) == 2  # both physical cores, both hyperthreads

    def test_compute_rate_hyperthread_discount(self):
        spec = laptop_machine(4)
        state = MachineState(spec)
        t0, t1 = state.threads[0], state.threads[1]  # same physical core
        assert state.compute_rate(t0) == spec.cycles_per_second
        state.acquire(t1)
        assert state.compute_rate(t0) == pytest.approx(
            spec.cycles_per_second * spec.hyperthread_yield / 2
        )

    def test_double_acquire_rejected(self):
        state = MachineState(laptop_machine(4))
        t = state.threads[0]
        state.acquire(t)
        with pytest.raises(SchedulerError):
            state.acquire(t)
        state.release(t)
        with pytest.raises(SchedulerError):
            state.release(t)


class TestCostModel:
    def ctx(self, scale: float = 1.0) -> CostContext:
        return CostContext(machine=two_socket_machine(), data_scale=scale)

    def test_data_scale_multiplies_work(self):
        profile = WorkProfile(tuples_in=1000, bytes_read=8000)
        small = compute_work("select", profile, self.ctx(1.0))
        big = compute_work("select", profile, self.ctx(100.0))
        # Dispatch overhead is constant; the scalable part grows 100x.
        params = CostParams()
        overhead = params.dispatch_seconds * 2e9
        assert (big.cpu_cycles - overhead) == pytest.approx(
            100 * (small.cpu_cycles - overhead)
        )
        assert big.mem_bytes == pytest.approx(100 * small.mem_bytes)

    def test_l3_fit_join_probe_discount(self):
        """Table 3's cache effect: an over-L3 hash table adds a cache
        line of DRAM traffic per probe (it stays cycle-neutral, which is
        what makes spilling joins memory-bound in parallel)."""
        fits = WorkProfile(
            tuples_in=1000, random_reads=1000, build_bytes=1_000_000
        )
        spills = WorkProfile(
            tuples_in=1000, random_reads=1000, build_bytes=30 * 1024 * 1024
        )
        cheap = compute_work("join", fits, self.ctx())
        costly = compute_work("join", spills, self.ctx())
        assert costly.cpu_cycles == pytest.approx(cheap.cpu_cycles)
        assert costly.mem_bytes == pytest.approx(
            cheap.mem_bytes + 1000 * CostParams().miss_line_bytes
        )

    def test_amortized_build_removes_build_cycles(self):
        # 100 probe tuples + 50 build tuples.
        profile = WorkProfile(tuples_in=150, build_bytes=400, random_reads=100)
        full = compute_work("join", profile, self.ctx())
        shared = compute_work("join", profile, self.ctx(), amortize_build=True)
        params = CostParams()
        assert full.cpu_cycles - shared.cpu_cycles == pytest.approx(
            50 * params.join_build_cycles
        )

    def test_dispatch_overhead_always_charged(self):
        work = compute_work("scan", WorkProfile(), self.ctx())
        params = CostParams()
        assert work.cpu_cycles == pytest.approx(params.dispatch_seconds * 2e9)

    def test_sort_superlinear(self):
        small = compute_work("sort", WorkProfile(tuples_in=1000), self.ctx())
        big = compute_work("sort", WorkProfile(tuples_in=2000), self.ctx())
        overhead = CostParams().dispatch_seconds * 2e9
        assert (big.cpu_cycles - overhead) > 2 * (small.cpu_cycles - overhead)

    def test_thread_bandwidth_cap_fraction(self):
        spec = two_socket_machine()
        cap = thread_bandwidth_cap(spec)
        assert cap == pytest.approx(40e9 * CostParams().single_thread_bw_fraction)

    def test_params_override(self):
        params = CostParams().with_overrides(join_build_cycles=1.0)
        assert params.join_build_cycles == 1.0
        assert params.select_cycles == CostParams().select_cycles
