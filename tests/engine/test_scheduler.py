"""The discrete-event scheduler: data-flow execution, contention, DOP caps."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import NoiseConfig, SimulationConfig, laptop_machine
from repro.core.heuristic import HeuristicParallelizer
from repro.engine import Simulator, execute
from repro.errors import SchedulerError
from repro.operators import Aggregate, Fetch, RangePredicate, Scan, Select
from repro.plan import Plan, PlanBuilder
from repro.storage import Column, LNG, Table, Catalog


def pipeline_plan(catalog: Catalog) -> Plan:
    builder = PlanBuilder(catalog)
    sel = builder.select(builder.scan("facts", "val"), RangePredicate(hi=500))
    proj = builder.fetch(sel, builder.scan("facts", "qty"))
    return builder.build(builder.aggregate("sum", proj))


def expected_sum(catalog: Catalog) -> int:
    facts = catalog.table("facts")
    mask = facts.column("val").values <= 500
    return int(facts.column("qty").values[mask].sum())


class TestExecution:
    def test_result_matches_numpy(self, small_catalog, sim_config):
        result = execute(pipeline_plan(small_catalog), sim_config)
        assert result.outputs[0].value == expected_sum(small_catalog)

    def test_response_time_positive_and_finite(self, small_catalog, sim_config):
        result = execute(pipeline_plan(small_catalog), sim_config)
        assert 0 < result.response_time < 1e6

    def test_profile_has_record_per_node(self, small_catalog, sim_config):
        plan = pipeline_plan(small_catalog)
        result = execute(plan, sim_config)
        assert len(result.profile.records) == len(plan.nodes())

    def test_profile_intervals_within_span(self, small_catalog, sim_config):
        result = execute(pipeline_plan(small_catalog), sim_config)
        profile = result.profile
        for record in profile.records:
            assert profile.submit_time <= record.start <= record.end
            assert record.end <= profile.finish_time + 1e-9

    def test_dataflow_ordering(self, small_catalog, sim_config):
        """A consumer may not start before its producers finish."""
        plan = pipeline_plan(small_catalog)
        result = execute(plan, sim_config)
        finish = {r.node.nid: r.end for r in result.profile.records}
        start = {r.node.nid: r.start for r in result.profile.records}
        for node in plan.nodes():
            for child in node.inputs:
                assert start[node.nid] >= finish[child.nid] - 1e-9

    def test_deterministic_across_runs(self, small_catalog, sim_config):
        t1 = execute(pipeline_plan(small_catalog), sim_config).response_time
        t2 = execute(pipeline_plan(small_catalog), sim_config).response_time
        assert t1 == t2

    def test_unfinished_result_rejected(self, small_catalog, sim_config):
        sim = Simulator(sim_config)
        sid = sim.submit(pipeline_plan(small_catalog))
        with pytest.raises(SchedulerError):
            sim.result(sid)


class TestParallelismEffects:
    def _column_catalog(self) -> Catalog:
        rng = np.random.default_rng(7)
        catalog = Catalog()
        catalog.add(
            Table.from_arrays(
                "facts",
                {
                    "val": (LNG, rng.integers(0, 1000, 100_000)),
                    "qty": (LNG, rng.integers(0, 10, 100_000)),
                },
            )
        )
        return catalog

    def test_parallel_plan_is_faster(self):
        catalog = self._column_catalog()
        config = SimulationConfig(machine=laptop_machine(8), data_scale=1000.0)
        serial = execute(pipeline_plan(catalog), config)
        parallel_plan = HeuristicParallelizer(8).parallelize(pipeline_plan(catalog))
        parallel = execute(parallel_plan, config)
        assert parallel.response_time < serial.response_time
        assert parallel.outputs[0].value == serial.outputs[0].value

    def test_dop_cap_limits_threads(self):
        catalog = self._column_catalog()
        config = SimulationConfig(machine=laptop_machine(8), data_scale=1000.0)
        plan = HeuristicParallelizer(8).parallelize(pipeline_plan(catalog))
        capped = execute(plan, config.with_threads(2))
        assert capped.profile.threads_used() <= 2
        free = execute(plan, config)
        assert free.response_time < capped.response_time

    def test_speedup_saturates_with_bandwidth(self):
        """Memory-bound work stops scaling once the socket saturates."""
        catalog = self._column_catalog()
        config = SimulationConfig(machine=laptop_machine(16), data_scale=2000.0)
        times = {}
        for dop in (1, 4, 16):
            plan = HeuristicParallelizer(dop).parallelize(pipeline_plan(catalog))
            times[dop] = execute(plan, config.with_threads(dop)).response_time
        speedup_4 = times[1] / times[4]
        speedup_16 = times[1] / times[16]
        assert speedup_4 > 2.0
        # Far from linear at 16 threads: bandwidth roofline bites.
        assert speedup_16 < 12.0

    def test_concurrent_submissions_share_the_machine(self):
        catalog = self._column_catalog()
        config = SimulationConfig(machine=laptop_machine(8), data_scale=1000.0)
        plan = HeuristicParallelizer(8).parallelize(pipeline_plan(catalog))
        solo = execute(plan, config).response_time

        sim = Simulator(config)
        sids = [sim.submit(plan.copy()) for __ in range(4)]
        sim.run()
        times = [sim.result(sid).response_time for sid in sids]
        assert max(times) > solo  # contention slows somebody down
        for sid in sids:
            value = sim.result(sid).outputs[0].value
            assert value == expected_sum(catalog)


class TestNoise:
    def test_noise_changes_times_not_results(self, small_catalog):
        base = SimulationConfig(machine=laptop_machine(8), data_scale=100.0)
        noisy = base.with_noise(NoiseConfig(jitter=0.2))
        clean = execute(pipeline_plan(small_catalog), base)
        jittered = execute(pipeline_plan(small_catalog), noisy)
        assert clean.outputs[0].value == jittered.outputs[0].value
        assert clean.response_time != jittered.response_time

    def test_noise_deterministic_per_seed(self, small_catalog):
        config = SimulationConfig(
            machine=laptop_machine(8),
            data_scale=100.0,
            noise=NoiseConfig(jitter=0.2, peak_probability=0.1, peak_magnitude=5.0),
        )
        t1 = execute(pipeline_plan(small_catalog), config).response_time
        t2 = execute(pipeline_plan(small_catalog), config).response_time
        assert t1 == t2

    def test_different_seeds_differ(self, small_catalog):
        config = SimulationConfig(
            machine=laptop_machine(8),
            data_scale=100.0,
            noise=NoiseConfig(jitter=0.2),
        )
        t1 = execute(pipeline_plan(small_catalog), config).response_time
        t2 = execute(pipeline_plan(small_catalog), config.with_seed(99)).response_time
        assert t1 != t2


class TestProfileMetrics:
    def test_utilization_bounds(self, small_catalog, sim_config):
        result = execute(pipeline_plan(small_catalog), sim_config)
        util = result.profile.multicore_utilization(8)
        assert 0.0 < util <= 1.0

    def test_time_by_kind_sums_to_busy_time(self, small_catalog, sim_config):
        profile = execute(pipeline_plan(small_catalog), sim_config).profile
        assert sum(profile.time_by_kind().values()) == pytest.approx(
            profile.busy_core_seconds()
        )

    def test_ranked_is_sorted(self, small_catalog, sim_config):
        profile = execute(pipeline_plan(small_catalog), sim_config).profile
        durations = [r.duration for r in profile.ranked()]
        assert durations == sorted(durations, reverse=True)

    def test_records_by_thread_sorted_by_start(self, small_catalog, sim_config):
        profile = execute(pipeline_plan(small_catalog), sim_config).profile
        for records in profile.records_by_thread().values():
            starts = [r.start for r in records]
            assert starts == sorted(starts)


class TestMemoryAccounting:
    def test_peak_memory_positive_and_bounded(self, small_catalog, sim_config):
        result = execute(pipeline_plan(small_catalog), sim_config)
        peak = result.profile.peak_memory_bytes
        assert peak > 0
        # Peak cannot exceed the sum of every intermediate ever produced.
        total = sum(r.mem_bytes for r in result.profile.records) + 1e12
        assert peak < total

    def test_parallel_plan_uses_more_memory_than_serial(self, small_catalog, sim_config):
        """Clones materialize partition intermediates concurrently."""
        serial = execute(pipeline_plan(small_catalog), sim_config)
        parallel_plan = HeuristicParallelizer(8).parallelize(
            pipeline_plan(small_catalog)
        )
        parallel = execute(parallel_plan, sim_config)
        assert (
            parallel.profile.peak_memory_bytes
            >= serial.profile.peak_memory_bytes * 0.5
        )

    def test_peak_scales_with_data_scale(self, small_catalog):
        lo = execute(
            pipeline_plan(small_catalog),
            SimulationConfig(machine=laptop_machine(8), data_scale=10.0),
        )
        hi = execute(
            pipeline_plan(small_catalog),
            SimulationConfig(machine=laptop_machine(8), data_scale=1000.0),
        )
        assert hi.profile.peak_memory_bytes == pytest.approx(
            100 * lo.profile.peak_memory_bytes, rel=1e-6
        )
