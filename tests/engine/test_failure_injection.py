"""Failure injection: broken operators and malformed plans must fail
loudly and leave the system usable."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import SimulationConfig, laptop_machine
from repro.engine import Simulator, execute
from repro.errors import OperatorError, ReproError
from repro.operators import Aggregate, RangePredicate, Scan, Select
from repro.operators.base import Operator, WorkProfile
from repro.plan import Plan, PlanBuilder
from repro.storage import Catalog, Column, LNG, Scalar, Table


class ExplodingOperator(Operator):
    """Evaluates fine ``countdown`` times, then raises."""

    kind = "exploding"

    def __init__(self, countdown: int = 0) -> None:
        super().__init__()
        self.countdown = countdown

    def evaluate(self, inputs):
        if self.countdown <= 0:
            raise OperatorError("injected operator failure")
        self.countdown -= 1
        return Scalar(1, LNG)

    def work_profile(self, inputs, output) -> WorkProfile:
        return WorkProfile(tuples_out=1)


@pytest.fixture()
def config() -> SimulationConfig:
    return SimulationConfig(machine=laptop_machine(4), data_scale=10.0)


def failing_plan() -> Plan:
    plan = Plan()
    boom = plan.add(ExplodingOperator())
    plan.set_outputs([boom])
    return plan


class TestOperatorFailures:
    def test_failure_propagates_with_message(self, config):
        with pytest.raises(OperatorError, match="injected"):
            execute(failing_plan(), config)

    def test_failure_mid_plan(self, config, small_catalog):
        builder = PlanBuilder(small_catalog)
        sel = builder.select(builder.scan("facts", "val"), RangePredicate(hi=500))
        plan = builder.build(builder.aggregate("count", sel))
        boom = plan.add(ExplodingOperator())
        plan.set_outputs([plan.outputs[0], boom])
        with pytest.raises(OperatorError):
            execute(plan, config)

    def test_simulator_usable_after_failed_submission(self, config, small_catalog):
        simulator = Simulator(config)
        simulator.submit(failing_plan())
        with pytest.raises(OperatorError):
            simulator.run()
        # A fresh simulator on the same config is unaffected.
        builder = PlanBuilder(small_catalog)
        plan = builder.build(
            builder.aggregate("count", builder.scan("facts", "val"))
        )
        result = execute(plan, config)
        assert result.outputs[0].value == len(small_catalog.table("facts"))

    def test_adaptive_driver_surfaces_operator_failure(self, config):
        from repro.core import AdaptiveParallelizer

        with pytest.raises(OperatorError):
            AdaptiveParallelizer(config).optimize(failing_plan())


class TestMalformedPlans:
    def test_missing_value_input_is_an_operator_error(self, config):
        col = Column("v", LNG, np.arange(10))
        plan = Plan()
        scan = plan.add(Scan(col))
        # Aggregate over a select would be fine; aggregate over the raw
        # candidates of a sum is not.
        sel = plan.add(Select(RangePredicate(hi=5)), [scan])
        bad = plan.add(Aggregate("sum"), [sel])  # sum needs values
        plan.set_outputs([bad])
        with pytest.raises(ReproError):
            execute(plan, config)

    def test_arity_violation_detected_at_execute(self, config):
        col = Column("v", LNG, np.arange(10))
        plan = Plan()
        scan = plan.add(Scan(col))
        bad = plan.add(Select(RangePredicate(hi=5)), [scan, scan, scan])
        plan.set_outputs([bad])
        with pytest.raises(ReproError):
            execute(plan, config)
