"""Failure injection: broken operators and malformed plans must fail
loudly and leave the system usable."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import SimulationConfig, laptop_machine
from repro.engine import EvalPool, IntermediateCache, Simulator, execute
from repro.errors import OperatorError, ReproError
from repro.operators import Aggregate, RangePredicate, Scan, Select
from repro.operators.base import Operator, WorkProfile
from repro.plan import Plan, PlanBuilder
from repro.storage import LNG, Column


class ExplodingOperator(Operator):
    """Raises on every evaluation.

    Deliberately *pure* (raising is not an effect): the parallel-safety
    gate must let it onto the pool so these tests exercise how failures
    travel through batches, not how uncertified kernels are refused.
    """

    kind = "exploding"

    def evaluate(self, inputs):
        raise OperatorError("injected operator failure")

    def work_profile(self, inputs, output) -> WorkProfile:
        return WorkProfile(tuples_out=1)


@pytest.fixture()
def config() -> SimulationConfig:
    return SimulationConfig(machine=laptop_machine(4), data_scale=10.0)


def failing_plan() -> Plan:
    plan = Plan()
    boom = plan.add(ExplodingOperator())
    plan.set_outputs([boom])
    return plan


class TestOperatorFailures:
    def test_failure_propagates_with_message(self, config):
        with pytest.raises(OperatorError, match="injected"):
            execute(failing_plan(), config)

    def test_failure_mid_plan(self, config, small_catalog):
        builder = PlanBuilder(small_catalog)
        sel = builder.select(builder.scan("facts", "val"), RangePredicate(hi=500))
        plan = builder.build(builder.aggregate("count", sel))
        boom = plan.add(ExplodingOperator())
        plan.set_outputs([plan.outputs[0], boom])
        with pytest.raises(OperatorError):
            execute(plan, config)

    def test_simulator_usable_after_failed_submission(self, config, small_catalog):
        simulator = Simulator(config)
        simulator.submit(failing_plan())
        with pytest.raises(OperatorError):
            simulator.run()
        # A fresh simulator on the same config is unaffected.
        builder = PlanBuilder(small_catalog)
        plan = builder.build(
            builder.aggregate("count", builder.scan("facts", "val"))
        )
        result = execute(plan, config)
        assert result.outputs[0].value == len(small_catalog.table("facts"))

    def test_adaptive_driver_surfaces_operator_failure(self, config):
        from repro.core import AdaptiveParallelizer

        with pytest.raises(OperatorError):
            AdaptiveParallelizer(config).optimize(failing_plan())


def good_plan(catalog) -> Plan:
    builder = PlanBuilder(catalog)
    return builder.build(
        builder.aggregate("count", builder.scan("facts", "val"))
    )


class TestEvalPoolFailures:
    """Operator exceptions with host-parallel evaluation active.

    The commit barrier settles failures in dispatch (= submission)
    order regardless of which host thread hit them, and a failed
    submission must not poison the pool, the memo, or the simulator.
    """

    @pytest.mark.parametrize("workers", [2, 8])
    def test_failure_propagates_under_pool(self, config, workers):
        with pytest.raises(OperatorError, match="injected"):
            execute(failing_plan(), config, workers=workers)

    @pytest.mark.parametrize("workers", [2, 8])
    def test_first_submissions_error_raised_first(self, config, workers):
        class Exploding(ExplodingOperator):
            def __init__(self, tag: str) -> None:
                super().__init__()
                self.tag = tag

            def evaluate(self, inputs):
                raise OperatorError(f"boom-{self.tag}")

        def tagged(tag: str) -> Plan:
            plan = Plan()
            plan.set_outputs([plan.add(Exploding(tag))])
            return plan

        with EvalPool(workers) as pool:
            simulator = Simulator(config, evalpool=pool)
            simulator.submit(tagged("first"))
            simulator.submit(tagged("second"))
            with pytest.raises(OperatorError, match="boom-first"):
                simulator.run()
            # The second submission's failure is still pending; the
            # event loop surfaces it on the next drive.
            with pytest.raises(OperatorError, match="boom-second"):
                simulator.run()

    @pytest.mark.parametrize("workers", [2, 8])
    def test_simulator_reusable_after_pool_failure(
        self, config, small_catalog, workers
    ):
        with EvalPool(workers) as pool:
            simulator = Simulator(config, evalpool=pool)
            simulator.submit(failing_plan())
            with pytest.raises(OperatorError):
                simulator.run()
            # The same simulator instance keeps working.
            sid = simulator.submit(good_plan(small_catalog))
            simulator.run()
            result = simulator.result(sid)
            assert result.outputs[0].value == len(small_catalog.table("facts"))

    @pytest.mark.parametrize("workers", [2, 8])
    def test_memo_consistent_after_failure(self, config, small_catalog, workers):
        memo = IntermediateCache()
        builder = PlanBuilder(small_catalog)
        sel = builder.select(
            builder.scan("facts", "val"), RangePredicate(hi=500)
        )
        plan = builder.build(builder.aggregate("count", sel))
        poisoned = plan.copy()
        poisoned.set_outputs(
            [poisoned.outputs[0], poisoned.add(ExplodingOperator())]
        )
        with pytest.raises(OperatorError):
            execute(poisoned, config, memo=memo, workers=workers)
        # Entries cached by the failed run replay to the exact values a
        # memo-free execution computes.
        cached = execute(plan.copy(), config, memo=memo, workers=workers)
        fresh = execute(plan.copy(), config)
        assert cached.outputs[0].value == fresh.outputs[0].value
        assert cached.response_time == fresh.response_time

    def test_on_failure_handler_suppresses_raise(self, config, small_catalog):
        failures: list[tuple[int, Exception]] = []
        simulator = Simulator(config)
        bad = simulator.submit(
            failing_plan(),
            on_failure=lambda sid, error: failures.append((sid, error)),
        )
        ok = simulator.submit(good_plan(small_catalog))
        simulator.run()  # does not raise: the handler took the error
        assert [sid for sid, __ in failures] == [bad]
        assert isinstance(failures[0][1], OperatorError)
        assert simulator.result(ok).outputs[0].value == len(
            small_catalog.table("facts")
        )
        with pytest.raises(OperatorError):
            simulator.result(bad)


class TestMalformedPlans:
    def test_missing_value_input_is_an_operator_error(self, config):
        col = Column("v", LNG, np.arange(10))
        plan = Plan()
        scan = plan.add(Scan(col))
        # Aggregate over a select would be fine; aggregate over the raw
        # candidates of a sum is not.
        sel = plan.add(Select(RangePredicate(hi=5)), [scan])
        bad = plan.add(Aggregate("sum"), [sel])  # sum needs values
        plan.set_outputs([bad])
        with pytest.raises(ReproError):
            execute(plan, config)

    def test_arity_violation_detected_at_execute(self, config):
        col = Column("v", LNG, np.arange(10))
        plan = Plan()
        scan = plan.add(Scan(col))
        bad = plan.add(Select(RangePredicate(hi=5)), [scan, scan, scan])
        plan.set_outputs([bad])
        with pytest.raises(ReproError):
            execute(plan, config)
