"""Concurrent workload simulation and the Vectorwise baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import VectorwiseSystem
from repro.concurrency import ClientSpec, ConcurrentWorkload
from repro.config import SimulationConfig, laptop_machine
from repro.core import HeuristicParallelizer
from repro.engine import execute
from repro.errors import ReproError
from repro.operators import RangePredicate
from repro.plan import PlanBuilder
from repro.storage import Catalog, LNG, Table


@pytest.fixture()
def catalog(rng) -> Catalog:
    cat = Catalog()
    cat.add(
        Table.from_arrays(
            "t",
            {
                "a": (LNG, rng.integers(0, 1000, 30_000)),
                "b": (LNG, rng.integers(0, 100, 30_000)),
            },
        )
    )
    return cat


@pytest.fixture()
def config() -> SimulationConfig:
    return SimulationConfig(machine=laptop_machine(8), data_scale=500.0)


def make_plan(catalog):
    b = PlanBuilder(catalog)
    sel = b.select(b.scan("t", "a"), RangePredicate(hi=500))
    proj = b.fetch(sel, b.scan("t", "b"))
    return b.build(b.aggregate("sum", proj))


class TestConcurrentWorkload:
    def test_closed_loop_completes_queries(self, catalog, config):
        plan = HeuristicParallelizer(4).parallelize(make_plan(catalog))
        workload = ConcurrentWorkload(
            config,
            [ClientSpec(name=f"c{i}", plans=[plan]) for i in range(4)],
            horizon=2.0,
        )
        report = workload.run()
        assert report.completed() > 4
        for i in range(4):
            assert report.mean_response(f"c{i}") > 0

    def test_contention_slows_queries_down(self, catalog, config):
        plan = HeuristicParallelizer(8).parallelize(make_plan(catalog))
        solo = execute(plan, config).response_time
        workload = ConcurrentWorkload(
            config,
            [ClientSpec(name=f"c{i}", plans=[plan]) for i in range(8)],
            horizon=2.0,
        )
        report = workload.run()
        mean = float(np.mean([t for v in report.by_client.values() for t in v]))
        assert mean > solo

    def test_measure_plan_under_load_slower_than_isolated(self, catalog, config):
        plan = HeuristicParallelizer(8).parallelize(make_plan(catalog))
        solo = execute(plan, config).response_time
        workload = ConcurrentWorkload(
            config,
            [ClientSpec(name=f"c{i}", plans=[plan]) for i in range(8)],
            horizon=5.0,
        )
        probe = workload.measure_plan(make_plan(catalog))
        assert probe.response_time > 0
        loaded = workload.measure_plan(plan)
        assert loaded.response_time > solo

    def test_max_queries_limit(self, catalog, config):
        plan = make_plan(catalog)
        workload = ConcurrentWorkload(
            config,
            [ClientSpec(name="c0", plans=[plan], max_queries=3)],
            horizon=100.0,
        )
        report = workload.run()
        assert report.completed("c0") == 3

    def test_throughput_positive(self, catalog, config):
        plan = make_plan(catalog)
        workload = ConcurrentWorkload(
            config, [ClientSpec(name="c0", plans=[plan])], horizon=1.0
        )
        assert workload.run().throughput() > 0

    def test_throughput_uses_actual_span_when_run_ends_early(
        self, catalog, config
    ):
        # Regression: a run bounded by ``max_queries`` ends long before
        # the configured horizon; throughput must be computed over the
        # actual last-completion time, not the (here absurdly large)
        # horizon.
        plan = make_plan(catalog)
        workload = ConcurrentWorkload(
            config,
            [ClientSpec(name="c0", plans=[plan], max_queries=3)],
            horizon=100.0,
        )
        report = workload.run()
        assert 0 < report.last_completion < report.horizon
        assert report.elapsed == report.last_completion
        assert report.throughput() == pytest.approx(3 / report.last_completion)
        # The old horizon-based rate would be ~3/100; the real rate is
        # orders of magnitude higher.
        assert report.throughput() > 3 / report.horizon * 10

    def test_invalid_horizon(self, catalog, config):
        with pytest.raises(ReproError):
            ConcurrentWorkload(config, [], horizon=0.0)

    def test_client_needs_plans(self):
        with pytest.raises(ValueError):
            ClientSpec(name="c", plans=[])

    def test_report_unknown_client(self, catalog, config):
        plan = make_plan(catalog)
        workload = ConcurrentWorkload(
            config, [ClientSpec(name="c0", plans=[plan])], horizon=0.5
        )
        report = workload.run()
        with pytest.raises(ReproError):
            report.mean_response("ghost")


class TestVectorwise:
    def test_first_client_gets_everything(self, config):
        system = VectorwiseSystem(config)
        decision = system.admission(0, 1)
        assert decision.dop == config.effective_threads

    def test_late_clients_squeezed(self, config):
        system = VectorwiseSystem(config)
        threads = config.effective_threads
        decision = system.admission(3, 4)
        assert decision.dop == max(1, threads // 4)

    def test_full_load_serializes(self, config):
        system = VectorwiseSystem(config)
        decision = system.admission(5, config.effective_threads)
        assert decision.dop == 1

    def test_parallelize_respects_admission(self, catalog, config):
        system = VectorwiseSystem(config)
        plan, cap = system.parallelize(
            make_plan(catalog), client_rank=7, active_clients=8
        )
        assert cap == 1
        result = execute(plan, config.with_threads(cap))
        serial = execute(make_plan(catalog), config)
        assert result.outputs[0].value == serial.outputs[0].value

    def test_admitted_serial_is_slower_than_full(self, catalog, config):
        system = VectorwiseSystem(config)
        full_plan, full_cap = system.parallelize(make_plan(catalog))
        squeezed_plan, squeezed_cap = system.parallelize(
            make_plan(catalog), client_rank=7, active_clients=8
        )
        fast = execute(full_plan, config.with_threads(full_cap)).response_time
        slow = execute(squeezed_plan, config.with_threads(squeezed_cap)).response_time
        assert slow > fast
