"""The resilient workload service under injected chaos.

Closed-loop clients with stragglers, crashes, and disconnects: the
service's disciplines (timeout, bounded retry with backoff, DOP
shedding, admission control) must keep the workload healthy --
throughput degrades gracefully with the fault rate, in-flight work
stays bounded, and no client starves.
"""

from __future__ import annotations

import pytest

from repro.chaos import FaultPlan
from repro.concurrency import ClientSpec, ResilienceConfig, ResilientWorkload
from repro.config import SimulationConfig, laptop_machine
from repro.core import HeuristicParallelizer
from repro.errors import ReproError
from repro.operators import RangePredicate
from repro.plan import PlanBuilder
from repro.storage import Catalog, LNG, Table


@pytest.fixture()
def catalog(rng) -> Catalog:
    cat = Catalog()
    cat.add(
        Table.from_arrays(
            "t",
            {
                "a": (LNG, rng.integers(0, 1000, 20_000)),
                "b": (LNG, rng.integers(0, 100, 20_000)),
            },
        )
    )
    return cat


@pytest.fixture()
def config() -> SimulationConfig:
    return SimulationConfig(machine=laptop_machine(8), data_scale=300.0, seed=11)


@pytest.fixture()
def plan(catalog):
    b = PlanBuilder(catalog)
    sel = b.select(b.scan("t", "a"), RangePredicate(hi=500))
    proj = b.fetch(sel, b.scan("t", "b"))
    return HeuristicParallelizer(4).parallelize(
        b.build(b.aggregate("sum", proj))
    )


def run_workload(
    config,
    plan,
    *,
    faults=None,
    resilience=None,
    clients=6,
    horizon=2.0,
    workers=None,
):
    workload = ResilientWorkload(
        config,
        [ClientSpec(name=f"c{i}", plans=[plan]) for i in range(clients)],
        horizon=horizon,
        faults=faults,
        resilience=resilience,
        workers=workers,
    )
    return workload.run()


class TestResilienceConfig:
    def test_validation(self):
        with pytest.raises(ReproError):
            ResilienceConfig(timeout=0.0)
        with pytest.raises(ReproError):
            ResilienceConfig(max_retries=-1)
        with pytest.raises(ReproError):
            ResilienceConfig(backoff_factor=0.5)
        with pytest.raises(ReproError):
            ResilienceConfig(max_in_flight=0)
        with pytest.raises(ReproError):
            ResilienceConfig(reconnect_delay=-1.0)

    def test_backoff_is_exponential(self):
        res = ResilienceConfig(backoff_base=0.01, backoff_factor=2.0)
        assert res.backoff(0) == pytest.approx(0.01)
        assert res.backoff(1) == pytest.approx(0.02)
        assert res.backoff(3) == pytest.approx(0.08)


class TestResilientWorkload:
    def test_fault_free_matches_plain_closed_loop_shape(
        self, config, plan, host_workers
    ):
        report = run_workload(config, plan, workers=host_workers)
        assert report.completed() > 0
        assert report.faults_injected == 0
        assert report.retries == 0
        assert report.fault_schedule == ()

    def test_throughput_degrades_monotonically_with_fault_rate(
        self, config, plan, host_workers
    ):
        def chaos(scale: float) -> FaultPlan | None:
            if scale == 0.0:
                return None
            return FaultPlan(
                operator_exception_rate=0.01 * scale,
                straggler_rate=0.05 * scale,
                straggler_slowdown=8.0,
                mem_pressure_rate=0.03 * scale,
                mem_pressure_factor=4.0,
                disconnect_rate=0.03 * scale,
            )

        throughputs = [
            run_workload(
                config, plan, faults=chaos(scale), workers=host_workers
            ).throughput()
            for scale in (0.0, 1.0, 3.0)
        ]
        assert throughputs[0] > 0
        # Graceful degradation: more chaos, no more throughput (small
        # tolerance for discrete completion-count effects).
        assert throughputs[1] <= throughputs[0] * 1.05
        assert throughputs[2] <= throughputs[1] * 1.05

    def test_admission_control_bounds_in_flight(self, config, plan):
        report = run_workload(
            config,
            plan,
            clients=8,
            resilience=ResilienceConfig(max_in_flight=3),
        )
        assert report.peak_in_flight <= 3
        # Eight closed-loop clients against three slots must queue.
        assert report.admission_waits > 0
        assert report.peak_queue_depth > 0
        assert report.completed() > 0

    def test_no_client_starves_under_chaos(self, config, plan, host_workers):
        faults = FaultPlan(
            operator_exception_rate=0.01,
            straggler_rate=0.08,
            straggler_slowdown=6.0,
            disconnect_rate=0.05,
        )
        report = run_workload(
            config,
            plan,
            clients=8,
            faults=faults,
            resilience=ResilienceConfig(max_in_flight=3, timeout=1.0),
            workers=host_workers,
        )
        for i in range(8):
            assert report.completed(f"c{i}") > 0, f"client c{i} starved"

    def test_timeouts_and_shedding_are_counted(self, config, plan):
        faults = FaultPlan(straggler_rate=0.3, straggler_slowdown=8.0)
        report = run_workload(
            config,
            plan,
            faults=faults,
            resilience=ResilienceConfig(timeout=0.12, max_retries=2),
        )
        assert report.timeouts > 0
        assert report.retries > 0
        # Retrying sheds DOP while the plan still has threads to shed.
        assert report.shed_dop > 0
        # Even with aggressive timeouts some queries finish in time.
        assert report.completed() > 0

    def test_reports_bit_identical_across_workers(self, config, plan):
        faults = FaultPlan(
            operator_exception_rate=0.01,
            straggler_rate=0.05,
            mem_pressure_rate=0.03,
            disconnect_rate=0.03,
        )
        resilience = ResilienceConfig(timeout=0.8)
        reports = [
            run_workload(
                config,
                plan,
                faults=faults,
                resilience=resilience,
                horizon=1.0,
                workers=workers,
            ).as_dict()
            for workers in (None, 2, 8)
        ]
        assert reports[0] == reports[1] == reports[2]
        assert reports[0]["faults_injected"] > 0

    def test_run_is_repeatable(self, config, plan):
        faults = FaultPlan(straggler_rate=0.1, disconnect_rate=0.05)
        workload = ResilientWorkload(
            config,
            [ClientSpec(name="c0", plans=[plan]), ClientSpec(name="c1", plans=[plan])],
            horizon=1.0,
            faults=faults,
        )
        assert workload.run().as_dict() == workload.run().as_dict()

    def test_rejects_bad_arguments(self, config, plan):
        with pytest.raises(ReproError):
            ResilientWorkload(config, [], horizon=1.0)
        with pytest.raises(ReproError):
            ResilientWorkload(
                config,
                [ClientSpec(name="c0", plans=[plan])],
                horizon=0.0,
            )

    def test_percentiles_available(self, config, plan):
        report = run_workload(config, plan, horizon=1.0)
        assert 0 < report.p50_response <= report.p99_response
