"""Tables and the catalog."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import StorageError
from repro.storage import Catalog, Column, LNG, STR, Table


def make_table(name: str = "t", rows: int = 10) -> Table:
    return Table.from_arrays(
        name,
        {
            "a": (LNG, np.arange(rows)),
            "b": (LNG, np.arange(rows) * 2),
        },
    )


class TestTable:
    def test_length_and_columns(self):
        table = make_table(rows=7)
        assert len(table) == 7
        assert table.column_names == ["a", "b"]

    def test_column_lookup(self):
        table = make_table()
        assert table.column("a").name == "a"
        assert table.has_column("b")
        assert not table.has_column("zzz")

    def test_unknown_column_raises_with_candidates(self):
        with pytest.raises(StorageError, match="available"):
            make_table().column("nope")

    def test_mismatched_lengths_rejected(self):
        cols = [
            Column("a", LNG, np.arange(5)),
            Column("b", LNG, np.arange(6)),
        ]
        with pytest.raises(StorageError):
            Table("t", cols)

    def test_duplicate_column_rejected(self):
        cols = [Column("a", LNG, np.arange(5)), Column("a", LNG, np.arange(5))]
        with pytest.raises(StorageError):
            Table("t", cols)

    def test_empty_table_rejected(self):
        with pytest.raises(StorageError):
            Table("t", [])

    def test_string_columns_dictionary_encoded(self):
        table = Table.from_arrays("t", {"s": (STR, ["x", "y", "x"])})
        col = table.column("s")
        assert col.dictionary == ("x", "y")
        assert col.decode(col.values) == ["x", "y", "x"]

    def test_nbytes_sums_columns(self):
        assert make_table(rows=10).nbytes == 10 * 8 * 2


class TestCatalog:
    def test_add_and_lookup(self):
        catalog = Catalog()
        catalog.add(make_table("t1"))
        assert catalog.has_table("t1")
        assert catalog.table("t1").name == "t1"
        assert catalog.column("t1", "a").name == "a"

    def test_duplicate_table_rejected(self):
        catalog = Catalog()
        catalog.add(make_table("t1"))
        with pytest.raises(StorageError):
            catalog.add(make_table("t1"))

    def test_unknown_table_raises_with_candidates(self):
        catalog = Catalog()
        catalog.add(make_table("t1"))
        with pytest.raises(StorageError, match="t1"):
            catalog.table("nope")

    def test_largest_table(self):
        catalog = Catalog()
        catalog.add(make_table("small", rows=5))
        catalog.add(make_table("big", rows=500))
        assert catalog.largest_table().name == "big"

    def test_largest_of_empty_catalog(self):
        with pytest.raises(StorageError):
            Catalog().largest_table()

    def test_table_names_sorted(self):
        catalog = Catalog()
        catalog.add(make_table("zz"))
        catalog.add(make_table("aa"))
        assert catalog.table_names == ["aa", "zz"]
