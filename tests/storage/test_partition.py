"""Dynamic partition bookkeeping (paper Figure 8)."""

from __future__ import annotations

import pytest

from repro.errors import StorageError
from repro.storage import PartitionRange, PartitionSet


class TestPartitionRange:
    def test_split_midpoint(self):
        left, right = PartitionRange(0, 10).split()
        assert (left.lo, left.hi) == (0, 5)
        assert (right.lo, right.hi) == (5, 10)
        assert left.generation == right.generation == 1

    def test_split_at_boundary_rejected(self):
        with pytest.raises(StorageError):
            PartitionRange(0, 10).split(0)
        with pytest.raises(StorageError):
            PartitionRange(0, 10).split(10)

    def test_invalid_range_rejected(self):
        with pytest.raises(StorageError):
            PartitionRange(5, 3)


class TestPartitionSet:
    def test_starts_with_one_full_range(self):
        ps = PartitionSet(total=100)
        assert ps.boundaries() == [(0, 100)]

    def test_figure8_evolution(self):
        """Reproduce the exact A -> B -> C -> D sequence of Figure 8."""
        ps = PartitionSet(total=80)
        # B: first split -> partitions 0th and 1st
        ps.split(0, 80, 40)
        assert ps.boundaries() == [(0, 40), (40, 80)]
        # C: partition 1 splits -> 2nd and 3rd
        ps.split(40, 80, 60)
        assert ps.boundaries() == [(0, 40), (40, 60), (60, 80)]
        # D: partition 2 splits -> 4th and 5th
        ps.split(40, 60, 50)
        assert ps.boundaries() == [(0, 40), (40, 50), (50, 60), (60, 80)]
        # Four operators on different-sized partitions, all aligned.
        assert ps.sizes() == [40, 10, 10, 20]
        ps.verify()

    def test_split_unknown_range_rejected(self):
        ps = PartitionSet(total=100)
        with pytest.raises(StorageError):
            ps.split(10, 20)

    def test_cover_invariant_detects_gap(self):
        ps = PartitionSet(total=100)
        ps.ranges = [PartitionRange(0, 40), PartitionRange(50, 100)]
        with pytest.raises(StorageError):
            ps.verify()

    def test_cover_invariant_detects_overlap(self):
        ps = PartitionSet(total=100)
        ps.ranges = [PartitionRange(0, 60), PartitionRange(50, 100)]
        with pytest.raises(StorageError):
            ps.verify()

    def test_cover_invariant_detects_truncation(self):
        ps = PartitionSet(total=100)
        ps.ranges = [PartitionRange(0, 90)]
        with pytest.raises(StorageError):
            ps.verify()

    def test_equal_partitioning(self):
        ps = PartitionSet.equal(100, 3)
        assert ps.boundaries() == [(0, 33), (33, 67), (67, 100)]
        ps.verify()

    def test_equal_partitioning_more_parts_than_rows(self):
        ps = PartitionSet.equal(2, 8)
        assert len(ps) == 2
        ps.verify()

    def test_equal_partitioning_rejects_zero_parts(self):
        with pytest.raises(StorageError):
            PartitionSet.equal(10, 0)

    def test_empty_total(self):
        ps = PartitionSet(total=0)
        assert ps.sizes() == [0]
