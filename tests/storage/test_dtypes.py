"""Logical types and date helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.storage import DATE, DBL, LNG, STR, add_months, date_value, type_by_name


class TestTypes:
    def test_lookup_by_name(self):
        assert type_by_name("lng") is LNG
        assert type_by_name("dbl") is DBL
        assert type_by_name("str") is STR

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="known"):
            type_by_name("blob")

    def test_widths(self):
        assert LNG.width == 8
        assert DATE.width == 4
        assert STR.width == 4


class TestDates:
    def test_epoch(self):
        assert date_value("1970-01-01") == 0

    def test_known_day_number(self):
        delta = np.datetime64("1994-01-01") - np.datetime64("1970-01-01")
        assert date_value("1994-01-01") == int(delta / np.timedelta64(1, "D"))

    def test_ordering(self):
        assert date_value("1994-01-01") < date_value("1995-01-01")

    def test_add_months_simple(self):
        start = date_value("1994-01-15")
        assert add_months(start, 1) == date_value("1994-02-15")

    def test_add_months_clamps_to_month_end(self):
        start = date_value("1994-01-31")
        assert add_months(start, 1) == date_value("1994-02-28")

    def test_add_months_across_year(self):
        start = date_value("1994-11-30")
        assert add_months(start, 3) == date_value("1995-02-28")

    def test_add_zero_months(self):
        start = date_value("1994-06-17")
        assert add_months(start, 0) == start
