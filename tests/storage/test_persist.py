"""Catalog persistence round-trips."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.errors import StorageError
from repro.storage import Catalog, LNG, STR, Table
from repro.storage.persist import load_catalog, save_catalog


@pytest.fixture()
def catalog(rng) -> Catalog:
    cat = Catalog("demo")
    cat.add(
        Table.from_arrays(
            "facts",
            {
                "k": (LNG, rng.integers(0, 100, 500)),
                "v": (LNG, rng.integers(0, 10, 500)),
                "tag": (STR, [f"tag-{i % 3}" for i in range(500)]),
            },
        )
    )
    cat.add(Table.from_arrays("dims", {"pk": (LNG, np.arange(100))}))
    return cat


class TestRoundTrip:
    def test_values_survive(self, catalog, tmp_path):
        save_catalog(catalog, tmp_path)
        loaded = load_catalog(tmp_path)
        assert loaded.name == "demo"
        assert loaded.table_names == catalog.table_names
        for table in catalog.tables():
            for col in table.columns():
                np.testing.assert_array_equal(
                    loaded.column(table.name, col.name).values, col.values
                )

    def test_dictionaries_survive(self, catalog, tmp_path):
        save_catalog(catalog, tmp_path)
        loaded = load_catalog(tmp_path)
        original = catalog.column("facts", "tag")
        restored = loaded.column("facts", "tag")
        assert restored.dictionary == original.dictionary
        assert restored.decode(restored.values[:3]) == original.decode(
            original.values[:3]
        )

    def test_loaded_columns_are_memory_mapped(self, catalog, tmp_path):
        save_catalog(catalog, tmp_path)
        loaded = load_catalog(tmp_path, mmap=True)
        values = loaded.column("facts", "k").values
        assert isinstance(values, np.memmap) or values.base is not None

    def test_eager_load(self, catalog, tmp_path):
        save_catalog(catalog, tmp_path)
        loaded = load_catalog(tmp_path, mmap=False)
        np.testing.assert_array_equal(
            loaded.column("dims", "pk").values, np.arange(100)
        )

    def test_queries_work_on_loaded_catalog(self, catalog, tmp_path, sim_config):
        from repro.engine import execute
        from repro.sql import plan_sql

        save_catalog(catalog, tmp_path)
        loaded = load_catalog(tmp_path)
        sql = "SELECT SUM(v) FROM facts WHERE k < 50"
        a = execute(plan_sql(sql, catalog), sim_config).outputs[0].value
        b = execute(plan_sql(sql, loaded), sim_config).outputs[0].value
        assert a == b


class TestFailureModes:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(StorageError, match="manifest"):
            load_catalog(tmp_path)

    def test_refuses_to_overwrite_other_catalog(self, catalog, tmp_path):
        save_catalog(catalog, tmp_path)
        other = Catalog("other")
        other.add(Table.from_arrays("t", {"x": (LNG, np.arange(3))}))
        with pytest.raises(StorageError, match="refusing"):
            save_catalog(other, tmp_path)

    def test_resave_same_catalog_allowed(self, catalog, tmp_path):
        save_catalog(catalog, tmp_path)
        save_catalog(catalog, tmp_path)  # idempotent

    def test_version_check(self, catalog, tmp_path):
        manifest = save_catalog(catalog, tmp_path)
        data = json.loads(manifest.read_text())
        data["format_version"] = 999
        manifest.write_text(json.dumps(data))
        with pytest.raises(StorageError, match="version"):
            load_catalog(tmp_path)

    def test_row_count_mismatch_detected(self, catalog, tmp_path):
        manifest = save_catalog(catalog, tmp_path)
        data = json.loads(manifest.read_text())
        data["tables"]["facts"]["rows"] = 7
        manifest.write_text(json.dumps(data))
        with pytest.raises(StorageError, match="rows"):
            load_catalog(tmp_path)
