"""Columns, slices, candidate lists, BATs, and alignment rules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import AlignmentError, StorageError
from repro.storage import (
    BAT,
    Candidates,
    Column,
    LNG,
    STR,
    Scalar,
    align_candidates,
)


def make_column(n: int = 100) -> Column:
    return Column("c", LNG, np.arange(n, dtype=np.int64))


class TestColumn:
    def test_values_are_read_only(self):
        col = make_column()
        with pytest.raises(ValueError):
            col.values[0] = 42

    def test_read_only_even_when_caller_array_was_writable(self):
        backing = np.arange(10, dtype=np.int64)
        col = Column("c", LNG, backing)
        assert not col.values.flags.writeable

    def test_direct_ufunc_out_cannot_write_base_buffer(self):
        # ufuncs with out= respect the read-only flag (np.add.at does
        # not on every numpy release -- that escape is what the runtime
        # sanitizer covers; see tests/analysis/test_sanitize.py).
        col = make_column()
        with pytest.raises(ValueError):
            np.add(col.values, 1, out=col.values)

    def test_dtype_coercion(self):
        col = Column("c", LNG, np.arange(5, dtype=np.int32))
        assert col.values.dtype == np.int64

    def test_rejects_two_dimensional_values(self):
        with pytest.raises(StorageError):
            Column("c", LNG, np.zeros((2, 2)))

    def test_nbytes_uses_logical_width(self):
        assert make_column(10).nbytes == 80

    def test_string_column_requires_dictionary(self):
        with pytest.raises(StorageError):
            Column("s", STR, np.zeros(3, dtype=np.int32))

    def test_non_string_column_rejects_dictionary(self):
        with pytest.raises(StorageError):
            Column("c", LNG, np.arange(3), dictionary=["a"])

    def test_from_strings_round_trip(self):
        col = Column.from_strings("s", ["b", "a", "b", "c"])
        assert col.decode(col.values) == ["b", "a", "b", "c"]
        assert col.dictionary == ("a", "b", "c")

    def test_decode_requires_dictionary(self):
        with pytest.raises(StorageError):
            make_column().decode(np.array([0]))


class TestColumnSlice:
    def test_full_slice_covers_column(self):
        col = make_column(10)
        view = col.full_slice()
        assert (view.lo, view.hi) == (0, 10)
        assert len(view) == 10

    def test_slice_values_are_views(self):
        col = make_column(10)
        view = col.slice(2, 5)
        assert view.values.base is col.values
        np.testing.assert_array_equal(view.values, [2, 3, 4])

    def test_slice_views_inherit_read_only(self):
        view = make_column(10).slice(2, 5)
        with pytest.raises(ValueError):
            view.values[0] = 42

    def test_out_of_bounds_slice_rejected(self):
        with pytest.raises(StorageError):
            make_column(10).slice(0, 11)
        with pytest.raises(StorageError):
            make_column(10).slice(5, 3)

    def test_oids_are_global(self):
        view = make_column(10).slice(4, 7)
        np.testing.assert_array_equal(view.oids(), [4, 5, 6])

    def test_split_default_midpoint(self):
        view = make_column(10).slice(0, 10)
        left, right = view.split()
        assert (left.lo, left.hi) == (0, 5)
        assert (right.lo, right.hi) == (5, 10)

    def test_split_boundaries_stay_aligned(self):
        view = make_column(100).slice(20, 80)
        left, right = view.split(50)
        assert left.hi == right.lo == 50

    def test_split_outside_range_rejected(self):
        with pytest.raises(StorageError):
            make_column(10).slice(2, 6).split(8)

    def test_covers(self):
        view = make_column(10).slice(2, 6)
        assert view.covers(np.array([2, 5], dtype=np.int64))
        assert not view.covers(np.array([2, 6], dtype=np.int64))
        assert view.covers(np.array([], dtype=np.int64))


class TestCandidates:
    def test_rejects_unsorted(self):
        with pytest.raises(StorageError):
            Candidates(np.array([3, 1, 2]))

    def test_restrict_uses_binary_search(self):
        cands = Candidates(np.array([1, 4, 6, 9, 12]))
        sub = cands.restrict(4, 10)
        np.testing.assert_array_equal(sub.oids, [4, 6, 9])

    def test_restrict_empty_window(self):
        cands = Candidates(np.array([1, 2, 3]))
        assert len(cands.restrict(10, 20)) == 0

    def test_nbytes(self):
        assert Candidates(np.array([1, 2, 3])).nbytes == 24


class TestBat:
    def test_head_tail_length_mismatch_rejected(self):
        with pytest.raises(StorageError):
            BAT(np.array([1, 2]), np.array([1]), LNG)

    def test_tail_coerced_to_dtype(self):
        bat = BAT(np.array([0, 1]), np.array([1.0, 2.0]), LNG)
        assert bat.tail.dtype == np.int64

    def test_nbytes_counts_head_and_tail(self):
        bat = BAT(np.array([0, 1]), np.array([5, 6]), LNG)
        assert bat.nbytes == 2 * (8 + 8)


class TestScalar:
    def test_len_and_nbytes(self):
        value = Scalar(7, LNG)
        assert len(value) == 1
        assert value.nbytes == 8


class TestAlignment:
    """The paper's Figure 9/10 boundary scenarios."""

    def test_aligned_candidates_pass_through(self):
        col = make_column(100)
        cands = Candidates(np.array([10, 20, 30]))
        out = align_candidates(cands, col.slice(0, 50))
        assert out is cands

    def test_overshoot_is_trimmed(self):
        col = make_column(100)
        cands = Candidates(np.array([10, 20, 60]))
        out = align_candidates(cands, col.slice(0, 50))
        np.testing.assert_array_equal(out.oids, [10, 20])

    def test_undershoot_is_trimmed(self):
        col = make_column(100)
        cands = Candidates(np.array([2, 10, 20]))
        out = align_candidates(cands, col.slice(5, 50))
        np.testing.assert_array_equal(out.oids, [10, 20])

    def test_both_sides_trimmed(self):
        col = make_column(100)
        cands = Candidates(np.array([2, 10, 20, 60]))
        out = align_candidates(cands, col.slice(5, 50))
        np.testing.assert_array_equal(out.oids, [10, 20])

    def test_strict_mode_raises_on_misalignment(self):
        col = make_column(100)
        cands = Candidates(np.array([10, 60]))
        with pytest.raises(AlignmentError):
            align_candidates(cands, col.slice(0, 50), strict=True)

    def test_fixed_size_partitions_always_align(self):
        """Figure 9A: identical boundaries never need trimming."""
        col = make_column(100)
        view = col.slice(25, 50)
        cands = Candidates(np.arange(25, 50, dtype=np.int64))
        out = align_candidates(cands, view, strict=True)
        assert out is cands
