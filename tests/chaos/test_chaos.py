"""The chaos harness: fault plans, the seeded injector, engine hooks."""

from __future__ import annotations

import pytest

from repro.chaos import (
    CHAOS_HEAVY,
    CHAOS_LIGHT,
    FaultInjector,
    FaultKind,
    FaultPlan,
)
from repro.config import SimulationConfig, laptop_machine
from repro.engine import execute
from repro.errors import ChaosError, InjectedFaultError
from repro.operators import RangePredicate
from repro.plan import PlanBuilder


@pytest.fixture()
def config() -> SimulationConfig:
    return SimulationConfig(machine=laptop_machine(4), data_scale=100.0)


def make_plan(small_catalog):
    b = PlanBuilder(small_catalog)
    sel = b.select(b.scan("facts", "val"), RangePredicate(hi=500))
    proj = b.fetch(sel, b.scan("facts", "qty"))
    return b.build(b.aggregate("sum", proj))


class TestFaultPlan:
    def test_rates_validated(self):
        with pytest.raises(ChaosError):
            FaultPlan(operator_exception_rate=1.5)
        with pytest.raises(ChaosError):
            FaultPlan(straggler_rate=-0.1)
        with pytest.raises(ChaosError):
            FaultPlan(operator_exception_rate=0.5, straggler_rate=0.6)
        with pytest.raises(ChaosError):
            FaultPlan(straggler_slowdown=0.5)
        with pytest.raises(ChaosError):
            FaultPlan(mem_pressure_factor=0.0)
        with pytest.raises(ChaosError):
            FaultPlan(max_faults=-1)

    def test_enabled_and_dispatch_rate(self):
        assert not FaultPlan().enabled
        assert FaultPlan(straggler_rate=0.1).enabled
        assert not FaultPlan(straggler_rate=0.1, max_faults=0).enabled
        plan = FaultPlan(
            operator_exception_rate=0.1,
            straggler_rate=0.2,
            mem_pressure_rate=0.3,
        )
        assert plan.dispatch_rate == pytest.approx(0.6)

    def test_presets_are_valid_and_enabled(self):
        for preset in (CHAOS_LIGHT, CHAOS_HEAVY):
            assert preset.enabled
            assert preset.dispatch_rate <= 1.0


class TestFaultInjector:
    def test_rejects_non_plan(self):
        with pytest.raises(ChaosError):
            FaultInjector("not a plan", seed=1)  # type: ignore[arg-type]

    def test_same_seed_same_schedule(self):
        plan = FaultPlan(
            operator_exception_rate=0.1,
            straggler_rate=0.3,
            mem_pressure_rate=0.2,
            disconnect_rate=0.2,
        )
        schedules = []
        for _ in range(2):
            inj = FaultInjector(plan, seed=77)
            for i in range(200):
                inj.draw_dispatch(sid=i % 5, nid=i, client=f"c{i % 3}", now=i * 0.5)
            for i in range(50):
                inj.draw_disconnect(sid=i, client=f"c{i % 3}", now=i * 2.0)
            schedules.append(tuple(e.as_tuple() for e in inj.schedule))
        assert schedules[0] == schedules[1]
        assert len(schedules[0]) > 0

    def test_spawn_resets_state(self):
        plan = FaultPlan(straggler_rate=0.5)
        inj = FaultInjector(plan, seed=3)
        for i in range(100):
            inj.draw_dispatch(sid=0, nid=i, client="c", now=0.0)
        fresh = inj.spawn()
        assert fresh.schedule == ()
        assert fresh.stats.total == 0
        for i in range(100):
            fresh.draw_dispatch(sid=0, nid=i, client="c", now=0.0)
        assert tuple(e.as_tuple() for e in fresh.schedule) == tuple(
            e.as_tuple() for e in inj.schedule
        )

    def test_max_faults_budget(self):
        plan = FaultPlan(straggler_rate=1.0, max_faults=5)
        inj = FaultInjector(plan, seed=1)
        for i in range(100):
            inj.draw_dispatch(sid=0, nid=i, client="c", now=0.0)
        assert len(inj.schedule) == 5
        assert inj.exhausted
        assert not inj.draw_disconnect(sid=0, client="c", now=0.0)

    def test_magnitudes_within_declared_bounds(self):
        plan = FaultPlan(
            straggler_rate=0.5,
            straggler_slowdown=6.0,
            mem_pressure_rate=0.5,
            mem_pressure_factor=3.0,
        )
        inj = FaultInjector(plan, seed=9)
        for i in range(500):
            inj.draw_dispatch(sid=0, nid=i, client="c", now=0.0)
        stragglers = [
            e for e in inj.schedule if e.kind is FaultKind.STRAGGLER
        ]
        spikes = [
            e for e in inj.schedule if e.kind is FaultKind.MEM_PRESSURE
        ]
        assert stragglers and spikes
        assert all(1.0 <= e.magnitude <= 6.0 for e in stragglers)
        assert all(1.0 <= e.magnitude <= 3.0 for e in spikes)

    def test_error_for_carries_context(self):
        inj = FaultInjector(FaultPlan(operator_exception_rate=1.0), seed=1)
        error = inj.error_for(sid=4, nid=7, now=1.25)
        assert isinstance(error, InjectedFaultError)
        assert error.sid == 4 and error.nid == 7 and error.when == 1.25

    def test_stats_as_dict_sums(self):
        plan = FaultPlan(
            operator_exception_rate=0.2,
            straggler_rate=0.2,
            mem_pressure_rate=0.2,
            disconnect_rate=0.5,
        )
        inj = FaultInjector(plan, seed=5)
        for i in range(100):
            inj.draw_dispatch(sid=0, nid=i, client="c", now=0.0)
            inj.draw_disconnect(sid=i, client="c", now=0.0)
        stats = inj.stats.as_dict()
        assert stats["dispatch_draws"] == 100
        assert stats["submission_draws"] == 100
        assert stats["total"] == len(inj.schedule) == inj.stats.total > 0


class TestEngineIntegration:
    def test_timing_faults_keep_results_exact(self, small_catalog, config):
        plan = make_plan(small_catalog)
        clean = execute(plan.copy(), config)
        faults = FaultPlan(
            straggler_rate=0.3,
            straggler_slowdown=8.0,
            mem_pressure_rate=0.3,
            mem_pressure_factor=4.0,
        )
        chaotic = execute(plan.copy(), config, faults=faults)
        assert chaotic.outputs[0].value == clean.outputs[0].value
        # Stragglers and memory pressure can only slow the run down.
        assert chaotic.response_time >= clean.response_time

    def test_injected_exception_aborts_execution(self, small_catalog, config):
        plan = make_plan(small_catalog)
        with pytest.raises(InjectedFaultError):
            execute(plan, config, faults=FaultPlan(operator_exception_rate=1.0))

    def test_fault_free_plan_is_a_no_op(self, small_catalog, config):
        plan = make_plan(small_catalog)
        clean = execute(plan.copy(), config)
        gated = execute(plan.copy(), config, faults=FaultPlan())
        assert gated.response_time == clean.response_time
        assert gated.outputs[0].value == clean.outputs[0].value
