"""Unit tests of the metrics registry and its instruments."""

from __future__ import annotations

import pytest

from repro.errors import ObserveError
from repro.observe import DURATION_BUCKETS, Histogram, MetricsRegistry


def test_counter_monotonic():
    registry = MetricsRegistry()
    counter = registry.counter("c_total")
    counter.inc()
    counter.inc(2.5)
    assert registry.collect()["c_total"] == 3.5
    with pytest.raises(ObserveError):
        counter.inc(-1)


def test_gauge_moves_both_ways():
    registry = MetricsRegistry()
    gauge = registry.gauge("g")
    gauge.set(5)
    gauge.inc()
    gauge.dec(2)
    assert registry.collect()["g"] == 4.0


def test_labeled_children_are_distinct_and_sorted():
    registry = MetricsRegistry()
    registry.counter("tasks_total", kind="scan").inc(2)
    registry.counter("tasks_total", kind="join").inc()
    out = registry.collect()
    assert out['tasks_total{kind="join"}'] == 1.0
    assert out['tasks_total{kind="scan"}'] == 2.0
    assert list(out) == sorted(out)


def test_same_name_same_instrument():
    registry = MetricsRegistry()
    a = registry.counter("x_total")
    b = registry.counter("x_total")
    assert a is b


def test_kind_mismatch_rejected():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(ObserveError):
        registry.gauge("x")


def test_histogram_buckets():
    histogram = Histogram((0.1, 1.0, 10.0))
    for value in (0.05, 0.5, 5.0, 50.0):
        histogram.observe(value)
    assert histogram.bucket_counts == [1, 1, 1, 1]
    assert histogram.cumulative() == [1, 2, 3, 4]
    assert histogram.sum == pytest.approx(55.55)
    assert histogram.count == 4


def test_histogram_bounds_validation():
    with pytest.raises(ObserveError):
        Histogram(())
    with pytest.raises(ObserveError):
        Histogram((1.0, 1.0))
    registry = MetricsRegistry()
    registry.histogram("h", buckets=(1.0, 2.0))
    with pytest.raises(ObserveError):
        registry.histogram("h", buckets=(1.0, 3.0))


def test_default_duration_buckets_are_increasing():
    assert list(DURATION_BUCKETS) == sorted(DURATION_BUCKETS)


def test_collect_drops_host_families_on_request():
    registry = MetricsRegistry()
    registry.counter("sim_total").inc()
    registry.gauge("host_seconds", host=True).set(1.23)
    assert "host_seconds" in registry.collect()
    assert "host_seconds" not in registry.collect(host=False)


def test_histogram_collect_shape():
    registry = MetricsRegistry()
    registry.histogram("h", buckets=(1.0, 2.0)).observe(1.5)
    out = registry.collect()["h"]
    assert out["buckets"] == {"1.0": 0, "2.0": 1, "+Inf": 1}
    assert out["sum"] == 1.5 and out["count"] == 1


def test_prometheus_exposition():
    registry = MetricsRegistry()
    registry.counter("jobs_total", "jobs processed", kind="scan").inc(3)
    registry.gauge("depth").set(2.5)
    registry.histogram("lat", buckets=(0.1, 1.0), help="latency").observe(0.5)
    text = registry.to_prometheus()
    assert "# HELP jobs_total jobs processed" in text
    assert "# TYPE jobs_total counter" in text
    assert 'jobs_total{kind="scan"} 3' in text
    assert "depth 2.5" in text
    assert 'lat_bucket{le="0.1"} 0' in text
    assert 'lat_bucket{le="+Inf"} 1' in text
    assert "lat_sum 0.5" in text
    assert "lat_count 1" in text
    assert text.endswith("\n")


def test_prometheus_drops_host_families():
    registry = MetricsRegistry()
    registry.gauge("host_seconds", host=True).set(1.0)
    assert registry.to_prometheus(host=False) == ""


def test_prometheus_labeled_histogram():
    registry = MetricsRegistry()
    registry.histogram("lat", buckets=(1.0,), kind="scan").observe(0.5)
    text = registry.to_prometheus()
    assert 'lat_bucket{le="1.0",kind="scan"} 1' in text
    assert 'lat_sum{kind="scan"} 0.5' in text
    assert 'lat_count{kind="scan"} 1' in text


def test_prometheus_huge_values_keep_float_repr():
    registry = MetricsRegistry()
    registry.gauge("big").set(1e18)
    assert "big 1e+18" in registry.to_prometheus()


def test_len_counts_series():
    registry = MetricsRegistry()
    registry.counter("a", kind="x")
    registry.counter("a", kind="y")
    registry.gauge("b")
    assert len(registry) == 3
