"""Exporter contracts: JSONL, Chrome trace_event, Prometheus text."""

from __future__ import annotations

import json

import pytest

from repro.observe import MetricsRegistry, Observer, Tracer
from repro.observe.exporters import (
    DRIVER_PID,
    to_chrome_trace,
    to_jsonl,
    to_prometheus,
)

from tests.observe.conftest import observe_q1


def _tiny_observer() -> Observer:
    observer = Observer()
    tracer = observer.tracer
    run = tracer.begin("run:0", "run", 0.0)
    with tracer.scope(run):
        tracer.add("scan", "task", 0.0, 0.5, thread=3, socket=1, op="scan(x)")
        tracer.add("join", "task", 0.5, 1.0, thread=9, socket=0)
        tracer.event("dispatch", "dispatch", 0.5)
    tracer.end(run, 1.0)
    observer.metrics.counter("repro_tasks_total", kind="scan").inc()
    return observer


def test_jsonl_one_line_per_span():
    observer = _tiny_observer()
    lines = observer.to_jsonl().strip().split("\n")
    docs = [json.loads(line) for line in lines]
    assert len(docs) == len(observer.tracer.spans)
    assert [d["span_id"] for d in docs] == list(range(len(docs)))
    assert docs[0]["kind"] == "trace"


def test_chrome_trace_sockets_become_processes():
    doc = json.loads(_tiny_observer().to_chrome_trace(trace_name="unit"))
    events = doc["traceEvents"]
    meta = {e["pid"]: e["args"]["name"] for e in events if e["ph"] == "M"}
    assert meta[DRIVER_PID] == "unit driver"
    assert meta[1] == "socket 0" and meta[2] == "socket 1"
    tasks = {e["name"]: e for e in events if e.get("cat") == "task"}
    assert tasks["scan"]["pid"] == 2 and tasks["scan"]["tid"] == 3
    assert tasks["join"]["pid"] == 1 and tasks["join"]["tid"] == 9
    assert tasks["scan"]["ph"] == "X"
    assert tasks["scan"]["ts"] == 0.0 and tasks["scan"]["dur"] == pytest.approx(5e5)
    # driver spans live in the driver process; instants use ph="i".
    run = next(e for e in events if e.get("cat") == "run")
    assert run["pid"] == DRIVER_PID
    dispatch = next(e for e in events if e.get("cat") == "dispatch")
    assert dispatch["ph"] == "i"
    assert doc["displayTimeUnit"] == "ms"


def test_chrome_trace_skips_open_spans():
    tracer = Tracer()
    tracer.begin("never-ended", "run", 0.0)
    doc = json.loads(to_chrome_trace(tracer))
    assert all(e["name"] != "never-ended" for e in doc["traceEvents"])


def test_exporters_accept_bare_tracer_and_registry():
    tracer = Tracer()
    tracer.add("s", "task", 0.0, 1.0, thread=0, socket=0)
    assert json.loads(to_jsonl(tracer).strip().split("\n")[0])["kind"] == "trace"
    assert "traceEvents" in json.loads(to_chrome_trace(tracer))
    registry = MetricsRegistry()
    registry.counter("c").inc()
    assert "c 1" in to_prometheus(registry)


def test_exporters_reject_wrong_types():
    with pytest.raises(TypeError):
        to_chrome_trace(42)
    with pytest.raises(TypeError):
        to_prometheus("nope")


def test_real_run_chrome_trace_loads(tpch_sf1):
    """The acceptance-criterion artifact: a real run's Chrome trace is
    valid JSON with the Perfetto-required keys on every event."""
    doc = json.loads(observe_q1(tpch_sf1).to_chrome_trace())
    events = doc["traceEvents"]
    assert events
    for event in events:
        assert {"name", "ph", "pid"} <= set(event)
        if event["ph"] == "X":
            assert event["dur"] > 0 and "ts" in event and "tid" in event
    assert any(e["ph"] == "X" and e.get("cat") == "task" for e in events)
