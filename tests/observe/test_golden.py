"""Golden-trace regression fixtures.

The canonical export is a byte-stable contract: later PRs may make the
engine faster, but they must not silently change what the observability
layer reports.  Run ``pytest tests/observe --regen-golden`` after an
*intentional* trace change and review the fixture diff like any other
code change.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from tests.observe.conftest import observe_join_adaptive, observe_q1

GOLDEN_DIR = Path(__file__).parent / "golden"


def _check_golden(name: str, payload: str, regen: bool) -> None:
    path = GOLDEN_DIR / name
    if regen:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(payload + "\n")
        pytest.skip(f"regenerated {path.name}")
    assert path.exists(), (
        f"golden fixture {path} is missing -- run "
        "pytest tests/observe --regen-golden"
    )
    assert payload + "\n" == path.read_text(), (
        f"canonical output diverged from {path.name}; if the change is "
        "intentional, regenerate with --regen-golden and review the diff"
    )


def test_q1_style_golden(tpch_sf1, regen_golden):
    observer = observe_q1(tpch_sf1)
    _check_golden("q1_style.json", observer.canonical_json(), regen_golden)


def test_join_micro_adaptive_golden(regen_golden):
    observer = observe_join_adaptive()
    _check_golden("join_micro.json", observer.canonical_json(), regen_golden)


@pytest.mark.parametrize("workers", [2, 8])
def test_q1_style_workers_byte_identical(tpch_sf1, workers):
    baseline = observe_q1(tpch_sf1).canonical_json()
    pooled = observe_q1(tpch_sf1, workers=workers).canonical_json()
    assert pooled == baseline


def test_host_time_stripped_from_canonical(tpch_sf1):
    """``host_time=True`` changes nothing in the canonical projection."""
    plain = observe_q1(tpch_sf1)
    timed = observe_q1(tpch_sf1, host_time=True)
    assert any(s.host_t0 is not None for s in timed.tracer.spans)
    assert timed.canonical_json() == plain.canonical_json()
    # ... but the raw JSONL does carry the host fields.
    assert '"host_t0"' in timed.to_jsonl()
    assert '"host_t0"' not in timed.to_jsonl(host=False)
