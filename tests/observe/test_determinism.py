"""The determinism matrix: canonical output is bit-identical at any
``workers`` value, with and without memoization, and under CHAOS_LIGHT.

Bit-identity is asserted *within* each configuration cell (across
worker counts and across repeated seeded runs); memoization on versus
off legitimately differ in memo counters, never in spans or simulated
times.
"""

from __future__ import annotations

import json

import pytest

from repro.chaos import CHAOS_LIGHT
from repro.concurrency import ClientSpec, ResilienceConfig, ResilientWorkload
from repro.observe import Observer
from repro.workloads import JoinMicroWorkload

from tests.observe.conftest import observe_join_adaptive

WORKER_GRID = [1, 2, 8]


def _observe_service(workers: int | None, faults) -> Observer:
    workload = JoinMicroWorkload(outer_mb=16, inner_mb=4)
    config = workload.sim_config()
    observer = Observer()
    service = ResilientWorkload(
        config,
        [ClientSpec(f"c{i}", [workload.plan()], max_queries=3) for i in range(3)],
        horizon=2.0,
        faults=faults,
        resilience=ResilienceConfig(timeout=0.05),
        workers=workers,
        observe=observer,
    )
    service.run()
    observer.finish()
    return observer


@pytest.mark.parametrize("memoize", [True, False])
def test_adaptive_identical_across_workers(memoize):
    baseline = observe_join_adaptive(workers=1, memoize=memoize).canonical_json()
    for workers in WORKER_GRID[1:]:
        assert (
            observe_join_adaptive(workers=workers, memoize=memoize).canonical_json()
            == baseline
        )


def test_adaptive_identical_across_repeats():
    assert (
        observe_join_adaptive().canonical_json()
        == observe_join_adaptive().canonical_json()
    )


def test_memoization_changes_bookkeeping_not_simulation():
    """Memo on/off differ in cache/pool bookkeeping spans and counters,
    never in what the simulation did: task and run spans (the simulated
    execution) are identical."""
    with_memo = json.loads(observe_join_adaptive(memoize=True).canonical_json())
    without = json.loads(observe_join_adaptive(memoize=False).canonical_json())

    def simulated(doc):
        return [
            {k: v for k, v in span.items() if k not in ("span_id", "parent_id")}
            for span in doc["trace"]
            if span["kind"] in ("task", "run", "submission", "mutation", "adaptive")
        ]

    assert simulated(with_memo) == simulated(without)
    assert with_memo["metrics"]["repro_memo_hits_total"] > 0
    assert "repro_memo_hits_total" not in without["metrics"]
    # Simulated task time is memo-invariant too.
    key = "repro_task_sim_seconds"
    assert with_memo["metrics"][key] == without["metrics"][key]


def test_chaos_light_identical_across_workers():
    baseline = _observe_service(1, CHAOS_LIGHT).canonical_json()
    for workers in WORKER_GRID[1:]:
        assert _observe_service(workers, CHAOS_LIGHT).canonical_json() == baseline


def test_chaos_light_fault_spans_present_and_ordered():
    """Fault events appear in the trace, identically ordered at any
    worker count (the injector draws on the main thread only)."""
    observers = [_observe_service(w, CHAOS_LIGHT) for w in WORKER_GRID]
    orders = []
    for observer in observers:
        faults = [s for s in observer.tracer.spans if s.kind == "fault"]
        assert faults, "CHAOS_LIGHT run produced no fault spans"
        orders.append([(s.span_id, s.name, s.t0) for s in faults])
    assert orders[0] == orders[1] == orders[2]


def test_clean_service_identical_across_workers():
    baseline = _observe_service(1, None).canonical_json()
    assert _observe_service(8, None).canonical_json() == baseline


def test_adaptive_under_chaos_identical_across_workers():
    baseline = observe_join_adaptive(workers=1, faults=CHAOS_LIGHT).canonical_json()
    assert (
        observe_join_adaptive(workers=8, faults=CHAOS_LIGHT).canonical_json()
        == baseline
    )
