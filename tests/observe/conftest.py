"""Shared scenario builders for the observability suite.

Two canonical scenarios mirror the acceptance criteria: a TPC-H
Q1-style single execution (scan-heavy reporting shape) and a Figure-15
join-micro *adaptive instance* (runs + mutations + memoization on one
timeline).  Both are pure functions of the seed, so their canonical
exports are byte-stable across machines -- that is what the golden
fixtures assert.
"""

from __future__ import annotations

import pytest

from repro.bench.wallclock import q1_style_plan
from repro.core import AdaptiveParallelizer, ConvergenceParams
from repro.engine import execute
from repro.observe import Observer
from repro.workloads import JoinMicroWorkload, TpchDataset

#: Adaptive-run cap for the join-micro scenario: enough runs to cover
#: mutations, memo hits, and the pool; small enough for CI.
JOIN_MAX_RUNS = 5


@pytest.fixture(scope="session")
def tpch_sf1() -> TpchDataset:
    return TpchDataset(scale_factor=1)


def observe_q1(
    dataset: TpchDataset,
    *,
    workers: int | None = None,
    host_time: bool = False,
) -> Observer:
    """One traced execution of the Q1-style plan."""
    observer = Observer(host_time=host_time)
    execute(
        q1_style_plan(dataset),
        dataset.sim_config(),
        workers=workers,
        trace=observer,
    )
    observer.finish()
    return observer


def observe_join_adaptive(
    *,
    workers: int | None = None,
    memoize: bool = True,
    faults=None,
) -> Observer:
    """One traced adaptive instance over the join micro-benchmark."""
    workload = JoinMicroWorkload(outer_mb=16, inner_mb=4)
    config = workload.sim_config()
    observer = Observer()
    parallelizer = AdaptiveParallelizer(
        config,
        convergence=ConvergenceParams(
            number_of_cores=config.effective_threads, max_runs=JOIN_MAX_RUNS
        ),
        workers=workers,
        memoize=memoize,
        faults=faults,
        observe=observer,
    )
    try:
        parallelizer.optimize(workload.plan())
    finally:
        parallelizer.close()
    observer.finish()
    return observer
