"""Unit tests of the span tracer itself."""

from __future__ import annotations

import pytest

from repro.errors import ObserveError
from repro.observe import Span, Tracer
from repro.observe.spans import NEST_EPS, ROOT_KIND


def test_root_span_exists_and_finish_is_idempotent():
    tracer = Tracer()
    assert tracer.root.span_id == 0
    assert tracer.root.kind == ROOT_KIND
    assert not tracer.root.finished
    root = tracer.finish()
    assert root.finished and root.t1 == root.t0 == 0.0
    assert tracer.finish() is root  # second call is a no-op


def test_begin_end_nesting_and_ids():
    tracer = Tracer()
    outer = tracer.begin("outer", "run", 0.0)
    with tracer.scope(outer):
        inner = tracer.begin("inner", "task", 0.1)
        tracer.end(inner, 0.4)
    tracer.end(outer, 0.5)
    assert inner.parent_id == outer.span_id
    assert outer.parent_id == 0
    assert [s.span_id for s in tracer.spans] == [0, 1, 2]
    assert outer.duration == pytest.approx(0.5)


def test_end_clamps_to_cover_children():
    tracer = Tracer()
    outer = tracer.begin("outer", "run", 0.0)
    with tracer.scope(outer):
        late = tracer.begin("late", "task", 0.0)
        tracer.end(late, 2.0)
    tracer.end(outer, 1.0)  # earlier than its child's end
    assert outer.t1 == 2.0
    root = tracer.finish()
    assert root.t1 == 2.0


def test_end_never_before_start():
    tracer = Tracer()
    span = tracer.begin("s", "task", 1.0)
    tracer.end(span, 0.5)
    assert span.t1 == span.t0


def test_double_end_rejected():
    tracer = Tracer()
    span = tracer.begin("s", "task", 0.0)
    tracer.end(span, 1.0)
    with pytest.raises(ObserveError):
        tracer.end(span, 2.0)


def test_duration_of_open_span_rejected():
    tracer = Tracer()
    span = tracer.begin("s", "task", 0.0)
    with pytest.raises(ObserveError):
        __ = span.duration


def test_add_rejects_negative_interval():
    tracer = Tracer()
    with pytest.raises(ObserveError):
        tracer.add("bad", "task", 1.0, 0.5)


def test_event_is_zero_duration():
    tracer = Tracer()
    event = tracer.event("tick", "dispatch", 0.25, note="x")
    assert event.t0 == event.t1 == 0.25
    assert event.attrs == {"note": "x"}


def test_advance_shifts_time_base():
    tracer = Tracer()
    first = tracer.add("run0", "run", 0.0, 1.5)
    tracer.advance(1.5)
    second = tracer.add("run1", "run", 0.0, 2.0)
    assert first.t1 == 1.5
    assert second.t0 == 1.5 and second.t1 == 3.5
    with pytest.raises(ObserveError):
        tracer.advance(-0.1)


def test_as_dict_strips_host_fields():
    span = Span(
        3, 0, "s", "task", 0.0, 1.0,
        attrs={"op": "scan", "host_note": "x"},
        host_t0=10.0, host_t1=11.0,
    )
    full = span.as_dict()
    assert full["host_t0"] == 10.0 and full["attrs"]["host_note"] == "x"
    bare = span.as_dict(host=False)
    assert "host_t0" not in bare and "host_t1" not in bare
    assert bare["attrs"] == {"op": "scan"}


def test_host_time_stamps_spans():
    tracer = Tracer(host_time=True)
    span = tracer.begin("s", "task", 0.0)
    tracer.end(span, 1.0)
    assert span.host_t0 is not None and span.host_t1 is not None
    assert span.host_t1 >= span.host_t0
    assert tracer.finish().host_t1 is not None


def test_explicit_parent_overrides_scope():
    tracer = Tracer()
    outer = tracer.begin("outer", "run", 0.0)
    with tracer.scope(outer):
        detached = tracer.begin("detached", "task", 0.0, parent=tracer.root)
        tracer.end(detached, 0.1)
    tracer.end(outer, 0.2)
    assert detached.parent_id == 0


def test_nest_eps_is_tiny():
    assert 0 < NEST_EPS < 1e-6
