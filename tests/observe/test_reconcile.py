"""Reconciliation: the registry agrees with the legacy stat shims.

The metrics registry did not replace ``CacheStats``/``PoolStats``/
``FaultStats``/``WorkloadReport`` -- they stay as compatibility shims.
These tests pin the contract that both views of one run are the same
numbers.
"""

from __future__ import annotations

import pytest

from repro.chaos import CHAOS_LIGHT
from repro.concurrency import ClientSpec, ResilienceConfig, ResilientWorkload
from repro.core import AdaptiveParallelizer, ConvergenceParams
from repro.engine import execute
from repro.observe import Observer
from repro.workloads import JoinMicroWorkload


@pytest.fixture()
def micro() -> JoinMicroWorkload:
    return JoinMicroWorkload(outer_mb=16, inner_mb=4)


def test_task_metrics_match_profile(micro):
    observer = Observer()
    result = execute(micro.plan(), micro.sim_config(), trace=observer)
    metrics = observer.metrics.collect()
    records = result.profile.records

    task_counts = {
        key: value
        for key, value in metrics.items()
        if key.startswith("repro_tasks_total")
    }
    assert sum(task_counts.values()) == len(records)

    by_kind = result.profile.time_by_kind()
    for kind, seconds in by_kind.items():
        assert metrics[f'repro_task_sim_seconds_total{{kind="{kind}"}}'] == (
            pytest.approx(seconds)
        )
    histogram = metrics["repro_task_sim_seconds"]
    assert histogram["count"] == len(records)
    assert histogram["sum"] == pytest.approx(sum(by_kind.values()))
    assert metrics["repro_submissions_total"] == 1.0
    assert metrics["repro_submissions_completed_total"] == 1.0


def test_memo_counters_match_cache_stats(micro):
    observer = Observer()
    config = micro.sim_config()
    parallelizer = AdaptiveParallelizer(
        config,
        convergence=ConvergenceParams(
            number_of_cores=config.effective_threads, max_runs=4
        ),
        observe=observer,
    )
    try:
        parallelizer.optimize(micro.plan())
    finally:
        parallelizer.close()
    stats = parallelizer.memo.stats()
    metrics = observer.metrics.collect()
    assert metrics["repro_memo_hits_total"] == stats.hits
    assert metrics["repro_memo_misses_total"] == stats.misses
    assert metrics["repro_memo_insertions_total"] == stats.insertions
    assert metrics.get("repro_memo_evictions_total", 0.0) == stats.evictions
    assert stats.hits > 0  # adaptive reruns share almost the whole plan


def test_pool_gauges_match_pool_stats(micro):
    observer = Observer()
    execute(micro.plan(), micro.sim_config(), workers=2, trace=observer)
    metrics = observer.metrics.collect()
    # record_pool publishes the PoolStats dict verbatim as host gauges,
    # and every run_batch call also feeds the batch-size histogram.
    assert metrics["repro_pool_batches"] == (
        metrics["repro_pool_batch_jobs"]["count"]
    )
    assert metrics["repro_pool_jobs"] == metrics["repro_pool_batch_jobs"]["sum"]
    assert 0 <= metrics["repro_pool_inline_jobs"] <= metrics["repro_pool_jobs"]
    assert metrics["repro_pool_max_batch"] >= 1
    # Host families never leak into canonical output.
    canonical = observer.metrics.collect(host=False)
    assert not any(key.startswith("repro_pool_") for key in canonical)


def test_service_counters_match_workload_report(micro):
    observer = Observer()
    config = micro.sim_config()
    service = ResilientWorkload(
        config,
        [ClientSpec(f"c{i}", [micro.plan()], max_queries=3) for i in range(3)],
        horizon=2.0,
        faults=CHAOS_LIGHT,
        resilience=ResilienceConfig(timeout=0.05),
        observe=observer,
    )
    report = service.run()
    metrics = observer.metrics.collect()

    def count(name: str) -> float:
        return metrics.get(f"repro_service_{name}_total", 0.0)

    assert count("retry") == report.retries
    assert count("timeout") == report.timeouts
    assert count("disconnect") == report.disconnects
    assert count("shed_dop") == report.shed_dop
    assert count("abandon") == report.abandoned
    assert count("admission_wait") == report.admission_waits
    assert metrics["repro_service_peak_in_flight"] == report.peak_in_flight
    assert metrics["repro_service_peak_queue_depth"] == report.peak_queue_depth

    injected = sum(
        value
        for key, value in metrics.items()
        if key.startswith("repro_faults_injected_total")
    )
    assert injected == report.faults_injected

    fault_spans = [s for s in observer.tracer.spans if s.kind == "fault"]
    # Fault spans cover dispatch-level faults; client disconnects are
    # drawn at submission time and surface as service events instead.
    assert len(fault_spans) == report.faults_injected - report.disconnects
