"""CLI surface: ``repro analyze`` and the unified ``repro lint --json``."""

from __future__ import annotations

import json

from repro.cli import main

from .conftest import BAD_KERNEL, CLEAN_KERNEL


class TestAnalyzeCommand:
    def test_default_target_is_clean_strict(self, capsys):
        assert main(["analyze", "--strict"]) == 0
        out = capsys.readouterr().out
        assert "codebase: clean" in out
        assert "certificates:" in out

    def test_bad_fixture_fails(self, capsys):
        assert main(["analyze", str(BAD_KERNEL), "--no-registry"]) == 1
        out = capsys.readouterr().out
        assert "purity.inplace-write" in out
        assert "bad_kernel.py" in out

    def test_clean_fixture_passes(self, capsys):
        assert main(["analyze", str(CLEAN_KERNEL), "--no-registry", "--strict"]) == 0

    def test_json_document_shape(self, capsys):
        assert main(["analyze", str(BAD_KERNEL), "--json", "--no-registry"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == 1
        assert doc["summary"]["errors"] > 0
        assert doc["summary"]["clean"] is False
        assert doc["subject"] == "codebase"
        rules = {f["rule"] for f in doc["findings"]}
        assert "purity.inplace-write" in rules
        for finding in doc["findings"]:
            assert finding["file"].endswith("bad_kernel.py")

    def test_json_includes_certificates(self, capsys):
        assert main(["analyze", str(CLEAN_KERNEL), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        certs = doc["certificates"]["certificates"]
        assert len(certs) >= 20
        assert all(c["pure"] for c in certs)

    def test_certificates_file_export(self, capsys, tmp_path):
        out_file = tmp_path / "certs.json"
        assert (
            main(["analyze", str(CLEAN_KERNEL), "--certificates", str(out_file)])
            == 0
        )
        doc = json.loads(out_file.read_text())
        assert {c["operator"] for c in doc["certificates"]} >= {
            "Scan",
            "Select",
            "Join",
            "Aggregate",
        }

    def test_write_baseline_then_suppress(self, capsys, tmp_path):
        baseline = tmp_path / "baseline.json"
        assert (
            main(
                [
                    "analyze",
                    str(BAD_KERNEL),
                    "--no-registry",
                    "--write-baseline",
                    str(baseline),
                ]
            )
            == 0
        )
        assert "suppression(s)" in capsys.readouterr().out
        code = main(
            [
                "analyze",
                str(BAD_KERNEL),
                "--no-registry",
                "--strict",
                "--baseline",
                str(baseline),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "clean" in out
        assert "muted by baseline" in out

    def test_missing_path_is_a_clean_error(self, capsys):
        assert main(["analyze", "/no/such/path.py"]) == 1
        assert "no such file" in capsys.readouterr().err


class TestLintJson:
    def test_lint_json_shares_the_document_shape(self, capsys):
        assert main(["lint", "--query", "q6", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == 1
        assert doc["summary"]["clean"] is True
        assert doc["subject"] == "q6"
        assert doc["findings"] == []

    def test_lint_text_output_unchanged(self, capsys):
        assert main(["lint", "--query", "q6"]) == 0
        assert "q6: clean" in capsys.readouterr().out
