"""Rule-family tests over the seeded fixtures, plus the repo-clean gate."""

from __future__ import annotations

from pathlib import Path

from repro.analysis import (
    Baseline,
    analyze_files,
    default_package_path,
    exit_code,
)

#: Every rule id the seeded bad-kernel fixture must trigger.
EXPECTED_BAD_RULES = {
    "purity.inplace-write",
    "purity.mutating-call",
    "purity.module-state",
    "determinism.unseeded-rng",
    "determinism.host-time",
    "determinism.id-key",
    "determinism.set-iteration",
    "concurrency.self-mutation",
    "concurrency.global-write",
    "concurrency.lock-discipline",
    "concurrency.unlocked-shared-state",
}


class TestSeededFixtures:
    def test_bad_kernel_triggers_every_rule_family(self, bad_kernel_path):
        report = analyze_files([bad_kernel_path])
        assert report.rules == EXPECTED_BAD_RULES

    def test_bad_kernel_fails_the_exit_convention(self, bad_kernel_path):
        report = analyze_files([bad_kernel_path])
        assert report.has_errors
        assert exit_code(report) == 1

    def test_findings_carry_file_and_line(self, bad_kernel_path):
        report = analyze_files([bad_kernel_path])
        for diag in report:
            assert diag.file and diag.file.endswith("bad_kernel.py")
            assert diag.line is not None and diag.line > 0

    def test_clean_kernel_is_silent(self, clean_kernel_path):
        report = analyze_files([clean_kernel_path])
        assert len(report) == 0
        assert exit_code(report, strict=True) == 0


class TestRepoIsClean:
    """The acceptance gate: ``repro analyze --strict`` on the installed
    package must exit 0 with zero unsuppressed findings."""

    def test_installed_package_analyzes_clean_strict(self):
        report = analyze_files([default_package_path()])
        assert report.format() == ""
        assert exit_code(report, strict=True) == 0

    def test_host_only_modules_keep_their_clock_allowance(self):
        # evalpool/observe/bench legitimately read the host clock; the
        # allowlist must keep them out of determinism.host-time.
        report = analyze_files([default_package_path()])
        assert not report.by_rule("determinism.host-time")


class TestBaseline:
    def test_round_trip_and_split(self, bad_kernel_path, tmp_path):
        report = analyze_files([bad_kernel_path])
        baseline = Baseline.from_report(report)
        path = tmp_path / "baseline.json"
        path.write_text(baseline.to_json())
        kept, suppressed = Baseline.load(path).split(report)
        assert len(kept) == 0
        assert len(suppressed) == len(report)
        assert exit_code(kept, strict=True) == 0

    def test_partial_baseline_keeps_other_findings(self, bad_kernel_path, tmp_path):
        report = analyze_files([bad_kernel_path])
        path = tmp_path / "baseline.json"
        path.write_text(
            '{"suppressions": [{"rule": "purity.inplace-write", '
            f'"file": "{bad_kernel_path}"}}]}}'
        )
        kept, suppressed = Baseline.load(path).split(report)
        assert {d.rule for d in suppressed} == {"purity.inplace-write"}
        assert "purity.mutating-call" in {d.rule for d in kept}

    def test_suffix_path_matching(self, bad_kernel_path):
        # A baseline written with repo-relative paths still applies when
        # the analyzer runs over absolute paths.
        report = analyze_files([Path(bad_kernel_path).resolve()])
        baseline = Baseline(
            [
                type(s)(rule=s.rule, file="tests/analysis/fixtures/bad_kernel.py")
                for s in Baseline.from_report(report).suppressions
            ]
        )
        kept, __ = baseline.split(report)
        assert len(kept) == 0

    def test_malformed_baseline_raises(self, tmp_path):
        from repro.errors import AnalysisError

        import pytest

        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(AnalysisError):
            Baseline.load(path)
