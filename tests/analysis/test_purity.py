"""Unit tests of the kernel purity/taint analysis."""

from __future__ import annotations

import ast
import textwrap

from repro.analysis.purity import (
    KERNEL_METHODS,
    analyze_kernel,
    module_mutable_globals,
)


def effects_of(src: str, module_globals: set[str] | None = None):
    """Analyze one ``def evaluate`` body given as source."""
    tree = ast.parse(textwrap.dedent(src))
    node = tree.body[0]
    assert isinstance(node, ast.FunctionDef)
    return analyze_kernel(node, module_globals or set())


class TestInplaceWrites:
    def test_subscript_store_to_input_is_flagged(self):
        effects = effects_of(
            """
            def evaluate(self, inputs):
                buf = inputs[0]
                buf[0] = 1
                return buf
            """
        )
        assert not effects.pure
        assert any("buf[0]" in desc for _, desc in effects.inplace_writes)

    def test_augmented_store_to_input_is_flagged(self):
        effects = effects_of(
            """
            def evaluate(self, inputs):
                inputs[0][:] += 1
                return inputs[0]
            """
        )
        assert effects.inplace_writes

    def test_write_to_fresh_copy_is_pure(self):
        effects = effects_of(
            """
            def evaluate(self, inputs):
                out = np.array(inputs[0])
                out[0] = 1
                return out
            """
        )
        assert effects.pure

    def test_slice_of_input_stays_tainted(self):
        effects = effects_of(
            """
            def evaluate(self, inputs):
                view = inputs[0][1:10]
                view[0] = 1
                return view
            """
        )
        assert effects.inplace_writes

    def test_boolean_mask_produces_fresh_array(self):
        effects = effects_of(
            """
            def evaluate(self, inputs):
                picked = inputs[0][inputs[0] > 3]
                picked[0] = 1
                return picked
            """
        )
        assert effects.pure

    def test_asarray_forwards_aliasing(self):
        effects = effects_of(
            """
            def evaluate(self, inputs):
                arr = np.asarray(inputs[0])
                arr[0] = 1
                return arr
            """
        )
        assert effects.inplace_writes


class TestMutatingCalls:
    def test_inplace_sort_on_input_is_flagged(self):
        effects = effects_of(
            """
            def evaluate(self, inputs):
                inputs[0].sort()
                return inputs[0]
            """
        )
        assert effects.mutating_calls

    def test_np_sort_copy_is_pure(self):
        effects = effects_of(
            """
            def evaluate(self, inputs):
                return np.sort(inputs[0])
            """
        )
        assert effects.pure

    def test_np_copyto_into_input_is_flagged(self):
        effects = effects_of(
            """
            def evaluate(self, inputs):
                np.copyto(inputs[0], 0)
                return inputs[0]
            """
        )
        assert effects.mutating_calls

    def test_container_mutator_on_local_list_is_pure(self):
        effects = effects_of(
            """
            def evaluate(self, inputs):
                out = []
                out.append(1)
                return out
            """
        )
        assert effects.pure


class TestStateWrites:
    def test_self_write_is_flagged(self):
        effects = effects_of(
            """
            def evaluate(self, inputs):
                self.calls = 1
                return inputs[0]
            """
        )
        assert effects.self_writes
        assert not effects.pure

    def test_module_global_write_is_flagged(self):
        effects = effects_of(
            """
            def evaluate(self, inputs):
                CACHE[1] = inputs[0]
                return inputs[0]
            """,
            module_globals={"CACHE"},
        )
        assert effects.module_writes

    def test_unknown_global_name_is_not_flagged(self):
        effects = effects_of(
            """
            def evaluate(self, inputs):
                local = {}
                local[1] = 2
                return inputs[0]
            """,
            module_globals={"CACHE"},
        )
        assert effects.pure


class TestViewReturns:
    def test_returning_input_slice_is_view(self):
        effects = effects_of(
            """
            def evaluate(self, inputs):
                return inputs[0][1:5]
            """
        )
        assert effects.view_return

    def test_returning_scalar_of_input_is_not_view(self):
        effects = effects_of(
            """
            def evaluate(self, inputs):
                return float(inputs[0].sum())
            """
        )
        assert not effects.view_return

    def test_returning_fresh_array_is_not_view(self):
        effects = effects_of(
            """
            def evaluate(self, inputs):
                return np.array(inputs[0])
            """
        )
        assert not effects.view_return

    def test_view_transparent_constructor_keeps_taint(self):
        effects = effects_of(
            """
            def evaluate(self, inputs):
                head = inputs[0][lo:hi]
                return BAT(head, head, LNG)
            """
        )
        assert effects.view_return


class TestModuleGlobals:
    def test_collects_mutable_module_bindings(self):
        from repro.analysis.source import parse_file

        import tempfile

        with tempfile.NamedTemporaryFile("w", suffix=".py", delete=False) as f:
            f.write("CACHE = {}\nTABLE = [1]\nN = 3\n__all__ = ['x']\n")
            path = f.name
        names = module_mutable_globals(parse_file(path))
        assert "CACHE" in names and "TABLE" in names
        assert "N" not in names  # ints are immutable
        assert "__all__" not in names


def test_kernel_methods_cover_the_operator_protocol():
    assert KERNEL_METHODS == ("evaluate", "work_profile", "mask")
