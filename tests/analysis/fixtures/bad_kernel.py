"""Deliberately unsafe kernels: the seeded true-positive fixture.

Every rule family of ``repro analyze`` must flag this file; the tests
in ``tests/analysis/test_rules.py`` assert each expected rule id fires
here (and nothing fires on ``clean_kernel.py``).  Never import this
module -- it is analyzed as source only.
"""

import threading
import time

import numpy as np

CACHE = {}
_counter = 0
_lock = threading.Lock()


class MutatingKernel:
    """A kernel with every purity violation the analyzer knows."""

    def evaluate(self, inputs):
        buf = inputs[0]
        buf[0] = 42  # purity.inplace-write: writes a shared input
        buf.sort()  # purity.mutating-call: in-place method on an input
        CACHE[len(buf)] = buf  # purity.module-state: module-level dict
        self.calls = 1  # concurrency.self-mutation: instance state
        return buf

    def work_profile(self, inputs, output):
        return len(output)


class RacyAccumulator:
    """Owns a lock but mutates shared state without holding it."""

    def __init__(self):
        self._lock = threading.Lock()
        self.total = 0

    def add(self, value):
        self.total += value  # concurrency.unlocked-shared-state


def bump():
    global _counter
    _counter += 1  # concurrency.global-write: no lock held


def leaky_locking(lock):
    lock.acquire()  # concurrency.lock-discipline: no finally release
    value = _counter
    lock.release()
    return value


def unstable(items):
    rng = np.random.default_rng()  # determinism.unseeded-rng
    started = time.time()  # determinism.host-time
    keys = sorted(items, key=lambda x: id(x))  # determinism.id-key
    order = []
    for x in {1, 2, 3}:  # determinism.set-iteration
        order.append(x)
    return rng, started, keys, order
