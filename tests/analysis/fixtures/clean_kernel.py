"""A well-behaved kernel: ``repro analyze`` must report nothing here.

The negative control for the rule tests: fresh allocations, seeded
randomness, sorted iteration, lock discipline.  Never imported --
analyzed as source only.
"""

import threading

import numpy as np

_lock = threading.Lock()
_counter = 0


class PureKernel:
    """Allocates fresh outputs; touches no shared or instance state."""

    def evaluate(self, inputs):
        buf = inputs[0]
        out = np.asarray(buf).copy()
        out += 1
        return out

    def work_profile(self, inputs, output):
        return len(output)


def seeded_shuffle(values, seed):
    rng = np.random.default_rng(seed)
    out = np.array(values)
    rng.shuffle(out)
    return out


def bump_under_lock():
    global _counter
    with _lock:
        _counter += 1
        return _counter


def careful_locking(lock):
    lock.acquire()
    try:
        return 1
    finally:
        lock.release()


def stable_order(items):
    return sorted(set(items))
