"""Shared paths for the codebase-analyzer tests."""

from __future__ import annotations

from pathlib import Path

import pytest

HERE = Path(__file__).parent

#: The seeded true-positive fixture (never imported, analyzed as source).
BAD_KERNEL = HERE / "fixtures" / "bad_kernel.py"
#: The negative control: analyzed clean.
CLEAN_KERNEL = HERE / "fixtures" / "clean_kernel.py"
#: Golden certificate registry of every registered operator.
GOLDEN_CERTIFICATES = HERE / "golden" / "certificates.json"


@pytest.fixture()
def bad_kernel_path() -> Path:
    return BAD_KERNEL


@pytest.fixture()
def clean_kernel_path() -> Path:
    return CLEAN_KERNEL
