"""Fail-closed dispatch gating: uncertified kernels never reach the pool."""

from __future__ import annotations

import pytest

from repro.config import SimulationConfig, laptop_machine
from repro.engine import EvalPool, execute
from repro.errors import UncertifiedKernelError
from repro.plan import Plan

from .test_certificates import PureScalarOperator, SelfMutatingOperator


@pytest.fixture()
def config() -> SimulationConfig:
    return SimulationConfig(machine=laptop_machine(4), data_scale=10.0)


def two_wide_plan(op_factory) -> Plan:
    """Two independent outputs: both become one dispatch batch."""
    plan = Plan()
    plan.set_outputs([plan.add(op_factory()), plan.add(op_factory())])
    return plan


class TestPoolGate:
    def test_refuses_impure_batch(self):
        with EvalPool(2) as pool:
            jobs = [lambda: 1, lambda: 2]
            ops = [SelfMutatingOperator(), SelfMutatingOperator()]
            with pytest.raises(UncertifiedKernelError, match="refusing"):
                pool.run_batch(jobs, ops)

    def test_passes_pure_batch(self):
        with EvalPool(2) as pool:
            jobs = [lambda: 1, lambda: 2]
            ops = [PureScalarOperator(), PureScalarOperator()]
            assert pool.run_batch(jobs, ops) == [1, 2]

    def test_inline_pool_never_gates(self):
        # workers=1 is single-threaded: nothing can race, so even an
        # impure kernel runs (the paper's serial fallback must keep
        # working for unported operators).
        with EvalPool(1) as pool:
            jobs = [lambda: 1, lambda: 2]
            ops = [SelfMutatingOperator(), SelfMutatingOperator()]
            assert pool.run_batch(jobs, ops) == [1, 2]

    def test_below_threshold_batch_never_gates(self):
        with EvalPool(4) as pool:
            assert pool.run_batch([lambda: 3], [SelfMutatingOperator()]) == [3]

    def test_ungated_when_ops_omitted(self):
        # Callers outside the scheduler may run raw thunks.
        with EvalPool(2) as pool:
            assert pool.run_batch([lambda: 1, lambda: 2]) == [1, 2]

    def test_custom_registry_is_honored(self):
        from repro.analysis.certificates import CertificateRegistry

        registry = CertificateRegistry()
        with EvalPool(2, certificates=registry) as pool:
            jobs = [lambda: 1, lambda: 2]
            with pytest.raises(UncertifiedKernelError):
                pool.run_batch(jobs, [SelfMutatingOperator()] * 2)


class TestEndToEndGate:
    @pytest.mark.parametrize("workers", [2, 8])
    def test_execute_refuses_impure_plan_in_parallel(self, config, workers):
        with pytest.raises(UncertifiedKernelError, match="SelfMutatingOperator"):
            execute(two_wide_plan(SelfMutatingOperator), config, workers=workers)

    def test_execute_allows_impure_plan_serially(self, config):
        result = execute(two_wide_plan(SelfMutatingOperator), config, workers=1)
        assert [out.value for out in result.outputs] == [1, 1]

    @pytest.mark.parametrize("workers", [1, 2, 8])
    def test_execute_allows_pure_plan_everywhere(self, config, workers):
        result = execute(two_wide_plan(PureScalarOperator), config, workers=workers)
        assert [out.value for out in result.outputs] == [7, 7]

    def test_shipped_operators_pass_the_gate(self, config, small_catalog):
        from repro.operators import RangePredicate
        from repro.plan import PlanBuilder

        builder = PlanBuilder(small_catalog)
        sel = builder.select(builder.scan("facts", "val"), RangePredicate(hi=500))
        plan = builder.build(builder.aggregate("count", sel))
        serial = execute(plan.copy(), config)
        parallel = execute(plan.copy(), config, workers=4)
        assert serial.outputs[0].value == parallel.outputs[0].value
