"""Runtime mutation sanitizer: checksums, commit order, dual-run."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.certificates import certify_type
from repro.analysis.sanitize import (
    Sanitizer,
    checksum_intermediate,
    verify_dual_run,
)
from repro.config import SimulationConfig, laptop_machine
from repro.engine import execute
from repro.errors import SanitizerError
from repro.operators import Aggregate, RangePredicate, Scan, Select
from repro.operators.base import Operator, WorkProfile
from repro.plan import Plan, PlanBuilder
from repro.storage import BAT, LNG, Candidates, Column, Scalar


@pytest.fixture()
def config() -> SimulationConfig:
    return SimulationConfig(machine=laptop_machine(4), data_scale=10.0)


class ArraySource(Operator):
    """Materializes a fresh *writable* BAT (column buffers are read-only,
    so mutation tests need an intermediate a kernel could write)."""

    kind = "array_source"

    def __init__(self, values: np.ndarray) -> None:
        super().__init__()
        self.base = np.asarray(values, dtype=np.int64)

    def evaluate(self, inputs):
        tail = np.array(self.base)
        return BAT(np.arange(len(tail)), tail, LNG)

    def work_profile(self, inputs, output) -> WorkProfile:
        return WorkProfile(tuples_out=len(self.base))


class SneakyMutator(Operator):
    """Mutates its input through ``np.add.at`` -- a ufunc-method spelling
    the AST taint pass cannot classify, so it *certifies pure*.  Exactly
    the kernel the runtime sanitizer exists to catch."""

    kind = "sneaky_mutator"

    def evaluate(self, inputs):
        bat = inputs[0]
        np.add.at(bat.tail, 0, 1)
        return Scalar(int(bat.tail.sum()), LNG)

    def work_profile(self, inputs, output) -> WorkProfile:
        return WorkProfile(tuples_in=len(inputs[0]), tuples_out=1)


def sneaky_plan(n: int = 64) -> Plan:
    plan = Plan()
    src = plan.add(ArraySource(np.arange(n)))
    plan.set_outputs([plan.add(SneakyMutator(), [src])])
    return plan


def clean_plan(catalog) -> Plan:
    builder = PlanBuilder(catalog)
    sel = builder.select(builder.scan("facts", "val"), RangePredicate(hi=500))
    return builder.build(builder.aggregate("count", sel))


class TestChecksums:
    def test_none_checksums_to_zero(self):
        assert checksum_intermediate(None) == 0

    def test_array_checksum_tracks_content(self):
        a = np.arange(10)
        b = np.arange(10)
        assert checksum_intermediate(a) == checksum_intermediate(b)
        b = b.copy()
        b[3] = 99
        assert checksum_intermediate(a) != checksum_intermediate(b)

    def test_column_slice_covers_base_buffer(self):
        backing = np.arange(100, dtype=np.int64)
        col = Column("v", LNG, backing.copy())
        view = col.slice(10, 20)
        before = checksum_intermediate(view)
        # Mutate the base buffer *inside the slice window* through the
        # storage-side escape hatch; the slice checksum must change.
        col.values.setflags(write=True)
        try:
            col.values[15] = -1
        finally:
            col.values.setflags(write=False)
        assert checksum_intermediate(view) != before

    def test_slices_with_same_values_but_different_window_differ(self):
        col = Column("v", LNG, np.zeros(100, dtype=np.int64))
        assert checksum_intermediate(col.slice(0, 10)) != checksum_intermediate(
            col.slice(10, 20)
        )

    def test_candidates_uniqueness_is_part_of_the_sum(self):
        oids = np.array([1, 2, 3], dtype=np.int64)
        a = Candidates(oids, check_sorted=False, unique=True)
        b = Candidates(oids, check_sorted=False, unique=None)
        assert checksum_intermediate(a) != checksum_intermediate(b)

    def test_bat_covers_head_and_tail(self):
        bat = BAT(np.arange(5), np.arange(5), LNG)
        moved = BAT(np.arange(1, 6), np.arange(5), LNG)
        assert checksum_intermediate(bat) != checksum_intermediate(moved)

    def test_scalar_dtype_matters(self):
        from repro.storage import DBL

        assert checksum_intermediate(Scalar(1, LNG)) != checksum_intermediate(
            Scalar(1.0, DBL)
        )


class TestCommitOrder:
    def test_strict_dispatch_order_passes(self):
        Sanitizer().check_commit_order([0, 1, 2], 3)

    def test_memo_peeks_are_skipped(self):
        Sanitizer().check_commit_order([-1, 0, -1, 1], 2)

    def test_same_batch_repeats_are_allowed(self):
        Sanitizer().check_commit_order([0, 0, 1, 2, 2], 3)

    def test_out_of_order_commit_raises(self):
        with pytest.raises(SanitizerError, match="commit barrier"):
            Sanitizer().check_commit_order([1, 0], 2)

    def test_unclaimed_results_raise(self):
        with pytest.raises(SanitizerError, match="commit barrier"):
            Sanitizer().check_commit_order([0], 2)


class TestInputImmutability:
    def test_verify_passes_when_inputs_untouched(self):
        sanitizer = Sanitizer()
        entries = [(0, 5, "Select", [(3, np.arange(10))])]
        snap = sanitizer.snapshot_inputs(entries)
        sanitizer.verify_inputs(snap, entries)

    def test_verify_names_the_mutated_input(self):
        sanitizer = Sanitizer()
        buf = np.arange(10)
        entries = [(0, 3, "Select", [(1, buf)])]
        snap = sanitizer.snapshot_inputs(entries)
        buf[0] = 99
        with pytest.raises(SanitizerError, match=r"Select\(nid=3\) input #0"):
            sanitizer.verify_inputs(snap, entries)

    def test_mutation_between_commit_and_use_is_caught(self):
        # The baseline is the *at-commit* checksum, so a buffer mutated
        # in any round between its commit and its use is still caught.
        sanitizer = Sanitizer()
        buf = np.arange(10)
        sanitizer.record_commit(0, 1, buf)
        buf[0] = 99  # mutated while idle, before the consuming round
        entries = [(0, 3, "Select", [(1, buf)])]
        snap = sanitizer.snapshot_inputs(entries)
        with pytest.raises(SanitizerError, match="mutated a shared input"):
            sanitizer.verify_inputs(snap, entries)


class TestChecksumCaches:
    """At-commit checksums are cached (by object identity, and by
    ``(column uid, window)`` for read-only slices) so memoized re-commits
    do not re-read buffers; staleness is *detection*, never a miss."""

    def test_recommit_of_same_object_reuses_checksum(self):
        import repro.analysis.sanitize as S

        sanitizer = Sanitizer()
        bat = BAT(np.arange(8), np.arange(8), LNG)
        sanitizer.record_commit(0, 1, bat)
        assert S._OBJECT_CRC[id(bat)] == sanitizer._commit_crc[(0, 1)]
        sanitizer.record_commit(1, 4, bat)  # memo hit under a fresh sid
        assert sanitizer._commit_crc[(1, 4)] == sanitizer._commit_crc[(0, 1)]

    def test_object_cache_evicts_on_garbage_collection(self):
        import gc

        import repro.analysis.sanitize as S

        sanitizer = Sanitizer()
        bat = BAT(np.arange(8), np.arange(8), LNG)
        oid = id(bat)
        sanitizer.record_commit(0, 1, bat)
        assert oid in S._OBJECT_CRC
        del bat
        gc.collect()
        assert oid not in S._OBJECT_CRC

    def test_slice_cache_shares_checksum_across_fresh_slice_objects(self):
        import repro.analysis.sanitize as S

        col = Column("v", LNG, np.arange(50, dtype=np.int64))
        sanitizer = Sanitizer()
        sanitizer.record_commit(0, 1, col.slice(5, 15))
        key = (col.uid, 5, 15)
        assert key in S._SLICE_CRC
        # A brand-new slice object over the same window reuses it.
        sanitizer.record_commit(1, 2, col.slice(5, 15))
        assert sanitizer._commit_crc[(1, 2)] == S._SLICE_CRC[key]

    def test_stale_slice_baseline_flags_escape_hatch_mutations(self):
        # Mutating a read-only base buffer through setflags leaves the
        # cached baseline stale -- and the next verify read flags it.
        sanitizer = Sanitizer()
        col = Column("v", LNG, np.arange(50, dtype=np.int64))
        view = col.slice(0, 50)
        sanitizer.record_commit(0, 1, view)
        col.values.setflags(write=True)
        try:
            col.values[7] = -99
        finally:
            col.values.setflags(write=False)
        entries = [(0, 3, "Select", [(1, view)])]
        with pytest.raises(SanitizerError, match="mutated a shared input"):
            sanitizer.verify_round(entries)

    def test_slice_cache_clears_at_capacity(self, monkeypatch):
        import repro.analysis.sanitize as S

        monkeypatch.setattr(S, "_SLICE_CRC_LIMIT", 1)
        col = Column("v", LNG, np.arange(10, dtype=np.int64))
        sanitizer = Sanitizer()
        sanitizer.record_commit(0, 1, col.slice(0, 5))
        sanitizer.record_commit(0, 2, col.slice(5, 10))
        assert len(S._SLICE_CRC) == 1  # cleared wholesale, then refilled

    def test_writable_backed_slices_are_never_cached_by_window(self):
        import repro.analysis.sanitize as S

        col = Column("v", LNG, np.arange(10, dtype=np.int64))
        col.values.setflags(write=True)  # escape hatch left open
        try:
            Sanitizer().record_commit(0, 1, col.slice(0, 5))
            assert (col.uid, 0, 5) not in S._SLICE_CRC
        finally:
            col.values.setflags(write=False)


class TestSanitizedExecution:
    def test_sneaky_kernel_certifies_pure(self):
        # The premise of the runtime layer: this mutator is invisible to
        # the static pass (np.add.at), so the gate admits it...
        assert certify_type(SneakyMutator).pure

    @pytest.mark.parametrize("workers", [1, 2, 8])
    def test_sanitizer_catches_the_mutation(self, config, workers):
        # ...and the sanitizer catches it at any worker count.
        with pytest.raises(SanitizerError, match="mutated a shared input"):
            execute(sneaky_plan(), config, workers=workers, sanitize=True)

    def test_mutation_goes_unnoticed_without_sanitizer(self, config):
        result = execute(sneaky_plan(64), config)
        # sum(0..63) + 1 from the sneaky in-place increment.
        assert result.outputs[0].value == sum(range(64)) + 1

    @pytest.mark.parametrize("workers", [1, 2, 8])
    def test_clean_plans_pass_clean(self, config, small_catalog, workers):
        result = execute(
            clean_plan(small_catalog), config, workers=workers, sanitize=True
        )
        assert result.outputs[0].value > 0

    def test_env_var_enables_sanitizer(self, config, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        with pytest.raises(SanitizerError):
            execute(sneaky_plan(), config)

    def test_explicit_false_overrides_env(self, config, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        result = execute(sneaky_plan(64), config, sanitize=False)
        assert result.outputs[0].value == sum(range(64)) + 1


class TestDualRun:
    def test_clean_plan_has_worker_invariant_fingerprint(
        self, config, small_catalog
    ):
        fp = verify_dual_run(clean_plan(small_catalog), config, workers=4)
        assert len(fp) == 8
        int(fp, 16)  # well-formed hex

    def test_fingerprint_is_reproducible(self, config, small_catalog):
        # Fingerprints fold node ids, which are allocated globally, so
        # reproducibility is an invariant of one plan instance (rebuilt
        # or copied plans renumber and legitimately differ).
        plan = clean_plan(small_catalog)
        first = verify_dual_run(plan, config, workers=2)
        second = verify_dual_run(plan, config, workers=2)
        assert first == second

    def test_fingerprints_differ_across_plans(self, config, small_catalog):
        builder = PlanBuilder(small_catalog)
        other = builder.build(
            builder.aggregate("count", builder.scan("facts", "qty"))
        )
        assert verify_dual_run(
            clean_plan(small_catalog), config, workers=2
        ) != verify_dual_run(other, config, workers=2)

    def test_stats_count_batches_and_commits(self, config, small_catalog):
        from repro.engine import Simulator

        sanitizer = Sanitizer()
        simulator = Simulator(config, sanitizer=sanitizer)
        sid = simulator.submit(clean_plan(small_catalog))
        simulator.run()
        simulator.result(sid)
        stats = sanitizer.stats()
        assert stats["batches_checked"] > 0
        assert stats["buffers_checked"] > 0
        assert stats["commits_recorded"] >= 3  # scan, select, aggregate
        assert stats["fingerprint"] == sanitizer.fingerprint


def test_scan_select_pipeline_cannot_mutate_base_columns(config):
    values = np.arange(500, dtype=np.int64)
    col = Column("v", LNG, values.copy())
    before = col.values.tobytes()
    plan = Plan()
    scan = plan.add(Scan(col))
    sel = plan.add(Select(RangePredicate(hi=250)), [scan])
    plan.set_outputs([plan.add(Aggregate("count"), [sel])])
    execute(plan, config, workers=2, sanitize=True)
    assert col.values.tobytes() == before
