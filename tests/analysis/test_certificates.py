"""Certificate registry: golden fixture, coverage, and fail-closed gating."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.analysis.certificates import (
    CERTIFICATE_VERSION,
    CertificateRegistry,
    build_registry,
    certify_type,
    default_registry,
    registered_operator_classes,
)
from repro.errors import UncertifiedKernelError
from repro.operators.base import Operator, WorkProfile
from repro.storage import LNG, Scalar

from .conftest import GOLDEN_CERTIFICATES


class SelfMutatingOperator(Operator):
    """Visibly impure: bumps instance state on every call."""

    kind = "self_mutating"

    def __init__(self) -> None:
        super().__init__()
        self.calls = 0

    def evaluate(self, inputs):
        self.calls += 1
        return Scalar(self.calls, LNG)

    def work_profile(self, inputs, output) -> WorkProfile:
        return WorkProfile(tuples_out=1)


class PureScalarOperator(Operator):
    """Trivially pure: fresh scalar, no state, no views."""

    kind = "pure_scalar"

    def evaluate(self, inputs):
        return Scalar(int(np.int64(7)), LNG)

    def work_profile(self, inputs, output) -> WorkProfile:
        return WorkProfile(tuples_out=1)


class TestGoldenRegistry:
    def test_registry_matches_golden_fixture(self, request):
        document = build_registry().to_document()
        if request.config.getoption("--regen-golden"):
            GOLDEN_CERTIFICATES.write_text(
                json.dumps(document, indent=2, sort_keys=True) + "\n"
            )
        golden = json.loads(GOLDEN_CERTIFICATES.read_text())
        assert document == golden, (
            "certificate registry drifted from the golden fixture; "
            "inspect the diff and run pytest --regen-golden if intended"
        )

    def test_golden_version_matches(self):
        golden = json.loads(GOLDEN_CERTIFICATES.read_text())
        assert golden["version"] == CERTIFICATE_VERSION


class TestRegistryCoverage:
    def test_every_registered_operator_is_certified(self):
        registry = build_registry()
        names = {c.operator for c in registry.certificates()}
        for cls in registered_operator_classes():
            assert cls.__name__ in names

    def test_every_registered_operator_is_pure(self):
        # The repo invariant behind host-parallel evaluation: every
        # shipped kernel certifies pure.
        for cert in build_registry().certificates():
            assert cert.pure, f"{cert.operator}: {cert.issues}"
            assert cert.picklable_params
            assert cert.shared_memory_eligible

    def test_view_returning_is_a_strict_subset(self):
        certs = build_registry().certificates()
        views = {c.operator for c in certs if c.view_returning}
        # Scan returns ColumnSlice views by design; Join builds fresh
        # pairs. Spot-check both directions to pin the analysis down.
        assert "Scan" in views
        assert "Join" not in views

    def test_default_registry_is_a_singleton(self):
        assert default_registry() is default_registry()


class TestCertifyType:
    def test_impure_operator_scores_issues(self):
        cert = certify_type(SelfMutatingOperator)
        assert not cert.pure
        assert not cert.shared_memory_eligible
        assert any("instance state" in issue for issue in cert.issues)

    def test_pure_operator_scores_clean(self):
        cert = certify_type(PureScalarOperator)
        assert cert.pure
        assert cert.issues == ()

    def test_locally_defined_class_is_not_picklable(self):
        class Local(PureScalarOperator):
            pass

        cert = certify_type(Local)
        assert not cert.picklable_params
        assert not cert.shared_memory_eligible

    def test_round_trip_through_json(self):
        registry = build_registry()
        doc = json.loads(registry.to_json())
        loaded = CertificateRegistry.from_document(doc)
        assert [c.to_dict() for c in loaded.certificates()] == [
            c.to_dict() for c in registry.certificates()
        ]


class TestFailClosedGate:
    def test_check_passes_pure_operator(self):
        registry = CertificateRegistry()
        cert = registry.check(PureScalarOperator())
        assert cert.pure

    def test_check_refuses_impure_operator(self):
        registry = CertificateRegistry()
        with pytest.raises(UncertifiedKernelError, match="instance state"):
            registry.check(SelfMutatingOperator())

    def test_unknown_class_is_certified_on_demand(self):
        registry = CertificateRegistry()
        assert registry.get(PureScalarOperator).pure
        # Second lookup hits the cache (same object back).
        assert registry.get(PureScalarOperator) is registry.get(
            PureScalarOperator
        )

    def test_loaded_certificates_gate_by_name(self):
        doc = {
            "version": CERTIFICATE_VERSION,
            "certificates": [
                {
                    "operator": "PureScalarOperator",
                    "module": "anywhere",
                    "pure": False,
                    "picklable_params": True,
                    "shared_memory_eligible": False,
                    "view_returning": False,
                    "issues": ["revoked by test"],
                }
            ],
        }
        registry = CertificateRegistry.from_document(doc)
        with pytest.raises(UncertifiedKernelError, match="revoked"):
            registry.check(PureScalarOperator())
