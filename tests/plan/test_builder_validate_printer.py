"""Plan builder, validation, printing, and statistics."""

from __future__ import annotations

import pytest

from repro.errors import PlanError
from repro.operators import Pack, RangePredicate
from repro.plan import (
    Plan,
    PlanBuilder,
    format_plan,
    format_tree,
    plan_stats,
    validate_plan,
)
from repro.plan.graph import PlanNode


@pytest.fixture()
def builder(small_catalog) -> PlanBuilder:
    return PlanBuilder(small_catalog)


class TestBuilder:
    def test_quickstart_pipeline(self, builder):
        sel = builder.select(builder.scan("facts", "val"), RangePredicate(hi=100))
        proj = builder.fetch(sel, builder.scan("facts", "qty"))
        agg = builder.aggregate("sum", proj)
        plan = builder.build(agg)
        validate_plan(plan)
        assert plan.count_kind("select") == 1
        assert plan.outputs == [agg]

    def test_group_aggregate_arity_checks(self, builder):
        keys = builder.scan("facts", "fk")
        vals = builder.scan("facts", "val")
        with pytest.raises(PlanError):
            builder.group_aggregate("count", keys, vals)
        with pytest.raises(PlanError):
            builder.group_aggregate("sum", keys)

    def test_join_and_semijoin(self, builder):
        outer = builder.scan("facts", "fk")
        inner = builder.scan("dims", "pk")
        plan = builder.build(builder.join(outer, inner))
        validate_plan(plan)
        plan2 = PlanBuilder(builder.catalog)
        node = plan2.semijoin(
            plan2.scan("facts", "fk"), plan2.scan("dims", "pk"), negate=True
        )
        validate_plan(plan2.build(node))

    def test_cand_union_requires_branches(self, builder):
        with pytest.raises(PlanError):
            builder.cand_union([])

    def test_literal_and_calc(self, builder):
        node = builder.calc(
            "*", builder.literal(100), builder.scan("facts", "val")
        )
        plan = builder.build(node)
        validate_plan(plan)

    def test_multiple_outputs(self, builder):
        a = builder.aggregate("sum", builder.scan("facts", "val"))
        b = builder.aggregate("count", builder.scan("facts", "val"))
        plan = builder.build([a, b])
        assert len(plan.outputs) == 2


class TestValidate:
    def test_empty_outputs_rejected(self):
        with pytest.raises(PlanError, match="outputs"):
            validate_plan(Plan())

    def test_bad_arity_rejected(self, builder):
        sel = builder.select(builder.scan("facts", "val"), RangePredicate(hi=1))
        sel.inputs.append(sel.inputs[0])
        sel.inputs.append(sel.inputs[0])
        with pytest.raises(PlanError, match="inputs"):
            validate_plan(builder.build(sel))

    def test_pack_order_keys_checked(self, builder):
        a = builder.select(builder.scan("facts", "val"), RangePredicate(hi=1))
        b = builder.select(builder.scan("facts", "val"), RangePredicate(hi=2))
        a.order_key, b.order_key = 10, 5
        pack = builder.plan.add(Pack(), [a, b])
        with pytest.raises(PlanError, match="order"):
            validate_plan(builder.build(pack))

    def test_pack_with_unordered_none_keys_allowed(self, builder):
        a = builder.select(builder.scan("facts", "val"), RangePredicate(hi=1))
        b = builder.select(builder.scan("facts", "val"), RangePredicate(hi=2))
        pack = builder.plan.add(Pack(), [a, b])
        validate_plan(builder.build(pack))


class TestPrinterStats:
    def _plan(self, builder) -> Plan:
        sel = builder.select(builder.scan("facts", "val"), RangePredicate(hi=100))
        proj = builder.fetch(sel, builder.scan("facts", "qty"))
        return builder.build(builder.aggregate("sum", proj))

    def test_format_plan_lists_all_nodes(self, builder):
        plan = self._plan(builder)
        text = format_plan(plan)
        assert text.count("\n") + 1 == len(plan)
        assert "# output" in text

    def test_format_tree_marks_shared(self, builder):
        scan = builder.scan("facts", "val")
        a = builder.select(scan, RangePredicate(hi=1))
        b = builder.fetch(a, scan)
        text = format_tree(builder.build(b))
        assert "(shared)" not in text or "scan" in text

    def test_stats_counts(self, builder):
        plan = self._plan(builder)
        stats = plan_stats(plan)
        assert stats.select_count == 1
        assert stats.total_nodes == 5
        assert stats.depth == 4
        assert stats.max_pack_fanin == 0

    def test_stats_pack_fanin(self, builder):
        a = builder.select(builder.scan("facts", "val"), RangePredicate(hi=1))
        b = builder.select(builder.scan("facts", "qty"), RangePredicate(hi=2))
        pack = builder.plan.add(Pack(), [a, b])
        stats = plan_stats(builder.build(pack))
        assert stats.max_pack_fanin == 2
        assert stats.pack_count == 1
