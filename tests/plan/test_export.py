"""Plan export: JSON round-trips and Graphviz dot."""

from __future__ import annotations

import json

import pytest

from repro.core import AdaptiveParallelizer, ConvergenceParams, intermediates_equal
from repro.engine import execute
from repro.errors import PlanError
from repro.operators import LikePredicate, RangePredicate
from repro.plan import PlanBuilder, validate_plan
from repro.plan.export import plan_from_json, to_dot, to_json


def build_plan(catalog):
    b = PlanBuilder(catalog)
    sel = b.select(b.scan("facts", "val"), RangePredicate(hi=500))
    keys = b.fetch(sel, b.scan("facts", "fk"))
    joined = b.join(keys, b.scan("dims", "pk"))  # FK join: all rows match
    sizes = b.fetch(joined, b.scan("dims", "size"))
    qty = b.fetch(sel, b.scan("facts", "qty"))
    grouped = b.group_aggregate("sum", sizes, qty)
    named = b.select(b.scan("dims", "name"), LikePredicate("name-1%"))
    return b.build([grouped, b.aggregate("count", named)])


class TestJsonRoundTrip:
    def test_round_trip_preserves_results(self, small_catalog, sim_config):
        plan = build_plan(small_catalog)
        text = to_json(plan)
        restored = plan_from_json(text, small_catalog)
        validate_plan(restored)
        a = execute(plan, sim_config)
        b = execute(restored, sim_config)
        assert intermediates_equal(a.outputs[0], b.outputs[0])

    def test_round_trip_preserves_structure(self, small_catalog):
        plan = build_plan(small_catalog)
        restored = plan_from_json(to_json(plan), small_catalog)
        assert [n.kind for n in restored.nodes()] == [n.kind for n in plan.nodes()]

    def test_mutated_plan_round_trips(self, small_catalog, sim_config):
        """The point of the format: persisting *morphed* plans."""
        plan = build_plan(small_catalog)
        adaptive = AdaptiveParallelizer(
            sim_config,
            convergence=ConvergenceParams(number_of_cores=8, max_runs=25),
        ).optimize(plan)
        text = to_json(adaptive.best_plan)
        restored = plan_from_json(text, small_catalog)
        validate_plan(restored)
        a = execute(adaptive.best_plan, sim_config)
        b = execute(restored, sim_config)
        assert intermediates_equal(a.outputs[0], b.outputs[0])
        # order keys survive (pack ordering correctness)
        originals = [n.order_key for n in adaptive.best_plan.nodes()]
        copies = [n.order_key for n in restored.nodes()]
        assert originals == copies

    def test_json_is_valid_and_versioned(self, small_catalog):
        document = json.loads(to_json(build_plan(small_catalog)))
        assert document["version"] == 1
        assert document["outputs"]
        assert all("op" in node for node in document["nodes"])

    def test_unknown_version_rejected(self, small_catalog):
        with pytest.raises(PlanError, match="version"):
            plan_from_json('{"version": 9, "nodes": [], "outputs": []}', small_catalog)

    def test_unlabelled_scan_rejected(self, small_catalog):
        from repro.operators import Scan
        from repro.plan import Plan

        plan = Plan()
        scan = plan.add(Scan(small_catalog.column("facts", "val")))  # no label
        plan.set_outputs([scan])
        with pytest.raises(PlanError, match="label"):
            to_json(plan)


class TestDot:
    def test_dot_contains_every_node_and_edge(self, small_catalog):
        plan = build_plan(small_catalog)
        dot = to_dot(plan)
        nodes = plan.nodes()
        for node in nodes:
            assert f"n{node.nid} [" in dot
        edge_count = sum(len(n.inputs) for n in nodes)
        assert dot.count("->") == edge_count

    def test_dot_colors_by_kind(self, small_catalog):
        dot = to_dot(build_plan(small_catalog))
        assert "palegreen" in dot  # selects
        assert "lightblue" in dot  # join

    def test_dot_is_digraph(self, small_catalog):
        assert to_dot(build_plan(small_catalog)).startswith("digraph")
