"""Structural plan fingerprints: stability, sensitivity, sharing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import PlanError
from repro.operators import (
    Aggregate,
    Fetch,
    PartitionSlice,
    RangePredicate,
    Scan,
    Select,
)
from repro.plan import Plan
from repro.storage import Column, LNG


def build_plan(col: Column, *, hi: float = 10) -> Plan:
    plan = Plan()
    scan = plan.add(Scan(col))
    sel = plan.add(Select(RangePredicate(hi=hi)), [scan])
    fetch = plan.add(Fetch(), [sel, scan])
    agg = plan.add(Aggregate("sum"), [fetch])
    plan.set_outputs([agg])
    return plan


@pytest.fixture()
def column() -> Column:
    return Column("v", LNG, np.arange(50))


class TestStability:
    def test_copy_clones_keep_fingerprints(self, column):
        """Plan.copy() clones every node and operator, yet the values the
        clones compute are the same -- fingerprints must agree."""
        plan = build_plan(column)
        a, b = plan.copy(), plan.copy()
        fps_a = sorted(a.fingerprints().values())
        fps_b = sorted(b.fingerprints().values())
        assert fps_a == fps_b

    def test_same_structure_same_fingerprint(self, column):
        one = build_plan(column).outputs[0].fingerprint()
        two = build_plan(column).outputs[0].fingerprint()
        assert one == two

    def test_plan_fingerprints_match_node_fingerprint(self, column):
        plan = build_plan(column)
        fps = plan.fingerprints()
        for node in plan.nodes():
            assert fps[node.nid] == node.fingerprint()

    def test_digest_width(self, column):
        fp = build_plan(column).outputs[0].fingerprint()
        assert isinstance(fp, bytes) and len(fp) == 16


class TestSensitivity:
    def test_selection_bound_changes_fingerprint(self, column):
        base = build_plan(column, hi=10).outputs[0].fingerprint()
        other = build_plan(column, hi=11).outputs[0].fingerprint()
        assert base != other

    def test_partition_range_changes_fingerprint(self, column):
        def sliced(lo: int, hi: int) -> bytes:
            plan = Plan()
            scan = plan.add(Scan(column))
            part = plan.add(PartitionSlice(lo, hi), [scan])
            plan.set_outputs([part])
            return part.fingerprint()

        assert sliced(0, 25) != sliced(25, 50)

    def test_order_key_changes_fingerprint(self, column):
        plan = build_plan(column)
        fp_before = plan.outputs[0].fingerprint()
        plan.outputs[0].order_key = 3
        assert plan.outputs[0].fingerprint() != fp_before

    def test_distinct_base_columns_differ(self):
        """Equal contents in distinct Column objects must not collide:
        leaf keys are identity-based, not value-based."""
        col_a = Column("v", LNG, np.arange(50))
        col_b = Column("v", LNG, np.arange(50))
        assert (
            build_plan(col_a).outputs[0].fingerprint()
            != build_plan(col_b).outputs[0].fingerprint()
        )

    def test_input_fingerprint_propagates(self, column):
        """Changing a leaf changes every downstream fingerprint."""
        narrow = build_plan(column)
        fps = narrow.fingerprints()
        wide = build_plan(column, hi=20)
        fps_wide = wide.fingerprints()
        scan_fp = {fps[n.nid] for n in narrow.nodes() if n.kind == "scan"}
        scan_fp_wide = {fps_wide[n.nid] for n in wide.nodes() if n.kind == "scan"}
        assert scan_fp == scan_fp_wide  # the shared scan is unaffected
        agg = narrow.outputs[0]
        agg_wide = wide.outputs[0]
        assert fps[agg.nid] != fps_wide[agg_wide.nid]


class TestEdgeCases:
    def test_cycle_raises(self, column):
        plan = build_plan(column)
        agg = plan.outputs[0]
        sel = plan.find(lambda n: n.kind == "select")[0]
        sel.inputs.append(agg)
        with pytest.raises(PlanError, match="cycle"):
            plan.fingerprints()

    def test_shared_subdag_hashed_once(self, column):
        """Diamond plans must fingerprint in O(nodes): the shared scan's
        digest is computed once and reused by both consumers."""
        plan = build_plan(column)
        fps = plan.fingerprints()
        assert len(fps) == len(plan.nodes())
