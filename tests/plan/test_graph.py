"""Plan graph structure, traversal, mutation primitives, copying."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import PlanError
from repro.operators import Aggregate, Fetch, Literal, RangePredicate, Scan, Select
from repro.plan import Plan, PlanNode, iter_edges
from repro.storage import Column, LNG


def simple_plan() -> tuple[Plan, PlanNode, PlanNode, PlanNode]:
    col = Column("v", LNG, np.arange(50))
    plan = Plan()
    scan = plan.add(Scan(col))
    sel = plan.add(Select(RangePredicate(hi=10)), [scan])
    fetch = plan.add(Fetch(), [sel, scan])
    agg = plan.add(Aggregate("sum"), [fetch])
    plan.set_outputs([agg])
    return plan, scan, sel, agg


class TestTraversal:
    def test_topological_order(self):
        plan, scan, sel, agg = simple_plan()
        nodes = plan.nodes()
        order = {node.nid: i for i, node in enumerate(nodes)}
        for producer, consumer in iter_edges(plan):
            assert order[producer.nid] < order[consumer.nid]

    def test_len_counts_reachable_only(self):
        plan, *_ = simple_plan()
        plan.add(Literal(5))  # unreachable
        assert len(plan) == 4

    def test_cycle_detection(self):
        plan, scan, sel, agg = simple_plan()
        sel.inputs.append(agg)
        with pytest.raises(PlanError, match="cycle"):
            plan.nodes()

    def test_consumers(self):
        plan, scan, sel, agg = simple_plan()
        consumers = plan.consumers(scan)
        kinds = sorted(node.kind for node in consumers)
        assert kinds == ["fetch", "select"]

    def test_find_and_count(self):
        plan, *_ = simple_plan()
        assert plan.count_kind("select") == 1
        assert len(plan.find(lambda n: n.kind == "scan")) == 1

    def test_shared_node_visited_once(self):
        plan, scan, *_ = simple_plan()
        assert sum(1 for node in plan.nodes() if node is scan) == 1


class TestMutationPrimitives:
    def test_replace_node_redirects_consumers_and_outputs(self):
        plan, scan, sel, agg = simple_plan()
        replacement = plan.add(Aggregate("count"), list(agg.inputs))
        plan.replace_node(agg, replacement)
        assert plan.outputs == [replacement]
        assert agg not in (node for node in plan.nodes())

    def test_splice_input(self):
        plan, scan, sel, agg = simple_plan()
        other = plan.add(Select(RangePredicate(hi=20)), [scan])
        fetch = plan.consumers(sel)[0]
        plan.splice_input(fetch, sel, other)
        assert other in fetch.inputs and sel not in fetch.inputs

    def test_splice_missing_edge_rejected(self):
        plan, scan, sel, agg = simple_plan()
        with pytest.raises(PlanError):
            plan.splice_input(agg, scan, sel)


class TestCopy:
    def test_copy_is_structurally_identical(self):
        plan, *_ = simple_plan()
        dup = plan.copy()
        assert len(dup) == len(plan)
        assert [node.kind for node in dup.nodes()] == [
            node.kind for node in plan.nodes()
        ]

    def test_copy_has_fresh_nodes_and_ops(self):
        plan, *_ = simple_plan()
        dup = plan.copy()
        original_ids = {node.nid for node in plan.nodes()}
        for node in dup.nodes():
            assert node.nid not in original_ids
        original_ops = {id(node.op) for node in plan.nodes()}
        for node in dup.nodes():
            assert id(node.op) not in original_ops

    def test_copy_preserves_order_keys_and_labels(self):
        plan, scan, sel, agg = simple_plan()
        sel.order_key = 17
        sel.label = "marked"
        dup = plan.copy()
        copied_sel = dup.find(lambda n: n.kind == "select")[0]
        assert copied_sel.order_key == 17
        assert copied_sel.label == "marked"

    def test_mutating_copy_leaves_original(self):
        plan, *_ = simple_plan()
        dup = plan.copy()
        dup.outputs[0].inputs.clear()
        assert len(plan) == 4
