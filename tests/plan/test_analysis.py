"""The static plan analyzer: passes, rules, and mutation gating."""

from __future__ import annotations

import json

import pytest

from repro.core import MutationRejection, PlanMutator
from repro.engine import execute
from repro.errors import PlanError
from repro.operators import RangePredicate
from repro.operators.exchange import Pack
from repro.operators.groupby import AggrMerge
from repro.operators.project import Fetch
from repro.operators.scan import Scan
from repro.operators.select import Select
from repro.operators.slice import FRACTION_UNITS, PartitionSlice
from repro.operators.sort import Sort, TopN
from repro.plan import PlanBuilder, analyze_plan, to_json, validate_plan
from repro.plan.analysis import AnalysisReport, Diagnostic
from repro.plan.graph import Plan, PlanNode
from repro.plan.validate import arity_of, unknown_operators


def build_sum_plan(catalog):
    """select -> fetch -> sum, the simplest mutable pipeline."""
    b = PlanBuilder(catalog)
    sel = b.select(b.scan("facts", "val"), RangePredicate(hi=500))
    return b.build(b.aggregate("sum", b.fetch(sel, b.scan("facts", "qty"))))


def build_group_plan(catalog):
    b = PlanBuilder(catalog)
    sel = b.select(b.scan("facts", "val"), RangePredicate(hi=500))
    keys = b.fetch(sel, b.scan("facts", "fk"))
    vals = b.fetch(sel, b.scan("facts", "qty"))
    return b.build(b.group_aggregate("sum", keys, vals))


def mutate(plan, config, steps):
    mutator = PlanMutator(plan)
    profile = execute(plan, config).profile
    for __ in range(steps):
        if mutator.mutate(profile) is None:
            break
        profile = execute(plan, config).profile
    return mutator


def half_split(scan_node):
    """Two half slices over ``scan_node`` with proper order keys."""
    mid = FRACTION_UNITS // 2
    lo = PlanNode(PartitionSlice(0, mid), [scan_node], order_key=0)
    hi = PlanNode(PartitionSlice(mid, FRACTION_UNITS), [scan_node], order_key=mid)
    return lo, hi


def fetch_branches(catalog):
    """Two fetch clones over a half-split select (BAT branches)."""
    val = catalog.column("facts", "val")
    qty = catalog.column("facts", "qty")
    scan_val = PlanNode(Scan(val), label="facts.val")
    scan_qty = PlanNode(Scan(qty), label="facts.qty")
    lo, hi = half_split(scan_val)
    branches = []
    for part in (lo, hi):
        sel = PlanNode(Select(RangePredicate(hi=500)), [part], order_key=part.order_key)
        branches.append(
            PlanNode(Fetch(), [sel, scan_qty], order_key=part.order_key)
        )
    return branches


class TestReport:
    def test_clean_report(self, small_catalog):
        report = analyze_plan(build_sum_plan(small_catalog))
        assert not report.diagnostics
        assert not report.has_errors and not report.has_warnings
        assert report.summary() == "clean"

    def test_report_accessors(self):
        diags = (
            Diagnostic("partition.gap", "error", "gap", (1, 2)),
            Diagnostic("lint.pack-fanin", "warn", "big", (3,), hint="shrink"),
            Diagnostic("determinism.unordered-pack", "info", "meh", ()),
        )
        report = AnalysisReport(diags)
        assert [d.rule for d in report.errors] == ["partition.gap"]
        assert [d.rule for d in report.warnings] == ["lint.pack-fanin"]
        assert [d.rule for d in report.infos] == ["determinism.unordered-pack"]
        assert report.summary() == "1 error(s), 1 warning(s), 1 info"
        assert report.rules == {
            "partition.gap", "lint.pack-fanin", "determinism.unordered-pack",
        }
        assert [d.rule for d in report.by_rule("partition.gap")] == ["partition.gap"]
        dicts = report.to_dicts()
        assert dicts[0]["severity"] == "error" and dicts[0]["nodes"] == [1, 2]
        assert "shrink" in diags[1].format()

    def test_mutated_plans_stay_clean(self, small_catalog, sim_config):
        plan = build_group_plan(small_catalog)
        mutate(plan, sim_config, 6)
        report = analyze_plan(plan)
        assert not report.has_errors, report.format()
        assert not report.has_warnings, report.format()


class TestLineagePass:
    def test_arity_error(self, small_catalog):
        plan = build_sum_plan(small_catalog)
        plan.outputs[0].inputs.append(plan.nodes()[0])
        report = analyze_plan(plan)
        assert "lineage.arity" in report.rules

    def test_type_impossible_edge(self, small_catalog):
        # sort over a candidate list: selections emit oids, not values.
        b = PlanBuilder(small_catalog)
        sel = b.select(b.scan("facts", "val"), RangePredicate(hi=500))
        plan = Plan()
        out = PlanNode(Sort(), [sel])
        plan.set_outputs([out])
        report = analyze_plan(plan)
        assert "lineage.input-type" in report.rules

    def test_pack_family_mix(self, small_catalog):
        b = PlanBuilder(small_catalog)
        sel = b.select(b.scan("facts", "val"), RangePredicate(hi=500))
        bat = b.fetch(sel, b.scan("facts", "qty"))
        pack = PlanNode(Pack(), [sel, bat])
        plan = Plan()
        plan.set_outputs([pack])
        report = analyze_plan(plan)
        assert "lineage.pack-mix" in report.rules

    def test_unknown_operator_is_info_not_error(self, small_catalog):
        class Exotic:
            kind = "exotic"

            def describe(self):
                return "exotic()"

        plan = build_sum_plan(small_catalog)
        plan.outputs[0].inputs[0] = PlanNode(
            Exotic(), [plan.outputs[0].inputs[0]]
        )
        report = analyze_plan(plan)
        assert not report.has_errors
        assert "lineage.unknown-op" in report.rules


class TestArityTable:
    def test_subclass_falls_back_through_mro(self):
        class FancySelect(Select):
            pass

        assert arity_of(FancySelect(RangePredicate(hi=1))) == arity_of(
            Select(RangePredicate(hi=1))
        )

    def test_unknown_type_returns_none(self):
        class Alien:
            kind = "alien"

        assert arity_of(Alien()) is None

    def test_unknown_operators_helper(self, small_catalog):
        class Alien:
            kind = "alien"

            def describe(self):
                return "alien()"

        plan = build_sum_plan(small_catalog)
        assert unknown_operators(plan) == []
        plan.outputs[0].inputs[0] = PlanNode(Alien(), [plan.outputs[0].inputs[0]])
        assert [n.kind for n in unknown_operators(plan)] == ["alien"]


class TestPartitionPass:
    def test_gap_detected(self, small_catalog, sim_config):
        plan = build_sum_plan(small_catalog)
        mutate(plan, sim_config, 4)
        target = next(
            n for n in plan.nodes()
            if isinstance(n.op, PartitionSlice) and n.op.lo > 0
        )
        target.op = PartitionSlice(target.op.lo + FRACTION_UNITS // 16, target.op.hi)
        assert "partition.gap" in analyze_plan(plan).rules

    def test_overlap_detected(self, small_catalog, sim_config):
        plan = build_sum_plan(small_catalog)
        mutate(plan, sim_config, 4)
        target = next(
            n for n in plan.nodes()
            if isinstance(n.op, PartitionSlice) and n.op.lo > 0
        )
        target.op = PartitionSlice(target.op.lo - FRACTION_UNITS // 16, target.op.hi)
        assert "partition.overlap" in analyze_plan(plan).rules

    def test_missing_partition_fails_output_coverage(self, small_catalog):
        # Only half of the base ever reaches the output.
        branches = fetch_branches(small_catalog)
        pack = PlanNode(Pack(), branches[:1])
        plan = Plan()
        plan.set_outputs([pack])
        assert "partition.coverage" in analyze_plan(plan).rules

    def test_full_tiling_is_clean(self, small_catalog):
        pack = PlanNode(Pack(), fetch_branches(small_catalog))
        plan = Plan()
        plan.set_outputs([pack])
        report = analyze_plan(plan)
        assert not report.has_errors, report.format()


class TestDeterminismPass:
    def test_unordered_pack_feeding_topn_is_race(self, small_catalog):
        branches = fetch_branches(small_catalog)
        for branch in branches:
            branch.order_key = None
        pack = PlanNode(Pack(), branches)
        plan = Plan()
        plan.set_outputs([PlanNode(TopN(5), [pack])])
        report = analyze_plan(plan)
        assert "determinism.race" in report.rules

    def test_ordered_pack_feeding_topn_is_clean(self, small_catalog):
        pack = PlanNode(Pack(), fetch_branches(small_catalog))
        plan = Plan()
        plan.set_outputs([PlanNode(TopN(5), [pack])])
        report = analyze_plan(plan)
        assert not report.has_errors, report.format()

    def test_wrong_merge_func_detected(self, small_catalog, sim_config):
        plan = build_group_plan(small_catalog)
        mutator = PlanMutator(plan)
        profile = execute(plan, sim_config).profile
        for __ in range(8):
            if mutator.mutate(profile) is None:
                break
            if any(isinstance(n.op, AggrMerge) for n in plan.nodes()):
                break
            profile = execute(plan, sim_config).profile
        merge = next(n for n in plan.nodes() if isinstance(n.op, AggrMerge))
        merge.op = AggrMerge("max" if merge.op.func != "max" else "min")
        assert "determinism.merge-func" in analyze_plan(plan).rules


class TestLintPass:
    def test_pack_fanin_warning(self, small_catalog, sim_config):
        plan = build_sum_plan(small_catalog)
        mutate(plan, sim_config, 6)
        pack = max(
            (n for n in plan.nodes() if n.kind == "pack"),
            key=lambda n: len(n.inputs),
        )
        report = analyze_plan(plan, pack_fanin_limit=len(pack.inputs) - 1)
        assert "lint.pack-fanin" in report.rules

    def test_duplicate_pack_input(self, small_catalog):
        branches = fetch_branches(small_catalog)
        pack = PlanNode(Pack(), [branches[0], branches[0]])
        plan = Plan()
        plan.set_outputs([pack])
        assert "lint.duplicate-input" in analyze_plan(plan).rules

    def test_no_outputs_is_error_not_raise(self):
        report = analyze_plan(Plan())
        assert "lint.no-outputs" in report.rules


class TestMutatorGating:
    def test_sabotaged_mutation_is_rejected_and_rolled_back(
        self, small_catalog, sim_config
    ):
        class SabotagedMutator(PlanMutator):
            """Simulates a buggy mutation scheme: every applied mutation
            additionally duplicates a pack input (double-counted rows)."""

            def _apply(self, cand):
                result = super()._apply(cand)
                if result is not None:
                    pack = next(
                        n for n in self.plan.nodes()
                        if n.kind == "pack" and len(n.inputs) >= 2
                    )
                    pack.inputs[0] = pack.inputs[1]
                return result

        plan = build_sum_plan(small_catalog)
        edges_before = [
            (n.nid, tuple(c.nid for c in n.inputs)) for n in plan.nodes()
        ]
        mutator = SabotagedMutator(plan)
        profile = execute(plan, sim_config).profile
        assert mutator.mutate(profile) is None
        assert mutator.rejections
        rejection = mutator.rejections[0]
        assert isinstance(rejection, MutationRejection)
        assert rejection.report.has_errors
        # the sabotage was rolled back: the plan is byte-identical
        edges_after = [
            (n.nid, tuple(c.nid for c in n.inputs)) for n in plan.nodes()
        ]
        assert edges_after == edges_before
        validate_plan(plan)
        assert not analyze_plan(plan).has_errors

    def test_accepted_mutations_record_clean_reports(
        self, small_catalog, sim_config
    ):
        plan = build_sum_plan(small_catalog)
        mutator = mutate(plan, sim_config, 3)
        assert mutator.last_report is not None
        assert not mutator.last_report.has_errors
        assert mutator.rejections == []

    def test_analyze_false_skips_gating(self, small_catalog, sim_config):
        plan = build_sum_plan(small_catalog)
        mutator = PlanMutator(plan, analyze=False)
        profile = execute(plan, sim_config).profile
        assert mutator.mutate(profile) is not None
        assert mutator.last_report is None


class TestExecutorGate:
    def test_execute_analyze_refuses_broken_plan(self, small_catalog, sim_config):
        branches = fetch_branches(small_catalog)
        pack = PlanNode(Pack(), branches[:1])  # half the base is missing
        plan = Plan()
        plan.set_outputs([pack])
        with pytest.raises(PlanError, match="partition.coverage"):
            execute(plan, sim_config, analyze=True)

    def test_execute_analyze_runs_clean_plan(self, small_catalog, sim_config):
        plan = build_sum_plan(small_catalog)
        result = execute(plan, sim_config, analyze=True)
        assert result.outputs


class TestExportDiagnostics:
    def test_json_carries_diagnostics(self, small_catalog, sim_config):
        plan = build_sum_plan(small_catalog)
        mutate(plan, sim_config, 3)
        document = json.loads(to_json(plan, analyze=True))
        assert document["diagnostics"] == []
        target = next(
            n for n in plan.nodes()
            if isinstance(n.op, PartitionSlice) and n.op.lo > 0
        )
        target.op = PartitionSlice(target.op.lo + FRACTION_UNITS // 16, target.op.hi)
        document = json.loads(to_json(plan, analyze=True))
        rules = {d["rule"] for d in document["diagnostics"]}
        assert "partition.gap" in rules
        for diag in document["diagnostics"]:
            for index in diag["nodes"]:
                assert 0 <= index < len(document["nodes"])

    def test_json_without_analyze_has_no_key(self, small_catalog):
        document = json.loads(to_json(build_sum_plan(small_catalog)))
        assert "diagnostics" not in document


class TestBuilderValidates:
    def test_build_rejects_bad_arity(self, small_catalog):
        b = PlanBuilder(small_catalog)
        sel = b.select(b.scan("facts", "val"), RangePredicate(hi=500))
        sel.inputs.append(b.scan("facts", "qty"))
        sel.inputs.append(b.scan("facts", "fk"))
        with pytest.raises(PlanError, match="inputs"):
            b.build(sel)
