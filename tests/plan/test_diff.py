"""Plan diffs across mutations."""

from __future__ import annotations

import pytest

from repro.core import PlanMutator
from repro.engine import execute
from repro.operators import RangePredicate
from repro.plan import PlanBuilder
from repro.plan.diff import EvolutionLog, diff_plans


@pytest.fixture()
def plan(small_catalog):
    b = PlanBuilder(small_catalog)
    sel = b.select(b.scan("facts", "val"), RangePredicate(hi=500))
    proj = b.fetch(sel, b.scan("facts", "qty"))
    return b.build(b.aggregate("sum", proj))


class TestDiffPlans:
    def test_identical_plans_are_noop(self, plan):
        diff = diff_plans(plan, plan.copy())
        assert diff.is_noop
        assert diff.format() == "no structural change"

    def test_basic_mutation_diff(self, plan, sim_config):
        before = plan.copy()
        mutator = PlanMutator(plan)
        profile = execute(plan, sim_config).profile
        assert mutator.mutate(profile) is not None
        diff = diff_plans(before, plan)
        assert not diff.is_noop
        assert diff.node_delta > 0
        # A basic split adds clones + slices + a pack.
        assert "pack" in diff.added_by_kind or "slice" in diff.added_by_kind

    def test_format_mentions_kinds(self, plan, sim_config):
        before = plan.copy()
        mutator = PlanMutator(plan)
        profile = execute(plan, sim_config).profile
        mutator.mutate(profile)
        text = diff_plans(before, plan).format()
        assert "+" in text and "nodes" in text


class TestEvolutionLog:
    def test_tracks_every_step(self, plan, sim_config):
        log = EvolutionLog()
        assert log.observe(plan) is None
        mutator = PlanMutator(plan)
        profile = execute(plan, sim_config).profile
        steps = 0
        for __ in range(4):
            if mutator.mutate(profile) is None:
                break
            diff = log.observe(plan)
            assert diff is not None and not diff.is_noop
            profile = execute(plan, sim_config).profile
            steps += 1
        assert steps >= 2
        assert len(log.diffs()) == steps

    def test_snapshots_are_independent_copies(self, plan, sim_config):
        log = EvolutionLog()
        log.observe(plan)
        mutator = PlanMutator(plan)
        profile = execute(plan, sim_config).profile
        mutator.mutate(profile)
        # The first snapshot must not reflect the later mutation.
        assert len(log.snapshots[0].nodes()) < len(plan.nodes())
