"""The adaptive session / query cache (paper Figure 2 workflow)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import SimulationConfig, laptop_machine
from repro.core import ConvergenceParams
from repro.core.session import AdaptiveSession, EntryState
from repro.errors import ReproError
from repro.storage import Catalog, LNG, Table


@pytest.fixture()
def catalog(rng) -> Catalog:
    cat = Catalog()
    cat.add(
        Table.from_arrays(
            "t",
            {
                "x": (LNG, rng.integers(0, 1000, 20_000)),
                "y": (LNG, rng.integers(0, 100, 20_000)),
            },
        )
    )
    return cat


@pytest.fixture()
def session(catalog) -> AdaptiveSession:
    config = SimulationConfig(machine=laptop_machine(8), data_scale=1000.0)
    return AdaptiveSession(
        catalog,
        config,
        convergence=ConvergenceParams(number_of_cores=8, max_runs=60),
    )


SQL = "SELECT SUM(x) FROM t WHERE y < 50"


class TestAdaptiveSession:
    def test_first_invocation_compiles_and_caches(self, session):
        result = session.execute(SQL)
        assert result.outputs[0].value > 0
        entry = session.entry_for(SQL)
        assert entry.invocations == 1
        assert entry.state is EntryState.ADAPTING

    def test_whitespace_and_case_insensitive_template_key(self, session):
        session.execute(SQL)
        session.execute("select  SUM(x)\n FROM t  WHERE y < 50")
        assert session.entry_for(SQL).invocations == 2
        assert len(session.cached_queries()) == 1

    def test_results_identical_across_invocations(self, session):
        values = {session.execute(SQL).outputs[0].value for __ in range(12)}
        assert len(values) == 1

    def test_response_times_improve_with_invocations(self, session):
        first = session.execute(SQL).response_time
        best = min(session.execute(SQL).response_time for __ in range(30))
        assert best < first / 2

    def test_eventually_converges_and_serves_best_plan(self, session):
        for __ in range(120):
            session.execute(SQL)
            if session.entry_for(SQL).state is EntryState.CONVERGED:
                break
        entry = session.entry_for(SQL)
        assert entry.state is EntryState.CONVERGED
        # Post-convergence invocations run the cached GME plan: fast.
        converged_time = session.execute(SQL).response_time
        serial_time = entry.tracker.serial_time
        assert converged_time < serial_time
        # ... and do not add adaptive runs.
        runs_after = entry.tracker.runs
        session.execute(SQL)
        assert entry.tracker.runs == runs_after

    def test_independent_templates_adapt_independently(self, session):
        other = "SELECT COUNT(*) FROM t WHERE x > 900"
        session.execute(SQL)
        session.execute(other)
        assert len(session.cached_queries()) == 2
        assert session.entry_for(other).invocations == 1

    def test_unknown_entry_raises(self, session):
        with pytest.raises(ReproError):
            session.entry_for("SELECT COUNT(*) FROM t")

    def test_stats_summaries(self, session):
        session.execute(SQL)
        stats = session.stats()
        assert len(stats) == 1
        assert "invocation" in next(iter(stats.values()))
