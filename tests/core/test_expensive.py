"""Expensive-operator identification and mutation-scheme dispatch."""

from __future__ import annotations

import pytest

from repro.core import candidates, mutation_scheme
from repro.engine import execute
from repro.operators import RangePredicate
from repro.plan import PlanBuilder


class TestMutationScheme:
    @pytest.mark.parametrize(
        "kind", ["select", "fetch", "calc", "join", "semijoin", "mirror", "heads"]
    )
    def test_basic_kinds(self, kind):
        assert mutation_scheme(kind) == "basic"

    @pytest.mark.parametrize("kind", ["groupby", "aggregate", "sort"])
    def test_advanced_kinds(self, kind):
        assert mutation_scheme(kind) == "advanced"

    def test_medium_kind(self):
        assert mutation_scheme("pack") == "medium"

    @pytest.mark.parametrize(
        "kind", ["scan", "slice", "literal", "topn", "aggr_merge", "cand_union"]
    )
    def test_unmutable_kinds(self, kind):
        assert mutation_scheme(kind) is None


class TestCandidateOrdering:
    def _profile(self, small_catalog, sim_config):
        b = PlanBuilder(small_catalog)
        sel = b.select(b.scan("facts", "val"), RangePredicate(hi=500))
        proj = b.fetch(sel, b.scan("facts", "qty"))
        plan = b.build(b.aggregate("sum", proj))
        return plan, execute(plan, sim_config).profile

    def test_most_expensive_first(self, small_catalog, sim_config):
        plan, profile = self._profile(small_catalog, sim_config)
        found = list(candidates(plan, profile))
        durations = [c.duration for c in found]
        assert durations == sorted(durations, reverse=True)

    def test_only_mutable_kinds_returned(self, small_catalog, sim_config):
        plan, profile = self._profile(small_catalog, sim_config)
        kinds = {c.node.kind for c in candidates(plan, profile)}
        assert "scan" not in kinds
        assert kinds <= {"select", "fetch", "aggregate"}

    def test_blocked_nodes_excluded(self, small_catalog, sim_config):
        plan, profile = self._profile(small_catalog, sim_config)
        first = next(candidates(plan, profile))
        remaining = {
            c.node.nid for c in candidates(plan, profile, blocked={first.node.nid})
        }
        assert first.node.nid not in remaining

    def test_min_tuples_filters_small_operators(self, small_catalog, sim_config):
        plan, profile = self._profile(small_catalog, sim_config)
        everything = list(candidates(plan, profile, min_tuples=0))
        big_only = list(candidates(plan, profile, min_tuples=10**9))
        assert len(big_only) < len(everything)

    def test_stale_profile_nodes_ignored(self, small_catalog, sim_config):
        """Nodes no longer reachable in the plan must not be proposed."""
        plan, profile = self._profile(small_catalog, sim_config)
        target = plan.find(lambda n: n.kind == "fetch")[0]
        replacement = plan.add(target.op.clone(), list(target.inputs))
        plan.replace_node(target, replacement)
        nids = {c.node.nid for c in candidates(plan, profile)}
        assert target.nid not in nids
