"""Additional Vectorwise-baseline coverage: admission curves.

The Figure 16 hypothesis depends on the admission controller's exact
shape: full machine for the first client, roughly fair shares for a few
clients, serial under saturation.
"""

from __future__ import annotations

import pytest

from repro.baselines import VectorwiseSystem
from repro.config import SimulationConfig, two_socket_machine


@pytest.fixture()
def system() -> VectorwiseSystem:
    return VectorwiseSystem(SimulationConfig(machine=two_socket_machine()))


class TestAdmissionCurve:
    def test_monotone_nonincreasing_in_rank(self, system):
        dops = [system.admission(rank, 8).dop for rank in range(8)]
        assert dops == sorted(dops, reverse=True)
        assert dops[0] == 32

    def test_fair_share_midway(self, system):
        assert system.admission(1, 4).dop == 16
        assert system.admission(3, 4).dop == 8

    def test_saturation_serializes_everyone_late(self, system):
        decision = system.admission(10, 32)
        assert decision.dop == 1
        assert decision.max_threads == 1

    def test_respects_configured_thread_cap(self):
        config = SimulationConfig(machine=two_socket_machine(), max_threads=8)
        system = VectorwiseSystem(config)
        assert system.admission(0, 1).dop == 8
