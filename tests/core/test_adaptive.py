"""The adaptive parallelization driver end to end."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import SimulationConfig, laptop_machine
from repro.core import (
    AdaptiveParallelizer,
    ConvergenceParams,
    HeuristicParallelizer,
    PlanHistory,
    intermediates_equal,
)
from repro.engine import execute
from repro.errors import ConvergenceError
from repro.operators import RangePredicate
from repro.plan import PlanBuilder, validate_plan
from repro.storage import Catalog, LNG, Scalar, Table
from repro.storage.dtypes import DBL


@pytest.fixture()
def catalog(rng) -> Catalog:
    n = 20_000
    cat = Catalog()
    cat.add(
        Table.from_arrays(
            "t",
            {
                "a": (LNG, rng.integers(0, 1_000, n)),
                "b": (LNG, rng.integers(0, 100, n)),
            },
        )
    )
    return cat


@pytest.fixture()
def config() -> SimulationConfig:
    return SimulationConfig(machine=laptop_machine(8), data_scale=1000.0)


def make_plan(catalog):
    b = PlanBuilder(catalog)
    sel = b.select(b.scan("t", "a"), RangePredicate(hi=500))
    proj = b.fetch(sel, b.scan("t", "b"))
    return b.build(b.aggregate("sum", proj))


class TestOptimize:
    def test_converges_and_improves(self, catalog, config):
        result = AdaptiveParallelizer(config).optimize(make_plan(catalog))
        assert result.speedup > 2.0
        assert result.gme_time < result.serial_time
        assert result.total_runs >= 2
        validate_plan(result.best_plan)

    def test_best_plan_reproduces_gme_time(self, catalog, config):
        result = AdaptiveParallelizer(config).optimize(make_plan(catalog))
        replay = execute(result.best_plan, config.with_seed(config.seed + result.gme_run))
        assert replay.response_time == pytest.approx(result.gme_time, rel=1e-6)

    def test_verify_mode_checks_every_run(self, catalog, config):
        result = AdaptiveParallelizer(config, verify=True).optimize(make_plan(catalog))
        assert result.total_runs > 1  # verification never tripped

    def test_input_plan_untouched(self, catalog, config):
        plan = make_plan(catalog)
        before = len(plan.nodes())
        AdaptiveParallelizer(config).optimize(plan)
        assert len(plan.nodes()) == before

    def test_history_matches_convergence_records(self, catalog, config):
        result = AdaptiveParallelizer(config).optimize(make_plan(catalog))
        assert len(result.history) == result.total_runs
        assert result.history[0].exec_time == result.serial_time
        assert len(result.mutations) == result.total_runs - 1

    def test_lower_bound_on_runs(self, catalog, config):
        """Paper Section 3.3.4: lower bound is Number_Of_Cores + 1."""
        result = AdaptiveParallelizer(config).optimize(make_plan(catalog))
        cores = config.effective_threads
        assert result.total_runs >= cores + 1

    def test_custom_convergence_params(self, catalog, config):
        params = ConvergenceParams(number_of_cores=4, extra_runs=2, max_runs=30)
        result = AdaptiveParallelizer(config, convergence=params).optimize(
            make_plan(catalog)
        )
        assert result.total_runs <= 30

    def test_results_deterministic(self, catalog, config):
        r1 = AdaptiveParallelizer(config).optimize(make_plan(catalog))
        r2 = AdaptiveParallelizer(config).optimize(make_plan(catalog))
        assert r1.exec_times() == r2.exec_times()
        assert r1.gme_run == r2.gme_run

    def test_serial_plan_kept_when_parallelism_never_helps(self, config):
        """A one-row query cannot improve; AP must fall back to serial."""
        cat = Catalog()
        cat.add(Table.from_arrays("tiny", {"v": (LNG, np.arange(4))}))
        b = PlanBuilder(cat)
        plan = b.build(b.aggregate("sum", b.scan("tiny", "v")))
        result = AdaptiveParallelizer(config).optimize(plan)
        assert result.gme_run == 0
        assert result.gme_time == result.serial_time
        assert result.speedup == pytest.approx(1.0)

    def test_custom_runner_is_used(self, catalog, config):
        calls = []

        def runner(plan, run_index):
            calls.append(run_index)
            return execute(plan, config)

        AdaptiveParallelizer(config, runner=runner).optimize(make_plan(catalog))
        assert calls[0] == 0 and len(calls) >= 2


class TestOptimizeUnderChaos:
    """The adaptive driver with the chaos harness attached."""

    def _faults(self, exception_rate=0.0005):
        from repro.chaos import FaultPlan

        return FaultPlan(
            operator_exception_rate=exception_rate,
            straggler_rate=0.05,
            straggler_slowdown=4.0,
            mem_pressure_rate=0.03,
            mem_pressure_factor=3.0,
        )

    def test_converges_despite_faults(self, catalog, config):
        from repro.chaos import FaultInjector

        injector = FaultInjector(self._faults(), seed=17)
        result = AdaptiveParallelizer(config, faults=injector).optimize(
            make_plan(catalog)
        )
        assert injector.stats.total > 0
        assert result.gme_time < result.serial_time
        validate_plan(result.best_plan)

    def test_fault_plan_accepted_directly(self, catalog, config):
        result = AdaptiveParallelizer(
            config, faults=self._faults()
        ).optimize(make_plan(catalog))
        assert result.gme_time <= result.serial_time

    def test_injected_failures_are_retried_and_counted(self, catalog, config):
        from repro.chaos import FaultInjector

        # A high exception rate guarantees some runs abort and retry.
        injector = FaultInjector(self._faults(0.01), seed=3)
        result = AdaptiveParallelizer(
            config, faults=injector, fault_retries=50
        ).optimize(make_plan(catalog))
        assert result.fault_retries > 0
        assert injector.stats.operator_exceptions > 0

    def test_retry_budget_exhaustion_raises(self, catalog, config):
        from repro.chaos import FaultPlan

        certain_failure = FaultPlan(operator_exception_rate=1.0)
        with pytest.raises(ConvergenceError, match="fault retries"):
            AdaptiveParallelizer(
                config, faults=certain_failure, fault_retries=2
            ).optimize(make_plan(catalog))

    def test_chaos_outcome_deterministic(self, catalog, config):
        plan = make_plan(catalog)
        traces = []
        for __ in range(2):
            result = AdaptiveParallelizer(
                config, faults=self._faults()
            ).optimize(plan)
            traces.append(
                (result.exec_times(), result.gme_run, result.fault_retries)
            )
        assert traces[0] == traces[1]

    def test_invalid_fault_retries_rejected(self, config):
        with pytest.raises(ConvergenceError):
            AdaptiveParallelizer(config, fault_retries=-1)


class TestIntermediatesEqual:
    def test_scalars(self):
        assert intermediates_equal(Scalar(1, LNG), Scalar(1, LNG))
        assert not intermediates_equal(Scalar(1, LNG), Scalar(2, LNG))
        assert intermediates_equal(Scalar(1.0, DBL), Scalar(1.0 + 1e-15, DBL))

    def test_type_mismatch(self):
        from repro.storage import Candidates

        assert not intermediates_equal(Scalar(1, LNG), Candidates(np.array([1])))


class TestPlanHistory:
    def test_choose_prefers_best(self, catalog):
        history = PlanHistory()
        plan = make_plan(catalog)
        history.snapshot_serial(plan)
        history.snapshot_best(plan, run=3)
        assert history.choose() is history.best_plan
        assert history.best_run == 3

    def test_choose_falls_back_to_serial(self, catalog):
        history = PlanHistory()
        history.snapshot_serial(make_plan(catalog))
        assert history.choose() is history.serial_plan

    def test_choose_empty_raises(self):
        with pytest.raises(ConvergenceError):
            PlanHistory().choose()

    def test_record_returns_index(self):
        history = PlanHistory()
        assert history.record(1.0) == 0
        assert history.record(0.5) == 1
        assert history.runs == 2


class TestAgainstHeuristic:
    def test_ap_time_in_hp_ballpark(self, catalog, config):
        """Isolated execution: AP within ~3x of HP (paper: similar)."""
        plan = make_plan(catalog)
        ap = AdaptiveParallelizer(config).optimize(plan)
        hp = execute(HeuristicParallelizer(8).parallelize(plan), config)
        assert ap.gme_time <= hp.response_time * 3

    def test_ap_uses_fewer_operators_than_hp(self, catalog, config):
        plan = make_plan(catalog)
        ap = AdaptiveParallelizer(config).optimize(plan)
        hp_plan = HeuristicParallelizer(8).parallelize(plan)
        assert len(ap.best_plan.nodes()) <= len(hp_plan.nodes())


class TestAdaptiveOnSqlFeatures:
    def test_having_query_adapts_and_verifies(self, catalog, config):
        from repro.sql import plan_sql

        sql = (
            "SELECT a, COUNT(*) FROM t GROUP BY a "
            "HAVING COUNT(*) > 10 ORDER BY a"
        )
        plan = plan_sql(sql, catalog)
        result = AdaptiveParallelizer(config, verify=True).optimize(plan)
        validate_plan(result.best_plan)
        assert result.total_runs >= 2
