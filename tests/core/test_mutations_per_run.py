"""The Section 4.3 knob: more mutations per invocation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import SimulationConfig, laptop_machine
from repro.core import AdaptiveParallelizer
from repro.errors import ConvergenceError
from repro.operators import RangePredicate
from repro.plan import PlanBuilder, validate_plan
from repro.storage import Catalog, LNG, Table


@pytest.fixture()
def catalog(rng) -> Catalog:
    cat = Catalog()
    cat.add(
        Table.from_arrays(
            "t",
            {
                "a": (LNG, rng.integers(0, 1000, 30_000)),
                "b": (LNG, rng.integers(0, 100, 30_000)),
            },
        )
    )
    return cat


def make_plan(catalog):
    b = PlanBuilder(catalog)
    sel = b.select(b.scan("t", "a"), RangePredicate(hi=500))
    return b.build(b.aggregate("sum", b.fetch(sel, b.scan("t", "b"))))


@pytest.fixture()
def config() -> SimulationConfig:
    return SimulationConfig(machine=laptop_machine(8), data_scale=1000.0)


class TestMutationsPerRun:
    def test_rejects_zero(self, config):
        with pytest.raises(ConvergenceError):
            AdaptiveParallelizer(config, mutations_per_run=0)

    def test_fewer_runs_with_batched_mutations(self, catalog, config):
        """Paper 4.3: "The number of runs could be made much lower if
        more ... operators are introduced per invocation"."""
        single = AdaptiveParallelizer(config).optimize(make_plan(catalog))
        batched = AdaptiveParallelizer(config, mutations_per_run=4).optimize(
            make_plan(catalog)
        )
        assert batched.total_runs < single.total_runs

    def test_batched_still_correct_and_competitive(self, catalog, config):
        batched = AdaptiveParallelizer(
            config, mutations_per_run=3, verify=True
        ).optimize(make_plan(catalog))
        validate_plan(batched.best_plan)
        single = AdaptiveParallelizer(config).optimize(make_plan(catalog))
        assert batched.gme_time <= single.gme_time * 1.5

    def test_mutation_count_exceeds_run_count(self, catalog, config):
        batched = AdaptiveParallelizer(config, mutations_per_run=4).optimize(
            make_plan(catalog)
        )
        assert len(batched.mutations) > batched.total_runs - 1
