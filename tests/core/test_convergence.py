"""The convergence algorithm (paper Section 3)."""

from __future__ import annotations

import pytest

from repro.core import ConvergenceParams, ConvergenceTracker
from repro.errors import ConvergenceError


def params(**kwargs) -> ConvergenceParams:
    defaults = dict(number_of_cores=8)
    defaults.update(kwargs)
    return ConvergenceParams(**defaults)


def drive(tracker: ConvergenceTracker, times: list[float]) -> int:
    """Feed times until the tracker stops; return runs consumed."""
    for i, t in enumerate(times):
        tracker.observe(t)
        if not tracker.should_continue():
            return i + 1
    return len(times)


class TestBookkeeping:
    def test_initial_state(self):
        tracker = ConvergenceTracker(params())
        assert tracker.should_continue()
        assert tracker.credit == 1.0
        assert tracker.debit == 0.0

    def test_serial_run_recorded(self):
        tracker = ConvergenceTracker(params())
        record = tracker.observe(10.0)
        assert record.index == 0
        assert tracker.serial_time == 10.0

    def test_nonpositive_time_rejected(self):
        tracker = ConvergenceTracker(params())
        with pytest.raises(ConvergenceError):
            tracker.observe(0.0)

    def test_serial_time_before_observation_rejected(self):
        with pytest.raises(ConvergenceError):
            ConvergenceTracker(params()).serial_time

    def test_roi_formula(self):
        """ROI = (prev - cur) / max(cur, prev)."""
        tracker = ConvergenceTracker(params())
        tracker.observe(10.0)
        record = tracker.observe(5.0)
        assert record.roi == pytest.approx(0.5)
        record = tracker.observe(10.0)
        assert record.roi == pytest.approx(-0.5)

    def test_positive_roi_accumulates_credit(self):
        tracker = ConvergenceTracker(params(number_of_cores=8))
        tracker.observe(10.0)
        tracker.observe(5.0)  # roi 0.5 -> +4 credit
        assert tracker.credit == pytest.approx(1.0 + 4.0)

    def test_first_run_credit_bounded_by_cores_plus_one(self):
        """Paper Section 3.3.1: upper limit Number_Of_Cores + 1."""
        tracker = ConvergenceTracker(params(number_of_cores=8))
        tracker.observe(1000.0)
        tracker.observe(0.0001)  # roi -> ~1.0
        assert tracker.credit <= 8 + 1


class TestGme:
    def test_gme_initialized_to_first_parallel_run(self):
        tracker = ConvergenceTracker(params())
        tracker.observe(10.0)
        tracker.observe(8.0)
        assert tracker.gme_time == 8.0
        assert tracker.gme_run == 1

    def test_gme_requires_threshold_improvement(self):
        tracker = ConvergenceTracker(params(gme_threshold=0.05))
        tracker.observe(10.0)
        tracker.observe(8.0)  # improvement 20%
        tracker.observe(7.9)  # +1 point: below threshold -> not new GME
        assert tracker.gme_time == 8.0
        tracker.observe(7.0)  # +10 points -> new GME
        assert tracker.gme_time == 7.0
        assert tracker.gme_run == 3

    def test_paper_worked_example(self):
        """Section 3.1: GMEimprv 90% at run 3, CurExecImprv 96% at run 8,
        threshold 5% -> run 8 becomes the new GME."""
        tracker = ConvergenceTracker(params(gme_threshold=0.05, number_of_cores=32))
        tracker.observe(100.0)  # serial
        tracker.observe(10.0)  # 90% improvement (becomes GME)
        for __ in range(5):
            tracker.observe(10.0)
        tracker.observe(9.0)
        record = tracker.observe(4.0)  # 96% improvement
        assert record.gme_run == record.index
        assert tracker.gme_time == 4.0

    def test_gme_undefined_before_run1(self):
        tracker = ConvergenceTracker(params())
        tracker.observe(10.0)
        with pytest.raises(ConvergenceError):
            tracker.gme_time


class TestConvergenceScenarios:
    def test_no_premature_convergence_over_plateau(self):
        """Section 3.3.1: early credit carries the search across flats."""
        tracker = ConvergenceTracker(params(number_of_cores=8))
        times = [10.0, 5.0] + [5.0] * 6  # big first win, then plateau
        consumed = drive(tracker, times)
        assert consumed == len(times)  # still going after the plateau

    def test_terminates_on_stable_system(self):
        """Section 3.3.2: leaking debit drains an otherwise stable run."""
        tracker = ConvergenceTracker(params(number_of_cores=4, extra_runs=2))
        tracker.observe(10.0)
        tracker.observe(5.0)
        runs = 0
        while tracker.should_continue() and runs < 1000:
            tracker.observe(5.0)
            runs += 1
        assert runs < 1000  # converged
        # Bounded roughly by cores * (1 + extra_runs).
        assert tracker.runs <= 4 * (1 + 2) + 3

    def test_stop_when_parallelism_keeps_hurting(self):
        tracker = ConvergenceTracker(params(number_of_cores=8))
        tracker.observe(10.0)
        # The first regression above serial is indistinguishable from a
        # noise peak, so it gets one free pass (Section 3.3.3)...
        tracker.observe(30.0)
        assert tracker.should_continue()
        # ...but a second consecutive bad run is counted and stops the
        # search (debit 8 * |roi| exceeds the initial credit).
        tracker.observe(35.0)
        assert not tracker.should_continue()

    def test_outlier_peak_tolerated(self):
        """Section 3.3.3: a unique peak above serial must not halt."""
        tracker = ConvergenceTracker(params(number_of_cores=8))
        tracker.observe(10.0)
        tracker.observe(5.0)
        record = tracker.observe(50.0)  # noise peak above serial
        assert record.is_outlier
        assert tracker.should_continue()
        tracker.observe(5.0)  # descent restores credit
        assert tracker.should_continue()

    def test_outlier_handling_can_be_disabled(self):
        tracker = ConvergenceTracker(params(number_of_cores=8, handle_outliers=False))
        tracker.observe(10.0)
        tracker.observe(5.0)
        record = tracker.observe(50.0)
        assert not record.is_outlier
        assert tracker.debit > 0

    def test_consecutive_regressions_are_not_outliers(self):
        tracker = ConvergenceTracker(params(number_of_cores=8))
        tracker.observe(10.0)
        tracker.observe(5.0)
        tracker.observe(50.0)  # peak (forgiven)
        record = tracker.observe(60.0)  # still above serial: counted
        assert not record.is_outlier

    def test_max_runs_hard_stop(self):
        tracker = ConvergenceTracker(params(number_of_cores=4, max_runs=10))
        tracker.observe(100.0)
        # Endless large improvements would keep credit positive forever.
        value = 50.0
        while tracker.should_continue():
            tracker.observe(value)
            value *= 0.7
        assert tracker.runs == 10

    def test_history_exec_times(self):
        tracker = ConvergenceTracker(params())
        for t in (10.0, 8.0, 6.0):
            tracker.observe(t)
        assert tracker.exec_times() == [10.0, 8.0, 6.0]


class TestParamValidation:
    def test_bad_cores(self):
        with pytest.raises(ConvergenceError):
            ConvergenceParams(number_of_cores=0)

    def test_bad_extra_runs(self):
        with pytest.raises(ConvergenceError):
            ConvergenceParams(number_of_cores=4, extra_runs=0)

    def test_bad_threshold(self):
        with pytest.raises(ConvergenceError):
            ConvergenceParams(number_of_cores=4, gme_threshold=1.5)
