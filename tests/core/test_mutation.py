"""Plan mutations: basic, medium, advanced -- structure and semantics.

Every structural test re-executes the mutated plan and compares results
against the serial plan, which is the property the whole paper rests on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import SimulationConfig, laptop_machine
from repro.core import PlanMutator, intermediates_equal, produces_scalar
from repro.core.expensive import candidates as expensive_candidates
from repro.engine import execute
from repro.operators import RangePredicate
from repro.plan import Plan, PlanBuilder, validate_plan
from repro.storage import Catalog, LNG, Table


@pytest.fixture()
def catalog(rng) -> Catalog:
    n, m = 5_000, 50
    cat = Catalog()
    cat.add(
        Table.from_arrays(
            "facts",
            {
                "fk": (LNG, rng.integers(0, m, n)),
                "val": (LNG, rng.integers(0, 1_000, n)),
                "qty": (LNG, rng.integers(1, 50, n)),
            },
        )
    )
    cat.add(Table.from_arrays("dims", {"pk": (LNG, np.arange(m))}))
    return cat


@pytest.fixture()
def config() -> SimulationConfig:
    return SimulationConfig(machine=laptop_machine(8), data_scale=500.0)


def select_sum_plan(catalog: Catalog) -> Plan:
    b = PlanBuilder(catalog)
    sel = b.select(b.scan("facts", "val"), RangePredicate(hi=600))
    proj = b.fetch(sel, b.scan("facts", "qty"))
    return b.build(b.aggregate("sum", proj))


def groupby_plan(catalog: Catalog) -> Plan:
    b = PlanBuilder(catalog)
    keys = b.scan("facts", "fk")
    vals = b.scan("facts", "val")
    return b.build(b.group_aggregate("sum", keys, vals))


def join_plan(catalog: Catalog) -> Plan:
    b = PlanBuilder(catalog)
    joined = b.join(b.scan("facts", "fk"), b.scan("dims", "pk"))
    return b.build(b.aggregate("count", joined))


def mutate_n(plan: Plan, config: SimulationConfig, steps: int) -> tuple[Plan, list]:
    """Apply up to ``steps`` mutations, re-profiling between each."""
    mutator = PlanMutator(plan)
    applied = []
    profile = execute(plan, config).profile
    for __ in range(steps):
        result = mutator.mutate(profile)
        if result is None:
            break
        applied.append(result)
        validate_plan(plan)
        profile = execute(plan, config).profile
    return plan, applied


class TestBasicMutation:
    def test_first_mutation_clones_an_operator(self, catalog, config):
        plan = select_sum_plan(catalog)
        serial = execute(plan, config)
        __, applied = mutate_n(plan, config, 1)
        assert len(applied) == 1
        assert applied[0].clones == 2
        mutated = execute(plan, config)
        assert intermediates_equal(mutated.outputs[0], serial.outputs[0])

    def test_pack_introduced_by_first_split(self, catalog, config):
        plan = select_sum_plan(catalog)
        mutate_n(plan, config, 1)
        assert plan.count_kind("pack") >= 1

    def test_results_stable_across_many_mutations(self, catalog, config):
        plan = select_sum_plan(catalog)
        serial = execute(plan, config)
        __, applied = mutate_n(plan, config, 12)
        assert len(applied) >= 6
        mutated = execute(plan, config)
        assert intermediates_equal(mutated.outputs[0], serial.outputs[0])

    def test_dynamic_partitions_have_different_sizes(self, catalog, config):
        """Figure 8: repeated splits of the most expensive clone produce
        unequal partitions."""
        plan = select_sum_plan(catalog)
        mutate_n(plan, config, 6)
        slices = [n.op for n in plan.nodes() if n.kind == "slice"]
        spans = {s.hi - s.lo for s in slices}
        assert len(spans) > 1

    def test_select_partitions_candidates_not_column(self, catalog, config):
        """A chained select splits its candidate input; its column scan
        stays shared (Section 2.2's two select representations)."""
        b = PlanBuilder(catalog)
        s1 = b.select(b.scan("facts", "val"), RangePredicate(hi=900))
        s2 = b.select(b.scan("facts", "qty"), RangePredicate(hi=30), candidates=s1)
        plan = b.build(b.aggregate("count", s2))
        serial = execute(plan, config)
        __, applied = mutate_n(plan, config, 8)
        assert applied
        final = execute(plan, config)
        assert intermediates_equal(final.outputs[0], serial.outputs[0])
        # A select *with a candidate input* never slices its column;
        # only the head select of a chain partitions the column itself.
        for node in plan.nodes():
            if node.kind == "select" and len(node.inputs) == 2:
                assert node.inputs[0].kind == "scan"


class TestAdvancedMutation:
    def test_groupby_gets_partials_and_merge(self, catalog, config):
        plan = groupby_plan(catalog)
        serial = execute(plan, config)
        __, applied = mutate_n(plan, config, 3)
        assert any(r.scheme == "advanced" for r in applied)
        assert plan.count_kind("aggr_merge") >= 1
        mutated = execute(plan, config)
        assert intermediates_equal(mutated.outputs[0], serial.outputs[0])

    def test_aggregate_partials_merge(self, catalog, config):
        plan = select_sum_plan(catalog)
        serial = execute(plan, config)
        __, applied = mutate_n(plan, config, 15)
        kinds = {r.scheme for r in applied}
        assert "advanced" in kinds or plan.count_kind("aggregate") > 1
        mutated = execute(plan, config)
        assert intermediates_equal(mutated.outputs[0], serial.outputs[0])


class TestMediumMutation:
    def test_pack_removed_and_consumer_cloned(self, catalog, config):
        plan = select_sum_plan(catalog)
        __, applied = mutate_n(plan, config, 20)
        assert any(r.scheme == "medium" for r in applied)

    def test_join_parallelized_on_outer(self, catalog, config):
        plan = join_plan(catalog)
        serial = execute(plan, config)
        __, applied = mutate_n(plan, config, 8)
        assert applied
        joins = [n for n in plan.nodes() if n.kind == "join"]
        assert len(joins) >= 2  # the join was cloned
        mutated = execute(plan, config)
        assert intermediates_equal(mutated.outputs[0], serial.outputs[0])

    def test_fanin_limit_suppresses_removal(self, catalog, config):
        plan = select_sum_plan(catalog)
        mutator = PlanMutator(plan, pack_fanin_limit=2)
        profile = execute(plan, config).profile
        for __ in range(20):
            result = mutator.mutate(profile)
            if result is None:
                break
            validate_plan(plan)
            profile = execute(plan, config).profile
        oversized = [
            n for n in plan.nodes() if n.kind == "pack" and len(n.inputs) > 2
        ]
        if oversized:
            # Medium mutation must refuse to remove an oversized union
            # and record the suppression (the plan-explosion guard).
            assert mutator._apply_medium(oversized[0]) is None
            assert oversized[0].nid in mutator.suppressed_packs


class TestMutatorBookkeeping:
    def test_no_mutation_on_tiny_inputs(self, config):
        cat = Catalog()
        cat.add(Table.from_arrays("t", {"v": (LNG, np.array([1]))}))
        b = PlanBuilder(cat)
        plan = b.build(b.aggregate("sum", b.scan("t", "v")))
        profile = execute(plan, config).profile
        # The single-row aggregate cannot be split (min_tuples guard).
        assert list(expensive_candidates(plan, profile, min_tuples=2)) == []

    def test_blocked_nodes_are_skipped(self, catalog, config):
        plan = select_sum_plan(catalog)
        mutator = PlanMutator(plan)
        profile = execute(plan, config).profile
        first = mutator.mutate(profile)
        assert first is not None
        mutator.blocked.update(n.nid for n in plan.nodes())
        assert mutator.mutate(profile) is None

    def test_produces_scalar_analysis(self, catalog):
        b = PlanBuilder(catalog)
        lit = b.literal(5)
        agg = b.aggregate("sum", b.scan("facts", "val"))
        combo = b.calc("*", lit, agg)
        vec = b.calc("+", b.scan("facts", "val"), lit)
        assert produces_scalar(lit)
        assert produces_scalar(agg)
        assert produces_scalar(combo)
        assert not produces_scalar(vec)
        assert not produces_scalar(b.scan("facts", "val"))
