"""Heuristic (static) parallelization and the work-stealing baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import SimulationConfig, laptop_machine
from repro.core import HeuristicParallelizer, WorkStealingConfig, WorkStealingExecutor
from repro.core.adaptive import intermediates_equal
from repro.engine import execute
from repro.errors import PlanError
from repro.operators import RangePredicate
from repro.plan import PlanBuilder, plan_stats, validate_plan
from repro.storage import Catalog, LNG, Table


@pytest.fixture()
def catalog(rng) -> Catalog:
    n, m = 8_000, 64
    cat = Catalog()
    cat.add(
        Table.from_arrays(
            "facts",
            {
                "fk": (LNG, rng.integers(0, m, n)),
                "val": (LNG, rng.integers(0, 1_000, n)),
                "qty": (LNG, rng.integers(1, 50, n)),
            },
        )
    )
    cat.add(
        Table.from_arrays(
            "dims",
            {"pk": (LNG, np.arange(m)), "size": (LNG, rng.integers(0, 9, m))},
        )
    )
    return cat


@pytest.fixture()
def config() -> SimulationConfig:
    return SimulationConfig(machine=laptop_machine(8), data_scale=500.0)


def scan_select_sum(catalog):
    b = PlanBuilder(catalog)
    sel = b.select(b.scan("facts", "val"), RangePredicate(hi=500))
    proj = b.fetch(sel, b.scan("facts", "qty"))
    return b.build(b.aggregate("sum", proj))


def join_groupby(catalog):
    b = PlanBuilder(catalog)
    sel = b.select(b.scan("facts", "val"), RangePredicate(hi=700))
    fk = b.fetch(sel, b.scan("facts", "fk"))
    joined = b.join(fk, b.scan("dims", "pk"))
    sizes = b.fetch(joined, b.scan("dims", "size"))
    qty = b.fetch(sel, b.scan("facts", "qty"))
    return b.build(b.group_aggregate("sum", sizes, qty))


class TestHeuristicParallelizer:
    def test_partition_count_propagates(self, catalog):
        plan = HeuristicParallelizer(4).parallelize(scan_select_sum(catalog))
        validate_plan(plan)
        stats = plan_stats(plan)
        assert stats.select_count == 4
        assert stats.by_kind.get("fetch", 0) == 4
        assert stats.by_kind.get("aggregate", 0) == 5  # 4 partials + merge

    def test_correctness_select_sum(self, catalog, config):
        serial = execute(scan_select_sum(catalog), config)
        parallel = execute(
            HeuristicParallelizer(8).parallelize(scan_select_sum(catalog)), config
        )
        assert intermediates_equal(parallel.outputs[0], serial.outputs[0])

    def test_correctness_join_groupby(self, catalog, config):
        serial = execute(join_groupby(catalog), config)
        parallel = execute(
            HeuristicParallelizer(8).parallelize(join_groupby(catalog)), config
        )
        assert intermediates_equal(parallel.outputs[0], serial.outputs[0])

    def test_only_largest_table_partitioned(self, catalog):
        plan = HeuristicParallelizer(4).parallelize(join_groupby(catalog))
        # The dims-side scans stay unsliced; joins are cloned on the
        # (facts) outer side only.
        stats = plan_stats(plan)
        assert stats.join_count == 4

    def test_partitions_one_is_identity(self, catalog):
        original = scan_select_sum(catalog)
        plan = HeuristicParallelizer(1).parallelize(original)
        assert len(plan.nodes()) == len(original.nodes())

    def test_invalid_partition_count(self):
        with pytest.raises(PlanError):
            HeuristicParallelizer(0)

    def test_parallelizing_literal_only_plan(self, catalog, config):
        b = PlanBuilder(catalog)
        plan = b.build(b.calc("*", b.literal(6), b.literal(7)))
        parallel = HeuristicParallelizer(8).parallelize(plan)
        result = execute(parallel, config)
        assert result.outputs[0].value == 42

    def test_faster_than_serial(self, catalog, config):
        serial = execute(scan_select_sum(catalog), config)
        parallel = execute(
            HeuristicParallelizer(8).parallelize(scan_select_sum(catalog)), config
        )
        assert parallel.response_time < serial.response_time


class TestWorkStealing:
    def test_many_small_partitions_with_capped_threads(self, catalog, config):
        executor = WorkStealingExecutor(
            config, WorkStealingConfig(partitions=32, threads=4)
        )
        result = executor.run(scan_select_sum(catalog))
        assert result.profile.threads_used() <= 4
        serial = execute(scan_select_sum(catalog), config)
        assert intermediates_equal(result.outputs[0], serial.outputs[0])

    def test_parallelize_produces_requested_partitions(self, catalog, config):
        executor = WorkStealingExecutor(
            config, WorkStealingConfig(partitions=16, threads=4)
        )
        plan = executor.parallelize(scan_select_sum(catalog))
        assert plan_stats(plan).select_count == 16

    def test_default_config_matches_paper(self, config):
        ws = WorkStealingConfig()
        assert ws.partitions == 128
        assert ws.threads == 8


class TestMitosisSizing:
    def test_big_table_gets_thread_count(self, config):
        from repro.core.heuristic import mitosis_partitions

        assert mitosis_partitions(config, 10e9) == config.effective_threads

    def test_small_table_limited_by_min_partition(self, config):
        from repro.core.heuristic import mitosis_partitions

        # 100 MB table with 64 MB minimum pieces -> 1 partition.
        assert mitosis_partitions(config, 100e6) == 1
        # 300 MB -> 4 pieces.
        assert mitosis_partitions(config, 300e6) == 4

    def test_empty_table(self, config):
        from repro.core.heuristic import mitosis_partitions

        assert mitosis_partitions(config, 0) == 1

    def test_huge_table_gets_extra_pieces_for_memory(self, config):
        from repro.core.heuristic import mitosis_partitions

        # 64 GB table on a 16 GB / 8-thread box: pieces must fit one
        # thread's memory share (2 GB) -> 32 pieces, beyond threads.
        assert mitosis_partitions(config, 64e9) == 32

    def test_heuristic_for_uses_largest_scan(self, catalog, config):
        from repro.core.heuristic import heuristic_for

        plan = scan_select_sum(catalog)
        # 8000 rows x 8 B x 1e5 = 6.4 GB: thread count wins.
        hp = heuristic_for(config, plan, data_scale=1e5)
        assert hp.partitions == config.effective_threads
        tiny = heuristic_for(config, plan, data_scale=1.0)
        assert tiny.partitions == 1


class TestHeuristicWithHavingDistinct:
    def test_having_plan_parallelizes_correctly(self, catalog, config):
        from repro.sql import plan_sql

        sql = (
            "SELECT fk, SUM(val) FROM facts GROUP BY fk "
            "HAVING SUM(val) > 50000 ORDER BY fk"
        )
        serial = execute(plan_sql(sql, catalog), config)
        parallel = execute(
            HeuristicParallelizer(8).parallelize(plan_sql(sql, catalog)), config
        )
        assert intermediates_equal(parallel.outputs[0], serial.outputs[0])

    def test_distinct_plan_parallelizes_correctly(self, catalog, config):
        from repro.sql import plan_sql

        sql = "SELECT DISTINCT fk FROM facts WHERE val < 500"
        serial = execute(plan_sql(sql, catalog), config)
        parallel = execute(
            HeuristicParallelizer(8).parallelize(plan_sql(sql, catalog)), config
        )
        assert intermediates_equal(parallel.outputs[0], serial.outputs[0])
