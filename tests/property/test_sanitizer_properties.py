"""Property: certified-pure operator pipelines never touch base buffers.

The certificate registry proves purity *statically*; these properties
cross-check it dynamically: for arbitrary data and predicates, running a
certified-pure pipeline under the sanitizer leaves every base column
bit-identical and produces worker-invariant results.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import SimulationConfig, laptop_machine
from repro.engine import execute
from repro.operators import Aggregate, Fetch, RangePredicate, Scan, Select
from repro.plan import Plan
from repro.storage import LNG, Column

CONFIG = SimulationConfig(machine=laptop_machine(4), data_scale=10.0)

small_ints = st.integers(min_value=-1000, max_value=1000)
arrays = st.lists(small_ints, min_size=1, max_size=200)


def select_count_plan(col: Column, hi: int) -> Plan:
    plan = Plan()
    scan = plan.add(Scan(col))
    sel = plan.add(Select(RangePredicate(hi=hi)), [scan])
    plan.set_outputs([plan.add(Aggregate("count"), [sel])])
    return plan


def fetch_sum_plan(col: Column, hi: int) -> Plan:
    plan = Plan()
    scan = plan.add(Scan(col))
    sel = plan.add(Select(RangePredicate(hi=hi)), [scan])
    fetched = plan.add(Fetch(), [sel, scan])
    plan.set_outputs([plan.add(Aggregate("sum"), [fetched])])
    return plan


@settings(max_examples=25, deadline=None)
@given(values=arrays, hi=small_ints, workers=st.sampled_from([2, 4]))
def test_select_pipeline_leaves_buffers_bit_identical(values, hi, workers):
    col = Column("v", LNG, np.asarray(values, dtype=np.int64))
    before = col.values.tobytes()
    serial = execute(select_count_plan(col, hi), CONFIG, sanitize=True)
    parallel = execute(
        select_count_plan(col, hi), CONFIG, workers=workers, sanitize=True
    )
    assert col.values.tobytes() == before
    assert serial.outputs[0].value == parallel.outputs[0].value


@settings(max_examples=25, deadline=None)
@given(values=arrays, hi=small_ints)
def test_fetch_pipeline_leaves_buffers_bit_identical(values, hi):
    col = Column("v", LNG, np.asarray(values, dtype=np.int64))
    before = col.values.tobytes()
    result = execute(fetch_sum_plan(col, hi), CONFIG, workers=2, sanitize=True)
    assert col.values.tobytes() == before
    expected = int(sum(v for v in values if v <= hi))
    assert result.outputs[0].value == expected
