"""Property-based tests on operator identities.

The central invariant of the whole system: for every operator, running
it per-partition and packing the partition outputs equals running it
serially (candidates keep their order; aggregates merge exactly).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.operators import (
    Aggregate,
    AggrMerge,
    Fetch,
    GroupAggregate,
    Join,
    Pack,
    RangePredicate,
    Select,
    SemiJoin,
    merge_func_for,
)
from repro.storage import Candidates, Column, LNG

small_ints = st.integers(min_value=-1000, max_value=1000)
arrays = st.lists(small_ints, min_size=1, max_size=250)


def as_column(values: list[int], name: str = "c") -> Column:
    return Column(name, LNG, np.asarray(values, dtype=np.int64))


@st.composite
def column_with_cuts(draw, parts: int = 3):
    values = draw(arrays)
    col = as_column(values)
    cuts = sorted(draw(st.lists(st.integers(0, len(col)), min_size=parts - 1, max_size=parts - 1)))
    bounds = [0, *cuts, len(col)]
    return col, bounds


class TestSelectPartitionIdentity:
    @settings(max_examples=60)
    @given(column_with_cuts(), st.integers(-1000, 1000))
    def test_packed_partition_selects_equal_serial(self, data, threshold):
        col, bounds = data
        op = Select(RangePredicate(hi=threshold))
        serial = op.evaluate([col.full_slice()])
        parts = [
            op.evaluate([col.slice(bounds[i], bounds[i + 1])])
            for i in range(len(bounds) - 1)
        ]
        packed = Pack().evaluate(parts)
        np.testing.assert_array_equal(packed.oids, serial.oids)

    @settings(max_examples=60)
    @given(column_with_cuts(), st.integers(-1000, 1000), st.data())
    def test_candidate_partitioning_identity(self, data, threshold, rnd):
        """Splitting the *candidate* input (what chained selects do)."""
        col, __ = data
        universe = np.flatnonzero(col.values % 2 == 0).astype(np.int64)
        cands = Candidates(universe)
        cut = rnd.draw(st.integers(0, len(universe)))
        op = Select(RangePredicate(hi=threshold))
        serial = op.evaluate([col.full_slice(), cands])
        left = op.evaluate([col.full_slice(), Candidates(universe[:cut])])
        right = op.evaluate([col.full_slice(), Candidates(universe[cut:])])
        packed = Pack().evaluate([left, right])
        np.testing.assert_array_equal(packed.oids, serial.oids)


class TestFetchPartitionIdentity:
    @settings(max_examples=60)
    @given(column_with_cuts())
    def test_value_column_split_with_trim(self, data):
        col, bounds = data
        universe = np.arange(0, len(col), 2, dtype=np.int64)
        cands = Candidates(universe)
        serial = Fetch().evaluate([cands, col.full_slice()])
        parts = [
            Fetch().evaluate([cands, col.slice(bounds[i], bounds[i + 1])])
            for i in range(len(bounds) - 1)
        ]
        packed = Pack().evaluate(parts)
        np.testing.assert_array_equal(packed.head, serial.head)
        np.testing.assert_array_equal(packed.tail, serial.tail)


class TestJoinPartitionIdentity:
    @settings(max_examples=40)
    @given(arrays, st.lists(small_ints, min_size=1, max_size=60), st.data())
    def test_outer_split_identity(self, outer_vals, inner_vals, rnd):
        outer = as_column(outer_vals, "outer")
        inner = as_column(list(dict.fromkeys(inner_vals)), "inner")
        cut = rnd.draw(st.integers(0, len(outer)))
        serial = Join().evaluate([outer.full_slice(), inner.full_slice()])
        left = Join().evaluate([outer.slice(0, cut), inner.full_slice()])
        right = Join().evaluate([outer.slice(cut, len(outer)), inner.full_slice()])
        packed = Pack().evaluate([left, right])
        np.testing.assert_array_equal(packed.head, serial.head)
        np.testing.assert_array_equal(packed.tail, serial.tail)

    @settings(max_examples=40)
    @given(arrays, st.lists(small_ints, min_size=1, max_size=60), st.data())
    def test_semijoin_outer_split_identity(self, outer_vals, inner_vals, rnd):
        outer = as_column(outer_vals, "outer")
        inner = as_column(inner_vals, "inner")
        cut = rnd.draw(st.integers(0, len(outer)))
        serial = SemiJoin().evaluate([outer.full_slice(), inner.full_slice()])
        left = SemiJoin().evaluate([outer.slice(0, cut), inner.full_slice()])
        right = SemiJoin().evaluate(
            [outer.slice(cut, len(outer)), inner.full_slice()]
        )
        packed = Pack().evaluate([left, right])
        np.testing.assert_array_equal(packed.head, serial.head)


class TestAggregationIdentities:
    @settings(max_examples=60)
    @given(column_with_cuts(), st.sampled_from(["sum", "count", "min", "max"]))
    def test_scalar_partials_merge(self, data, func):
        col, bounds = data
        op = Aggregate(func)
        serial = op.evaluate([col.full_slice()])
        parts = [
            op.evaluate([col.slice(bounds[i], bounds[i + 1])])
            for i in range(len(bounds) - 1)
            if bounds[i] < bounds[i + 1]  # skip empty: SQL identity only holds
        ]
        if not parts:
            return
        merged = Aggregate(merge_func_for(func)).evaluate([Pack().evaluate(parts)])
        assert merged.value == serial.value

    @settings(max_examples=60)
    @given(column_with_cuts(), st.sampled_from(["sum", "min", "max"]))
    def test_grouped_partials_merge(self, data, func):
        keys_col, bounds = data
        rng = np.random.default_rng(0)
        values_col = Column(
            "v", LNG, rng.integers(-50, 50, len(keys_col)).astype(np.int64)
        )
        op = GroupAggregate(func)
        serial = op.evaluate([keys_col.full_slice(), values_col.full_slice()])
        parts = []
        for i in range(len(bounds) - 1):
            lo, hi = bounds[i], bounds[i + 1]
            if lo < hi:
                parts.append(op.evaluate([keys_col.slice(lo, hi), values_col.slice(lo, hi)]))
        merged = AggrMerge(merge_func_for(func)).evaluate([Pack().evaluate(parts)])
        np.testing.assert_array_equal(merged.head, serial.head)
        np.testing.assert_array_equal(merged.tail, serial.tail)

    @settings(max_examples=60)
    @given(column_with_cuts())
    def test_grouped_count_partials(self, data):
        keys_col, bounds = data
        op = GroupAggregate("count")
        serial = op.evaluate([keys_col.full_slice()])
        parts = [
            op.evaluate([keys_col.slice(bounds[i], bounds[i + 1])])
            for i in range(len(bounds) - 1)
            if bounds[i] < bounds[i + 1]
        ]
        merged = AggrMerge("sum").evaluate([Pack().evaluate(parts)])
        np.testing.assert_array_equal(merged.head, serial.head)
        np.testing.assert_array_equal(merged.tail, serial.tail)
