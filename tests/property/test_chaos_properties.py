"""Property-based tests of the chaos harness determinism contract.

Whatever seed and fault mix we throw at the system: (1) a fixed seed
gives a bit-identical fault schedule and WorkloadReport, (2) completed
results under faults and retries equal fault-free results, and (3) the
retry budget is never exceeded.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.chaos import FaultInjector, FaultPlan
from repro.concurrency import ClientSpec, ResilienceConfig, ResilientWorkload
from repro.config import SimulationConfig, laptop_machine
from repro.core import HeuristicParallelizer
from repro.engine import execute
from repro.errors import InjectedFaultError
from repro.operators import RangePredicate
from repro.plan import PlanBuilder
from repro.storage import Catalog, LNG, Table


def build_catalog() -> Catalog:
    rng = np.random.default_rng(4321)
    catalog = Catalog()
    catalog.add(
        Table.from_arrays(
            "t",
            {
                "a": (LNG, rng.integers(0, 1_000, 8_000)),
                "b": (LNG, rng.integers(0, 100, 8_000)),
            },
        )
    )
    return catalog


CATALOG = build_catalog()


def build_plan():
    b = PlanBuilder(CATALOG)
    sel = b.select(b.scan("t", "a"), RangePredicate(hi=500))
    proj = b.fetch(sel, b.scan("t", "b"))
    return b.build(b.aggregate("sum", proj))


PLAN = HeuristicParallelizer(4).parallelize(build_plan())


def fault_plans() -> st.SearchStrategy[FaultPlan]:
    return st.builds(
        FaultPlan,
        operator_exception_rate=st.floats(0.0, 0.05),
        straggler_rate=st.floats(0.0, 0.2),
        straggler_slowdown=st.floats(1.0, 8.0),
        mem_pressure_rate=st.floats(0.0, 0.2),
        mem_pressure_factor=st.floats(1.0, 4.0),
        disconnect_rate=st.floats(0.0, 0.1),
    )


def run_workload(
    seed: int, faults: FaultPlan, *, max_retries: int = 3, workers=None
):
    config = SimulationConfig(
        machine=laptop_machine(4), data_scale=100.0, seed=seed
    )
    workload = ResilientWorkload(
        config,
        [ClientSpec(name=f"c{i}", plans=[PLAN]) for i in range(3)],
        horizon=0.5,
        faults=faults,
        resilience=ResilienceConfig(timeout=0.4, max_retries=max_retries),
        workers=workers,
    )
    return workload.run()


@settings(
    max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
@given(seed=st.integers(0, 2**32 - 1), faults=fault_plans())
def test_same_seed_same_schedule_and_report(seed, faults):
    first = run_workload(seed, faults)
    second = run_workload(seed, faults)
    assert first.fault_schedule == second.fault_schedule
    assert first.as_dict() == second.as_dict()


@settings(
    max_examples=4, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
@given(seed=st.integers(0, 2**32 - 1))
def test_workers_do_not_change_the_report(seed):
    faults = FaultPlan(
        operator_exception_rate=0.01,
        straggler_rate=0.1,
        mem_pressure_rate=0.05,
        disconnect_rate=0.05,
    )
    serial = run_workload(seed, faults)
    pooled = run_workload(seed, faults, workers=4)
    assert serial.as_dict() == pooled.as_dict()


@settings(
    max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
@given(
    seed=st.integers(0, 2**32 - 1),
    straggler=st.floats(0.0, 0.4),
    spike=st.floats(0.0, 0.4),
)
def test_timing_faults_preserve_results(seed, straggler, spike):
    config = SimulationConfig(
        machine=laptop_machine(4), data_scale=100.0, seed=seed
    )
    clean = execute(PLAN.copy(), config)
    faults = FaultPlan(
        straggler_rate=straggler,
        straggler_slowdown=8.0,
        mem_pressure_rate=spike,
        mem_pressure_factor=4.0,
    )
    chaotic = execute(PLAN.copy(), config, faults=faults)
    assert chaotic.outputs[0].value == clean.outputs[0].value
    assert chaotic.response_time >= clean.response_time


@settings(
    max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
@given(seed=st.integers(0, 2**32 - 1))
def test_exception_faults_with_retry_preserve_results(seed):
    config = SimulationConfig(
        machine=laptop_machine(4), data_scale=100.0, seed=seed
    )
    clean = execute(PLAN.copy(), config)
    injector = FaultInjector(
        FaultPlan(operator_exception_rate=0.02), seed=seed
    )
    # Retry until a run survives the injector's exception stream; the
    # rate makes success overwhelmingly likely within the bound.
    for __ in range(50):
        try:
            survived = execute(PLAN.copy(), config, faults=injector)
            break
        except InjectedFaultError:
            continue
    else:
        raise AssertionError("no execution survived a 2% exception rate")
    assert survived.outputs[0].value == clean.outputs[0].value


@settings(
    max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
@given(
    seed=st.integers(0, 2**32 - 1),
    max_retries=st.integers(0, 3),
)
def test_retries_never_exceed_bound(seed, max_retries):
    faults = FaultPlan(
        operator_exception_rate=0.05,
        straggler_rate=0.1,
        disconnect_rate=0.1,
    )
    report = run_workload(seed, faults, max_retries=max_retries)
    # Every query resolves as completed, disconnected, or abandoned,
    # and each consumed at most ``max_retries`` retries.
    resolved = report.completed() + report.disconnects + report.abandoned
    assert report.retries <= max_retries * max(resolved, 1)
    if max_retries == 0:
        assert report.retries == 0
        assert report.shed_dop == 0
