"""Property-based tests on the discrete-event scheduler.

Whatever plan shape and DOP we throw at the simulator, physical
invariants must hold: a hardware thread never runs two operators at
once, data-flow ordering is respected, the DOP cap is never exceeded,
and busy time never exceeds span x threads.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import SimulationConfig, laptop_machine
from repro.core import HeuristicParallelizer
from repro.engine import execute
from repro.operators import RangePredicate
from repro.plan import PlanBuilder
from repro.storage import Catalog, LNG, Table


def build_catalog(seed: int) -> Catalog:
    rng = np.random.default_rng(seed)
    n, m = 4_000, 64
    catalog = Catalog()
    catalog.add(
        Table.from_arrays(
            "facts",
            {
                "fk": (LNG, rng.integers(0, m, n)),
                "val": (LNG, rng.integers(0, 1_000, n)),
                "qty": (LNG, rng.integers(1, 50, n)),
            },
        )
    )
    catalog.add(Table.from_arrays("dims", {"pk": (LNG, np.arange(m))}))
    return catalog


def build_plan(catalog: Catalog, shape: int, threshold: int):
    b = PlanBuilder(catalog)
    sel = b.select(b.scan("facts", "val"), RangePredicate(hi=threshold))
    if shape == 0:
        out = b.aggregate("sum", b.fetch(sel, b.scan("facts", "qty")))
    elif shape == 1:
        fk = b.fetch(sel, b.scan("facts", "fk"))
        out = b.aggregate("count", b.join(fk, b.scan("dims", "pk")))
    else:
        keys = b.fetch(sel, b.scan("facts", "fk"))
        vals = b.fetch(sel, b.scan("facts", "qty"))
        out = b.group_aggregate("sum", keys, vals)
    return b.build(out)


@settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
@given(
    seed=st.integers(0, 5),
    shape=st.integers(0, 2),
    threshold=st.integers(0, 1_000),
    partitions=st.integers(1, 12),
    dop_cap=st.integers(1, 8),
)
def test_scheduler_invariants(seed, shape, threshold, partitions, dop_cap):
    catalog = build_catalog(seed)
    plan = HeuristicParallelizer(partitions).parallelize(
        build_plan(catalog, shape, threshold)
    )
    config = SimulationConfig(
        machine=laptop_machine(8), data_scale=200.0, max_threads=dop_cap
    )
    result = execute(plan, config)
    profile = result.profile

    # 1. One operator record per plan node.
    assert len(profile.records) == len(plan.nodes())

    # 2. A hardware thread never overlaps two operators.
    for records in profile.records_by_thread().values():
        for a, b in zip(records, records[1:]):
            assert b.start >= a.end - 1e-9

    # 3. Data-flow ordering: consumers start after their producers end.
    finish = {r.node.nid: r.end for r in profile.records}
    start = {r.node.nid: r.start for r in profile.records}
    for node in plan.nodes():
        for child in node.inputs:
            assert start[node.nid] >= finish[child.nid] - 1e-9

    # 4. The DOP cap holds at every operator start.
    events = sorted(
        [(r.start, 1) for r in profile.records]
        + [(r.end, -1) for r in profile.records]
    )
    running = 0
    for __, delta in events:
        running += delta
        assert running <= dop_cap

    # 5. Busy core time fits inside span x threads.
    span = profile.finish_time - profile.submit_time
    assert profile.busy_core_seconds() <= span * dop_cap + 1e-9

    # 6. Peak memory is positive and finite.
    assert 0 < profile.peak_memory_bytes < 1e18
