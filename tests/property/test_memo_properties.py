"""Property: memoization is invisible to everything but wall-clock.

Whatever query shape and seed we draw, running a full adaptive
parallelization instance with the cross-run cache on must produce the
*same* simulated trace as with it off: identical per-run execution
times, identical query outputs, and the same GME plan.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import SimulationConfig, laptop_machine
from repro.core import AdaptiveParallelizer, ConvergenceParams
from repro.core.adaptive import intermediates_equal
from repro.operators import Aggregate, Calc, Fetch, Join, RangePredicate, Scan, Select
from repro.plan import Plan
from repro.storage import Catalog, LNG, Table


def build_catalog(seed: int) -> Catalog:
    rng = np.random.default_rng(seed)
    n, m = 3_000, 64
    catalog = Catalog()
    catalog.add(
        Table.from_arrays(
            "facts",
            {
                "fk": (LNG, rng.integers(0, m, n)),
                "val": (LNG, rng.integers(0, 1_000, n)),
                "qty": (LNG, rng.integers(1, 50, n)),
            },
        )
    )
    catalog.add(Table.from_arrays("dims", {"pk": (LNG, np.arange(m))}))
    return catalog


def build_plan(catalog: Catalog, hi: int, with_join: bool) -> Plan:
    plan = Plan()
    if with_join:
        fk = plan.add(Scan(catalog.column("facts", "fk")))
        pk = plan.add(Scan(catalog.column("dims", "pk")))
        joined = plan.add(Join(), [fk, pk])
        agg = plan.add(Aggregate("count"), [joined])
    else:
        val = plan.add(Scan(catalog.column("facts", "val")))
        qty = plan.add(Scan(catalog.column("facts", "qty")))
        sel = plan.add(Select(RangePredicate(hi=hi)), [val])
        vals = plan.add(Fetch(), [sel, val])
        qtys = plan.add(Fetch(), [sel, qty])
        prod = plan.add(Calc("*"), [vals, qtys])
        agg = plan.add(Aggregate("sum"), [prod])
    plan.set_outputs([agg])
    return plan


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    hi=st.integers(min_value=50, max_value=900),
    with_join=st.booleans(),
)
def test_optimize_identical_with_and_without_cache(seed, hi, with_join):
    catalog = build_catalog(seed % 7)
    plan = build_plan(catalog, hi, with_join)
    config = SimulationConfig(machine=laptop_machine(), seed=seed)
    convergence = ConvergenceParams(
        number_of_cores=config.effective_threads, extra_runs=3, max_runs=40
    )

    def run(memoize: bool):
        parallelizer = AdaptiveParallelizer(
            config, convergence=convergence, memoize=memoize
        )
        result = parallelizer.optimize(plan)
        final = parallelizer.runner(result.best_plan, result.total_runs + 1)
        return parallelizer, result, final

    ap_on, res_on, final_on = run(True)
    __, res_off, final_off = run(False)

    # The simulated trace is bit-identical: same times, same GME choice.
    assert res_on.exec_times() == res_off.exec_times()
    assert res_on.serial_time == res_off.serial_time
    assert res_on.gme_time == res_off.gme_time
    assert res_on.gme_run == res_off.gme_run
    assert res_on.total_runs == res_off.total_runs

    # The chosen GME plans are structurally the same plan.
    fp_on = [out.fingerprint() for out in res_on.best_plan.outputs]
    fp_off = [out.fingerprint() for out in res_off.best_plan.outputs]
    assert fp_on == fp_off

    # Query outputs match value-for-value.
    assert len(final_on.outputs) == len(final_off.outputs)
    for a, b in zip(final_on.outputs, final_off.outputs):
        assert intermediates_equal(a, b)

    # And the cache actually worked: repeated runs mostly hit.
    if res_on.total_runs > 2:
        assert ap_on.memo is not None
        assert ap_on.memo.stats().hits > 0
