"""Property-based tests on plan mutation and convergence.

Random mutation sequences over randomly generated query shapes must
never change query results and must always leave a valid plan -- this is
the "no matter how the plan is morphed" guarantee.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import SimulationConfig, laptop_machine
from repro.core import ConvergenceParams, ConvergenceTracker, PlanMutator
from repro.core.adaptive import intermediates_equal
from repro.engine import execute
from repro.operators import RangePredicate
from repro.plan import PlanBuilder, validate_plan
from repro.storage import Catalog, LNG, Table

_CONFIG = SimulationConfig(machine=laptop_machine(8), data_scale=200.0)


def make_catalog(seed: int) -> Catalog:
    rng = np.random.default_rng(seed)
    n, m = 3_000, 40
    catalog = Catalog()
    catalog.add(
        Table.from_arrays(
            "facts",
            {
                "fk": (LNG, rng.integers(0, m, n)),
                "val": (LNG, rng.integers(0, 1_000, n)),
                "qty": (LNG, rng.integers(1, 50, n)),
            },
        )
    )
    catalog.add(Table.from_arrays("dims", {"pk": (LNG, np.arange(m))}))
    return catalog


def build_random_plan(catalog: Catalog, shape: int, threshold: int):
    """A small family of query shapes driven by hypothesis."""
    b = PlanBuilder(catalog)
    sel = b.select(b.scan("facts", "val"), RangePredicate(hi=threshold))
    if shape == 0:  # select -> fetch -> sum
        out = b.aggregate("sum", b.fetch(sel, b.scan("facts", "qty")))
    elif shape == 1:  # chained selects -> count
        sel2 = b.select(b.scan("facts", "qty"), RangePredicate(hi=30), candidates=sel)
        out = b.aggregate("count", sel2)
    elif shape == 2:  # join -> count
        fk = b.fetch(sel, b.scan("facts", "fk"))
        out = b.aggregate("count", b.join(fk, b.scan("dims", "pk")))
    else:  # group-by
        keys = b.fetch(sel, b.scan("facts", "fk"))
        vals = b.fetch(sel, b.scan("facts", "qty"))
        out = b.group_aggregate("sum", keys, vals)
    return b.build(out)


class TestMutationInvariance:
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(0, 10),
        shape=st.integers(0, 3),
        threshold=st.integers(0, 1_000),
        steps=st.integers(1, 10),
    )
    def test_mutations_preserve_results_and_validity(
        self, seed, shape, threshold, steps
    ):
        catalog = make_catalog(seed)
        plan = build_random_plan(catalog, shape, threshold)
        serial = execute(plan, _CONFIG)
        mutator = PlanMutator(plan)
        profile = serial.profile
        for __ in range(steps):
            result = mutator.mutate(profile)
            if result is None:
                break
            validate_plan(plan)
            run = execute(plan, _CONFIG)
            for a, b in zip(run.outputs, serial.outputs):
                assert intermediates_equal(a, b)
            profile = run.profile


class TestConvergenceProperties:
    @settings(max_examples=100)
    @given(
        st.lists(
            st.floats(min_value=0.001, max_value=100.0, allow_nan=False),
            min_size=1,
            max_size=60,
        ),
        st.integers(1, 64),
    )
    def test_gme_never_worse_than_best_seen_by_threshold(self, times, cores):
        """GME is within (threshold * serial) of the true minimum of the
        observed runs, and always one of the observed values."""
        tracker = ConvergenceTracker(ConvergenceParams(number_of_cores=cores))
        for t in times:
            tracker.observe(t)
            if not tracker.should_continue():
                break
        observed = tracker.exec_times()
        if len(observed) < 2:
            return
        serial = observed[0]
        best = min(observed[1:])
        assert tracker.gme_time in observed[1:]
        assert tracker.gme_time <= best + tracker.params.gme_threshold * serial + 1e-12

    @settings(max_examples=60)
    @given(st.integers(1, 16), st.integers(1, 4))
    def test_convergence_always_terminates_on_flat_traces(self, cores, extra):
        tracker = ConvergenceTracker(
            ConvergenceParams(number_of_cores=cores, extra_runs=extra)
        )
        tracker.observe(10.0)
        guard = 0
        while tracker.should_continue():
            tracker.observe(5.0)
            guard += 1
            assert guard < 5_000

    @settings(max_examples=50)
    @given(
        st.lists(
            st.floats(min_value=0.01, max_value=10.0, allow_nan=False),
            min_size=2,
            max_size=200,
        )
    )
    def test_credit_and_debit_never_negative(self, times):
        tracker = ConvergenceTracker(ConvergenceParams(number_of_cores=8))
        for t in times:
            tracker.observe(t)
            assert tracker.credit >= 0
            assert tracker.debit >= 0
            if not tracker.should_continue():
                break


@pytest.mark.parametrize("shape", [0, 1, 2, 3])
def test_each_shape_serial_baseline_is_deterministic(shape):
    catalog = make_catalog(1)
    plan = build_random_plan(catalog, shape, 500)
    a = execute(plan, _CONFIG)
    b = execute(plan, _CONFIG)
    for x, y in zip(a.outputs, b.outputs):
        assert intermediates_equal(x, y)
