"""Property: the zero-copy fast paths are invisible to results.

Select/Fetch/Calc carry two implementations -- a materializing slow
path and a zero-copy fast path (candidate views, binary-searched
sub-ranges, dense-run column views).  Whatever columns, predicates, and
candidate chains we draw, evaluating with the fast paths enabled must
be bit-identical to evaluating with them forced off, and the work
profiles (hence simulated times) must match exactly.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.operators import (
    Calc,
    Fetch,
    GroupAggregate,
    Join,
    Pack,
    RangePredicate,
    Select,
    SemiJoin,
    fastpath,
)
from repro.storage import BAT, Candidates, Column, LNG
from repro.storage.column import ColumnSlice


def columns(draw, n):
    values = draw(
        st.lists(st.integers(0, 100), min_size=n, max_size=n)
    )
    return Column("c", LNG, np.asarray(values, dtype=np.int64))


def intermediate_equal(a, b):
    if isinstance(a, Candidates) and isinstance(b, Candidates):
        return np.array_equal(a.oids, b.oids)
    if isinstance(a, BAT) and isinstance(b, BAT):
        return (
            np.array_equal(a.head, b.head)
            and np.array_equal(a.tail, b.tail)
            and a.dtype is b.dtype
        )
    return False


@st.composite
def select_case(draw):
    n = draw(st.integers(1, 60))
    column = columns(draw, n)
    lo = draw(st.integers(0, n - 1))
    hi = draw(st.integers(lo, n))
    view = column.slice(lo, hi)
    p_lo = draw(st.one_of(st.none(), st.integers(0, 100)))
    p_hi = draw(st.one_of(st.none(), st.integers(0, 100)))
    if p_lo is None and p_hi is None:
        p_lo = 0
    predicate = RangePredicate(p_lo, p_hi)
    cands = None
    if draw(st.booleans()):
        oids = draw(
            st.lists(st.integers(0, n - 1), min_size=0, max_size=n, unique=True)
        )
        cands = Candidates(np.sort(np.asarray(oids, dtype=np.int64)))
    return view, predicate, cands


@given(select_case())
@settings(max_examples=60, deadline=None)
def test_select_fast_path_matches_slow_path(case):
    view, predicate, cands = case
    op = Select(predicate)
    inputs = [view] if cands is None else [view, cands]
    fast = op.evaluate(inputs)
    with fastpath.disabled():
        slow = op.evaluate(inputs)
    assert intermediate_equal(fast, slow)
    assert op.work_profile(inputs, fast) == op.work_profile(inputs, slow)


@st.composite
def fetch_case(draw):
    n = draw(st.integers(1, 60))
    column = columns(draw, n)
    # Mix dense runs (which hit the zero-copy view) with sparse lists.
    if draw(st.booleans()):
        lo = draw(st.integers(0, n - 1))
        hi = draw(st.integers(lo + 1, n))
        oids = np.arange(lo, hi, dtype=np.int64)
    else:
        picks = draw(
            st.lists(st.integers(0, n - 1), min_size=0, max_size=n, unique=True)
        )
        oids = np.sort(np.asarray(picks, dtype=np.int64))
    return column.full_slice(), Candidates(oids)


@given(fetch_case())
@settings(max_examples=60, deadline=None)
def test_fetch_fast_path_matches_slow_path(case):
    view, cands = case
    op = Fetch()
    fast = op.evaluate([cands, view])
    with fastpath.disabled():
        slow = op.evaluate([cands, view])
    assert intermediate_equal(fast, slow)
    assert op.work_profile([cands, view], fast) == op.work_profile(
        [cands, view], slow
    )


@given(fetch_case())
@settings(max_examples=30, deadline=None)
def test_dense_fetch_returns_base_column_view(case):
    view, cands = case
    out = Fetch().evaluate([cands, view])
    n = len(cands)
    dense = n > 0 and int(cands.oids[-1]) - int(cands.oids[0]) + 1 == n
    if dense:
        # Zero-copy: the tail shares the base column's buffer.
        assert np.shares_memory(out.tail, view.column.values)
        assert np.shares_memory(out.head, cands.oids)


@given(st.lists(st.integers(0, 50), min_size=1, max_size=40), st.integers(0, 3))
@settings(max_examples=60, deadline=None)
def test_select_chain_fast_path_matches_slow_path(values, n_chained):
    """Chained conjunctive selections propagate candidates identically."""
    column = Column("c", LNG, np.asarray(values, dtype=np.int64))
    view = column.full_slice()
    preds = [RangePredicate(5 * i, 50 - 3 * i) for i in range(n_chained + 1)]

    def run():
        cands = Select(preds[0]).evaluate([view])
        for pred in preds[1:]:
            cands = Select(pred).evaluate([view, cands])
        return cands

    fast = run()
    with fastpath.disabled():
        slow = run()
    assert intermediate_equal(fast, slow)


@given(st.lists(st.integers(0, 30), min_size=1, max_size=30))
@settings(max_examples=40, deadline=None)
def test_candidates_join_calc_groupby_match_mirror_path(values):
    """Probe sides fed raw candidate lists equal the mirrored-BAT path."""
    column = Column("c", LNG, np.asarray(values, dtype=np.int64))
    view = column.full_slice()
    cands = Select(RangePredicate(5, 25)).evaluate([view])
    as_bat = BAT(cands.oids, cands.oids, LNG)

    joined_c = Join().evaluate([cands, view])
    joined_b = Join().evaluate([as_bat, view])
    assert np.array_equal(joined_c.head, joined_b.head)
    assert np.array_equal(joined_c.tail, joined_b.tail)

    semi_c = SemiJoin().evaluate([cands, view])
    semi_b = SemiJoin().evaluate([as_bat, view])
    assert np.array_equal(semi_c.head, semi_b.head)
    assert np.array_equal(semi_c.tail, semi_b.tail)

    calc_c = Calc("+").evaluate([cands, cands])
    calc_b = Calc("+").evaluate([as_bat, as_bat])
    assert np.array_equal(calc_c.head, calc_b.head)
    assert np.array_equal(calc_c.tail, calc_b.tail)

    grouped_c = GroupAggregate("count").evaluate([cands])
    grouped_b = GroupAggregate("count").evaluate([as_bat])
    assert np.array_equal(grouped_c.head, grouped_b.head)
    assert np.array_equal(grouped_c.tail, grouped_b.tail)


@given(
    st.lists(
        st.lists(st.integers(0, 100), min_size=0, max_size=10, unique=True),
        min_size=1,
        max_size=4,
    )
)
@settings(max_examples=60, deadline=None)
def test_pack_tracks_candidate_uniqueness(parts):
    """Pack's single ordering scan also settles the uniqueness flag."""
    sorted_parts = [np.sort(np.asarray(p, dtype=np.int64)) for p in parts]
    flat = np.concatenate(sorted_parts)
    if len(flat) > 1 and not np.all(flat[1:] >= flat[:-1]):
        return  # out-of-order packs raise; ordering is tested elsewhere
    packed = Pack().evaluate([Candidates(p) for p in sorted_parts])
    expected_unique = bool(np.all(flat[1:] > flat[:-1])) if len(flat) > 1 else True
    assert packed.unique is expected_unique
    assert np.array_equal(packed.oids, flat)


def test_slice_oids_are_cached_and_read_only():
    column = Column("c", LNG, np.arange(10, dtype=np.int64))
    view = ColumnSlice(column, 2, 7)
    first = view.oids()
    second = view.oids()
    assert first is second
    assert not first.flags.writeable
    np.testing.assert_array_equal(first, np.arange(2, 7))
