"""Property-based tests on the cluster layer (hypothesis).

Two families:

* the shard-map partition invariant -- for any rows / nodes /
  shards-per-node / weights, ``range_shard`` tiles ``[0, rows)``
  exactly (no gap, no overlap, sorted), places every copy on a live
  node, and survives failover without moving a boundary;
* distributed-equals-serial -- the sharded aggregate executed on a
  simulated cluster returns the *same integer* as the plain
  single-machine engine aggregating the same rows, for any seed,
  node count, and filter range (integer columns make the partial-sum
  merge bit-exact).
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import (
    ClusterSpec,
    cluster_execute,
    sharded_aggregate_plan,
    sharded_select_plan,
)
from repro.config import SimulationConfig, laptop_machine
from repro.engine import execute
from repro.operators import Aggregate, Fetch, RangePredicate, Scan, Select
from repro.plan.graph import Plan
from repro.storage import LNG, Table
from repro.storage.sharded import ShardedTable, range_shard


class TestRangeShardInvariant:
    @given(
        rows=st.integers(0, 5000),
        nodes=st.integers(1, 8),
        per_node=st.integers(1, 4),
    )
    @settings(max_examples=60, deadline=None)
    def test_uniform_tiles_exactly(self, rows, nodes, per_node):
        shard_map = range_shard(rows, nodes, shards_per_node=per_node)
        self._assert_tiling(shard_map, rows, nodes)

    @given(
        rows=st.integers(1, 5000),
        nodes=st.integers(1, 6),
        data=st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_weighted_tiles_exactly(self, rows, nodes, data):
        weights = tuple(
            data.draw(
                st.lists(
                    st.floats(
                        0.0, 10.0, allow_nan=False, allow_infinity=False
                    ),
                    min_size=nodes,
                    max_size=nodes,
                ).filter(lambda ws: sum(ws) > 0)
            )
        )
        shard_map = range_shard(rows, nodes, weights=weights)
        self._assert_tiling(shard_map, rows, nodes)

    @given(
        rows=st.integers(1, 2000),
        nodes=st.integers(2, 6),
        dead=st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_failover_keeps_tiling_and_avoids_the_dead(
        self, rows, nodes, dead
    ):
        shard_map = range_shard(rows, nodes, shards_per_node=2)
        victim = dead.draw(st.integers(0, nodes - 1))
        survived = shard_map.failover(victim)
        self._assert_tiling(survived, rows, nodes)
        assert survived.bounds() == shard_map.bounds()
        for shard in survived.shards:
            assert victim not in shard.holders()

    @staticmethod
    def _assert_tiling(shard_map, rows, nodes):
        bounds = shard_map.bounds()
        if rows == 0:
            assert all(lo == hi == 0 for lo, hi in bounds)
        else:
            assert bounds[0][0] == 0
            assert bounds[-1][1] == rows
        for (_, hi), (lo, _) in zip(bounds, bounds[1:]):
            assert hi == lo  # contiguous: no gap, no overlap
        for shard in shard_map.shards:
            for node in shard.holders():
                assert 0 <= node < nodes


@st.composite
def cluster_case(draw):
    rows = draw(st.integers(10, 400))
    nodes = draw(st.integers(1, 4))
    per_node = draw(st.integers(1, 2))
    seed = draw(st.integers(0, 2**16))
    rng = np.random.default_rng(seed)
    table = Table.from_arrays(
        "t",
        {
            "k": (LNG, rng.integers(0, 1000, rows)),
            "v": (LNG, rng.integers(-500, 500, rows)),
        },
    )
    lo = draw(st.integers(0, 900))
    hi = draw(st.integers(lo, 1000))
    return table, nodes, per_node, lo, hi


def _cluster_for(nodes: int) -> ClusterSpec:
    return ClusterSpec(node=laptop_machine(2), nodes=nodes)


class TestDistributedEqualsSerial:
    @given(cluster_case())
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_sharded_aggregate_matches_single_node(self, case):
        table, nodes, per_node, lo, hi = case
        sharded = ShardedTable.create(
            table, nodes, shards_per_node=per_node
        )
        cluster = _cluster_for(nodes)
        plan = sharded_aggregate_plan(
            sharded, value="v", func="sum", filter_on="k", lo=lo, hi=hi
        )
        result = cluster_execute(
            plan, cluster, SimulationConfig(machine=cluster.node)
        )

        serial = Plan()
        fscan = serial.add(Scan(table.column("k"), 0, len(table)))
        sel = serial.add(Select(RangePredicate(lo, hi)), [fscan])
        vscan = serial.add(Scan(table.column("v"), 0, len(table)))
        fetched = serial.add(Fetch(), [sel, vscan])
        serial.set_outputs([serial.add(Aggregate("sum"), [fetched])])
        expected = execute(
            serial, SimulationConfig(machine=laptop_machine(2))
        )
        assert int(result.outputs[0].value) == int(
            expected.outputs[0].value
        )

    @given(cluster_case())
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_sharded_select_bytes_equal_single_node(self, case):
        table, nodes, per_node, lo, hi = case
        sharded = ShardedTable.create(
            table, nodes, shards_per_node=per_node
        )
        cluster = _cluster_for(nodes)
        plan = sharded_select_plan(sharded, filter_on="k", lo=lo, hi=hi)
        gathered = cluster_execute(
            plan, cluster, SimulationConfig(machine=cluster.node)
        )

        serial = Plan()
        scan = serial.add(Scan(table.column("k"), 0, len(table)))
        serial.set_outputs(
            [serial.add(Select(RangePredicate(lo, hi)), [scan])]
        )
        expected = execute(
            serial, SimulationConfig(machine=laptop_machine(2))
        )
        got = np.asarray(gathered.outputs[0].oids)
        want = np.asarray(expected.outputs[0].oids)
        assert got.dtype == want.dtype
        assert got.tobytes() == want.tobytes()
