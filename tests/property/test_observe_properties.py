"""Property-based tests of the observability layer.

For arbitrary generated plans and DOPs, the recorded span tree must be
structurally sound (one rooted tree, children inside parents) and must
*agree with the profiler*: one task span per ``OpRecord`` with the same
interval and affiliation, and per-kind metric time sums equal to
``QueryProfile.time_by_kind()``.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import SimulationConfig, laptop_machine
from repro.core import HeuristicParallelizer
from repro.engine import execute
from repro.observe import Observer
from repro.observe.spans import NEST_EPS

from tests.property.test_scheduler_properties import build_catalog, build_plan


@settings(
    max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
@given(
    seed=st.integers(0, 5),
    shape=st.integers(0, 2),
    threshold=st.integers(0, 1_000),
    partitions=st.integers(1, 12),
)
def test_observe_invariants(seed, shape, threshold, partitions):
    catalog = build_catalog(seed)
    plan = HeuristicParallelizer(partitions).parallelize(
        build_plan(catalog, shape, threshold)
    )
    config = SimulationConfig(machine=laptop_machine(8), data_scale=200.0)
    observer = Observer()
    result = execute(plan, config, trace=observer)
    observer.finish()
    spans = observer.tracer.spans

    # 1. One rooted tree: unique ids, exactly one parentless span (the
    #    root), every parent created before its children.
    ids = [span.span_id for span in spans]
    assert ids == list(range(len(spans)))
    assert [s for s in spans if s.parent_id is None] == [spans[0]]
    by_id = {span.span_id: span for span in spans}
    for span in spans[1:]:
        assert span.parent_id in by_id
        assert span.parent_id < span.span_id

    # 2. Every span is finished and children lie within their parent.
    for span in spans:
        assert span.finished
    for span in spans[1:]:
        parent = by_id[span.parent_id]
        assert span.t0 >= parent.t0 - NEST_EPS
        assert span.t1 <= parent.t1 + NEST_EPS

    # 3. Task spans map 1:1 onto OpRecords (interval + affiliation).
    tasks = [span for span in spans if span.kind == "task"]
    records = result.profile.records
    assert len(tasks) == len(records)
    span_view = sorted(
        (s.name, s.t0, s.t1, s.attrs["thread"], s.attrs["socket"]) for s in tasks
    )
    record_view = sorted(
        (r.kind, r.start, r.end, r.thread_id, r.socket_id) for r in records
    )
    assert span_view == record_view

    # 4. Per-kind metric time sums equal the profiler's view.
    metrics = observer.metrics.collect()
    by_kind = result.profile.time_by_kind()
    for kind, seconds in by_kind.items():
        key = f'repro_task_sim_seconds_total{{kind="{kind}"}}'
        assert abs(metrics[key] - seconds) <= 1e-9
    metric_kinds = {
        key.split('"')[1]
        for key in metrics
        if key.startswith("repro_task_sim_seconds_total")
    }
    assert metric_kinds == set(by_kind)
