"""Property-based SQL correctness: random queries vs direct numpy.

Hypothesis generates random predicates/aggregates/groupings over a fixed
star schema; every compiled plan's result must equal a straightforward
numpy evaluation of the same query.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import SimulationConfig, laptop_machine
from repro.engine import execute
from repro.plan import validate_plan
from repro.sql import plan_sql
from repro.storage import Catalog, LNG, Table

_CONFIG = SimulationConfig(machine=laptop_machine(8), data_scale=50.0)
_N, _M = 3_000, 80
_RNG = np.random.default_rng(20_16)
_CATALOG = Catalog()
_CATALOG.add(
    Table.from_arrays(
        "sales",
        {
            "item_id": (LNG, _RNG.integers(0, _M, _N)),
            "amount": (LNG, _RNG.integers(0, 100, _N)),
            "price": (LNG, _RNG.integers(1, 500, _N)),
        },
    )
)
_CATALOG.add(
    Table.from_arrays(
        "items",
        {
            "item_pk": (LNG, np.arange(_M)),
            "category": (LNG, _RNG.integers(0, 6, _M)),
        },
    )
)

_SALES = _CATALOG.table("sales")
_ITEMS = _CATALOG.table("items")


def numpy_mask(lo: int, hi: int, category: int | None) -> np.ndarray:
    amount = _SALES.column("amount").values
    mask = (amount >= lo) & (amount <= hi)
    if category is not None:
        cat_per_row = _ITEMS.column("category").values[
            _SALES.column("item_id").values
        ]
        mask &= cat_per_row == category
    return mask


@st.composite
def query_case(draw):
    lo = draw(st.integers(0, 99))
    hi = draw(st.integers(lo, 99))
    category = draw(st.one_of(st.none(), st.integers(0, 5)))
    agg = draw(st.sampled_from(["SUM(price)", "COUNT(*)", "MIN(price)", "MAX(price)"]))
    return lo, hi, category, agg


def build_sql(lo: int, hi: int, category: int | None, agg: str, grouped: bool) -> str:
    tables = "sales" if category is None and not grouped else "sales, items"
    where = [f"amount BETWEEN {lo} AND {hi}"]
    if category is not None or grouped:
        where.append("item_id = item_pk")
    if category is not None:
        where.append(f"category = {category}")
    sql = f"SELECT {'category, ' if grouped else ''}{agg} FROM {tables} " \
          f"WHERE {' AND '.join(where)}"
    if grouped:
        sql += " GROUP BY category ORDER BY category"
    return sql


def reduce_numpy(values: np.ndarray, agg: str):
    if agg == "COUNT(*)":
        return len(values)
    if len(values) == 0:
        return 0
    if agg == "SUM(price)":
        return int(values.sum())
    if agg == "MIN(price)":
        return int(values.min())
    return int(values.max())


class TestScalarQueries:
    @settings(
        max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(query_case())
    def test_scalar_aggregate_matches_numpy(self, case):
        lo, hi, category, agg = case
        sql = build_sql(lo, hi, category, agg, grouped=False)
        plan = plan_sql(sql, _CATALOG)
        validate_plan(plan)
        result = execute(plan, _CONFIG)
        mask = numpy_mask(lo, hi, category)
        prices = _SALES.column("price").values[mask]
        expected = reduce_numpy(prices, agg)
        measured = result.outputs[0].value
        if agg in ("MIN(price)", "MAX(price)") and mask.sum() == 0:
            # Aggregates over empty input are 0 in this engine.
            assert measured == 0
        else:
            assert measured == expected, sql


class TestGroupedQueries:
    @settings(
        max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(st.integers(0, 99), st.sampled_from(["SUM(price)", "COUNT(*)"]))
    def test_grouped_aggregate_matches_numpy(self, lo, agg):
        sql = build_sql(lo, 99, None, agg, grouped=True)
        plan = plan_sql(sql, _CATALOG)
        validate_plan(plan)
        result = execute(plan, _CONFIG)
        grouped = result.outputs[0]
        mask = numpy_mask(lo, 99, None)
        cat_per_row = _ITEMS.column("category").values[
            _SALES.column("item_id").values
        ][mask]
        prices = _SALES.column("price").values[mask]
        for key, value in zip(grouped.head, grouped.tail):
            in_group = cat_per_row == key
            if agg == "COUNT(*)":
                assert value == int(in_group.sum()), sql
            else:
                assert value == int(prices[in_group].sum()), sql
        # Every non-empty group is present.
        present = set(int(k) for k in grouped.head)
        assert present == set(int(c) for c in np.unique(cat_per_row))
