"""Property-based tests on storage invariants (hypothesis)."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import (
    Candidates,
    Column,
    LNG,
    PartitionSet,
    align_candidates,
)

values_arrays = st.lists(
    st.integers(min_value=-(2**40), max_value=2**40), min_size=1, max_size=300
)


@st.composite
def column_and_bounds(draw):
    values = draw(values_arrays)
    col = Column("c", LNG, np.asarray(values, dtype=np.int64))
    lo = draw(st.integers(0, len(col)))
    hi = draw(st.integers(lo, len(col)))
    return col, lo, hi


class TestSliceProperties:
    @given(column_and_bounds())
    def test_slice_values_match_direct_indexing(self, data):
        col, lo, hi = data
        view = col.slice(lo, hi)
        np.testing.assert_array_equal(view.values, col.values[lo:hi])
        assert len(view) == hi - lo

    @given(column_and_bounds(), st.data())
    def test_split_tiles_exactly(self, data, rnd):
        col, lo, hi = data
        view = col.slice(lo, hi)
        at = rnd.draw(st.integers(lo, hi))
        left, right = view.split(at)
        assert left.lo == lo and right.hi == hi and left.hi == right.lo
        np.testing.assert_array_equal(
            np.concatenate([left.values, right.values]), view.values
        )

    @given(column_and_bounds())
    def test_oids_within_bounds(self, data):
        col, lo, hi = data
        oids = col.slice(lo, hi).oids()
        if len(oids):
            assert oids[0] == lo and oids[-1] == hi - 1


class TestAlignmentProperties:
    @given(
        st.lists(st.integers(0, 200), min_size=0, max_size=80),
        st.integers(0, 200),
        st.integers(0, 200),
    )
    def test_trim_result_always_covered(self, raw, a, b):
        lo, hi = min(a, b), max(a, b)
        col = Column("c", LNG, np.zeros(201, dtype=np.int64))
        cands = Candidates(np.unique(np.asarray(raw, dtype=np.int64)))
        view = col.slice(lo, hi)
        trimmed = align_candidates(cands, view)
        assert view.covers(trimmed.oids)
        # Trimming removes only out-of-window oids.
        expected = [o for o in cands.oids if lo <= o < hi]
        np.testing.assert_array_equal(trimmed.oids, expected)

    @given(st.lists(st.integers(0, 1000), min_size=0, max_size=100))
    def test_restrict_is_idempotent(self, raw):
        cands = Candidates(np.unique(np.asarray(raw, dtype=np.int64)))
        once = cands.restrict(100, 600)
        twice = once.restrict(100, 600)
        np.testing.assert_array_equal(once.oids, twice.oids)


class TestPartitionSetProperties:
    @settings(max_examples=50)
    @given(st.integers(2, 10_000), st.lists(st.integers(0, 100), max_size=12))
    def test_random_split_sequences_keep_cover_invariant(self, total, picks):
        ps = PartitionSet(total=total)
        for pick in picks:
            splittable = [r for r in ps.ranges if len(r) >= 2]
            if not splittable:
                break
            target = splittable[pick % len(splittable)]
            ps.split(target.lo, target.hi)
            ps.verify()
        assert sum(ps.sizes()) == total
        bounds = ps.boundaries()
        for (___, prev_hi), (next_lo, __) in zip(bounds, bounds[1:]):
            assert prev_hi == next_lo
