"""Property-based tests on the static plan analyzer.

Two guarantees, over randomly generated query shapes and mutation
sequences:

* the mutator never produces a plan the analyzer flags as broken --
  random mutation sequences introduce no ``error`` diagnostics; and
* analyzer-clean plans are *actually* correct: they execute to the same
  results as the serial plan (the analyzer's "error" notion is sound
  with respect to real execution).
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import SimulationConfig, laptop_machine
from repro.core import PlanMutator
from repro.core.adaptive import intermediates_equal
from repro.engine import execute
from repro.operators import RangePredicate
from repro.plan import PlanBuilder, analyze_plan
from repro.storage import Catalog, LNG, Table

_CONFIG = SimulationConfig(machine=laptop_machine(8), data_scale=200.0)


def make_catalog(seed: int) -> Catalog:
    rng = np.random.default_rng(seed)
    n, m = 3_000, 40
    catalog = Catalog()
    catalog.add(
        Table.from_arrays(
            "facts",
            {
                "fk": (LNG, rng.integers(0, m, n)),
                "val": (LNG, rng.integers(0, 1_000, n)),
                "qty": (LNG, rng.integers(1, 50, n)),
            },
        )
    )
    catalog.add(Table.from_arrays("dims", {"pk": (LNG, np.arange(m))}))
    return catalog


def build_random_plan(catalog: Catalog, shape: int, threshold: int):
    """A small family of query shapes driven by hypothesis."""
    b = PlanBuilder(catalog)
    sel = b.select(b.scan("facts", "val"), RangePredicate(hi=threshold))
    if shape == 0:  # select -> fetch -> sum
        out = b.aggregate("sum", b.fetch(sel, b.scan("facts", "qty")))
    elif shape == 1:  # chained selects -> count
        sel2 = b.select(b.scan("facts", "qty"), RangePredicate(hi=30), candidates=sel)
        out = b.aggregate("count", sel2)
    elif shape == 2:  # join -> count
        fk = b.fetch(sel, b.scan("facts", "fk"))
        out = b.aggregate("count", b.join(fk, b.scan("dims", "pk")))
    elif shape == 3:  # group-by
        keys = b.fetch(sel, b.scan("facts", "fk"))
        vals = b.fetch(sel, b.scan("facts", "qty"))
        out = b.group_aggregate("sum", keys, vals)
    else:  # sort + limit (order-sensitive consumer above any packs)
        bat = b.fetch(sel, b.scan("facts", "qty"))
        out = b.topn(b.sort(bat, descending=True), 7)
    return b.build(out)


class TestAnalyzerProperties:
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(0, 10),
        shape=st.integers(0, 4),
        threshold=st.integers(0, 1_000),
        steps=st.integers(1, 10),
    )
    def test_mutations_never_introduce_errors_and_clean_plans_are_correct(
        self, seed, shape, threshold, steps
    ):
        catalog = make_catalog(seed)
        plan = build_random_plan(catalog, shape, threshold)
        assert not analyze_plan(plan).has_errors  # serial plans start clean
        serial = execute(plan, _CONFIG)
        mutator = PlanMutator(plan)
        profile = serial.profile
        for __ in range(steps):
            result = mutator.mutate(profile)
            if result is None:
                break
            report = analyze_plan(plan)
            assert not report.has_errors, report.format()
            # Soundness: what the analyzer calls clean really does
            # produce the serial results under the simulator.
            run = execute(plan, _CONFIG)
            for a, b in zip(run.outputs, serial.outputs):
                if shape == 4:
                    # Parallel sort-merge may permute *tied* values, so
                    # TopN returns the same values under different row
                    # ids; the values themselves must match exactly.
                    assert np.array_equal(a.tail, b.tail)
                else:
                    assert intermediates_equal(a, b)
            profile = run.profile
        # The gate itself never let a broken plan through either.
        assert mutator.rejections == []
