"""Full stack, SQL text to served bytes, across evaluation backends.

The serving layer's headline claim: what a client receives for a given
statement is a function of (statement, config) only -- not of which
pool backend evaluated it, how many workers the host had, or what the
server executed before.  These tests drive real sockets end to end and
diff the bytes.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.engine.backends import available_backends
from repro.serve import ServeEngine, ReproServer, preset, run_loadgen
from repro.workloads import TpchDataset

_tpch = TpchDataset(scale_factor=1)

Q6 = (
    "SELECT SUM(l_extendedprice * l_discount) FROM lineitem "
    "WHERE l_shipdate >= DATE '1994-01-01' "
    "AND l_shipdate < DATE '1995-01-01' "
    "AND l_discount BETWEEN 5 AND 7 AND l_quantity < 24"
)
ACCTBAL = "SELECT COUNT(*) FROM customer WHERE c_acctbal > 0"

#: Backends exercised cross-stack.  ``subinterpreter`` is covered by
#: the backend suite; the serving layer cares about the three shipped
#: in CI images.
BACKENDS = [b for b in ("inline", "thread", "process")
            if b in available_backends()]


def _canonical_via_engine(backend: str, sql: str) -> str:
    config = _tpch.sim_config()
    workers = None if backend == "inline" else 2
    chosen = None if backend == "inline" else backend
    engine = ServeEngine(
        config, _tpch.catalog, workers=workers, backend=chosen
    ).start()
    try:
        # Warm the engine with unrelated traffic first: canonical bytes
        # must not care about history.
        engine.submit_sql(ACCTBAL).result(timeout=60)
        payload = engine.submit_sql(sql, canonical=True).result(timeout=60)
    finally:
        engine.close()
    return payload["canonical"]


class TestCanonicalAcrossBackends:
    @pytest.mark.parametrize("sql", [Q6, ACCTBAL], ids=["q6", "acctbal"])
    def test_engine_canonical_bytes_identical(self, sql):
        baselines = {b: _canonical_via_engine(b, sql) for b in BACKENDS}
        reference = baselines["inline"]
        assert reference.startswith("{")
        for backend, canonical in baselines.items():
            assert canonical == reference, backend

    def test_served_rows_identical_over_sockets(self):
        """The NDJSON result document is byte-stable across backends."""

        async def serve_one(backend: str) -> bytes:
            workers = None if backend == "inline" else 2
            chosen = None if backend == "inline" else backend
            server = ReproServer(
                _tpch.sim_config(), _tpch.catalog,
                workers=workers, backend=chosen,
            )
            await server.start()
            try:
                reader, writer = await asyncio.open_connection(
                    server.host, server.port
                )
                writer.write(b'{"op":"hello","tenant":"gold"}\n')
                writer.write(
                    json.dumps(
                        {"op": "query", "id": 1, "sql": Q6, "canonical": True}
                    ).encode() + b"\n"
                )
                await writer.drain()
                await reader.readline()  # hello ack
                line = await reader.readline()
                writer.close()
                await writer.wait_closed()
            finally:
                await server.stop()
            # Strip the host-side timing field: everything else is the
            # deterministic surface.
            doc = json.loads(line)
            assert doc["ok"], doc
            # Guard against a silently-empty selection: Q6 must
            # actually aggregate rows.
            assert doc["rows"][0]["value"] > 0
            doc.pop("host_batch_ms", None)
            return json.dumps(doc, sort_keys=True).encode()

        async def main() -> list[bytes]:
            return [await serve_one(b) for b in BACKENDS]

        results = asyncio.run(main())
        assert all(r == results[0] for r in results[1:])


class TestLoadgenAcrossBackends:
    def test_tiny_report_identical_across_backends(self):
        reports = {}
        for backend in BACKENDS:
            workers = None if backend == "inline" else 2
            chosen = None if backend == "inline" else backend
            report = run_loadgen(
                preset("tiny"), workers=workers, backend=chosen
            )
            reports[backend] = json.dumps(report.as_dict(), sort_keys=True)
        reference = reports["inline"]
        for backend, payload in reports.items():
            assert payload == reference, backend

    def test_report_against_serve_golden(self, regen_golden):
        """The integration run matches the fixture pinned in tests/serve."""
        from pathlib import Path

        path = (
            Path(__file__).parent.parent
            / "serve" / "golden" / "loadgen_tiny_clean.json"
        )
        if not path.exists():
            pytest.skip("serve goldens not generated yet")
        report = run_loadgen(preset("tiny"))
        payload = json.dumps(report.as_dict(), indent=2, sort_keys=True)
        assert payload + "\n" == path.read_text()
