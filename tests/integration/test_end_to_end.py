"""End-to-end integration: the full AP pipeline over real workloads.

These are the tests the paper's correctness rests on: for a set of
TPC-H / TPC-DS queries, the adaptively parallelized plan, the heuristic
plan, and the work-stealing configuration must all produce byte-exact
serial results, while exhibiting the paper's qualitative behaviours.
"""

from __future__ import annotations

import pytest

from repro.baselines import VectorwiseSystem
from repro.core import (
    AdaptiveParallelizer,
    ConvergenceParams,
    HeuristicParallelizer,
    WorkStealingConfig,
    WorkStealingExecutor,
    intermediates_equal,
)
from repro.engine import execute
from repro.plan import plan_stats, validate_plan
from repro.workloads import SkewedSelectWorkload, TpcdsDataset, TpchDataset

_tpch = TpchDataset(scale_factor=10)
_tpcds = TpcdsDataset(scale_factor=50)

#: Queries light enough for per-test adaptive convergence.
AP_QUERIES = ("q6", "q14", "q17")


def ap_params(config, max_runs: int = 120) -> ConvergenceParams:
    return ConvergenceParams(
        number_of_cores=config.effective_threads, max_runs=max_runs
    )


class TestTpchCorrectness:
    @pytest.mark.parametrize("query", _tpch.query_names())
    def test_hp_matches_serial(self, query):
        config = _tpch.sim_config()
        serial = execute(_tpch.plan(query), config)
        plan = HeuristicParallelizer(32).parallelize(_tpch.plan(query))
        validate_plan(plan)
        parallel = execute(plan, config)
        assert len(parallel.outputs) == len(serial.outputs)
        for a, b in zip(parallel.outputs, serial.outputs):
            assert intermediates_equal(a, b), query

    @pytest.mark.parametrize("query", AP_QUERIES)
    def test_ap_verifies_and_improves(self, query):
        config = _tpch.sim_config()
        adaptive = AdaptiveParallelizer(
            config, convergence=ap_params(config), verify=True
        ).optimize(_tpch.plan(query))
        validate_plan(adaptive.best_plan)
        assert adaptive.speedup > 2.0

    def test_ap_plan_smaller_than_hp_plan(self):
        config = _tpch.sim_config()
        adaptive = AdaptiveParallelizer(
            config, convergence=ap_params(config)
        ).optimize(_tpch.plan("q14"))
        hp_plan = HeuristicParallelizer(32).parallelize(_tpch.plan("q14"))
        ap_stats = plan_stats(adaptive.best_plan)
        hp_stats = plan_stats(hp_plan)
        # Table 5's shape: AP uses fewer select and join instances.
        assert ap_stats.select_count < hp_stats.select_count
        assert ap_stats.join_count <= hp_stats.join_count

    def test_ap_uses_fewer_cores_than_hp(self):
        config = _tpch.sim_config()
        adaptive = AdaptiveParallelizer(
            config, convergence=ap_params(config)
        ).optimize(_tpch.plan("q14"))
        ap_run = execute(adaptive.best_plan, config)
        hp_run = execute(
            HeuristicParallelizer(32).parallelize(_tpch.plan("q14")), config
        )
        threads = config.machine.hardware_threads
        ap_util = ap_run.profile.multicore_utilization(threads)
        hp_util = hp_run.profile.multicore_utilization(threads)
        assert ap_util < hp_util


class TestTpcdsCorrectness:
    @pytest.mark.parametrize("query", _tpcds.query_names())
    def test_hp_matches_serial(self, query):
        config = _tpcds.sim_config()
        serial = execute(_tpcds.plan(query), config)
        plan = HeuristicParallelizer(32).parallelize(_tpcds.plan(query))
        parallel = execute(plan, config)
        for a, b in zip(parallel.outputs, serial.outputs):
            assert intermediates_equal(a, b), query

    def test_ap_beats_hp_on_positionally_skewed_query(self):
        """The Figure 17 mechanism: a date filter touches a contiguous
        hot region, so HP's equal partitions sit mostly idle while AP
        splits inside the hot region."""
        config = _tpcds.sim_config()
        adaptive = AdaptiveParallelizer(
            config, convergence=ap_params(config, max_runs=300), verify=True
        ).optimize(_tpcds.plan("ds4"))
        hp = execute(
            HeuristicParallelizer(32).parallelize(_tpcds.plan("ds4")), config
        )
        assert adaptive.gme_time < hp.response_time


class TestSkewHandling:
    def test_dynamic_partitions_beat_static_on_skew(self):
        """Figure 12's claim at one skew level."""
        workload = SkewedSelectWorkload(tuples_m=200)
        config = workload.sim_config(max_threads=8)
        plan = workload.plan(30)
        static = execute(HeuristicParallelizer(8).parallelize(plan), config)
        adaptive = AdaptiveParallelizer(
            config,
            convergence=ConvergenceParams(number_of_cores=8, max_runs=100),
        ).optimize(plan)
        dynamic = execute(adaptive.best_plan, config)
        assert dynamic.response_time < static.response_time

    def test_work_stealing_competitive_with_dynamic(self):
        workload = SkewedSelectWorkload(tuples_m=200)
        plan = workload.plan(30)
        stealing = WorkStealingExecutor(
            workload.sim_config(), WorkStealingConfig(partitions=64, threads=8)
        ).run(plan)
        static = execute(
            HeuristicParallelizer(8).parallelize(plan),
            workload.sim_config(max_threads=8),
        )
        assert stealing.response_time < static.response_time


class TestVectorwiseUnderLoad:
    def test_starved_vectorwise_slower_than_hp(self):
        config = _tpch.sim_config()
        system = VectorwiseSystem(config)
        plan, cap = system.parallelize(
            _tpch.plan("q6"), client_rank=31, active_clients=32
        )
        starved = execute(plan, config.with_threads(cap))
        hp = execute(HeuristicParallelizer(32).parallelize(_tpch.plan("q6")), config)
        assert starved.response_time > hp.response_time
