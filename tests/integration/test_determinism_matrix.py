"""THE determinism matrix: every observable, every execution surface.

One consolidated sweep replaces the per-suite loops that used to live in
``tests/engine/test_backends.py`` (execute / adaptive / chaos canonical
bytes) and ``tests/serve/test_loadgen_determinism.py`` (worker-count and
process-backend invariance).  Each *scenario* reduces a run to a
canonical byte fingerprint (blake2b over worker-invariant bytes); each
*cell* re-runs the scenario at a different evaluation surface
(backend x workers) and must reproduce the inline, workers=1 baseline
digest exactly.

Scenario axes covered:

* plain execution (response time + result bytes),
* the adaptive convergence trace plus memo-cache counters,
* chaos: the resilient-workload canonical observe document under
  ``CHAOS_LIGHT``, and a cluster node-failure failover,
* the multi-tenant serve layer's SLO report,
* the cluster: node counts 1 and 3 (full canonical trace, so exchange
  transfers and the scheduler barrier are pinned too).

The cluster scenarios carry ``cluster`` in their id so CI can smoke just
them with ``-k cluster``.
"""

from __future__ import annotations

import hashlib
import json

import pytest

import repro.engine.backends as backends
from repro.chaos import CHAOS_LIGHT
from repro.chaos.faults import FaultPlan
from repro.cluster import (
    ScaleoutWorkload,
    cluster_execute,
    execute_with_failover,
)
from repro.concurrency import ClientSpec, ResilienceConfig, ResilientWorkload
from repro.core import AdaptiveParallelizer, ConvergenceParams
from repro.engine import EvalPool, execute
from repro.engine.shm import shared_memory_available
from repro.observe import Observer
from repro.operators import RangePredicate
from repro.plan import PlanBuilder
from repro.serve import preset, run_loadgen
from repro.workloads import JoinMicroWorkload

#: (backend, workers) cells checked against the inline workers=1 baseline.
CELLS = (("thread", 2), ("thread", 8), ("process", 2))

#: Scenarios whose engine runs must force process shipping (the test
#: datasets are below the 16 KiB inline threshold otherwise).
SHIP_EVERYTHING = {"execute", "adaptive_memo", "chaos_resilient"}


def _digest(payload: str) -> str:
    return hashlib.blake2b(payload.encode(), digest_size=16).hexdigest()


def _json(doc) -> str:
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def _q1_style_plan(catalog):
    builder = PlanBuilder(catalog)
    sel = builder.select(builder.scan("facts", "val"), RangePredicate(hi=700))
    proj = builder.fetch(sel, builder.scan("facts", "qty"))
    return builder.build(builder.aggregate("sum", proj))


def _scenario_execute(workers, backend, small_catalog, sim_config):
    result = execute(
        _q1_style_plan(small_catalog),
        sim_config,
        workers=workers,
        backend=backend,
    )
    return _digest(
        _json(
            {
                "response": float(result.response_time).hex(),
                "value": int(result.outputs[0].value),
            }
        )
    )


def _scenario_adaptive_memo(workers, backend, small_catalog, sim_config):
    workload = JoinMicroWorkload(outer_mb=64, inner_mb=16)
    parallelizer = AdaptiveParallelizer(
        workload.sim_config(seed=11),
        convergence=ConvergenceParams(number_of_cores=8, max_runs=6),
        workers=workers,
        backend=backend,
    )
    try:
        result = parallelizer.optimize(workload.plan())
        memo = (
            parallelizer.memo.stats() if parallelizer.memo is not None else None
        )
    finally:
        parallelizer.close()
    return _digest(
        _json(
            {
                "exec_times": [t.hex() for t in result.exec_times()],
                "gme": [result.gme_run, result.gme_time.hex()],
                "total_runs": result.total_runs,
                "memo": repr(memo),
            }
        )
    )


def _scenario_chaos_resilient(workers, backend, small_catalog, sim_config):
    workload = JoinMicroWorkload(outer_mb=16, inner_mb=4)
    observer = Observer()
    service = ResilientWorkload(
        workload.sim_config(),
        [
            ClientSpec(f"c{i}", [workload.plan()], max_queries=3)
            for i in range(3)
        ],
        horizon=2.0,
        faults=CHAOS_LIGHT,
        resilience=ResilienceConfig(timeout=0.05),
        workers=workers,
        backend=backend,
        observe=observer,
    )
    service.run()
    observer.finish()
    return _digest(observer.canonical_json())


def _scenario_serve(workers, backend, small_catalog, sim_config):
    report = run_loadgen(preset("tiny"), workers=workers, backend=backend)
    return _digest(json.dumps(report.as_dict(), sort_keys=True))


def _cluster_workload():
    return ScaleoutWorkload(tuples_m=10)


def _scenario_cluster(workers, backend, nodes):
    workload = _cluster_workload()
    cluster = workload.cluster(nodes, threads=4)
    observer = Observer()
    result = cluster_execute(
        workload.plan(workload.sharded(nodes)),
        cluster,
        workload.sim_config(cluster),
        workers=workers,
        backend=backend,
        trace=observer,
    )
    observer.finish()
    return _digest(
        _json(
            {
                "response": float(result.response_time).hex(),
                "value": int(result.outputs[0].value),
                "trace": observer.canonical_json(),
            }
        )
    )


def _scenario_cluster_failover(workers, backend, small_catalog, sim_config):
    workload = _cluster_workload()
    cluster = workload.cluster(3, threads=4)
    faults = FaultPlan(
        operator_exception_rate=0.1,
        straggler_rate=0.0,
        mem_pressure_rate=0.0,
        disconnect_rate=0.0,
        max_faults=1,
    )
    pool = (
        EvalPool(workers, backend=backend)
        if backend is not None or workers > 1
        else None
    )
    try:
        outcome = execute_with_failover(
            workload.plan_for_map,
            workload.sharded(3).shard_map,
            cluster,
            workload.sim_config(cluster),
            faults=faults,
            evalpool=pool,
        )
    finally:
        if pool is not None:
            pool.close()
    return _digest(
        _json(
            {
                "attempts": outcome.attempts,
                "failed": list(outcome.failed_nodes),
                "response": float(outcome.result.response_time).hex(),
                "value": int(outcome.result.outputs[0].value),
            }
        )
    )


SCENARIOS = {
    "execute": _scenario_execute,
    "adaptive_memo": _scenario_adaptive_memo,
    "chaos_resilient": _scenario_chaos_resilient,
    "serve": _scenario_serve,
    "cluster_nodes1": lambda w, b, *_: _scenario_cluster(w, b, 1),
    "cluster_nodes3": lambda w, b, *_: _scenario_cluster(w, b, 3),
    "cluster_failover_chaos": _scenario_cluster_failover,
}


@pytest.fixture(scope="module")
def baselines():
    """Lazily computed inline workers=1 digests, one per scenario."""
    return {}


def _baseline(baselines, scenario, small_catalog, sim_config):
    if scenario not in baselines:
        baselines[scenario] = SCENARIOS[scenario](
            1, "inline", small_catalog, sim_config
        )
    return baselines[scenario]


@pytest.fixture(scope="module")
def matrix_catalog():
    """Module-scoped copy of the conftest catalog (same seed/content)."""
    import numpy as np

    from repro.storage import DATE, LNG, STR, Catalog, Table

    rng = np.random.default_rng(1234)
    n, m = 2_000, 100
    catalog = Catalog("test")
    catalog.add(
        Table.from_arrays(
            "facts",
            {
                "fk": (LNG, rng.integers(0, m, n)),
                "val": (LNG, rng.integers(0, 1_000, n)),
                "qty": (LNG, rng.integers(1, 50, n)),
                "day": (DATE, rng.integers(8_000, 9_000, n)),
            },
        )
    )
    catalog.add(
        Table.from_arrays(
            "dims",
            {
                "pk": (LNG, np.arange(m)),
                "size": (LNG, rng.integers(1, 10, m)),
                "name": (STR, [f"name-{i % 7}" for i in range(m)]),
            },
        )
    )
    return catalog


@pytest.fixture(scope="module")
def matrix_config():
    from repro.config import SimulationConfig, laptop_machine

    return SimulationConfig(machine=laptop_machine(8), data_scale=100.0)


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
@pytest.mark.parametrize("backend,workers", CELLS, ids=lambda v: str(v))
def test_matrix_cell_matches_baseline(
    scenario,
    backend,
    workers,
    baselines,
    matrix_catalog,
    matrix_config,
    monkeypatch,
):
    if backend == "process" and not shared_memory_available():
        pytest.skip("multiprocessing.shared_memory missing")
    if backend == "process" and scenario in SHIP_EVERYTHING:
        monkeypatch.setattr(backends, "PROCESS_MIN_SHIP_BYTES", 0)
    expected = _baseline(baselines, scenario, matrix_catalog, matrix_config)
    actual = SCENARIOS[scenario](workers, backend, matrix_catalog, matrix_config)
    assert actual == expected, (
        f"scenario {scenario!r} diverged at backend={backend} "
        f"workers={workers}"
    )


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
def test_matrix_baseline_is_repeatable(
    scenario, baselines, matrix_catalog, matrix_config
):
    expected = _baseline(baselines, scenario, matrix_catalog, matrix_config)
    again = SCENARIOS[scenario](1, "inline", matrix_catalog, matrix_config)
    assert again == expected


class TestClusterDegeneracy:
    """nodes=1 is not just self-consistent: it IS the single machine."""

    def test_cluster_nodes1_matches_plain_engine(self):
        workload = _cluster_workload()
        cluster = workload.cluster(1, threads=4)
        config = workload.sim_config(cluster)
        plan = workload.plan(workload.sharded(1))
        clustered = cluster_execute(
            workload.plan(workload.sharded(1)), cluster, config
        )
        plain = execute(plan, config)
        assert clustered.response_time == plain.response_time
        assert int(clustered.outputs[0].value) == int(plain.outputs[0].value)

    def test_nodes_change_the_fingerprint(self):
        # Guard against a fingerprint that ignores the cluster: 3 nodes
        # must not hash like 1 node (different trace, different times).
        assert _scenario_cluster(1, "inline", 1) != _scenario_cluster(
            1, "inline", 3
        )
