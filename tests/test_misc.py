"""Cross-cutting odds and ends: errors, package surface, profiler math."""

from __future__ import annotations

import pytest

import repro
from repro import errors
from repro.engine import execute
from repro.engine.profiler import QueryProfile
from repro.operators import RangePredicate
from repro.plan import PlanBuilder, format_tree


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.StorageError,
            errors.AlignmentError,
            errors.PlanError,
            errors.OperatorError,
            errors.SchedulerError,
            errors.MutationError,
            errors.ConvergenceError,
            errors.SqlError,
            errors.SqlLexError,
            errors.SqlParseError,
            errors.SqlPlanError,
            errors.WorkloadError,
        ],
    )
    def test_all_errors_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_alignment_is_storage_error(self):
        assert issubclass(errors.AlignmentError, errors.StorageError)

    def test_sql_errors_nest(self):
        assert issubclass(errors.SqlParseError, errors.SqlError)


class TestPackageSurface:
    def test_version_string(self):
        assert repro.__version__.count(".") == 2

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_key_entry_points_exported(self):
        assert repro.AdaptiveParallelizer
        assert repro.HeuristicParallelizer
        assert repro.TpchDataset
        assert repro.plan_sql


class TestProfilerEdges:
    def test_response_time_requires_finish(self):
        profile = QueryProfile(submit_time=0.0)
        with pytest.raises(ValueError):
            profile.response_time

    def test_utilization_zero_without_span(self):
        profile = QueryProfile(submit_time=1.0, finish_time=1.0)
        assert profile.multicore_utilization(8) == 0.0

    def test_duration_of_unknown_node_is_zero(self, small_catalog, sim_config):
        builder = PlanBuilder(small_catalog)
        plan = builder.build(
            builder.select(builder.scan("facts", "val"), RangePredicate(hi=1))
        )
        other = builder.scan("facts", "qty")
        result = execute(plan, sim_config)
        assert result.profile.duration_of(other) == 0.0

    def test_durations_by_node_covers_all_records(self, small_catalog, sim_config):
        builder = PlanBuilder(small_catalog)
        plan = builder.build(
            builder.select(builder.scan("facts", "val"), RangePredicate(hi=1))
        )
        profile = execute(plan, sim_config).profile
        durations = profile.durations_by_node()
        assert set(durations) == {r.node.nid for r in profile.records}


class TestTreePrinter:
    def test_shared_nodes_marked(self, small_catalog):
        builder = PlanBuilder(small_catalog)
        scan = builder.scan("facts", "val")
        sel = builder.select(scan, RangePredicate(hi=1))
        fetched = builder.fetch(sel, scan)  # scan shared twice
        text = format_tree(builder.build(fetched))
        assert "(shared)" in text

    def test_max_depth_truncates(self, small_catalog):
        builder = PlanBuilder(small_catalog)
        node = builder.scan("facts", "val")
        for __ in range(8):
            node = builder.select(node, RangePredicate(hi=1)).inputs[0]
        sel = builder.select(builder.scan("facts", "val"), RangePredicate(hi=1))
        text = format_tree(builder.build(sel), max_depth=0)
        assert "..." in text
