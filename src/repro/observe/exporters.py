"""Exporters: JSONL event log, Chrome ``trace_event``, Prometheus text.

Three serializations of one observation:

* :func:`to_jsonl` -- one JSON object per span per line, in span-id
  (creation) order; the grep-able archival format.
* :func:`to_chrome_trace` -- the Trace Event Format understood by
  ``chrome://tracing`` and `Perfetto <https://ui.perfetto.dev>`_.
  Simulated **sockets become processes** and **hardware threads become
  threads**, so the UI renders the paper's tomograph (Figures 19/20)
  natively: one lane per hardware thread, one box per operator task.
  Driver-level spans (adaptive runs, submissions, dispatch markers)
  land in a separate ``driver`` process, pid 0.
* :func:`to_prometheus` -- text exposition of the metrics registry.

Simulated seconds are mapped to trace microseconds (the trace-event
``ts`` unit), like :func:`repro.viz.to_chrome_trace` does for raw
profiles.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

from .metrics import MetricsRegistry
from .spans import Tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from . import Observer

#: pid of the driver-level (non-task) span track in Chrome traces.
DRIVER_PID = 0

#: MIME type of the Prometheus text exposition format we emit; HTTP
#: scrape endpoints (``repro serve``'s ``/metrics``) must answer with
#: exactly this so Prometheus parses the payload as version 0.0.4.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def scrape(source: "Observer | MetricsRegistry", *, host: bool = True) -> tuple[str, str]:
    """One Prometheus scrape: ``(content_type, exposition_text)``.

    The single call an HTTP ``/metrics`` handler needs -- pairing the
    text with the content type it must be served under.
    """
    return PROMETHEUS_CONTENT_TYPE, to_prometheus(source, host=host)


def _tracer_of(source: "Observer | Tracer") -> Tracer:
    tracer = getattr(source, "tracer", source)
    if not isinstance(tracer, Tracer):
        raise TypeError(f"expected an Observer or Tracer, got {type(source).__name__}")
    return tracer


def to_jsonl(source: "Observer | Tracer", *, host: bool = True) -> str:
    """One span per line, creation order; ``host=False`` strips host fields."""
    tracer = _tracer_of(source)
    tracer.finish()
    lines = [
        json.dumps(span.as_dict(host=host), sort_keys=True) for span in tracer.spans
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def to_chrome_trace(source: "Observer | Tracer", *, trace_name: str = "repro") -> str:
    """Serialize the span tree to Trace Event Format JSON.

    Open spans are skipped (an exported trace is always well-formed);
    zero-duration spans become instant markers so Perfetto still shows
    them.
    """
    tracer = _tracer_of(source)
    tracer.finish()
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": DRIVER_PID,
            "args": {"name": f"{trace_name} driver"},
        }
    ]
    seen_sockets: set[int] = set()
    for span in tracer.spans:
        if span.t1 is None:
            continue
        attrs = span.attrs
        if span.kind == "task" and "thread" in attrs:
            pid = int(attrs.get("socket", 0)) + 1
            tid = int(attrs["thread"])
            if pid not in seen_sockets:
                seen_sockets.add(pid)
                events.append(
                    {
                        "name": "process_name",
                        "ph": "M",
                        "pid": pid,
                        "args": {"name": f"socket {pid - 1}"},
                    }
                )
        else:
            pid = DRIVER_PID
            tid = 0
        ts = span.t0 * 1e6
        dur = (span.t1 - span.t0) * 1e6
        event = {
            "name": span.name,
            "cat": span.kind,
            "pid": pid,
            "tid": tid,
            "ts": ts,
            "args": dict(attrs, span_id=span.span_id),
        }
        if dur > 0.0:
            event["ph"] = "X"
            event["dur"] = dur
        else:
            event["ph"] = "i"
            event["s"] = "t"  # thread-scoped instant
        events.append(event)
    return json.dumps({"traceEvents": events, "displayTimeUnit": "ms"})


def to_prometheus(source: "Observer | MetricsRegistry", *, host: bool = True) -> str:
    """Prometheus text exposition of the registry's current values."""
    registry = getattr(source, "metrics", source)
    if not isinstance(registry, MetricsRegistry):
        raise TypeError(
            f"expected an Observer or MetricsRegistry, got {type(source).__name__}"
        )
    return registry.to_prometheus(host=host)
