"""Unified observability: structured tracing, metrics, exporters.

The paper's adaptive loop is driven by an execution profiler and its
analysis is told through tomograph-style operator timelines ("Run-time
environment", Section 2; Figures 19/20).  This package industrializes
that feedback channel: one :class:`Observer` correlates an entire
adaptive instance -- every run, every operator task, every cache and
pool and fault event -- in a single span tree plus a metrics registry,
with deterministic exporters on top.

Usage::

    from repro import TpchDataset, execute
    from repro.observe import Observer

    dataset = TpchDataset(scale_factor=1)
    obs = Observer()
    execute(dataset.plan("q6"), dataset.sim_config(), trace=obs)
    open("trace.json", "w").write(obs.to_chrome_trace())  # Perfetto-ready
    print(obs.to_prometheus())

Guarantees (enforced by the golden-trace suite under ``tests/observe``):

* **Zero-cost when disabled** -- no observer attached means one
  ``is not None`` check per instrumented site; the wall-clock benchmark
  gates the overhead at <= 3%.
* **Bit-deterministic when enabled** -- the canonical projection
  (:func:`~repro.observe.canonical.canonical_json`) is byte-identical
  across repeated seeded runs and for any host ``workers`` count; host
  wall-clock data is opt-in (``host_time=True``) and always stripped
  from canonical output.
"""

from __future__ import annotations

from .canonical import (
    SCHEMA,
    canonical_json,
    canonical_metrics,
    canonical_observation,
    canonical_trace,
)
from .exporters import (
    PROMETHEUS_CONTENT_TYPE,
    scrape,
    to_chrome_trace,
    to_jsonl,
    to_prometheus,
)
from .metrics import (
    DURATION_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .spans import Span, Tracer


class Observer:
    """One observed execution: a tracer plus a metrics registry.

    Pass it to :func:`repro.engine.execute` (``trace=``),
    :class:`repro.core.AdaptiveParallelizer` (``observe=``), or
    :class:`repro.concurrency.ResilientWorkload` (``observe=``); the
    same observer may span several of these in sequence -- that is the
    point: one correlated timeline for a whole adaptive instance or
    workload.

    ``host_time=True`` additionally stamps every span with host
    ``perf_counter()`` times; canonical exports strip them.
    """

    def __init__(self, *, host_time: bool = False) -> None:
        self.tracer = Tracer(host_time=host_time)
        self.metrics = MetricsRegistry()

    # ------------------------------------------------------------------
    # Export conveniences
    # ------------------------------------------------------------------
    def finish(self) -> None:
        """Close the root span (idempotent)."""
        self.tracer.finish()

    def canonical(self) -> dict:
        """The machine-stable projection (see :mod:`.canonical`)."""
        return canonical_observation(self)

    def canonical_json(self) -> str:
        """Canonical projection as deterministic JSON bytes."""
        return canonical_json(self)

    def to_chrome_trace(self, *, trace_name: str = "repro") -> str:
        """Chrome ``trace_event`` JSON (Perfetto/chrome://tracing)."""
        return to_chrome_trace(self, trace_name=trace_name)

    def to_jsonl(self, *, host: bool = True) -> str:
        """One span per line, creation order."""
        return to_jsonl(self, host=host)

    def to_prometheus(self, *, host: bool = True) -> str:
        """Prometheus text exposition of the metrics."""
        return to_prometheus(self, host=host)

    # ------------------------------------------------------------------
    # Engine hooks
    # ------------------------------------------------------------------
    def record_pool(self, stats) -> None:
        """Publish an :class:`~repro.engine.evalpool.PoolStats` snapshot.

        Host-side by nature (wall-clock seconds, inline/parallel split
        depends on the worker count), so every gauge is ``host=True``
        and none of it reaches canonical output.
        """
        for name, value in stats.as_dict().items():
            self.metrics.gauge(
                f"repro_pool_{name}", "evaluation-pool host counters", host=True
            ).set(float(value))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Observer(spans={len(self.tracer)}, series={len(self.metrics)})"


__all__ = [
    "DURATION_BUCKETS",
    "PROMETHEUS_CONTENT_TYPE",
    "SCHEMA",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observer",
    "Span",
    "Tracer",
    "canonical_json",
    "canonical_metrics",
    "canonical_observation",
    "canonical_trace",
    "scrape",
    "to_chrome_trace",
    "to_jsonl",
    "to_prometheus",
]
