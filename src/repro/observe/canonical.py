"""Canonical (machine-stable) projection of an observation.

Golden-trace fixtures compare *bytes*, so everything host-dependent has
to go: ``host_t0``/``host_t1`` span timestamps, span attributes whose
key starts with ``host_``, and metric families registered with
``host=True`` (pool wall-clock seconds, inline/parallel batch splits --
anything that legitimately varies with the host or the worker count).
What remains is a pure function of simulated execution and therefore
bit-identical across machines, across repeated seeded runs, and at any
``workers`` value.

Simulated times are IEEE doubles serialized via :func:`repr` semantics
(``json.dumps`` uses ``float.__repr__``), which round-trips exactly --
no rounding, no tolerance.  If two canonical traces differ, the
simulation itself diverged.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

from .metrics import MetricsRegistry
from .spans import Tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from . import Observer

#: Format tag embedded in every canonical document.
SCHEMA = "repro/observe/v1"


def canonical_trace(tracer: Tracer) -> list[dict]:
    """The span tree as plain data, host fields stripped, id order."""
    return [span.as_dict(host=False) for span in tracer.spans]


def canonical_metrics(registry: MetricsRegistry) -> dict:
    """The worker-invariant metric values (host families dropped)."""
    return registry.collect(host=False)


def canonical_observation(observer: "Observer") -> dict:
    """The full canonical document: schema tag, trace, and metrics.

    The observer's tracer is finished first (idempotent), so the root
    span always carries its end time.
    """
    observer.tracer.finish()
    return {
        "schema": SCHEMA,
        "trace": canonical_trace(observer.tracer),
        "metrics": canonical_metrics(observer.metrics),
    }


def canonical_json(observer: "Observer") -> str:
    """The canonical document as deterministic JSON bytes.

    Sorted keys, no whitespace variance, ``repr``-exact floats: equal
    observations produce equal strings, byte for byte.
    """
    return json.dumps(
        canonical_observation(observer),
        sort_keys=True,
        separators=(",", ":"),
        ensure_ascii=True,
    )
