"""Deterministic metrics: counters, gauges, fixed-bucket histograms.

The registry is the one place the engine's previously ad-hoc stat dicts
(:class:`~repro.engine.memo.CacheStats`,
:class:`~repro.engine.evalpool.PoolStats`,
:class:`~repro.chaos.faults.FaultStats`,
:class:`~repro.concurrency.runner.WorkloadReport`) publish into when an
:class:`~repro.observe.Observer` is attached; the stat classes remain as
compatibility shims and the reconciliation tests assert both views
agree.

Determinism contract: every instrument that feeds the *canonical*
export is updated on the simulator main thread in dispatch order, from
simulated quantities only, so exported values are bit-identical for any
host worker count.  Host-side measurements (pool wall-clock seconds,
inline-versus-parallel batch splits) are registered with ``host=True``
and excluded from canonical output, exactly like host timestamps on
spans.

Histograms use **fixed, explicit bucket bounds** -- never quantiles or
adaptive bounds -- so their exported shape is a pure function of the
observed values.
"""

from __future__ import annotations

from ..errors import ObserveError

#: Default simulated-duration buckets (seconds): task runtimes span
#: microseconds (tiny selects) to whole seconds (saturated joins).
DURATION_BUCKETS = (
    1e-6,
    1e-5,
    1e-4,
    1e-3,
    1e-2,
    0.1,
    0.5,
    1.0,
    5.0,
    30.0,
)


def _label_key(labels: dict[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ObserveError(f"counters only go up (inc by {amount})")
        self.value += amount


class Gauge:
    """A value that can go anywhere."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bound histogram: per-bucket counts plus sum and count.

    ``bounds`` are the inclusive upper edges of the finite buckets; one
    implicit ``+Inf`` bucket catches the rest.  Exported bucket counts
    are cumulative, Prometheus-style.
    """

    __slots__ = ("bounds", "bucket_counts", "sum", "count")

    def __init__(self, bounds: tuple[float, ...]) -> None:
        if not bounds:
            raise ObserveError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ObserveError("histogram bounds must be strictly increasing")
        self.bounds = tuple(float(b) for b in bounds)
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                break
        else:
            self.bucket_counts[-1] += 1
        self.sum += value
        self.count += 1

    def cumulative(self) -> list[int]:
        """Cumulative counts per bucket edge, ending with the total."""
        out = []
        running = 0
        for count in self.bucket_counts:
            running += count
            out.append(running)
        return out


class _Family:
    """One metric name: its type, help text, and labeled children."""

    __slots__ = ("name", "kind", "help", "host", "bounds", "children")

    def __init__(
        self,
        name: str,
        kind: str,
        help_text: str,
        host: bool,
        bounds: tuple[float, ...] | None,
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.host = host
        self.bounds = bounds
        self.children: dict[tuple[tuple[str, str], ...], object] = {}


class MetricsRegistry:
    """Named, optionally labeled instruments with deterministic export."""

    def __init__(self) -> None:
        self._families: dict[str, _Family] = {}

    # ------------------------------------------------------------------
    def _family(
        self,
        name: str,
        kind: str,
        help_text: str,
        host: bool,
        bounds: tuple[float, ...] | None = None,
    ) -> _Family:
        family = self._families.get(name)
        if family is None:
            family = _Family(name, kind, help_text, host, bounds)
            self._families[name] = family
            return family
        if family.kind != kind:
            raise ObserveError(
                f"metric {name!r} is a {family.kind}, not a {kind}"
            )
        if bounds is not None and family.bounds != bounds:
            raise ObserveError(f"metric {name!r} re-registered with new buckets")
        return family

    def counter(
        self, name: str, help: str = "", *, host: bool = False, **labels: str
    ) -> Counter:
        """Get or create the counter ``name`` with ``labels``."""
        family = self._family(name, "counter", help, host)
        key = _label_key(labels)
        child = family.children.get(key)
        if child is None:
            child = Counter()
            family.children[key] = child
        return child  # type: ignore[return-value]

    def gauge(
        self, name: str, help: str = "", *, host: bool = False, **labels: str
    ) -> Gauge:
        """Get or create the gauge ``name`` with ``labels``."""
        family = self._family(name, "gauge", help, host)
        key = _label_key(labels)
        child = family.children.get(key)
        if child is None:
            child = Gauge()
            family.children[key] = child
        return child  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        buckets: tuple[float, ...] = DURATION_BUCKETS,
        help: str = "",
        *,
        host: bool = False,
        **labels: str,
    ) -> Histogram:
        """Get or create the fixed-bucket histogram ``name``."""
        bounds = tuple(float(b) for b in buckets)
        family = self._family(name, "histogram", help, host, bounds)
        key = _label_key(labels)
        child = family.children.get(key)
        if child is None:
            child = Histogram(bounds)
            family.children[key] = child
        return child  # type: ignore[return-value]

    # ------------------------------------------------------------------
    def collect(self, *, host: bool = True) -> dict:
        """Every metric value, keyed ``name{label="v",...}``, sorted.

        ``host=False`` drops host-side families -- the canonical,
        worker-invariant view golden fixtures are built from.
        """
        out: dict = {}
        for name in sorted(self._families):
            family = self._families[name]
            if family.host and not host:
                continue
            for key in sorted(family.children):
                child = family.children[key]
                label_text = ",".join(f'{k}="{v}"' for k, v in key)
                full = f"{name}{{{label_text}}}" if label_text else name
                if isinstance(child, Histogram):
                    out[full] = {
                        "buckets": dict(
                            zip(
                                [str(b) for b in child.bounds] + ["+Inf"],
                                child.cumulative(),
                            )
                        ),
                        "sum": child.sum,
                        "count": child.count,
                    }
                else:
                    out[full] = child.value  # type: ignore[union-attr]
        return out

    def to_prometheus(self, *, host: bool = True) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []
        for name in sorted(self._families):
            family = self._families[name]
            if family.host and not host:
                continue
            if family.help:
                lines.append(f"# HELP {name} {family.help}")
            lines.append(f"# TYPE {name} {family.kind}")
            for key in sorted(family.children):
                child = family.children[key]
                labels = ",".join(f'{k}="{v}"' for k, v in key)
                if isinstance(child, Histogram):
                    extra = f",{labels}" if labels else ""
                    for bound, count in zip(
                        [repr(b) for b in child.bounds] + ["+Inf"],
                        child.cumulative(),
                    ):
                        lines.append(
                            f'{name}_bucket{{le="{bound}"{extra}}} {count}'
                        )
                    suffix = f"{{{labels}}}" if labels else ""
                    lines.append(f"{name}_sum{suffix} {_fmt(child.sum)}")
                    lines.append(f"{name}_count{suffix} {child.count}")
                else:
                    suffix = f"{{{labels}}}" if labels else ""
                    value = child.value  # type: ignore[union-attr]
                    lines.append(f"{name}{suffix} {_fmt(value)}")
        return "\n".join(lines) + ("\n" if lines else "")

    def __len__(self) -> int:
        return sum(len(f.children) for f in self._families.values())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"MetricsRegistry(families={len(self._families)}, series={len(self)})"


def _fmt(value: float) -> str:
    """Integer-valued floats print as integers (stable, readable)."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)
