"""Span-based tracing of simulated execution.

A :class:`Span` is one timed interval of work -- an adaptive run, a
query submission, one operator task -- with a tracer-assigned id, a
parent id, and a ``t0``/``t1`` interval in **simulated** seconds.  The
whole span tree is therefore a pure function of simulated execution:
two runs with the same seed produce byte-identical canonical traces at
any host worker count.  Host wall-clock timestamps are *optional*
side-channel data (``host_t0``/``host_t1``), captured only when the
tracer is created with ``host_time=True`` and stripped by the
canonicalizer (:mod:`repro.observe.canonical`) so golden fixtures stay
stable across machines.

Time bases
----------
Each :class:`~repro.engine.scheduler.Simulator` starts its clock at 0,
but an adaptive instance executes tens of such simulators in sequence.
The tracer carries a ``time_base`` that is added to every raw simulated
timestamp; the adaptive driver advances it by each run's response time,
so the instance's runs line up on one continuous timeline -- the
tomograph, industrialized.

Zero-cost when disabled
-----------------------
There is deliberately no "null tracer": instrumented call sites keep a
plain ``observer is not None`` guard, so disabled tracing costs one
attribute load and one comparison per site (gated by the wall-clock
benchmark, see ``docs/perf.md``).
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter
from typing import Iterator

from ..errors import ObserveError

#: Interval-containment slack used by nesting checks (simulated seconds).
NEST_EPS = 1e-9

#: The tracer-owned root span every trace has exactly one of.
ROOT_KIND = "trace"


class Span:
    """One timed interval in the span tree (mutable until ended)."""

    __slots__ = (
        "span_id",
        "parent_id",
        "name",
        "kind",
        "t0",
        "t1",
        "attrs",
        "host_t0",
        "host_t1",
    )

    def __init__(
        self,
        span_id: int,
        parent_id: int | None,
        name: str,
        kind: str,
        t0: float,
        t1: float | None = None,
        attrs: dict | None = None,
        host_t0: float | None = None,
        host_t1: float | None = None,
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.kind = kind
        self.t0 = t0
        self.t1 = t1
        self.attrs = attrs if attrs is not None else {}
        self.host_t0 = host_t0
        self.host_t1 = host_t1

    @property
    def finished(self) -> bool:
        return self.t1 is not None

    @property
    def duration(self) -> float:
        if self.t1 is None:
            raise ObserveError(f"span {self.span_id} ({self.name}) is still open")
        return self.t1 - self.t0

    def as_dict(self, *, host: bool = True) -> dict:
        """A plain-data projection (``host=False`` strips host fields)."""
        out: dict = {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "kind": self.kind,
            "t0": self.t0,
            "t1": self.t1,
        }
        if host:
            attrs = dict(self.attrs)
            if self.host_t0 is not None:
                out["host_t0"] = self.host_t0
            if self.host_t1 is not None:
                out["host_t1"] = self.host_t1
        else:
            attrs = {
                key: value
                for key, value in self.attrs.items()
                if not key.startswith("host_")
            }
        out["attrs"] = attrs
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Span({self.span_id}, {self.name!r}, kind={self.kind!r}, "
            f"t0={self.t0:.6f}, t1={self.t1})"
        )


class Tracer:
    """Collects the span tree of one observed execution.

    Every tracer owns exactly one root span (``kind="trace"``, starting
    at simulated time 0); spans begun without an explicit parent attach
    to the innermost span on the :meth:`scope` stack, which starts at
    the root.  Span ids are assigned in creation order on the simulator
    main thread, so they are deterministic.
    """

    def __init__(self, *, host_time: bool = False) -> None:
        self.host_time = host_time
        self.time_base = 0.0
        self._spans: list[Span] = []
        root = Span(
            0,
            None,
            "trace",
            ROOT_KIND,
            0.0,
            host_t0=perf_counter() if host_time else None,
        )
        self._spans.append(root)
        self._scope: list[Span] = [root]
        # Latest child end time per parent id: ending a span clamps its
        # t1 to cover every child (a fault-killed retry attempt can
        # outlive the run that superseded it).
        self._max_child_end: dict[int, float] = {}

    # ------------------------------------------------------------------
    @property
    def root(self) -> Span:
        return self._spans[0]

    @property
    def spans(self) -> tuple[Span, ...]:
        """Every span recorded so far, in creation (id) order."""
        return tuple(self._spans)

    @property
    def current(self) -> Span:
        """The innermost open scope (the default parent)."""
        return self._scope[-1]

    def advance(self, dt: float) -> None:
        """Shift the time base by ``dt`` simulated seconds (>= 0)."""
        if dt < 0:
            raise ObserveError(f"cannot advance the time base by {dt}")
        self.time_base += dt

    # ------------------------------------------------------------------
    def begin(
        self,
        name: str,
        kind: str,
        t: float,
        *,
        parent: Span | None = None,
        **attrs,
    ) -> Span:
        """Open a span at raw simulated time ``t`` (time base applied)."""
        if parent is None:
            parent = self._scope[-1]
        span = Span(
            len(self._spans),
            parent.span_id,
            name,
            kind,
            self.time_base + t,
            attrs=attrs if attrs else None,
            host_t0=perf_counter() if self.host_time else None,
        )
        self._spans.append(span)
        return span

    def end(self, span: Span, t: float, **attrs) -> Span:
        """Close ``span`` at raw simulated time ``t`` (base applied).

        The recorded end is clamped so the interval covers every child
        already recorded under this span.
        """
        if span.t1 is not None:
            raise ObserveError(f"span {span.span_id} ({span.name}) already ended")
        t1 = self.time_base + t
        floor = self._max_child_end.get(span.span_id)
        if floor is not None and floor > t1:
            t1 = floor
        if t1 < span.t0:
            t1 = span.t0
        span.t1 = t1
        if attrs:
            span.attrs.update(attrs)
        if self.host_time:
            span.host_t1 = perf_counter()
        self._note_child_end(span.parent_id, t1)
        return span

    def add(
        self,
        name: str,
        kind: str,
        t0: float,
        t1: float,
        *,
        parent: Span | None = None,
        **attrs,
    ) -> Span:
        """Record an already-finished span over ``[t0, t1]`` raw sim time."""
        if t1 < t0:
            raise ObserveError(f"span {name!r} ends before it starts ({t1} < {t0})")
        span = self.begin(name, kind, t0, parent=parent, **attrs)
        span.t1 = self.time_base + t1
        if self.host_time:
            span.host_t1 = span.host_t0
        self._note_child_end(span.parent_id, span.t1)
        return span

    def event(
        self, name: str, kind: str, t: float, *, parent: Span | None = None, **attrs
    ) -> Span:
        """A zero-duration span (an instant marker)."""
        return self.add(name, kind, t, t, parent=parent, **attrs)

    @contextmanager
    def scope(self, span: Span) -> Iterator[Span]:
        """Make ``span`` the default parent for spans begun inside."""
        self._scope.append(span)
        try:
            yield span
        finally:
            self._scope.pop()

    def finish(self) -> Span:
        """End the root span at the latest recorded child end.

        Idempotent; open non-root spans are left open (their presence is
        a bug the property tests catch).
        """
        root = self._spans[0]
        if root.t1 is None:
            root.t1 = max(self._max_child_end.get(0, root.t0), root.t0)
            if self.host_time:
                root.host_t1 = perf_counter()
        return root

    # ------------------------------------------------------------------
    def _note_child_end(self, parent_id: int | None, t1: float) -> None:
        if parent_id is None:
            return
        floor = self._max_child_end.get(parent_id)
        if floor is None or t1 > floor:
            self._max_child_end[parent_id] = t1

    def __len__(self) -> int:
        return len(self._spans)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Tracer(spans={len(self._spans)}, base={self.time_base:.6f})"
