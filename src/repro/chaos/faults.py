"""The fault model: what can go wrong, and how often.

The paper's robustness claims (Figures 1, 16, 18) rest on adaptive
parallelization surviving a hostile environment: 32 closed-loop clients
saturating the box, noisy measurements, occasional large interference
peaks.  This module describes the perturbations the chaos harness can
inject into the simulator, as data:

* ``OPERATOR_EXCEPTION`` -- a dispatched operator raises instead of
  producing its intermediate (a crashed worker / poisoned input).
* ``STRAGGLER`` -- a dispatched operator runs several times slower than
  the cost model predicts (a descheduled thread, a cache-cold NUMA hop).
* ``MEM_PRESSURE`` -- a transient memory-pressure spike multiplies the
  operator's memory traffic (a co-tenant flushing the shared cache).
* ``CLIENT_DISCONNECT`` -- a closed-loop client abandons an in-flight
  query and reconnects later (a dropped connection).

A :class:`FaultPlan` is pure configuration -- frozen, hashable,
seed-free.  The schedule of *concrete* faults is produced by
:class:`~repro.chaos.injector.FaultInjector`, which owns the seeded
random stream; the split keeps one plan reusable across seeds and makes
"same seed => same schedule" trivially auditable.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import ChaosError


class FaultKind(enum.Enum):
    """The kinds of perturbation the injector can produce."""

    OPERATOR_EXCEPTION = "operator-exception"
    STRAGGLER = "straggler"
    MEM_PRESSURE = "mem-pressure"
    CLIENT_DISCONNECT = "client-disconnect"


@dataclass(frozen=True)
class FaultPlan:
    """Rates and magnitudes of injectable faults (configuration only).

    Dispatch-level rates (``operator_exception_rate``, ``straggler_rate``,
    ``mem_pressure_rate``) are per *operator dispatch*: each time the
    scheduler commits an operator, at most one of the three fires.
    ``disconnect_rate`` is per *query submission* and is consumed by the
    workload service layer, not the scheduler.
    """

    #: Probability a dispatched operator raises an injected failure.
    operator_exception_rate: float = 0.0
    #: Probability a dispatched operator is slowed down.
    straggler_rate: float = 0.0
    #: Maximum straggler slowdown; the actual factor is drawn uniformly
    #: from ``[1, straggler_slowdown]``.
    straggler_slowdown: float = 8.0
    #: Probability a dispatched operator suffers a memory-pressure spike.
    mem_pressure_rate: float = 0.0
    #: Maximum multiplier on the operator's memory traffic under a spike.
    mem_pressure_factor: float = 4.0
    #: Probability a submitted query's client disconnects before reading
    #: the result (consumed by the workload service layer).
    disconnect_rate: float = 0.0
    #: Hard cap on total injected faults (None = unbounded).
    max_faults: int | None = None

    def __post_init__(self) -> None:
        rates = (
            self.operator_exception_rate,
            self.straggler_rate,
            self.mem_pressure_rate,
            self.disconnect_rate,
        )
        if any(rate < 0.0 or rate > 1.0 for rate in rates):
            raise ChaosError("fault rates must be in [0, 1]")
        dispatch_total = (
            self.operator_exception_rate
            + self.straggler_rate
            + self.mem_pressure_rate
        )
        if dispatch_total > 1.0:
            raise ChaosError(
                "dispatch fault rates must sum to <= 1 "
                f"(got {dispatch_total:.3f})"
            )
        if self.straggler_slowdown < 1.0:
            raise ChaosError("straggler_slowdown must be >= 1")
        if self.mem_pressure_factor < 1.0:
            raise ChaosError("mem_pressure_factor must be >= 1")
        if self.max_faults is not None and self.max_faults < 0:
            raise ChaosError("max_faults must be >= 0")

    @property
    def enabled(self) -> bool:
        """True when any fault can ever fire."""
        if self.max_faults == 0:
            return False
        return (
            self.operator_exception_rate > 0
            or self.straggler_rate > 0
            or self.mem_pressure_rate > 0
            or self.disconnect_rate > 0
        )

    @property
    def dispatch_rate(self) -> float:
        """Total probability of any dispatch-level fault."""
        return (
            self.operator_exception_rate
            + self.straggler_rate
            + self.mem_pressure_rate
        )


#: A mild chaos profile: rare crashes, occasional stragglers.
CHAOS_LIGHT = FaultPlan(
    operator_exception_rate=0.002,
    straggler_rate=0.02,
    straggler_slowdown=4.0,
    mem_pressure_rate=0.01,
    mem_pressure_factor=2.0,
    disconnect_rate=0.01,
)

#: A hostile profile: frequent crashes, heavy stragglers, flappy clients.
CHAOS_HEAVY = FaultPlan(
    operator_exception_rate=0.02,
    straggler_rate=0.08,
    straggler_slowdown=8.0,
    mem_pressure_rate=0.05,
    mem_pressure_factor=4.0,
    disconnect_rate=0.05,
)


@dataclass(frozen=True)
class FaultEvent:
    """One concrete injected fault, as recorded in the schedule.

    The ordered tuple of events is the run's *fault schedule*; two runs
    with the same seed and workload must produce identical schedules,
    which is what the bit-reproducibility tests compare.
    """

    kind: FaultKind
    #: Simulated time of the injection decision.
    when: float
    #: Submission the fault hit (-1 when not applicable).
    sid: int = -1
    #: Plan node the fault hit (-1 for submission-level faults).
    nid: int = -1
    #: Client that owned the submission ("" when unknown).
    client: str = ""
    #: Kind-specific magnitude (slowdown / traffic multiplier; 0 when
    #: the kind has none).
    magnitude: float = 0.0

    def as_tuple(self) -> tuple:
        """A plain-data projection, convenient for equality asserts."""
        return (
            self.kind.value,
            self.when,
            self.sid,
            self.nid,
            self.client,
            self.magnitude,
        )


@dataclass
class FaultStats:
    """Counters of injected faults by kind."""

    operator_exceptions: int = 0
    stragglers: int = 0
    mem_pressure_spikes: int = 0
    disconnects: int = 0
    #: Dispatch decisions consulted (fault or not).
    dispatch_draws: int = 0
    #: Submission decisions consulted (fault or not).
    submission_draws: int = 0

    @property
    def total(self) -> int:
        """Total faults actually injected."""
        return (
            self.operator_exceptions
            + self.stragglers
            + self.mem_pressure_spikes
            + self.disconnects
        )

    def as_dict(self) -> dict[str, int]:
        return {
            "operator_exceptions": self.operator_exceptions,
            "stragglers": self.stragglers,
            "mem_pressure_spikes": self.mem_pressure_spikes,
            "disconnects": self.disconnects,
            "dispatch_draws": self.dispatch_draws,
            "submission_draws": self.submission_draws,
            "total": self.total,
        }
