"""The seeded fault injector: turns a :class:`FaultPlan` into events.

Determinism contract
--------------------
Every random draw happens on the simulator's main thread, in event
order: one ``draw_dispatch`` per committed operator dispatch (in the
scheduler's dispatch-order commit barrier) and one ``draw_disconnect``
per query submission (in the workload service layer).  Both orders are
properties of *simulated* execution, which is bit-identical for any
host ``workers`` count -- so the fault schedule is too.  Nothing in
this module may consult wall-clock time, host thread identity, or any
other non-simulated state.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ChaosError, InjectedFaultError
from .faults import FaultEvent, FaultKind, FaultPlan, FaultStats

#: Offsets separating the injector's two independent random streams.
_DISPATCH_STREAM = 0x5EED_D15F
_CLIENT_STREAM = 0x5EED_C11E


@dataclass(frozen=True)
class FaultDecision:
    """Outcome of one dispatch-level draw: which fault, how hard."""

    kind: FaultKind
    magnitude: float = 0.0


class FaultInjector:
    """Draws faults from a seeded stream and records the schedule.

    One injector serves one simulated run; it is *stateful* (consumed
    draws, recorded schedule, fault budget) and must not be shared
    between simulators.  Use :meth:`spawn` to derive a fresh injector
    with the same plan and seed.
    """

    def __init__(self, plan: FaultPlan, seed: int = 0) -> None:
        if not isinstance(plan, FaultPlan):
            raise ChaosError(f"expected a FaultPlan, got {type(plan).__name__}")
        self.plan = plan
        self.seed = int(seed)
        self._dispatch_rng = np.random.default_rng(
            (self.seed + _DISPATCH_STREAM) % 2**63
        )
        self._client_rng = np.random.default_rng(
            (self.seed + _CLIENT_STREAM) % 2**63
        )
        self._events: list[FaultEvent] = []
        self.stats = FaultStats()
        #: Optional :class:`repro.observe.Observer`: every recorded
        #: fault also bumps ``repro_faults_injected_total{kind=...}``.
        #: Draws happen on the simulator main thread in dispatch /
        #: submission order, so the counters are deterministic too.
        self.observe = None

    def spawn(self) -> "FaultInjector":
        """A fresh injector with the same plan and seed (no state)."""
        return FaultInjector(self.plan, self.seed)

    # ------------------------------------------------------------------
    @property
    def schedule(self) -> tuple[FaultEvent, ...]:
        """Every fault injected so far, in injection order."""
        return tuple(self._events)

    @property
    def exhausted(self) -> bool:
        """True once the ``max_faults`` budget is spent."""
        budget = self.plan.max_faults
        return budget is not None and len(self._events) >= budget

    # ------------------------------------------------------------------
    def draw_dispatch(
        self, *, sid: int, nid: int, client: str, now: float
    ) -> FaultDecision | None:
        """Decide the fate of one operator dispatch.

        Exactly one uniform draw is consumed per call (plus one more
        when a magnitude-bearing fault fires), so the stream position is
        a pure function of how many dispatches the simulation has
        committed -- the determinism anchor.
        """
        plan = self.plan
        self.stats.dispatch_draws += 1
        if plan.dispatch_rate <= 0.0 or self.exhausted:
            return None
        roll = float(self._dispatch_rng.random())
        threshold = plan.operator_exception_rate
        if roll < threshold:
            self._record(
                FaultKind.OPERATOR_EXCEPTION, now, sid=sid, nid=nid, client=client
            )
            self.stats.operator_exceptions += 1
            return FaultDecision(FaultKind.OPERATOR_EXCEPTION)
        threshold += plan.straggler_rate
        if roll < threshold:
            span = plan.straggler_slowdown - 1.0
            magnitude = 1.0 + float(self._dispatch_rng.random()) * span
            self._record(
                FaultKind.STRAGGLER,
                now,
                sid=sid,
                nid=nid,
                client=client,
                magnitude=magnitude,
            )
            self.stats.stragglers += 1
            return FaultDecision(FaultKind.STRAGGLER, magnitude)
        threshold += plan.mem_pressure_rate
        if roll < threshold:
            span = plan.mem_pressure_factor - 1.0
            magnitude = 1.0 + float(self._dispatch_rng.random()) * span
            self._record(
                FaultKind.MEM_PRESSURE,
                now,
                sid=sid,
                nid=nid,
                client=client,
                magnitude=magnitude,
            )
            self.stats.mem_pressure_spikes += 1
            return FaultDecision(FaultKind.MEM_PRESSURE, magnitude)
        return None

    def draw_disconnect(self, *, sid: int, client: str, now: float) -> bool:
        """Decide whether this submission's client disconnects.

        Consumed by the workload service layer at submission time, on
        the main thread, so the draw order tracks submission order.
        """
        self.stats.submission_draws += 1
        if self.plan.disconnect_rate <= 0.0 or self.exhausted:
            return False
        if float(self._client_rng.random()) < self.plan.disconnect_rate:
            self._record(
                FaultKind.CLIENT_DISCONNECT, now, sid=sid, client=client
            )
            self.stats.disconnects += 1
            return True
        return False

    # ------------------------------------------------------------------
    def error_for(self, *, sid: int, nid: int, now: float) -> InjectedFaultError:
        """The exception an ``OPERATOR_EXCEPTION`` decision raises."""
        return InjectedFaultError(
            f"injected operator failure (sid={sid}, node={nid}, "
            f"t={now:.6f}s)",
            sid=sid,
            nid=nid,
            when=now,
        )

    def _record(
        self,
        kind: FaultKind,
        when: float,
        *,
        sid: int = -1,
        nid: int = -1,
        client: str = "",
        magnitude: float = 0.0,
    ) -> None:
        self._events.append(
            FaultEvent(
                kind=kind,
                when=when,
                sid=sid,
                nid=nid,
                client=client,
                magnitude=magnitude,
            )
        )
        if self.observe is not None:
            self.observe.metrics.counter(
                "repro_faults_injected_total",
                "faults injected by the chaos harness",
                kind=kind.value,
            ).inc()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FaultInjector(seed={self.seed}, injected={len(self._events)}, "
            f"draws={self.stats.dispatch_draws})"
        )
