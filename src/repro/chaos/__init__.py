"""Fault injection for chaos testing the simulated column store.

The paper's evaluation leans on behaviour *under duress*: Figures 1 and
16 saturate the machine with 32 closed-loop clients, Figure 18 shows
convergence surviving noisy, outlier-ridden measurements.  This package
supplies the duress deterministically: a seeded
:class:`~repro.chaos.injector.FaultInjector` driven by a declarative
:class:`~repro.chaos.faults.FaultPlan` injects operator crashes,
stragglers, memory-pressure spikes, and client disconnects into the
engine -- with a bit-reproducible schedule at any host worker count.

See ``docs/robustness.md`` for the fault model and determinism
guarantees.
"""

from .faults import (
    CHAOS_HEAVY,
    CHAOS_LIGHT,
    FaultEvent,
    FaultKind,
    FaultPlan,
    FaultStats,
)
from .injector import FaultDecision, FaultInjector

__all__ = [
    "CHAOS_HEAVY",
    "CHAOS_LIGHT",
    "FaultDecision",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultStats",
]
