"""Mini SQL front-end: lexer, parser, and serial-plan compiler."""

from .ast import SelectStatement
from .lexer import Token, tokenize
from .parser import parse
from .planner import PlanCache, SqlPlanner, plan_sql

__all__ = [
    "PlanCache",
    "SelectStatement",
    "SqlPlanner",
    "Token",
    "parse",
    "plan_sql",
    "tokenize",
]
