"""Translate parsed SQL into serial physical plans.

The planning strategy is the classic column-store pattern the paper's
MAL plans exhibit (see Figure 7):

1. pick the **fact** table (the largest one referenced) as the stream
   the query is driven from;
2. apply local predicates as a selection chain producing a candidate
   list over the fact table;
3. apply every filtering dimension as a **semijoin reduction**: fetch the
   fact's foreign key under the current candidates, semijoin it against
   the (recursively reduced) dimension keys, and keep the surviving
   heads as the new candidate list;
4. reconstruct tuples (``Fetch``) for every needed column -- dimension
   columns travel through lookup ``Join`` maps along the join tree;
5. aggregate (grouped or scalar), order, and limit.

All joins must be equi-joins forming a tree rooted at the fact table
(star/snowflake shapes -- which covers the TPC-H/TPC-DS subset the paper
evaluates).  Every produced plan is serial; parallelism is added later by
the adaptive or heuristic parallelizers.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SqlPlanError
from ..operators.aggregate import Aggregate
from ..operators.calc import Calc
from ..operators.groupby import GroupAggregate
from ..operators.join import Join, SemiJoin
from ..operators.literal import Literal
from ..operators.project import Fetch, HeadsOf
from ..operators.scan import Scan
from ..operators.select import (
    CandUnion,
    EqualsPredicate,
    InPredicate,
    LikePredicate,
    RangePredicate,
    Select,
)
from ..operators.sort import Sort, TailFilter, TopN
from ..plan.graph import Plan, PlanNode
from ..plan.validate import validate_plan
from ..storage.catalog import Catalog
from .ast import (
    AggExpr,
    HavingCondition,
    And,
    Between,
    BinaryExpr,
    ColumnRef,
    Comparison,
    Condition,
    Expr,
    InList,
    InSubquery,
    JoinCondition,
    Like,
    NumberLit,
    Or,
    SelectStatement,
)
from .parser import parse


def plan_sql(text: str, catalog: Catalog) -> Plan:
    """Parse and plan a SQL string against ``catalog``."""
    return SqlPlanner(catalog).plan(parse(text))


class PlanCache:
    """Statement-text plan cache for query-serving workloads.

    A SQL service sees the same statement texts over and over (every
    loadgen tenant hammers a small mix); parsing and planning them anew
    per request is pure waste.  The cache memoizes the *serial plan
    template* per normalized statement text and hands out a fresh
    :meth:`~repro.plan.graph.Plan.copy` per request, so concurrent
    submissions never share mutable node state -- exactly the template
    discipline :class:`~repro.concurrency.client.ClientSpec` uses.

    Planning errors are **not** cached: a typo'd statement costs its
    author a re-parse, and a catalog fixed between requests is picked
    up immediately.  Eviction is LRU by statement count.
    """

    def __init__(self, catalog: Catalog, *, capacity: int = 256) -> None:
        if capacity < 1:
            raise SqlPlanError("plan cache capacity must be >= 1")
        self.catalog = catalog
        self.capacity = capacity
        self._plans: dict[str, Plan] = {}
        self.hits = 0
        self.misses = 0

    @staticmethod
    def _key(text: str) -> str:
        # Whitespace-insensitive keying catches the common client-side
        # variation (trailing newlines, indentation) without attempting
        # real statement canonicalization.
        return " ".join(text.split())

    def plan(self, text: str) -> Plan:
        """A fresh copy of the (possibly cached) plan for ``text``."""
        return self.template(text).copy()

    def template(self, text: str) -> Plan:
        """The shared cached template itself (callers must not mutate)."""
        key = self._key(text)
        cached = self._plans.get(key)
        if cached is not None:
            self.hits += 1
            # Refresh LRU position.
            del self._plans[key]
            self._plans[key] = cached
            return cached
        self.misses += 1
        template = plan_sql(text, self.catalog)
        while len(self._plans) >= self.capacity:
            self._plans.pop(next(iter(self._plans)))
        self._plans[key] = template
        return template

    def __len__(self) -> int:
        return len(self._plans)

    def stats(self) -> dict:
        return {
            "entries": len(self._plans),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
        }


@dataclass(frozen=True)
class _JoinEdge:
    """A join-tree edge: ``parent.fk = child.pk``."""

    parent: str
    parent_col: str
    child: str
    child_col: str


class SqlPlanner:
    """Stateless planner; one :meth:`plan` call per statement."""

    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog

    # ------------------------------------------------------------------
    def plan(self, stmt: SelectStatement) -> Plan:
        ctx = _QueryContext(self, stmt)
        plan = ctx.build()
        # Fail fast: a structurally broken translation should surface as
        # a planner bug here, not as a scheduler error mid-execution.
        validate_plan(plan)
        return plan


class _QueryContext:
    """Mutable state while planning one statement."""

    def __init__(self, planner: SqlPlanner, stmt: SelectStatement) -> None:
        self.catalog = planner.catalog
        self.stmt = stmt
        self.plan_obj = Plan()
        self.tables = list(stmt.tables)
        for name in self.tables:
            if not self.catalog.has_table(name):
                raise SqlPlanError(f"unknown table {name!r}")
        self.column_owner = self._build_column_index()
        joins, filters = self._split_where(stmt.where)
        self.fact = max(self.tables, key=lambda t: len(self.catalog.table(t)))
        self.edges = self._build_join_tree(joins)
        self.filter_tree = filters
        # Per-table local predicates pulled from the top-level AND.
        self.local_preds: dict[str, list[Condition]] = {t: [] for t in self.tables}
        self.fact_conditions: list[Condition] = []
        self._distribute_filters()
        self._scan_cache: dict[tuple[str, str], PlanNode] = {}
        self._join_map_cache: dict[str, PlanNode] = {}
        self._table_cands: dict[str, PlanNode | None] = {}

    # -- schema helpers --------------------------------------------------
    def _build_column_index(self) -> dict[str, str]:
        owner: dict[str, str] = {}
        for table_name in self.tables:
            for col in self.catalog.table(table_name).column_names:
                if col in owner:
                    raise SqlPlanError(
                        f"ambiguous column {col!r} (in {owner[col]!r} and "
                        f"{table_name!r}); qualify it"
                    )
                owner[col] = table_name
        return owner

    def _owner(self, ref: ColumnRef) -> str:
        if ref.table is not None:
            if ref.table not in self.tables:
                raise SqlPlanError(f"unknown table {ref.table!r} in {ref}")
            if not self.catalog.table(ref.table).has_column(ref.name):
                raise SqlPlanError(f"no column {ref.name!r} in table {ref.table!r}")
            return ref.table
        if ref.name not in self.column_owner:
            raise SqlPlanError(f"unknown column {ref.name!r}")
        return self.column_owner[ref.name]

    def scan(self, table: str, column: str) -> PlanNode:
        key = (table, column)
        if key not in self._scan_cache:
            col = self.catalog.column(table, column)
            self._scan_cache[key] = PlanNode(Scan(col), label=f"{table}.{column}")
        return self._scan_cache[key]

    # -- WHERE decomposition ----------------------------------------------
    def _split_where(
        self, where: Condition | None
    ) -> tuple[list[JoinCondition], list[Condition]]:
        joins: list[JoinCondition] = []
        filters: list[Condition] = []
        if where is None:
            return joins, filters
        parts = list(where.parts) if isinstance(where, And) else [where]
        for part in parts:
            if isinstance(part, JoinCondition):
                joins.append(part)
            else:
                filters.append(part)
        return joins, filters

    def _build_join_tree(self, joins: list[JoinCondition]) -> dict[str, list[_JoinEdge]]:
        """Orient join conditions into a tree rooted at the fact table."""
        adjacency: dict[str, list[tuple[str, str, str]]] = {t: [] for t in self.tables}
        for jc in joins:
            lt, rt = self._owner(jc.left), self._owner(jc.right)
            if lt == rt:
                raise SqlPlanError(f"self-join condition unsupported: {jc}")
            adjacency[lt].append((rt, jc.left.name, jc.right.name))
            adjacency[rt].append((lt, jc.right.name, jc.left.name))
        edges: dict[str, list[_JoinEdge]] = {t: [] for t in self.tables}
        seen = {self.fact}
        frontier = [self.fact]
        while frontier:
            parent = frontier.pop(0)
            for child, parent_col, child_col in adjacency[parent]:
                if child in seen:
                    continue
                seen.add(child)
                edges[parent].append(_JoinEdge(parent, parent_col, child, child_col))
                frontier.append(child)
        unreachable = set(self.tables) - seen
        if unreachable:
            raise SqlPlanError(
                f"tables {sorted(unreachable)} are not connected to "
                f"{self.fact!r} by join conditions (cross products are "
                "unsupported)"
            )
        return edges

    def _tables_of_condition(self, cond: Condition) -> set[str]:
        if isinstance(cond, (Comparison, Between, Like, InList, InSubquery)):
            return {self._owner(cond.column)}
        if isinstance(cond, (And, Or)):
            out: set[str] = set()
            for part in cond.parts:
                out |= self._tables_of_condition(part)
            return out
        if isinstance(cond, JoinCondition):
            raise SqlPlanError("join conditions may not appear under OR/nested AND")
        raise SqlPlanError(f"unsupported condition {cond!r}")

    def _distribute_filters(self) -> None:
        for cond in self.filter_tree:
            tables = self._tables_of_condition(cond)
            if isinstance(cond, InSubquery) or len(tables) > 1 or tables == {self.fact}:
                # Subqueries, multi-table ORs, and fact predicates are
                # planned on the fact stream.
                self.fact_conditions.append(cond)
            else:
                (table,) = tables
                self.local_preds[table].append(cond)

    # -- candidate computation ---------------------------------------------
    def _predicate_of(self, cond: Condition):
        if isinstance(cond, Comparison):
            if cond.op == "=":
                return EqualsPredicate(cond.value)
            if cond.op == "<>":
                return EqualsPredicate(cond.value, negate=True)
            if cond.op == "<":
                return RangePredicate(hi=cond.value, hi_inclusive=False)
            if cond.op == "<=":
                return RangePredicate(hi=cond.value)
            if cond.op == ">":
                return RangePredicate(lo=cond.value, lo_inclusive=False)
            if cond.op == ">=":
                return RangePredicate(lo=cond.value)
            raise SqlPlanError(f"unsupported comparison operator {cond.op!r}")
        if isinstance(cond, Between):
            return RangePredicate(lo=cond.lo, hi=cond.hi)
        if isinstance(cond, Like):
            return LikePredicate(cond.pattern, negate=cond.negate)
        if isinstance(cond, InList):
            return InPredicate(cond.values, negate=cond.negate)
        raise SqlPlanError(f"condition {cond!r} is not a simple predicate")

    def _apply_simple(
        self, table: str, cond: Condition, cands: PlanNode | None
    ) -> PlanNode:
        scan = self.scan(table, cond.column.name)
        predicate = self._predicate_of(cond)
        inputs = [scan] if cands is None else [scan, cands]
        return PlanNode(Select(predicate), inputs)

    def reduced_candidates(self, table: str) -> PlanNode | None:
        """Candidates of ``table`` after its own predicates and the
        semijoin reductions of its (recursively reduced) dimensions.
        ``None`` means the full table qualifies."""
        if table in self._table_cands:
            return self._table_cands[table]
        cands: PlanNode | None = None
        for cond in self.local_preds[table]:
            cands = self._plan_condition(table, cond, cands)
        for edge in self.edges[table]:
            child_cands = self.reduced_candidates(edge.child)
            if child_cands is not None:
                cands = self._semijoin_reduce(edge, cands, child_cands)
        self._table_cands[table] = cands
        return cands

    def _plan_condition(
        self, table: str, cond: Condition, cands: PlanNode | None
    ) -> PlanNode:
        if isinstance(cond, (Comparison, Between, Like, InList)):
            owner = self._owner(cond.column)
            if owner != table:
                raise SqlPlanError(
                    f"predicate on {owner!r} cannot filter {table!r} directly"
                )
            return self._apply_simple(table, cond, cands)
        if isinstance(cond, And):
            for part in cond.parts:
                cands = self._plan_branch_part(table, part, cands)
            if cands is None:
                raise SqlPlanError("empty AND condition")
            return cands
        if isinstance(cond, Or):
            branches = [self._plan_branch(table, part, cands) for part in cond.parts]
            return PlanNode(CandUnion(), branches)
        if isinstance(cond, InSubquery):
            return self._plan_in_subquery(table, cond, cands)
        raise SqlPlanError(f"unsupported condition {cond!r}")

    def _plan_branch(
        self, table: str, cond: Condition, cands: PlanNode | None
    ) -> PlanNode:
        """One OR branch: a condition (possibly an AND over the fact table
        and its direct dimensions) evaluated against shared candidates."""
        parts = list(cond.parts) if isinstance(cond, And) else [cond]
        out = cands
        for part in parts:
            out = self._plan_branch_part(table, part, out)
        if out is None:
            raise SqlPlanError("OR branch filtered nothing")
        return out

    def _plan_branch_part(
        self, table: str, cond: Condition, cands: PlanNode | None
    ) -> PlanNode:
        if isinstance(cond, (Or, InSubquery)):
            return self._plan_condition(table, cond, cands)
        tables = self._tables_of_condition(cond)
        if tables == {table}:
            return self._plan_condition(table, cond, cands)
        if len(tables) != 1:
            raise SqlPlanError(
                "a single predicate may reference only one table; got "
                f"{sorted(tables)}"
            )
        (dim,) = tables
        edge = self._edge_to(table, dim)
        dim_cands = self._plan_condition(dim, cond, None)
        return self._semijoin_reduce(edge, cands, dim_cands)

    def _edge_to(self, parent: str, child: str) -> _JoinEdge:
        for edge in self.edges[parent]:
            if edge.child == child:
                return edge
        raise SqlPlanError(
            f"table {child!r} is not joined directly to {parent!r}; "
            "predicates under OR may only touch directly joined dimensions"
        )

    def _semijoin_reduce(
        self, edge: _JoinEdge, cands: PlanNode | None, child_cands: PlanNode | None
    ) -> PlanNode:
        outer = self._keys_node(edge.parent, edge.parent_col, cands)
        inner = self._keys_node(edge.child, edge.child_col, child_cands)
        semi = PlanNode(SemiJoin(), [outer, inner])
        return PlanNode(HeadsOf(), [semi])

    def _keys_node(
        self, table: str, column: str, cands: PlanNode | None
    ) -> PlanNode:
        scan = self.scan(table, column)
        if cands is None:
            return scan
        return PlanNode(Fetch(), [cands, scan])

    def _plan_in_subquery(
        self, table: str, cond: InSubquery, cands: PlanNode | None
    ) -> PlanNode:
        owner = self._owner(cond.column)
        if owner != table:
            raise SqlPlanError(
                f"IN-subquery on {owner!r} must filter the fact stream"
            )
        sub = cond.subquery
        if len(sub.items) != 1 or not isinstance(sub.items[0].expr, ColumnRef):
            raise SqlPlanError("subquery must select exactly one plain column")
        sub_ctx = _QueryContext(SqlPlanner(self.catalog), sub)
        sub_col = sub.items[0].expr
        sub_cands = sub_ctx.fact_candidates()
        inner = sub_ctx._keys_node(
            sub_ctx._owner(sub_col), sub_col.name, sub_cands
        )
        outer = self._keys_node(table, cond.column.name, cands)
        semi = PlanNode(SemiJoin(negate=cond.negate), [outer, inner])
        return PlanNode(HeadsOf(), [semi])

    # -- tuple reconstruction ----------------------------------------------
    def _join_map(self, table: str, cands: PlanNode | None) -> PlanNode:
        """A BAT mapping fact oids -> ``table`` oids via the join tree."""
        if table == self.fact:
            raise SqlPlanError("the fact table needs no join map")
        if table in self._join_map_cache:
            return self._join_map_cache[table]
        path = self._path_to(table)
        current: PlanNode | None = None
        for edge in path:
            if current is None:
                outer = self._keys_node(self.fact, edge.parent_col, cands)
            else:
                outer = PlanNode(
                    Fetch(), [current, self.scan(edge.parent, edge.parent_col)]
                )
            inner = self.scan(edge.child, edge.child_col)
            current = PlanNode(Join(), [outer, inner])
        assert current is not None
        self._join_map_cache[table] = current
        return current

    def _path_to(self, target: str) -> list[_JoinEdge]:
        def dfs(table: str, trail: list[_JoinEdge]) -> list[_JoinEdge] | None:
            if table == target:
                return trail
            for edge in self.edges[table]:
                found = dfs(edge.child, trail + [edge])
                if found is not None:
                    return found
            return None

        path = dfs(self.fact, [])
        if path is None:
            raise SqlPlanError(f"no join path from {self.fact!r} to {target!r}")
        return path

    def value_node(self, ref: ColumnRef, cands: PlanNode | None) -> PlanNode:
        """A BAT of ``ref`` values aligned with the fact stream."""
        owner = self._owner(ref)
        if owner == self.fact:
            if cands is None:
                return self.scan(owner, ref.name)
            return PlanNode(Fetch(), [cands, self.scan(owner, ref.name)])
        join_map = self._join_map(owner, cands)
        return PlanNode(Fetch(), [join_map, self.scan(owner, ref.name)])

    # -- expressions ---------------------------------------------------------
    def expr_node(self, expr: Expr, cands: PlanNode | None) -> PlanNode:
        if isinstance(expr, NumberLit):
            return PlanNode(Literal(expr.value))
        if isinstance(expr, ColumnRef):
            return self.value_node(expr, cands)
        if isinstance(expr, BinaryExpr):
            left = self.expr_node(expr.left, cands)
            right = self.expr_node(expr.right, cands)
            return PlanNode(Calc(expr.op), [left, right])
        if isinstance(expr, AggExpr):
            raise SqlPlanError("aggregates cannot be nested inside expressions here")
        raise SqlPlanError(f"unsupported expression {expr!r}")

    def _agg_node(
        self,
        agg: AggExpr,
        cands: PlanNode | None,
        keys: PlanNode | None,
    ) -> PlanNode:
        if agg.func == "avg":
            total = self._agg_node(AggExpr("sum", agg.arg), cands, keys)
            count = self._agg_node(AggExpr("count", agg.arg), cands, keys)
            return PlanNode(Calc("/"), [total, count])
        if keys is None:
            if agg.func == "count":
                source = (
                    self._count_source(cands)
                    if agg.arg is None
                    else self.expr_node(agg.arg, cands)
                )
                return PlanNode(Aggregate("count"), [source])
            return PlanNode(Aggregate(agg.func), [self.expr_node(agg.arg, cands)])
        if agg.func == "count":
            return PlanNode(GroupAggregate("count"), [keys])
        values = self.expr_node(agg.arg, cands)
        return PlanNode(GroupAggregate(agg.func), [keys, values])

    def _count_source(self, cands: PlanNode | None) -> PlanNode:
        if cands is not None:
            return cands
        # COUNT(*) without any filter: count a (cheap) narrow column.
        table = self.catalog.table(self.fact)
        name = table.column_names[0]
        return self.scan(self.fact, name)

    # -- top level -------------------------------------------------------
    def fact_candidates(self) -> PlanNode | None:
        """The fact stream after every filter (local predicates, semijoin
        reductions, subqueries, multi-table ORs)."""
        cands = self.reduced_candidates(self.fact)
        for cond in self.fact_conditions:
            cands = self._plan_condition(self.fact, cond, cands)
        return cands

    def build(self) -> Plan:
        cands = self.fact_candidates()

        stmt = self.stmt
        if stmt.distinct:
            return self._build_distinct(cands)
        keys = None
        if stmt.group_by is not None:
            keys = self.value_node(stmt.group_by, cands)

        has_aggs = any(_contains_agg(item.expr) for item in stmt.items)
        if not has_aggs and stmt.group_by is not None:
            raise SqlPlanError("GROUP BY requires aggregate select items")
        if stmt.having and stmt.group_by is None:
            raise SqlPlanError("HAVING requires GROUP BY")

        outputs: list[PlanNode] = []
        output_exprs: list[Expr] = []
        for item in stmt.items:
            if stmt.group_by is not None and item.expr == stmt.group_by:
                continue  # the group key is the head of every grouped BAT
            node = self._item_node(item.expr, cands, keys)
            node.label = item.alias if item.alias else str(item.expr)
            outputs.append(node)
            output_exprs.append(item.expr)

        outputs = self._apply_having(outputs, output_exprs)
        outputs = self._apply_order_limit(outputs, output_exprs)
        self.plan_obj.set_outputs(outputs)
        return self.plan_obj

    def _build_distinct(self, cands: PlanNode | None) -> Plan:
        """``SELECT DISTINCT col`` as a grouped count over the column.

        The output BAT's head holds the distinct values (its tail, the
        per-value multiplicities, comes along for free).
        """
        stmt = self.stmt
        if len(stmt.items) != 1 or not isinstance(stmt.items[0].expr, ColumnRef):
            raise SqlPlanError("DISTINCT supports exactly one plain column")
        if stmt.group_by is not None or stmt.having:
            raise SqlPlanError("DISTINCT cannot be combined with GROUP BY/HAVING")
        ref = stmt.items[0].expr
        keys = self.value_node(ref, cands)
        node = PlanNode(GroupAggregate("count"), [keys])
        node.label = stmt.items[0].alias or f"distinct {ref}"
        outputs = [node]
        if stmt.limit is not None:
            outputs = [PlanNode(TopN(stmt.limit), [node])]
        self.plan_obj.set_outputs(outputs)
        return self.plan_obj

    def _apply_having(
        self, outputs: list[PlanNode], exprs: list[Expr]
    ) -> list[PlanNode]:
        """Filter grouped outputs by the HAVING conditions.

        Supported when the select list carries exactly one aggregate
        (the common case); the conditions must reference that aggregate.
        """
        stmt = self.stmt
        if not stmt.having:
            return outputs
        if len(outputs) != 1:
            raise SqlPlanError(
                "HAVING is supported for a single aggregate output only"
            )
        node = outputs[0]
        for condition in stmt.having:
            if condition.agg != exprs[0]:
                raise SqlPlanError(
                    "HAVING must reference the select list's aggregate "
                    f"({exprs[0]}), got {condition.agg}"
                )
            predicate = self._predicate_of(
                Comparison(ColumnRef("<having>"), condition.op, condition.value)
            )
            filtered = PlanNode(TailFilter(predicate), [node])
            filtered.label = node.label
            node = filtered
        return [node]

    def _item_node(
        self, expr: Expr, cands: PlanNode | None, keys: PlanNode | None
    ) -> PlanNode:
        if isinstance(expr, AggExpr):
            return self._agg_node(expr, cands, keys)
        if isinstance(expr, BinaryExpr) and _contains_agg(expr):
            left = self._item_node(expr.left, cands, keys)
            right = self._item_node(expr.right, cands, keys)
            return PlanNode(Calc(expr.op), [left, right])
        if isinstance(expr, NumberLit):
            return PlanNode(Literal(expr.value))
        return self.expr_node(expr, cands)

    def _apply_order_limit(
        self, outputs: list[PlanNode], exprs: list[Expr]
    ) -> list[PlanNode]:
        stmt = self.stmt
        if not stmt.order_by and stmt.limit is None:
            return outputs
        if stmt.order_by:
            order = stmt.order_by[0]
            if stmt.group_by is not None and order.expr == stmt.group_by:
                pass  # grouped results are already key-sorted
            else:
                try:
                    idx = exprs.index(order.expr)
                except ValueError:
                    raise SqlPlanError(
                        "ORDER BY expression must appear in the select list"
                    ) from None
                outputs[idx] = PlanNode(
                    Sort(descending=order.descending), [outputs[idx]]
                )
        if stmt.limit is not None:
            outputs = [PlanNode(TopN(stmt.limit), [node]) for node in outputs]
        return outputs


def _contains_agg(expr: Expr) -> bool:
    if isinstance(expr, AggExpr):
        return True
    if isinstance(expr, BinaryExpr):
        return _contains_agg(expr.left) or _contains_agg(expr.right)
    return False
