"""Tokenizer for the supported SQL subset."""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SqlLexError

KEYWORDS = {
    "SELECT",
    "FROM",
    "WHERE",
    "GROUP",
    "ORDER",
    "BY",
    "HAVING",
    "DISTINCT",
    "LIMIT",
    "AND",
    "OR",
    "NOT",
    "IN",
    "LIKE",
    "BETWEEN",
    "AS",
    "ASC",
    "DESC",
    "DATE",
    "SUM",
    "COUNT",
    "MIN",
    "MAX",
    "AVG",
}

_PUNCT = {"(", ")", ",", "*", "+", "-", "/", ".", "=", "<", ">", "<=", ">=", "<>"}


@dataclass(frozen=True)
class Token:
    """One lexical token."""

    type: str  # KEYWORD | IDENT | NUMBER | STRING | PUNCT | EOF
    value: str
    position: int


def tokenize(text: str) -> list[Token]:
    """Split ``text`` into tokens; raises :class:`SqlLexError` on junk."""
    tokens: list[Token] = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "'":
            j = text.find("'", i + 1)
            if j < 0:
                raise SqlLexError(f"unterminated string literal at offset {i}")
            tokens.append(Token("STRING", text[i + 1 : j], i))
            i = j + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i
            seen_dot = False
            while j < n and (text[j].isdigit() or (text[j] == "." and not seen_dot)):
                if text[j] == ".":
                    # A dot followed by a non-digit is punctuation
                    if j + 1 >= n or not text[j + 1].isdigit():
                        break
                    seen_dot = True
                j += 1
            tokens.append(Token("NUMBER", text[i:j], i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token("KEYWORD", upper, i))
            else:
                tokens.append(Token("IDENT", word.lower(), i))
            i = j
            continue
        two = text[i : i + 2]
        if two in ("<=", ">=", "<>"):
            tokens.append(Token("PUNCT", two, i))
            i += 2
            continue
        if ch in _PUNCT:
            tokens.append(Token("PUNCT", ch, i))
            i += 1
            continue
        raise SqlLexError(f"unexpected character {ch!r} at offset {i}")
    tokens.append(Token("EOF", "", n))
    return tokens
