"""Abstract syntax for the supported SQL subset."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

# ---------------------------------------------------------------------------
# Expressions (SELECT list, aggregate arguments)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ColumnRef:
    """``column`` or ``table.column``."""

    name: str
    table: str | None = None

    def __str__(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True)
class NumberLit:
    value: float | int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class BinaryExpr:
    op: str  # + - * /
    left: "Expr"
    right: "Expr"

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class AggExpr:
    """``SUM(expr)``, ``COUNT(*)``, ``AVG(expr)``, ..."""

    func: str  # sum | count | min | max | avg
    arg: Union["Expr", None]  # None for COUNT(*)

    def __str__(self) -> str:
        inner = "*" if self.arg is None else str(self.arg)
        return f"{self.func}({inner})"


Expr = Union[ColumnRef, NumberLit, BinaryExpr, AggExpr]


# ---------------------------------------------------------------------------
# Predicates (WHERE clause)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Comparison:
    """``col <op> literal`` with op in = < > <= >= <>."""

    column: ColumnRef
    op: str
    value: float | int | str


@dataclass(frozen=True)
class Between:
    column: ColumnRef
    lo: float | int
    hi: float | int


@dataclass(frozen=True)
class Like:
    column: ColumnRef
    pattern: str
    negate: bool = False


@dataclass(frozen=True)
class InList:
    column: ColumnRef
    values: tuple[float | int | str, ...]
    negate: bool = False


@dataclass(frozen=True)
class InSubquery:
    """``col [NOT] IN (SELECT ... )`` -- planned as a (anti-)semijoin."""

    column: ColumnRef
    subquery: "SelectStatement"
    negate: bool = False


@dataclass(frozen=True)
class JoinCondition:
    """``t1.c1 = t2.c2`` between two different tables."""

    left: ColumnRef
    right: ColumnRef


@dataclass(frozen=True)
class And:
    parts: tuple["Condition", ...]


@dataclass(frozen=True)
class Or:
    parts: tuple["Condition", ...]


Condition = Union[Comparison, Between, Like, InList, InSubquery, JoinCondition, And, Or]


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class HavingCondition:
    """``HAVING agg <op> literal`` -- filters groups after aggregation."""

    agg: AggExpr
    op: str
    value: float | int


@dataclass(frozen=True)
class SelectItem:
    expr: Expr
    alias: str | None = None


@dataclass(frozen=True)
class OrderItem:
    expr: Expr
    descending: bool = False


@dataclass(frozen=True)
class SelectStatement:
    items: tuple[SelectItem, ...]
    tables: tuple[str, ...]
    where: Condition | None = None
    group_by: ColumnRef | None = None
    having: tuple[HavingCondition, ...] = field(default=())
    order_by: tuple[OrderItem, ...] = field(default=())
    limit: int | None = None
    distinct: bool = False
