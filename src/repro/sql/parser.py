"""Recursive-descent parser for the supported SQL subset.

Grammar (roughly)::

    query      := SELECT [DISTINCT] items FROM tables [WHERE cond]
                  [GROUP BY column] [HAVING having (AND having)*]
                  [ORDER BY order_items] [LIMIT n]
    items      := item (',' item)*
    item       := expr [AS ident]
    expr       := term (('+'|'-') term)*
    term       := factor (('*'|'/') factor)*
    factor     := NUMBER | column | '(' expr ')' | agg
    agg        := (SUM|COUNT|MIN|MAX|AVG) '(' (expr | '*') ')'
    cond       := and_cond (OR and_cond)*
    and_cond   := pred (AND pred)*
    pred       := '(' cond ')' | column predicate_tail
    tail       := cmp literal | BETWEEN lit AND lit | [NOT] LIKE str
                | [NOT] IN '(' (literals | query) ')' | '=' column
    having     := agg cmp literal

See docs/sql.md for the full dialect reference.
"""

from __future__ import annotations

from ..errors import SqlParseError
from ..storage.dtypes import date_value
from .ast import (
    AggExpr,
    HavingCondition,
    And,
    Between,
    BinaryExpr,
    ColumnRef,
    Comparison,
    Condition,
    Expr,
    InList,
    InSubquery,
    JoinCondition,
    Like,
    NumberLit,
    Or,
    OrderItem,
    SelectItem,
    SelectStatement,
)
from .lexer import Token, tokenize

_AGG_KEYWORDS = {"SUM", "COUNT", "MIN", "MAX", "AVG"}
_CMP_OPS = {"=", "<", ">", "<=", ">=", "<>"}


def parse(text: str) -> SelectStatement:
    """Parse a SQL string into a :class:`SelectStatement`."""
    parser = _Parser(tokenize(text))
    stmt = parser.select_statement()
    parser.expect_eof()
    return stmt


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing --------------------------------------------------
    def peek(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def accept(self, type_: str, value: str | None = None) -> Token | None:
        token = self.peek()
        if token.type == type_ and (value is None or token.value == value):
            return self.advance()
        return None

    def expect(self, type_: str, value: str | None = None) -> Token:
        token = self.accept(type_, value)
        if token is None:
            got = self.peek()
            want = value if value is not None else type_
            raise SqlParseError(
                f"expected {want} at offset {got.position}, got {got.value!r}"
            )
        return token

    def expect_eof(self) -> None:
        if self.peek().type != "EOF":
            token = self.peek()
            raise SqlParseError(
                f"unexpected trailing input at offset {token.position}: {token.value!r}"
            )

    # -- statement -------------------------------------------------------
    def select_statement(self) -> SelectStatement:
        self.expect("KEYWORD", "SELECT")
        distinct = bool(self.accept("KEYWORD", "DISTINCT"))
        items = [self.select_item()]
        while self.accept("PUNCT", ","):
            items.append(self.select_item())
        self.expect("KEYWORD", "FROM")
        tables = [self.expect("IDENT").value]
        while self.accept("PUNCT", ","):
            tables.append(self.expect("IDENT").value)
        where = None
        if self.accept("KEYWORD", "WHERE"):
            where = self.condition()
        group_by = None
        if self.accept("KEYWORD", "GROUP"):
            self.expect("KEYWORD", "BY")
            group_by = self.column_ref()
        having: list[HavingCondition] = []
        if self.accept("KEYWORD", "HAVING"):
            having.append(self.having_condition())
            while self.accept("KEYWORD", "AND"):
                having.append(self.having_condition())
        order_by: list[OrderItem] = []
        if self.accept("KEYWORD", "ORDER"):
            self.expect("KEYWORD", "BY")
            order_by.append(self.order_item())
            while self.accept("PUNCT", ","):
                order_by.append(self.order_item())
        limit = None
        if self.accept("KEYWORD", "LIMIT"):
            limit = int(self.expect("NUMBER").value)
        return SelectStatement(
            items=tuple(items),
            tables=tuple(tables),
            where=where,
            group_by=group_by,
            having=tuple(having),
            order_by=tuple(order_by),
            limit=limit,
            distinct=distinct,
        )

    def having_condition(self) -> HavingCondition:
        """``agg(expr) <cmp> literal``."""
        expr = self.expr()
        if not isinstance(expr, AggExpr):
            raise SqlParseError("HAVING requires an aggregate expression")
        op_token = self.peek()
        if op_token.type != "PUNCT" or op_token.value not in _CMP_OPS:
            raise SqlParseError(
                f"expected a comparison after HAVING aggregate at offset "
                f"{op_token.position}"
            )
        self.advance()
        return HavingCondition(expr, op_token.value, self.literal())

    def select_item(self) -> SelectItem:
        expr = self.expr()
        alias = None
        if self.accept("KEYWORD", "AS"):
            alias = self.expect("IDENT").value
        return SelectItem(expr, alias)

    def order_item(self) -> OrderItem:
        expr = self.expr()
        descending = False
        if self.accept("KEYWORD", "DESC"):
            descending = True
        else:
            self.accept("KEYWORD", "ASC")
        return OrderItem(expr, descending)

    # -- expressions -----------------------------------------------------
    def expr(self) -> Expr:
        left = self.term()
        while True:
            if self.accept("PUNCT", "+"):
                left = BinaryExpr("+", left, self.term())
            elif self.accept("PUNCT", "-"):
                left = BinaryExpr("-", left, self.term())
            else:
                return left

    def term(self) -> Expr:
        left = self.factor()
        while True:
            if self.accept("PUNCT", "*"):
                left = BinaryExpr("*", left, self.factor())
            elif self.accept("PUNCT", "/"):
                left = BinaryExpr("/", left, self.factor())
            else:
                return left

    def factor(self) -> Expr:
        token = self.peek()
        if token.type == "NUMBER":
            self.advance()
            return NumberLit(_number(token.value))
        if token.type == "KEYWORD" and token.value in _AGG_KEYWORDS:
            self.advance()
            self.expect("PUNCT", "(")
            if token.value == "COUNT" and self.accept("PUNCT", "*"):
                self.expect("PUNCT", ")")
                return AggExpr("count", None)
            arg = self.expr()
            self.expect("PUNCT", ")")
            return AggExpr(token.value.lower(), arg)
        if self.accept("PUNCT", "("):
            inner = self.expr()
            self.expect("PUNCT", ")")
            return inner
        if token.type == "IDENT":
            return self.column_ref()
        raise SqlParseError(
            f"expected an expression at offset {token.position}, got {token.value!r}"
        )

    def column_ref(self) -> ColumnRef:
        first = self.expect("IDENT").value
        if self.accept("PUNCT", "."):
            second = self.expect("IDENT").value
            return ColumnRef(second, table=first)
        return ColumnRef(first)

    # -- predicates --------------------------------------------------------
    def condition(self) -> Condition:
        parts = [self.and_condition()]
        while self.accept("KEYWORD", "OR"):
            parts.append(self.and_condition())
        if len(parts) == 1:
            return parts[0]
        return Or(tuple(parts))

    def and_condition(self) -> Condition:
        parts = [self.predicate()]
        while self.accept("KEYWORD", "AND"):
            parts.append(self.predicate())
        if len(parts) == 1:
            return parts[0]
        return And(tuple(parts))

    def predicate(self) -> Condition:
        if self.accept("PUNCT", "("):
            inner = self.condition()
            self.expect("PUNCT", ")")
            return inner
        column = self.column_ref()
        negate = bool(self.accept("KEYWORD", "NOT"))
        if self.accept("KEYWORD", "LIKE"):
            pattern = self.expect("STRING").value
            return Like(column, pattern, negate=negate)
        if self.accept("KEYWORD", "IN"):
            return self._in_tail(column, negate)
        if negate:
            raise SqlParseError("NOT is only supported before LIKE and IN")
        if self.accept("KEYWORD", "BETWEEN"):
            lo = self.literal()
            self.expect("KEYWORD", "AND")
            hi = self.literal()
            return Between(column, lo, hi)
        op_token = self.peek()
        if op_token.type == "PUNCT" and op_token.value in _CMP_OPS:
            self.advance()
            # Column-to-column comparison is a join condition.
            nxt = self.peek()
            if op_token.value == "=" and nxt.type == "IDENT":
                return JoinCondition(column, self.column_ref())
            return Comparison(column, op_token.value, self.literal())
        raise SqlParseError(
            f"expected a predicate operator at offset {op_token.position}, "
            f"got {op_token.value!r}"
        )

    def _in_tail(self, column: ColumnRef, negate: bool) -> Condition:
        self.expect("PUNCT", "(")
        if self.peek().type == "KEYWORD" and self.peek().value == "SELECT":
            sub = self.select_statement()
            self.expect("PUNCT", ")")
            return InSubquery(column, sub, negate=negate)
        values = [self.literal()]
        while self.accept("PUNCT", ","):
            values.append(self.literal())
        self.expect("PUNCT", ")")
        return InList(column, tuple(values), negate=negate)

    def literal(self) -> float | int | str:
        token = self.peek()
        if token.type == "NUMBER":
            self.advance()
            return _number(token.value)
        if token.type == "STRING":
            self.advance()
            return token.value
        if token.type == "KEYWORD" and token.value == "DATE":
            self.advance()
            value = self.expect("STRING").value
            return date_value(value)
        if token.type == "PUNCT" and token.value == "-":
            self.advance()
            return -_number(self.expect("NUMBER").value)
        raise SqlParseError(
            f"expected a literal at offset {token.position}, got {token.value!r}"
        )


def _number(text: str) -> float | int:
    if "." in text:
        return float(text)
    return int(text)
