"""Micro-benchmarks from the paper's operator-level analysis (Section 4.1).

* :func:`skewed_select_workload` -- the Figure 12/13 skewed-column
  select: half the column uniform random, half five clusters of one
  repeated value each; the predicate's threshold picks how many clusters
  match ("% skew" on the x-axis of Figure 12).
* :func:`join_micro_workload` -- the Figure 15 / Table 3 join: a large
  random outer input probed against a hash table built on a small inner
  input whose logical size straddles the shared L3.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import MachineSpec, SimulationConfig, two_socket_machine
from ..errors import WorkloadError
from ..operators.aggregate import Aggregate
from ..operators.join import Join
from ..operators.project import Fetch
from ..operators.scan import Scan
from ..operators.select import RangePredicate, Select
from ..plan.graph import Plan, PlanNode
from ..storage import LNG, Catalog, Table

#: Actual rows stand for 1000x logical rows, as in the TPC-H dataset.
MICRO_SHRINK = 1000


@dataclass
class SkewedSelectWorkload:
    """The Figure 12 skewed column and its select plan factory.

    The paper's column has 1000M tuples: 500M uniform random in the
    first half, then five clusters of 100M identical tuples.  Cluster
    values are 0..4 so a predicate ``v < k`` matches exactly ``k``
    clusters, i.e. ``10k%`` of the column, all positionally packed into
    the second half -- equi-range partitions become maximally
    unbalanced.
    """

    tuples_m: int = 1000  # logical millions of tuples
    domain: int = 1_000_000
    seed: int = 13
    catalog: Catalog = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        n = self.tuples_m * 1_000_000 // MICRO_SHRINK
        if n < 10:
            raise WorkloadError("column too small; increase tuples_m")
        rng = np.random.default_rng(self.seed)
        half = n // 2
        head = rng.integers(5, self.domain, size=half, dtype=np.int64)
        run = (n - half) // 5
        tail = np.concatenate(
            [np.full(run, v, dtype=np.int64) for v in range(5)]
            + [np.full(n - half - 5 * run, 4, dtype=np.int64)]
        )
        values = np.concatenate([head, tail])
        payload = rng.integers(0, 1_000, size=n, dtype=np.int64)
        self.catalog = Catalog("micro")
        self.catalog.add(
            Table.from_arrays("skewed", {"v": (LNG, values), "payload": (LNG, payload)})
        )

    def sim_config(self, machine: MachineSpec | None = None, **kwargs) -> SimulationConfig:
        """A config whose ``data_scale`` restores paper-scale bytes."""
        return SimulationConfig(
            machine=machine if machine is not None else two_socket_machine(),
            data_scale=float(MICRO_SHRINK),
            **kwargs,
        )

    def plan(self, skew_percent: int) -> Plan:
        """Select plan matching ``skew_percent`` in {10,20,...,50}.

        ``v < k`` matches ``k`` clusters: 10% of the column per cluster.
        The plan is select -> count, matching the paper's Figure 12
        (a parallelized *select operator* plan): the execution skew
        comes from the match-proportional output-writing cost of the
        selects over the clustered half.
        """
        if skew_percent not in (10, 20, 30, 40, 50):
            raise WorkloadError("skew_percent must be one of 10..50 step 10")
        k = skew_percent // 10
        plan = Plan()
        scan_v = plan.add(Scan(self.catalog.column("skewed", "v")), label="skewed.v")
        cands = plan.add(Select(RangePredicate(hi=k, hi_inclusive=False)), [scan_v])
        total = plan.add(Aggregate("count"), [cands])
        plan.set_outputs([total])
        return plan


def skewed_select_workload(**kwargs) -> SkewedSelectWorkload:
    """Convenience constructor mirroring :class:`SkewedSelectWorkload`."""
    return SkewedSelectWorkload(**kwargs)


@dataclass
class JoinMicroWorkload:
    """The Figure 15 / Table 3 join micro-benchmark.

    ``outer_mb`` / ``inner_mb`` are the paper's *logical* input sizes in
    MB of 8-byte tuples (3200/2000/640 x 64/16).  The inner is a dense
    key column so every outer tuple finds exactly one match, as in the
    paper's micro-benchmark; the outer is uniform random over the inner
    domain.
    """

    outer_mb: int = 3200
    inner_mb: int = 16
    seed: int = 17
    catalog: Catalog = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        outer_n = self.outer_mb * 1_000_000 // 8 // MICRO_SHRINK
        inner_n = self.inner_mb * 1_000_000 // 8 // MICRO_SHRINK
        if outer_n < 2 or inner_n < 2:
            raise WorkloadError("inputs too small for the shrink factor")
        rng = np.random.default_rng(self.seed)
        outer = rng.integers(0, inner_n, size=outer_n, dtype=np.int64)
        inner = np.arange(inner_n, dtype=np.int64)
        self.catalog = Catalog("join_micro")
        self.catalog.add(Table.from_arrays("outer", {"o_key": (LNG, outer)}))
        self.catalog.add(Table.from_arrays("inner", {"i_key": (LNG, inner)}))

    def sim_config(self, machine: MachineSpec | None = None, **kwargs) -> SimulationConfig:
        return SimulationConfig(
            machine=machine if machine is not None else two_socket_machine(),
            data_scale=float(MICRO_SHRINK),
            **kwargs,
        )

    def plan(self) -> Plan:
        """``join(outer, inner)`` capped by a count, as in Figure 4."""
        plan = Plan()
        outer = plan.add(Scan(self.catalog.column("outer", "o_key")), label="outer.o_key")
        inner = plan.add(Scan(self.catalog.column("inner", "i_key")), label="inner.i_key")
        joined = plan.add(Join(), [outer, inner])
        count: PlanNode = plan.add(Aggregate("count"), [joined])
        plan.set_outputs([count])
        return plan


def join_micro_workload(**kwargs) -> JoinMicroWorkload:
    """Convenience constructor mirroring :class:`JoinMicroWorkload`."""
    return JoinMicroWorkload(**kwargs)


@dataclass
class SelectMicroWorkload:
    """The Figure 14 / Table 2 select micro-benchmark.

    One column of ``size_gb`` logical gigabytes (8-byte tuples).  The
    paper's selectivity convention is inverted relative to common usage:
    **0% selectivity means every tuple qualifies** (maximum output,
    maximum serial write cost, hence the largest speedups in Table 2)
    and 100% means no tuple qualifies.

    Actual rows are fixed at ``actual_rows`` so experiment wall time is
    size-independent; the per-workload ``data_scale`` restores the
    logical size for the cost model.
    """

    size_gb: float = 10.0
    selectivity_pct: int = 0
    actual_rows: int = 250_000
    seed: int = 29
    domain: int = 100
    catalog: Catalog = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if not 0 <= self.selectivity_pct <= 100:
            raise WorkloadError("selectivity_pct must be within [0, 100]")
        if self.size_gb <= 0:
            raise WorkloadError("size_gb must be positive")
        rng = np.random.default_rng(self.seed)
        values = rng.integers(0, self.domain, size=self.actual_rows, dtype=np.int64)
        payload = rng.integers(0, 1_000, size=self.actual_rows, dtype=np.int64)
        self.catalog = Catalog("select_micro")
        self.catalog.add(
            Table.from_arrays("data", {"v": (LNG, values), "payload": (LNG, payload)})
        )

    @property
    def data_scale(self) -> float:
        logical_rows = self.size_gb * 1e9 / 8.0
        return logical_rows / self.actual_rows

    def sim_config(self, machine: MachineSpec | None = None, **kwargs) -> SimulationConfig:
        return SimulationConfig(
            machine=machine if machine is not None else two_socket_machine(),
            data_scale=self.data_scale,
            **kwargs,
        )

    def plan(self) -> Plan:
        """select -> fetch -> sum with the requested (paper) selectivity."""
        # paper 0% selectivity = all output: threshold at the top of the
        # domain; 100% = nothing qualifies.
        threshold = round(self.domain * (100 - self.selectivity_pct) / 100)
        plan = Plan()
        scan_v = plan.add(Scan(self.catalog.column("data", "v")), label="data.v")
        scan_p = plan.add(Scan(self.catalog.column("data", "payload")), label="data.payload")
        cands = plan.add(
            Select(RangePredicate(hi=threshold, hi_inclusive=False)), [scan_v]
        )
        fetched = plan.add(Fetch(), [cands, scan_p])
        total = plan.add(Aggregate("sum"), [fetched])
        plan.set_outputs([total])
        return plan


def select_micro_workload(**kwargs) -> SelectMicroWorkload:
    """Convenience constructor mirroring :class:`SelectMicroWorkload`."""
    return SelectMicroWorkload(**kwargs)
