"""TPC-DS-like schema, skewed data generator, and five query templates.

The paper evaluates a subset of modified TPC-DS queries at scale factor
100 "chosen such that they contain the large tables and a few smaller
dimension tables" (Section 4.2.2), and attributes adaptive
parallelization's up-to-5x win over heuristic parallelization to
"correct partitioning ... and the skewed data distribution".

Two skew mechanisms matter and both are modelled:

* **positional skew** -- ``store_sales`` is ordered by sold-date (real
  fact tables are date-clustered) and sales density is heavily seasonal
  (holiday months dominate).  A date-filtered query touches a
  *contiguous* region, so HP's equal range partitions leave most
  workers idle while AP keeps splitting inside the hot region;
* **value skew** -- item popularity is Zipf-distributed, unbalancing
  per-partition match counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import MachineSpec, SimulationConfig, four_socket_machine, two_socket_machine
from ..errors import WorkloadError
from ..plan.graph import Plan
from ..sql.planner import plan_sql
from ..storage import LNG, STR, Catalog, Table
from .generator import choice_strings, sequential_keys, uniform_ints, zipf_ints

TPCDS_SHRINK = 1000
_ROWS_PER_SF = {
    "store_sales": 2_880_000,
    "item": 2_040,
    "store": 4,
    "customer": 20_000,
}
_N_DATES = 1826  # five years of days

_CATEGORIES = [
    "Books", "Children", "Electronics", "Home", "Jewelry",
    "Men", "Music", "Shoes", "Sports", "Women",
]

ALL_DS_QUERIES = ("ds1", "ds2", "ds3", "ds4", "ds5")


@dataclass
class TpcdsDataset:
    """Generated TPC-DS tables plus plan factories for five queries."""

    scale_factor: int = 100
    seed: int = 88
    catalog: Catalog = field(init=False)

    def __post_init__(self) -> None:
        if self.scale_factor < 1:
            raise WorkloadError("scale_factor must be >= 1")
        self.catalog = Catalog("tpcds")
        self._generate()

    def rows(self, table: str) -> int:
        """Generated (scaled-down) row count for ``table``."""
        return max(8, (_ROWS_PER_SF[table] * self.scale_factor) // TPCDS_SHRINK)

    def sim_config(self, machine: MachineSpec | None = None, **kwargs) -> SimulationConfig:
        """A config whose ``data_scale`` restores paper-scale bytes."""
        return SimulationConfig(
            machine=machine if machine is not None else two_socket_machine(),
            data_scale=float(TPCDS_SHRINK),
            **kwargs,
        )

    def four_socket_config(self, **kwargs) -> SimulationConfig:
        """Config for the paper's NUMA comparison (Figure 17b)."""
        return self.sim_config(machine=four_socket_machine(), **kwargs)

    # ------------------------------------------------------------------
    def _generate(self) -> None:
        rng = np.random.default_rng(self.seed)
        n_ss = self.rows("store_sales")
        n_item = self.rows("item")
        n_store = self.rows("store")
        n_cust = self.rows("customer")

        self.catalog.add(Table.from_arrays("date_dim", {
            "d_date_sk": (LNG, sequential_keys(_N_DATES)),
            "d_year": (LNG, 1998 + sequential_keys(_N_DATES) // 365),
            "d_moy": (LNG, (sequential_keys(_N_DATES) % 365) // 31 + 1),
        }))
        self.catalog.add(Table.from_arrays("item", {
            "i_item_sk": (LNG, sequential_keys(n_item)),
            "i_category": (STR, choice_strings(rng, n_item, _CATEGORIES)),
            "i_brand": (STR, [f"brand#{i % 50}" for i in range(n_item)]),
            "i_current_price": (LNG, uniform_ints(rng, n_item, 100, 30_000)),
        }))
        self.catalog.add(Table.from_arrays("store", {
            "s_store_sk": (LNG, sequential_keys(n_store)),
            "s_state": (STR, choice_strings(rng, n_store, ["CA", "NY", "TX", "WA"])),
        }))
        self.catalog.add(Table.from_arrays("customer", {
            "c_customer_sk": (LNG, sequential_keys(n_cust)),
            "c_birth_year": (LNG, uniform_ints(rng, n_cust, 1930, 2000)),
        }))

        # Seasonal density: holiday months sell several times more, and
        # the fact table is ordered by date -- the positional skew HP
        # equi-range partitions suffer from.
        day_of_year = np.arange(_N_DATES) % 365
        month = day_of_year // 31 + 1
        weight = np.where(np.isin(month, (11, 12)), 5.0, 1.0)
        weight = weight * (1.0 + 0.1 * rng.random(_N_DATES))
        weight /= weight.sum()
        dates = rng.choice(_N_DATES, size=n_ss, p=weight).astype(np.int64)
        dates.sort()  # date-clustered storage order

        self.catalog.add(Table.from_arrays("store_sales", {
            "ss_sold_date_sk": (LNG, dates),
            "ss_item_sk": (LNG, zipf_ints(rng, n_ss, n_item, alpha=1.1)),
            "ss_store_sk": (LNG, uniform_ints(rng, n_ss, 0, n_store)),
            "ss_customer_sk": (LNG, uniform_ints(rng, n_ss, 0, n_cust)),
            "ss_quantity": (LNG, uniform_ints(rng, n_ss, 1, 101)),
            "ss_sales_price": (LNG, uniform_ints(rng, n_ss, 50, 20_000)),
            "ss_ext_sales_price": (LNG, uniform_ints(rng, n_ss, 50, 2_000_000)),
            "ss_net_profit": (LNG, uniform_ints(rng, n_ss, -10_000, 20_000)),
        }))

    # ------------------------------------------------------------------
    def query_names(self) -> tuple[str, ...]:
        """Names accepted by :meth:`plan`."""
        return ALL_DS_QUERIES

    def plan(self, name: str) -> Plan:
        """A fresh serial plan for query ``name`` (e.g. ``"ds1"``)."""
        try:
            sql = _QUERIES[name]
        except KeyError:
            raise WorkloadError(
                f"unknown TPC-DS query {name!r}; available: {ALL_DS_QUERIES}"
            ) from None
        return plan_sql(sql, self.catalog)


# The date filters use the standard TPC-DS rewrite ``ss_sold_date_sk
# BETWEEN lo AND hi`` (date_sk ranges are contiguous per year): the
# filter itself is a cheap uniform scan, and the match-proportional
# downstream work (lookups, group-bys) concentrates in the hot storage
# region -- the positional skew that separates AP from HP in Figure 17.
# d_date_sk // 365 + 1998 = d_year, so year 2000 is sk [730, 1095).
_QUERIES = {
    # Category revenue for one (hot, contiguous) year.
    "ds1": """
        SELECT i_category, SUM(ss_sales_price)
        FROM store_sales, item
        WHERE ss_item_sk = i_item_sk
          AND ss_sold_date_sk BETWEEN 730 AND 1094
        GROUP BY i_category ORDER BY i_category
    """,
    # Store traffic for low-quantity sales (no date filter: value skew
    # via the Zipf item distribution stresses the group-by side).
    "ds2": """
        SELECT ss_store_sk, COUNT(*)
        FROM store_sales
        WHERE ss_quantity BETWEEN 1 AND 20
        GROUP BY ss_store_sk ORDER BY ss_store_sk
    """,
    # Hot-category revenue (Zipf item keys -> skewed semijoin matches).
    "ds3": """
        SELECT SUM(ss_ext_sales_price)
        FROM store_sales, item
        WHERE ss_item_sk = i_item_sk AND i_category = 'Electronics'
    """,
    # Monthly profit for a contiguous year window.
    "ds4": """
        SELECT d_moy, SUM(ss_net_profit)
        FROM store_sales, date_dim
        WHERE ss_sold_date_sk = d_date_sk
          AND ss_sold_date_sk BETWEEN 1095 AND 1459
        GROUP BY d_moy ORDER BY d_moy
    """,
    # Brand counts in the holiday month: maximal positional skew.
    "ds5": """
        SELECT i_brand, COUNT(*)
        FROM store_sales, item
        WHERE ss_item_sk = i_item_sk
          AND ss_sold_date_sk BETWEEN 1064 AND 1094
          AND ss_sales_price > 10000
        GROUP BY i_brand ORDER BY i_brand
    """,
}
