"""Workloads: TPC-H-like, TPC-DS-like, and operator micro-benchmarks."""

from .generator import (
    choice_strings,
    clustered_skew,
    sequential_keys,
    uniform_dates,
    uniform_ints,
    zipf_ints,
)
from .micro import (
    JoinMicroWorkload,
    SelectMicroWorkload,
    SkewedSelectWorkload,
    join_micro_workload,
    select_micro_workload,
    skewed_select_workload,
)
from .tpcds import ALL_DS_QUERIES, TpcdsDataset
from .tpch import ALL_QUERIES, COMPLEX_QUERIES, SIMPLE_QUERIES, TpchDataset

__all__ = [
    "ALL_DS_QUERIES",
    "ALL_QUERIES",
    "COMPLEX_QUERIES",
    "JoinMicroWorkload",
    "SIMPLE_QUERIES",
    "SelectMicroWorkload",
    "SkewedSelectWorkload",
    "TpcdsDataset",
    "TpchDataset",
    "choice_strings",
    "clustered_skew",
    "join_micro_workload",
    "select_micro_workload",
    "sequential_keys",
    "skewed_select_workload",
    "uniform_dates",
    "uniform_ints",
    "zipf_ints",
]
