"""TPC-H-like schema, data generator, and the paper's query subset.

The paper evaluates TPC-H scale factor 10 (Table 4: simple queries Q6 and
Q14; complex queries Q4, Q8, Q9, Q19, Q22; plus Q13 and Q17 in Figure 1),
with some queries modified to single-attribute group-bys because the
adaptively parallelized group-by supports one grouping attribute -- we
apply the same modifications.  Monetary values are stored as integer
cents and discounts as integer percents (MonetDB stores decimals as
scaled integers too), so query constants differ slightly from the spec;
the selectivities match.

Rows are generated at 1/1000 of real scale; pair the dataset with
``data_scale=1000`` (the default of :meth:`TpchDataset.sim_config`) so a
scale-factor-10 lineitem *times* like its real 60M-row self.

Substitutions from the official benchmark are documented in DESIGN.md;
one worth noting here: Q4's correlated EXISTS on
``l_commitdate < l_receiptdate`` uses a generated ``l_late`` flag column
because the SQL subset has no column-to-column comparison -- the
selectivity (~63%) matches the spec's.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import MachineSpec, SimulationConfig, two_socket_machine
from ..errors import WorkloadError
from ..operators.aggregate import Aggregate
from ..operators.calc import Calc
from ..operators.join import SemiJoin
from ..operators.literal import Literal
from ..operators.project import Fetch, HeadsOf
from ..operators.scan import Scan
from ..operators.select import LikePredicate, RangePredicate, Select, EqualsPredicate
from ..plan.graph import Plan, PlanNode
from ..sql.planner import plan_sql
from ..storage import DATE, LNG, STR, Catalog, Table, date_value
from .generator import choice_strings, sequential_keys, uniform_dates, uniform_ints

#: Real rows per scale-factor unit, divided by :data:`TPCH_SHRINK`.
TPCH_SHRINK = 1000
_ROWS_PER_SF = {
    "lineitem": 6_000_000,
    "orders": 1_500_000,
    "part": 200_000,
    "customer": 150_000,
    "supplier": 10_000,
}

_PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]
_BRANDS = [f"Brand#{i}{j}" for i in range(1, 6) for j in range(1, 6)]
_CONTAINERS = [
    f"{size} {kind}"
    for size in ("SM", "MED", "LG", "JUMBO", "WRAP")
    for kind in ("CASE", "BOX", "BAG", "PKG", "PACK")
]
_TYPES = [
    f"{pre} {mid} {post}"
    for pre in ("STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO")
    for mid in ("ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED")
    for post in ("TIN", "NICKEL", "BRASS", "STEEL", "COPPER")
]
_NATIONS = [
    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA",
    "FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN",
    "JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA",
    "ROMANIA", "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM",
    "UNITED STATES",
]
_REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
_NATION_REGION = [0, 1, 1, 1, 4, 0, 3, 3, 2, 2, 4, 4, 2, 4, 0, 0, 0, 1, 2, 3, 4, 2, 3, 3, 1]

#: Query classes from Table 4 of the paper (Q13/Q17 appear in Figure 1).
SIMPLE_QUERIES = ("q6", "q14")
COMPLEX_QUERIES = ("q4", "q8", "q9", "q19", "q22")
ALL_QUERIES = ("q4", "q6", "q8", "q9", "q13", "q14", "q17", "q19", "q22")


@dataclass
class TpchDataset:
    """Generated TPC-H tables plus plan factories for the query subset."""

    scale_factor: int = 10
    seed: int = 22
    catalog: Catalog = field(init=False)

    def __post_init__(self) -> None:
        if self.scale_factor < 1:
            raise WorkloadError("scale_factor must be >= 1")
        self.catalog = Catalog("tpch")
        self._generate()

    # ------------------------------------------------------------------
    def rows(self, table: str) -> int:
        """Generated (scaled-down) row count for ``table``."""
        return max(8, (_ROWS_PER_SF[table] * self.scale_factor) // TPCH_SHRINK)

    def sim_config(self, machine: MachineSpec | None = None, **kwargs) -> SimulationConfig:
        """A simulation config whose ``data_scale`` restores real scale."""
        return SimulationConfig(
            machine=machine if machine is not None else two_socket_machine(),
            data_scale=float(TPCH_SHRINK),
            **kwargs,
        )

    def _generate(self) -> None:
        rng = np.random.default_rng(self.seed)
        n_li = self.rows("lineitem")
        n_ord = self.rows("orders")
        n_part = self.rows("part")
        n_cust = self.rows("customer")
        n_supp = self.rows("supplier")
        start = date_value("1992-01-01")
        end = date_value("1998-12-01")

        self.catalog.add(Table.from_arrays("nation", {
            "n_nationkey": (LNG, sequential_keys(25)),
            "n_name": (STR, _NATIONS),
            "n_regionkey": (LNG, np.asarray(_NATION_REGION, dtype=np.int64)),
        }))
        self.catalog.add(Table.from_arrays("region", {
            "r_regionkey": (LNG, sequential_keys(5)),
            "r_name": (STR, _REGIONS),
        }))
        self.catalog.add(Table.from_arrays("supplier", {
            "s_suppkey": (LNG, sequential_keys(n_supp)),
            "s_nationkey": (LNG, uniform_ints(rng, n_supp, 0, 25)),
            "s_acctbal": (LNG, uniform_ints(rng, n_supp, -99_999, 1_000_000)),
        }))
        self.catalog.add(Table.from_arrays("customer", {
            "c_custkey": (LNG, sequential_keys(n_cust)),
            "c_nationkey": (LNG, uniform_ints(rng, n_cust, 0, 25)),
            "c_acctbal": (LNG, uniform_ints(rng, n_cust, -99_999, 1_000_000)),
            "c_mktsegment": (STR, choice_strings(
                rng, n_cust,
                ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"],
            )),
        }))
        self.catalog.add(Table.from_arrays("part", {
            "p_partkey": (LNG, sequential_keys(n_part)),
            "p_type": (STR, choice_strings(rng, n_part, _TYPES)),
            "p_brand": (STR, choice_strings(rng, n_part, _BRANDS)),
            "p_container": (STR, choice_strings(rng, n_part, _CONTAINERS)),
            "p_size": (LNG, uniform_ints(rng, n_part, 1, 51)),
        }))
        order_dates = uniform_dates(rng, n_ord, start, end)
        self.catalog.add(Table.from_arrays("orders", {
            "o_orderkey": (LNG, sequential_keys(n_ord)),
            # Two thirds of customers place orders; the rest never do
            # (the population Q22 looks for).
            "o_custkey": (LNG, uniform_ints(rng, n_ord, 0, max(1, (2 * n_cust) // 3))),
            "o_orderdate": (DATE, order_dates),
            "o_orderpriority": (STR, choice_strings(rng, n_ord, _PRIORITIES)),
        }))
        l_orderkey = uniform_ints(rng, n_li, 0, n_ord)
        ship_lag = uniform_ints(rng, n_li, 1, 122)
        self.catalog.add(Table.from_arrays("lineitem", {
            "l_orderkey": (LNG, l_orderkey),
            "l_partkey": (LNG, uniform_ints(rng, n_li, 0, n_part)),
            "l_suppkey": (LNG, uniform_ints(rng, n_li, 0, n_supp)),
            "l_quantity": (LNG, uniform_ints(rng, n_li, 1, 51)),
            # Cents; uniform like dbgen's retail-price formula in spirit.
            "l_extendedprice": (LNG, uniform_ints(rng, n_li, 90_000, 10_500_000)),
            "l_discount": (LNG, uniform_ints(rng, n_li, 0, 11)),  # percent
            "l_tax": (LNG, uniform_ints(rng, n_li, 0, 9)),
            "l_shipdate": (DATE, order_dates[l_orderkey] + ship_lag),
            # l_commitdate < l_receiptdate holds for ~63% of rows in spec
            # data; the flag column stands in for the comparison.
            "l_late": (LNG, (rng.random(n_li) < 0.63).astype(np.int64)),
        }))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query_names(self) -> tuple[str, ...]:
        """Names accepted by :meth:`plan`."""
        return ALL_QUERIES

    def plan(self, name: str) -> Plan:
        """A fresh serial plan for query ``name`` (e.g. ``"q6"``)."""
        try:
            factory = getattr(self, f"_plan_{name}")
        except AttributeError:
            raise WorkloadError(
                f"unknown TPC-H query {name!r}; available: {ALL_QUERIES}"
            ) from None
        return factory()

    def _sql(self, text: str) -> Plan:
        return plan_sql(text, self.catalog)

    def _plan_q4(self) -> Plan:
        return self._sql(
            """
            SELECT o_orderpriority, COUNT(*) FROM orders
            WHERE o_orderdate >= DATE '1993-07-01'
              AND o_orderdate < DATE '1993-10-01'
              AND o_orderkey IN (
                    SELECT l_orderkey FROM lineitem WHERE l_late = 1)
            GROUP BY o_orderpriority ORDER BY o_orderpriority
            """
        )

    def _plan_q6(self) -> Plan:
        return self._sql(
            """
            SELECT SUM(l_extendedprice * l_discount) FROM lineitem
            WHERE l_shipdate >= DATE '1994-01-01'
              AND l_shipdate < DATE '1995-01-01'
              AND l_discount BETWEEN 5 AND 7 AND l_quantity < 24
            """
        )

    def _plan_q8(self) -> Plan:
        """National market share (modified, hand-built plan).

        numerator   = revenue of BRAZIL suppliers
        denominator = revenue of all suppliers
        over lineitem filtered to 1995-1996 orders of ECONOMY ANODIZED
        STEEL parts; output is ``1000 * numerator / denominator``.
        Hand-built because the SQL subset has no CASE expression.
        """
        cat = self.catalog
        plan = Plan()

        def scan(table: str, column: str) -> PlanNode:
            return plan.add(Scan(cat.column(table, column)), label=f"{table}.{column}")

        # Filter: part type.
        p_cands = plan.add(
            Select(EqualsPredicate("ECONOMY ANODIZED STEEL")), [scan("part", "p_type")]
        )
        p_keys = plan.add(Fetch(), [p_cands, scan("part", "p_partkey")])
        li_partkey = scan("lineitem", "l_partkey")
        semi_part = plan.add(SemiJoin(), [li_partkey, p_keys])
        cands = plan.add(HeadsOf(), [semi_part])
        # Filter: order date window.
        o_cands = plan.add(
            Select(RangePredicate(date_value("1995-01-01"), date_value("1996-12-31"))),
            [scan("orders", "o_orderdate")],
        )
        o_keys = plan.add(Fetch(), [o_cands, scan("orders", "o_orderkey")])
        l_orderkey = plan.add(Fetch(), [cands, scan("lineitem", "l_orderkey")])
        semi_ord = plan.add(SemiJoin(), [l_orderkey, o_keys])
        cands = plan.add(HeadsOf(), [semi_ord])

        def revenue(source_cands: PlanNode) -> PlanNode:
            price = plan.add(Fetch(), [source_cands, scan("lineitem", "l_extendedprice")])
            disc = plan.add(Fetch(), [source_cands, scan("lineitem", "l_discount")])
            hundred = plan.add(Literal(100))
            rebate = plan.add(Calc("-"), [hundred, disc])
            volume = plan.add(Calc("*"), [price, rebate])
            return plan.add(Aggregate("sum"), [volume])

        denominator = revenue(cands)
        # Numerator: restrict to BRAZIL suppliers.
        n_cands = plan.add(
            Select(EqualsPredicate("BRAZIL")), [scan("nation", "n_name")]
        )
        n_keys = plan.add(Fetch(), [n_cands, scan("nation", "n_nationkey")])
        s_natkey = scan("supplier", "s_nationkey")
        semi_nat = plan.add(SemiJoin(), [s_natkey, n_keys])
        s_cands = plan.add(HeadsOf(), [semi_nat])
        s_keys = plan.add(Fetch(), [s_cands, scan("supplier", "s_suppkey")])
        l_suppkey = plan.add(Fetch(), [cands, scan("lineitem", "l_suppkey")])
        semi_supp = plan.add(SemiJoin(), [l_suppkey, s_keys])
        brazil_cands = plan.add(HeadsOf(), [semi_supp])
        numerator = revenue(brazil_cands)

        thousand = plan.add(Literal(1000))
        scaled = plan.add(Calc("*"), [thousand, numerator])
        share = plan.add(Calc("/"), [scaled, denominator])
        plan.set_outputs([share])
        return plan

    def _plan_q9(self) -> Plan:
        return self._sql(
            """
            SELECT n_name, SUM(l_extendedprice * (100 - l_discount))
            FROM lineitem, part, supplier, nation
            WHERE l_partkey = p_partkey AND l_suppkey = s_suppkey
              AND s_nationkey = n_nationkey AND p_type LIKE '%BRASS%'
            GROUP BY n_name ORDER BY n_name
            """
        )

    def _plan_q13(self) -> Plan:
        return self._sql(
            """
            SELECT c_nationkey, COUNT(*) FROM orders, customer
            WHERE o_custkey = c_custkey
              AND o_orderpriority <> '1-URGENT'
            GROUP BY c_nationkey ORDER BY c_nationkey
            """
        )

    def _plan_q14(self) -> Plan:
        """Promo revenue (modified, hand-built: no CASE in the subset).

        ``1000 * promo_revenue / total_revenue`` over a one-month
        shipdate window, where promo rows have a part whose type starts
        with PROMO.
        """
        cat = self.catalog
        plan = Plan()

        def scan(table: str, column: str) -> PlanNode:
            return plan.add(Scan(cat.column(table, column)), label=f"{table}.{column}")

        cands = plan.add(
            Select(
                RangePredicate(
                    date_value("1995-09-01"),
                    date_value("1995-10-01"),
                    hi_inclusive=False,
                )
            ),
            [scan("lineitem", "l_shipdate")],
        )

        def revenue(source_cands: PlanNode) -> PlanNode:
            price = plan.add(Fetch(), [source_cands, scan("lineitem", "l_extendedprice")])
            disc = plan.add(Fetch(), [source_cands, scan("lineitem", "l_discount")])
            hundred = plan.add(Literal(100))
            rebate = plan.add(Calc("-"), [hundred, disc])
            volume = plan.add(Calc("*"), [price, rebate])
            return plan.add(Aggregate("sum"), [volume])

        total = revenue(cands)
        p_cands = plan.add(
            Select(LikePredicate("PROMO%")), [scan("part", "p_type")]
        )
        p_keys = plan.add(Fetch(), [p_cands, scan("part", "p_partkey")])
        l_partkey = plan.add(Fetch(), [cands, scan("lineitem", "l_partkey")])
        semi = plan.add(SemiJoin(), [l_partkey, p_keys])
        promo_cands = plan.add(HeadsOf(), [semi])
        promo = revenue(promo_cands)

        thousand = plan.add(Literal(1000))
        scaled = plan.add(Calc("*"), [thousand, promo])
        ratio = plan.add(Calc("/"), [scaled, total])
        plan.set_outputs([ratio])
        return plan

    def _plan_q17(self) -> Plan:
        return self._sql(
            """
            SELECT SUM(l_extendedprice) / 7 FROM lineitem, part
            WHERE l_partkey = p_partkey AND p_brand = 'Brand#23'
              AND p_container = 'MED BOX' AND l_quantity < 9
            """
        )

    def _plan_q19(self) -> Plan:
        return self._sql(
            """
            SELECT SUM(l_extendedprice * (100 - l_discount))
            FROM lineitem, part
            WHERE l_partkey = p_partkey AND (
                  (p_brand = 'Brand#12'
                   AND p_container IN ('SM CASE', 'SM BOX', 'SM PACK', 'SM PKG')
                   AND l_quantity BETWEEN 1 AND 11 AND p_size BETWEEN 1 AND 5)
               OR (p_brand = 'Brand#23'
                   AND p_container IN ('MED BAG', 'MED BOX', 'MED PKG', 'MED PACK')
                   AND l_quantity BETWEEN 10 AND 20 AND p_size BETWEEN 1 AND 10)
               OR (p_brand = 'Brand#34'
                   AND p_container IN ('LG CASE', 'LG BOX', 'LG PACK', 'LG PKG')
                   AND l_quantity BETWEEN 20 AND 30 AND p_size BETWEEN 1 AND 15))
            """
        )

    def _plan_q22(self) -> Plan:
        return self._sql(
            """
            SELECT COUNT(*), SUM(c_acctbal) FROM customer
            WHERE c_acctbal > 500000
              AND c_custkey NOT IN (SELECT o_custkey FROM orders)
            """
        )
