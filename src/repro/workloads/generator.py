"""Deterministic data generators shared by the workload builders.

Real benchmark data (dbgen/dsdgen) is substituted by scaled-down
synthetic equivalents; the distributions that matter to the paper's
evaluation -- uniformity for TPC-H, skew for TPC-DS and the
micro-benchmarks (Figure 13) -- are preserved, and the ``data_scale``
knob in :class:`repro.config.SimulationConfig` restores paper-scale
byte counts for the cost model.
"""

from __future__ import annotations

import numpy as np


def uniform_ints(
    rng: np.random.Generator, n: int, lo: int, hi: int
) -> np.ndarray:
    """Uniform integers in ``[lo, hi)``."""
    return rng.integers(lo, hi, size=n, dtype=np.int64)


def uniform_dates(
    rng: np.random.Generator, n: int, start_day: int, end_day: int
) -> np.ndarray:
    """Uniform day numbers in ``[start_day, end_day)``."""
    return rng.integers(start_day, end_day, size=n, dtype=np.int64)


def zipf_ints(
    rng: np.random.Generator, n: int, domain: int, *, alpha: float = 1.2
) -> np.ndarray:
    """Zipf-skewed integers in ``[0, domain)`` (hot keys first)."""
    ranks = np.arange(1, domain + 1, dtype=np.float64)
    weights = ranks**-alpha
    weights /= weights.sum()
    return rng.choice(domain, size=n, p=weights).astype(np.int64)


def clustered_skew(
    rng: np.random.Generator,
    n: int,
    domain: int,
    *,
    clusters: int = 5,
) -> np.ndarray:
    """The paper's Figure 13 distribution.

    The first half of the column is uniform random; the second half is
    ``clusters`` consecutive runs of one identical value each -- the
    layout that makes equi-range partitions wildly unbalanced for
    selective predicates.
    """
    half = n // 2
    head = rng.integers(0, domain, size=half, dtype=np.int64)
    cluster_values = rng.choice(domain, size=clusters, replace=False).astype(np.int64)
    run = (n - half) // clusters
    tail_parts = [np.full(run, v, dtype=np.int64) for v in cluster_values]
    tail = np.concatenate(tail_parts)
    if len(tail) < n - half:  # remainder goes to the last cluster
        pad = np.full(n - half - len(tail), cluster_values[-1], dtype=np.int64)
        tail = np.concatenate([tail, pad])
    return np.concatenate([head, tail])


def choice_strings(
    rng: np.random.Generator, n: int, values: list[str], weights: list[float] | None = None
) -> list[str]:
    """Random draws from a fixed string vocabulary."""
    if weights is not None:
        p = np.asarray(weights, dtype=np.float64)
        p = p / p.sum()
    else:
        p = None
    picks = rng.choice(len(values), size=n, p=p)
    return [values[int(i)] for i in picks]


def sequential_keys(n: int) -> np.ndarray:
    """A dense primary-key column ``0..n-1``."""
    return np.arange(n, dtype=np.int64)
