"""Learned DOP: cross-query transfer of converged parallelization.

The subsystem the ROADMAP "Learned DOP" item names: a persistent
:class:`ExperienceStore` of converged DOPs keyed by cross-process plan
template signatures (:func:`plan_signature`) and machine shape
(:func:`machine_signature`), a pluggable convergence policy layer
(credit/debit, warm-start, seeded UCB bandit), and per-run
:class:`DopDecision` provenance for ``repro adapt --explain``.
"""

from .bandit import (
    DEFAULT_CONFIDENCE_PULLS,
    DEFAULT_EXPLORATION,
    ArmState,
    BanditAdvisor,
    default_dop_arms,
)
from .fingerprint import config_signature, machine_signature, plan_signature
from .policy import (
    POLICIES,
    POLICY_BANDIT,
    POLICY_CREDIT_DEBIT,
    POLICY_WARMSTART,
    DopDecision,
    resolve_policy,
)
from .store import (
    DEFAULT_CAPACITY_BYTES,
    ExperienceRecord,
    ExperienceStats,
    ExperienceStore,
    resolve_store,
)

__all__ = [
    "ArmState",
    "BanditAdvisor",
    "DEFAULT_CAPACITY_BYTES",
    "DEFAULT_CONFIDENCE_PULLS",
    "DEFAULT_EXPLORATION",
    "DopDecision",
    "ExperienceRecord",
    "ExperienceStats",
    "ExperienceStore",
    "POLICIES",
    "POLICY_BANDIT",
    "POLICY_CREDIT_DEBIT",
    "POLICY_WARMSTART",
    "config_signature",
    "default_dop_arms",
    "machine_signature",
    "plan_signature",
    "resolve_policy",
    "resolve_store",
]
