"""The DOP experience store: converged parallelization, made persistent.

Adaptive parallelization re-learns a degree of parallelism from scratch
for every query template -- tens of exploratory runs whose outcome we
have usually already discovered for a structurally identical plan.  The
:class:`ExperienceStore` persists one :class:`ExperienceRecord` per
(plan template signature, machine shape): the converged DOP (accepted
mutations at the GME run), the observed serial/GME times, and how many
runs convergence took.  :class:`~repro.core.AdaptiveParallelizer`
consults it to warm-start mutation state and to seed the bandit
advisor.

Design rules, mirrored from :class:`repro.engine.memo.IntermediateCache`:

* **Byte-bounded.**  Entries are charged their serialized JSON size and
  evicted least-recently-used; the store can never grow without bound.
* **Hint, not truth.**  A lookup under a different core/socket topology
  is refused (counted as ``shape_mismatches``) and the caller falls
  back to cold convergence; a template-signature collision merely seeds
  a wrong-but-harmless starting DOP that credit/debit walks away from.
* **Never crash on bad files.**  A corrupted or partially written
  experience file loads as empty (with a warning) -- losing warm-start
  hints must never take the engine down.

File format (``repro/learn_experience/v1``)::

    {"schema": "...", "entries": [{"plan": "<hex>", "machine": "2s8c2t",
      "dop": 27, "gme_run": 27, "total_runs": 41, ...}, ...]}
"""

from __future__ import annotations

import json
import os
import tempfile
import warnings
from dataclasses import asdict, dataclass, replace

from ..errors import LearnError

SCHEMA = "repro/learn_experience/v1"

#: Default byte budget: thousands of records -- an entire benchmark
#: suite's worth of templates fits with room to spare, while a runaway
#: workload generator cannot grow the file without bound.
DEFAULT_CAPACITY_BYTES = 256 * 1024

#: Fixed bookkeeping charge per record (dict slot, key interning).
_ENTRY_OVERHEAD = 64


@dataclass(frozen=True)
class ExperienceRecord:
    """One converged adaptive instance, keyed by template + machine."""

    plan: str
    machine: str
    #: Accepted mutations at the GME run -- the converged DOP proxy the
    #: warm start replays before its first parallel run.
    dop: int
    gme_run: int
    total_runs: int
    serial_ms: float
    gme_ms: float
    policy: str = "credit_debit"
    #: How many times this record has been refreshed by a new instance.
    updates: int = 1

    def __post_init__(self) -> None:
        if self.dop < 0:
            raise LearnError(f"converged DOP must be >= 0, got {self.dop}")
        if self.gme_run < 0 or self.total_runs < 0:
            raise LearnError("run counts must be >= 0")
        if self.serial_ms < 0 or self.gme_ms < 0:
            raise LearnError("run times must be >= 0")

    @property
    def speedup(self) -> float:
        """Serial over GME time as recorded (0 when degenerate)."""
        return self.serial_ms / self.gme_ms if self.gme_ms else 0.0

    def as_dict(self) -> dict:
        return asdict(self)


@dataclass(frozen=True)
class ExperienceStats:
    """Immutable counter snapshot of one :class:`ExperienceStore`."""

    hits: int = 0
    misses: int = 0
    #: Lookups refused because the record was learned under a different
    #: core/socket topology (the machine-shape firewall).
    shape_mismatches: int = 0
    records: int = 0
    updates: int = 0
    evictions: int = 0
    #: Records dropped while loading a corrupt or alien file.
    load_skipped: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses + self.shape_mismatches

    @property
    def hit_rate(self) -> float:
        total = self.lookups
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict[str, float | int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "shape_mismatches": self.shape_mismatches,
            "records": self.records,
            "updates": self.updates,
            "evictions": self.evictions,
            "load_skipped": self.load_skipped,
            "hit_rate": self.hit_rate,
        }


_REQUIRED_FIELDS = {
    "plan": str,
    "machine": str,
    "dop": int,
    "gme_run": int,
    "total_runs": int,
    "serial_ms": (int, float),
    "gme_ms": (int, float),
}


def _record_from_dict(raw: object) -> ExperienceRecord | None:
    """Validate one on-disk entry; ``None`` (skip) when malformed."""
    if not isinstance(raw, dict):
        return None
    for name, types in _REQUIRED_FIELDS.items():
        value = raw.get(name)
        if not isinstance(value, types) or isinstance(value, bool):
            return None
    if raw["dop"] < 0 or raw["gme_run"] < 0 or raw["total_runs"] < 0:
        return None
    if raw["serial_ms"] < 0 or raw["gme_ms"] < 0:
        return None
    return ExperienceRecord(
        plan=raw["plan"],
        machine=raw["machine"],
        dop=raw["dop"],
        gme_run=raw["gme_run"],
        total_runs=raw["total_runs"],
        serial_ms=float(raw["serial_ms"]),
        gme_ms=float(raw["gme_ms"]),
        policy=str(raw.get("policy", "credit_debit")),
        updates=int(raw.get("updates", 1)),
    )


def _record_bytes(record: ExperienceRecord) -> int:
    return len(json.dumps(record.as_dict())) + _ENTRY_OVERHEAD


class ExperienceStore:
    """Byte-bounded, optionally persistent map of convergence outcomes.

    With ``path=None`` the store lives in memory only (tests, one-shot
    benchmarks); with a path it loads existing records on construction
    and :meth:`flush`/:meth:`close` write them back atomically
    (temp file + rename -- a crashed writer never truncates the store,
    and a reader of the old file sees a complete document).
    """

    def __init__(
        self,
        path: str | os.PathLike | None = None,
        *,
        capacity_bytes: int = DEFAULT_CAPACITY_BYTES,
    ) -> None:
        if capacity_bytes <= 0:
            raise LearnError("experience capacity must be positive")
        self.path = os.fspath(path) if path is not None else None
        self.capacity_bytes = capacity_bytes
        self.current_bytes = 0
        self._closed = False
        self._dirty = False
        #: Insertion order is recency order: index 0 is the LRU victim.
        self._entries: dict[tuple[str, str], ExperienceRecord] = {}
        self._hits = 0
        self._misses = 0
        self._shape_mismatches = 0
        self._updates = 0
        self._evictions = 0
        self._load_skipped = 0
        if self.path is not None:
            self._load()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> ExperienceStats:
        return ExperienceStats(
            hits=self._hits,
            misses=self._misses,
            shape_mismatches=self._shape_mismatches,
            records=len(self._entries),
            updates=self._updates,
            evictions=self._evictions,
            load_skipped=self._load_skipped,
        )

    def records(self) -> list[ExperienceRecord]:
        """All records, least-recently-used first (for inspection)."""
        return list(self._entries.values())

    # ------------------------------------------------------------------
    def lookup(self, plan: str, machine: str) -> ExperienceRecord | None:
        """The record for ``plan`` on this machine shape, or ``None``.

        A record stored under the same template but a *different*
        machine shape is never returned: transferring a DOP across
        core/socket topologies is how warm starts would go wrong, so
        the mismatch is counted and the caller starts cold.
        """
        entry = self._entries.get((plan, machine))
        if entry is not None:
            # Refresh recency: move to the MRU end.
            del self._entries[(plan, machine)]
            self._entries[(plan, machine)] = entry
            self._hits += 1
            return entry
        if any(key[0] == plan for key in self._entries):
            self._shape_mismatches += 1
        else:
            self._misses += 1
        return None

    def record(self, record: ExperienceRecord) -> None:
        """Upsert one convergence outcome, evicting LRU records to fit.

        An update of an existing (plan, machine) key folds the previous
        record's ``updates`` counter forward and keeps the *better* GME
        outcome's DOP when the new instance converged worse (noise can
        make a later instance unluckier; the store should remember the
        best discovered configuration).
        """
        if self._closed:
            raise LearnError("experience store is closed")
        key = (record.plan, record.machine)
        old = self._entries.pop(key, None)
        if old is not None:
            self.current_bytes -= _record_bytes(old)
            self._updates += 1
            if old.gme_ms and (not record.gme_ms or old.gme_ms < record.gme_ms):
                record = replace(
                    record,
                    dop=old.dop,
                    gme_run=old.gme_run,
                    gme_ms=old.gme_ms,
                    serial_ms=old.serial_ms,
                )
            record = replace(record, updates=old.updates + 1)
        size = _record_bytes(record)
        if size > self.capacity_bytes:
            raise LearnError(
                f"experience record ({size} B) exceeds the store capacity "
                f"({self.capacity_bytes} B)"
            )
        while self.current_bytes + size > self.capacity_bytes and self._entries:
            victim_key = next(iter(self._entries))
            victim = self._entries.pop(victim_key)
            self.current_bytes -= _record_bytes(victim)
            self._evictions += 1
        self._entries[key] = record
        self.current_bytes += size
        self._dirty = True

    # ------------------------------------------------------------------
    def _load(self) -> None:
        assert self.path is not None
        if not os.path.exists(self.path):
            return
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, ValueError) as exc:
            warnings.warn(
                f"experience store {self.path}: unreadable ({exc}); "
                "starting empty -- warm starts will be cold",
                stacklevel=3,
            )
            self._load_skipped += 1
            return
        if not isinstance(document, dict) or document.get("schema") != SCHEMA:
            warnings.warn(
                f"experience store {self.path}: unknown schema "
                f"{document.get('schema') if isinstance(document, dict) else None!r};"
                " starting empty",
                stacklevel=3,
            )
            self._load_skipped += 1
            return
        entries = document.get("entries")
        if not isinstance(entries, list):
            warnings.warn(
                f"experience store {self.path}: malformed entries; starting empty",
                stacklevel=3,
            )
            self._load_skipped += 1
            return
        for raw in entries:
            record = _record_from_dict(raw)
            if record is None:
                self._load_skipped += 1
                warnings.warn(
                    f"experience store {self.path}: skipped a malformed record",
                    stacklevel=3,
                )
                continue
            size = _record_bytes(record)
            if self.current_bytes + size > self.capacity_bytes:
                self._evictions += 1
                continue
            self._entries[(record.plan, record.machine)] = record
            self.current_bytes += size

    def to_document(self) -> dict:
        """The JSON document this store serializes to."""
        return {
            "schema": SCHEMA,
            "capacity_bytes": self.capacity_bytes,
            "entries": [record.as_dict() for record in self._entries.values()],
        }

    def flush(self) -> None:
        """Atomically persist to :attr:`path` (no-op when in-memory)."""
        if self.path is None or not self._dirty:
            return
        directory = os.path.dirname(os.path.abspath(self.path)) or "."
        fd, tmp_path = tempfile.mkstemp(
            prefix=".experience-", suffix=".json", dir=directory
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(self.to_document(), handle, indent=1)
                handle.write("\n")
            os.replace(tmp_path, self.path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        self._dirty = False

    def close(self) -> None:
        """Flush and refuse further writes (idempotent, atexit-safe)."""
        if self._closed:
            return
        self.flush()
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        where = self.path if self.path is not None else "<memory>"
        return (
            f"ExperienceStore({where!r}, n={len(self._entries)}, "
            f"bytes={self.current_bytes}/{self.capacity_bytes})"
        )


def resolve_store(
    experience: "ExperienceStore | str | os.PathLike | None",
) -> ExperienceStore | None:
    """Accept a store instance, a path, or ``None`` (no experience)."""
    if experience is None or isinstance(experience, ExperienceStore):
        return experience
    return ExperienceStore(experience)

