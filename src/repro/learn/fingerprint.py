"""Cross-process plan and machine signatures for the experience store.

The engine-level fingerprints (:meth:`repro.plan.graph.PlanNode.fingerprint`)
bottom out in :class:`~repro.storage.column.Column` *identity* -- a
process-wide uid -- which makes them perfect memoization keys and useless
persistence keys: the same query template hashes differently in every
process.  The experience store therefore keys on a **template signature**
built from the same structural walk but with
:meth:`~repro.operators.base.Operator.template_params` at the leaves
(column name, dtype, length instead of uid).

Two plans share a template signature iff they apply the same operator
DAG to structurally identical columns.  Distinct datasets that happen to
match structurally collide by design: a transferred DOP is a warm-start
*hint* that at worst costs a few extra convergence runs, never a
correctness input.  Machine shape is deliberately NOT part of the plan
signature -- it is a separate key so a mismatch can be detected,
counted, and refused (a DOP learned on a 96-thread box must not seed a
16-thread one).
"""

from __future__ import annotations

from hashlib import blake2b
from typing import Sequence

from ..config import MachineSpec, SimulationConfig
from ..plan.graph import Plan, PlanNode

#: Digest width of template signatures (hex-encoded in store files).
_SIGNATURE_BYTES = 16


def plan_signature(plan: Plan) -> str:
    """Hex template signature of ``plan``, stable across processes.

    One shared post-order walk over the DAG (like
    :meth:`Plan.fingerprints`), so cost is O(nodes) regardless of
    sharing, and arbitrarily deep partitioned plans do not recurse.
    """
    memo: dict[int, bytes] = {}
    _signature_into(plan.outputs, memo)
    h = blake2b(digest_size=_SIGNATURE_BYTES)
    for out in plan.outputs:
        h.update(memo[out.nid])
    return h.hexdigest()


def _signature_into(roots: Sequence[PlanNode], memo: dict[int, bytes]) -> None:
    _VISITING, _DONE = 0, 1
    state: dict[int, int] = {nid: _DONE for nid in memo}
    stack: list[PlanNode] = list(roots)
    while stack:
        node = stack[-1]
        mark = state.get(node.nid)
        if mark == _DONE:
            stack.pop()
            continue
        if mark is None:
            state[node.nid] = _VISITING
            pending = [c for c in node.inputs if state.get(c.nid) != _DONE]
            if pending:
                stack.extend(pending)
                continue
        h = blake2b(digest_size=_SIGNATURE_BYTES)
        key = (
            type(node.op).__name__,
            node.op.kind,
            node.op.template_params(),
            node.order_key,
        )
        h.update(repr(key).encode("utf-8"))
        for child in node.inputs:
            h.update(memo[child.nid])
        memo[node.nid] = h.digest()
        state[node.nid] = _DONE
        stack.pop()


def machine_signature(
    machine: MachineSpec, max_threads: int | None = None
) -> str:
    """Compact topology key: sockets x cores x SMT (+ thread cap).

    A converged DOP is only transferable between machines with the same
    core/socket topology and the same per-query thread cap; everything
    else about the machine (clock, cache sizes, bandwidth) shifts run
    *times* but not the structural meaning of "N-way parallel plan".
    """
    sig = (
        f"{machine.sockets}s{machine.cores_per_socket}c"
        f"{machine.threads_per_core}t"
    )
    if max_threads is not None:
        sig += f"-cap{max_threads}"
    return sig


def config_signature(config: SimulationConfig) -> str:
    """The machine signature of one simulation configuration."""
    return machine_signature(config.machine, config.max_threads)
