"""Convergence policies and per-run DOP decision provenance.

Three policies drive :class:`~repro.core.AdaptiveParallelizer`:

``credit_debit``
    The paper's algorithm, unchanged (the default): one mutation per
    run, credit/debit balance decides when to stop.
``warmstart+credit_debit``
    Credit/debit, but when the experience store holds a converged DOP
    for this plan template on this machine shape, that many mutations
    are replayed in one batch before the first parallel run -- the
    search starts where a structurally identical query ended.
``bandit``
    A seeded UCB advisor over candidate DOP levels replaces the walk
    entirely; see :mod:`repro.learn.bandit`.

Every run's DOP choice is recorded as a :class:`DopDecision` so
``repro adapt --explain`` can print the provenance (warm-start hit,
bandit arm, credit/debit step) in the same diagnostics convention
``repro lint`` and ``repro analyze`` use.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.diagnostics import Diagnostic
from ..errors import LearnError

POLICY_CREDIT_DEBIT = "credit_debit"
POLICY_WARMSTART = "warmstart+credit_debit"
POLICY_BANDIT = "bandit"

POLICIES = (POLICY_CREDIT_DEBIT, POLICY_WARMSTART, POLICY_BANDIT)

_ALIASES = {
    "warmstart": POLICY_WARMSTART,
    "warm-start": POLICY_WARMSTART,
    "cd": POLICY_CREDIT_DEBIT,
}


def resolve_policy(name: str | None) -> str:
    """Canonical policy name (aliases accepted); raises on unknown."""
    if name is None:
        return POLICY_CREDIT_DEBIT
    canonical = _ALIASES.get(name, name)
    if canonical not in POLICIES:
        raise LearnError(
            f"unknown convergence policy {name!r}; known: {', '.join(POLICIES)}"
        )
    return canonical


@dataclass(frozen=True)
class DopDecision:
    """Why one adaptive run ran at the DOP it did.

    ``source`` is the decision provenance:

    * ``serial`` -- run 0, the unparallelized baseline;
    * ``credit_debit`` -- one more mutation, the paper's step;
    * ``warm_start`` -- mutations replayed from an experience record;
    * ``bandit_arm`` -- the UCB advisor picked this DOP level;
    * ``cold_fallback`` -- the store was consulted but missed (no
      record, or a machine-shape mismatch), so the run started cold.
    """

    run: int
    source: str
    #: Accepted mutations in the plan executed by this run.
    dop: int
    detail: str = ""

    def as_diagnostic(self) -> Diagnostic:
        """Render in the shared ``lint``/``analyze`` diagnostics shape."""
        message = f"run {self.run}: dop={self.dop}"
        if self.detail:
            message += f" ({self.detail})"
        return Diagnostic(
            rule=f"dop.{self.source}",
            severity="info",
            message=message,
        )

    def as_dict(self) -> dict:
        return {
            "run": self.run,
            "source": self.source,
            "dop": self.dop,
            "detail": self.detail,
        }
