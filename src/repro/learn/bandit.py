"""A seeded UCB bandit over candidate degrees of parallelism.

The paper's credit/debit algorithm walks the DOP ladder one mutation per
run; when the good region is many mutations away, most runs are spent in
transit.  Cuttlefish-style bandit tuning instead treats a small set of
candidate DOP levels as arms and spends runs where the uncertainty is:
pull every arm once, then follow the upper confidence bound until the
incumbent has been confirmed.

Determinism contract: the advisor owns a private seeded generator and
every draw happens on the simulator's main thread in run order (the
adaptive loop calls :meth:`select` once per run), so a fixed seed
reproduces the exact pull sequence regardless of host ``workers`` or
evaluation ``backend`` -- the same rule the noise and chaos streams
follow.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..errors import LearnError

#: UCB exploration coefficient; sqrt(2) is the classic UCB1 constant.
DEFAULT_EXPLORATION = math.sqrt(2.0)
#: Pulls of the incumbent best arm required to declare convergence.
DEFAULT_CONFIDENCE_PULLS = 3


def default_dop_arms(max_dop: int) -> tuple[int, ...]:
    """Candidate DOP levels: 0 (serial) plus powers of two up to the cap.

    Geometric spacing keeps the arm count logarithmic in machine size
    (7 arms on a 32-thread box) while still bracketing the optimum: the
    best achievable DOP is within 2x of some arm, and the simulated
    speedup curve is flat enough near its optimum that a 2x bracket
    lands inside the paper's "good plan" region.
    """
    if max_dop < 1:
        raise LearnError(f"max_dop must be >= 1, got {max_dop}")
    arms = [0]
    level = 1
    while level < max_dop:
        arms.append(level)
        level *= 2
    arms.append(max_dop)
    return tuple(dict.fromkeys(arms))


@dataclass
class ArmState:
    """Book-keeping for one candidate DOP level."""

    dop: int
    pulls: int = 0
    total_reward: float = 0.0
    rewards: list[float] = field(default_factory=list)

    @property
    def mean_reward(self) -> float:
        return self.total_reward / self.pulls if self.pulls else 0.0


class BanditAdvisor:
    """Seeded UCB1 advisor over a fixed set of DOP arms.

    Rewards are speedups over the serial run (``serial_time /
    exec_time``), so "higher is better" and the scale is
    machine-independent.  ``warm_arm`` (from the experience store) is
    pulled first during the initial sweep, which front-loads the most
    promising plan and lets the confidence rule finish earlier.
    """

    def __init__(
        self,
        arms: tuple[int, ...] | list[int],
        *,
        seed: int,
        exploration: float = DEFAULT_EXPLORATION,
        confidence_pulls: int = DEFAULT_CONFIDENCE_PULLS,
        warm_arm: int | None = None,
    ) -> None:
        if not arms:
            raise LearnError("bandit needs at least one arm")
        if len(set(arms)) != len(arms):
            raise LearnError(f"duplicate bandit arms: {arms}")
        if exploration < 0:
            raise LearnError("exploration must be >= 0")
        if confidence_pulls < 1:
            raise LearnError("confidence_pulls must be >= 1")
        self.arms = [ArmState(dop=int(dop)) for dop in arms]
        self.exploration = exploration
        self.confidence_pulls = confidence_pulls
        self._rng = np.random.default_rng(seed)
        self._total_pulls = 0
        self._sweep: list[int] = list(range(len(self.arms)))
        if warm_arm is not None:
            nearest = self.nearest_arm(warm_arm)
            self._sweep.remove(nearest)
            self._sweep.insert(0, nearest)

    # ------------------------------------------------------------------
    def nearest_arm(self, dop: int) -> int:
        """Index of the arm closest to ``dop`` (ties to the lower arm)."""
        return min(
            range(len(self.arms)),
            key=lambda i: (abs(self.arms[i].dop - dop), self.arms[i].dop),
        )

    def select(self) -> int:
        """The arm index to pull next (one seeded draw per call).

        The RNG is advanced exactly once per call -- even during the
        deterministic initial sweep -- so the draw sequence depends only
        on the call count, never on observed rewards; replaying the same
        rewards replays the same pulls.
        """
        jitter = float(self._rng.random()) * 1e-9
        for index in self._sweep:
            if self.arms[index].pulls == 0:
                return index
        scores = []
        log_total = math.log(max(self._total_pulls, 1))
        for index, arm in enumerate(self.arms):
            bonus = self.exploration * math.sqrt(log_total / arm.pulls)
            scores.append((arm.mean_reward + bonus + jitter * index, index))
        return max(scores)[1]

    def observe(self, index: int, reward: float) -> None:
        """Record one pull's reward (a speedup over serial)."""
        if not 0 <= index < len(self.arms):
            raise LearnError(f"unknown arm index {index}")
        arm = self.arms[index]
        arm.pulls += 1
        arm.total_reward += reward
        arm.rewards.append(reward)
        self._total_pulls += 1

    # ------------------------------------------------------------------
    @property
    def total_pulls(self) -> int:
        return self._total_pulls

    def best_index(self) -> int:
        """The incumbent: highest mean reward (ties to the lower DOP)."""
        pulled = [i for i, arm in enumerate(self.arms) if arm.pulls]
        if not pulled:
            return 0
        return max(pulled, key=lambda i: (self.arms[i].mean_reward, -self.arms[i].dop))

    def converged(self) -> bool:
        """Every arm explored and the incumbent confirmed."""
        if any(arm.pulls == 0 for arm in self.arms):
            return False
        return self.arms[self.best_index()].pulls >= self.confidence_pulls

    def summary(self) -> list[dict]:
        """Per-arm pull/reward table (for ``--explain`` and the bench)."""
        return [
            {
                "dop": arm.dop,
                "pulls": arm.pulls,
                "mean_reward": round(arm.mean_reward, 4),
            }
            for arm in self.arms
        ]
