"""Plan layer: operator DAGs, builder, validation, analysis, printing."""

from .analysis import AnalysisReport, Diagnostic, analyze_plan
from .builder import PlanBuilder
from .diff import EvolutionLog, PlanDiff, diff_plans
from .export import plan_from_json, to_dot, to_json
from .graph import Plan, PlanNode, iter_edges
from .printer import format_plan, format_tree
from .stats import PlanStats, plan_stats
from .validate import validate_plan

__all__ = [
    "AnalysisReport",
    "Diagnostic",
    "Plan",
    "PlanBuilder",
    "PlanNode",
    "PlanDiff",
    "PlanStats",
    "EvolutionLog",
    "analyze_plan",
    "format_plan",
    "format_tree",
    "diff_plans",
    "iter_edges",
    "plan_from_json",
    "plan_stats",
    "to_dot",
    "to_json",
    "validate_plan",
]
