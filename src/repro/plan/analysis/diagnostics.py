"""Diagnostic records produced by the plan analyzer.

Since the codebase analyzer (:mod:`repro.analysis`, ``repro analyze``)
landed, both static analyzers share one diagnostic shape and severity /
exit-code convention, defined in :mod:`repro.analysis.diagnostics`.
This module re-exports it so every existing ``repro.plan.analysis``
import keeps working; plan findings simply leave ``file``/``line`` unset
and anchor on plan node ids instead.

Severity policy (see ``docs/plan_analysis.md``):

* ``error`` -- the plan is semantically broken: executing it would crash
  or silently produce results different from the serial plan's.
* ``warn`` -- the plan executes correctly but carries a structural smell
  that blocks further adaptation or wastes resources.
* ``info`` -- an observation (unknown operator, unprovable property)
  that limits what the analyzer can guarantee.
"""

from __future__ import annotations

from ...analysis.diagnostics import (
    SEVERITIES,
    AnalysisReport,
    Diagnostic,
    exit_code,
    report_document,
)

__all__ = [
    "AnalysisReport",
    "Diagnostic",
    "SEVERITIES",
    "exit_code",
    "report_document",
]
