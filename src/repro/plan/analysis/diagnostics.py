"""Diagnostic records produced by the plan analyzer.

A :class:`Diagnostic` is one finding of one analysis rule: a stable rule
id (``pass.rule`` form, e.g. ``partition.overlap``), a severity, the plan
node ids it concerns, a human-readable message, and an optional fix hint.
An :class:`AnalysisReport` is the ordered collection of findings from one
:func:`~repro.plan.analysis.analyze_plan` call.

Severity policy (see ``docs/plan_analysis.md``):

* ``error`` -- the plan is semantically broken: executing it would crash
  or silently produce results different from the serial plan's.
* ``warn`` -- the plan executes correctly but carries a structural smell
  that blocks further adaptation or wastes resources.
* ``info`` -- an observation (unknown operator, unprovable property)
  that limits what the analyzer can guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

#: Ordered severities, most severe first.
SEVERITIES = ("error", "warn", "info")


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one analysis rule."""

    rule: str
    severity: str  # "error" | "warn" | "info"
    message: str
    nodes: tuple[int, ...] = ()
    hint: str | None = None

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    def format(self) -> str:
        where = ""
        if self.nodes:
            where = " @ " + ", ".join(f"#{nid}" for nid in self.nodes)
        text = f"{self.severity:5s} {self.rule}{where}: {self.message}"
        if self.hint:
            text += f" (hint: {self.hint})"
        return text

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly form (used by plan export and ``repro lint``)."""
        doc: dict[str, Any] = {
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
            "nodes": list(self.nodes),
        }
        if self.hint:
            doc["hint"] = self.hint
        return doc


@dataclass(frozen=True)
class AnalysisReport:
    """All diagnostics from one analyzer run over one plan."""

    diagnostics: tuple[Diagnostic, ...] = field(default_factory=tuple)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def by_severity(self, severity: str) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity == severity)

    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        return self.by_severity("error")

    @property
    def warnings(self) -> tuple[Diagnostic, ...]:
        return self.by_severity("warn")

    @property
    def infos(self) -> tuple[Diagnostic, ...]:
        return self.by_severity("info")

    @property
    def has_errors(self) -> bool:
        return any(d.severity == "error" for d in self.diagnostics)

    @property
    def has_warnings(self) -> bool:
        return any(d.severity == "warn" for d in self.diagnostics)

    def by_rule(self, rule: str) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.rule == rule)

    @property
    def rules(self) -> set[str]:
        """The distinct rule ids that fired."""
        return {d.rule for d in self.diagnostics}

    def summary(self) -> str:
        """One-line count summary, e.g. ``2 errors, 1 warning``."""
        counts = [
            (len(self.errors), "error(s)"),
            (len(self.warnings), "warning(s)"),
            (len(self.infos), "info"),
        ]
        parts = [f"{n} {label}" for n, label in counts if n]
        return ", ".join(parts) if parts else "clean"

    def format(self) -> str:
        """Multi-line listing, most severe first."""
        rank = {severity: i for i, severity in enumerate(SEVERITIES)}
        ordered = sorted(self.diagnostics, key=lambda d: rank[d.severity])
        return "\n".join(d.format() for d in ordered)

    def to_dicts(self) -> list[dict[str, Any]]:
        return [d.to_dict() for d in self.diagnostics]
