"""Pass 4: structural lints and cost-monotonicity checks.

Nothing here breaks correctness -- these rules flag mutations that waste
the machine or freeze the plan's further evolution: exchange unions past
the fan-in threshold (the medium mutation will never remove them, so
they ossify into serial barriers), degenerate one-input packs, empty or
unsplittable partition slices, duplicated pack branches, and splits the
cost model says cannot pay off (fewer than two tuples to divide).

Rules: ``lint.duplicate-input`` (error), ``lint.pack-fanin`` (warn),
``lint.empty-slice`` (warn), ``lint.degenerate-pack`` (info),
``lint.single-unit-slice`` (info), ``lint.split-no-benefit`` (info).
(``lint.no-outputs`` and ``lint.cycle`` are emitted by the framework
before any pass runs.)
"""

from __future__ import annotations

from ...operators.slice import PartitionSlice
from ..graph import PlanNode
from .framework import AnalysisContext, AnalysisPass


class LintPass(AnalysisPass):
    """Plan-shape smells that block or waste further adaptation."""

    name = "lint"

    def run(self, ctx: AnalysisContext) -> None:
        for node in ctx.nodes:
            if node.kind == "pack":
                self._lint_pack(ctx, node)
            elif isinstance(node.op, PartitionSlice):
                self._lint_slice(ctx, node)

    # ------------------------------------------------------------------
    def _lint_pack(self, ctx: AnalysisContext, pack: PlanNode) -> None:
        seen: set[int] = set()
        for child in pack.inputs:
            if child.nid in seen:
                ctx.emit(
                    "lint.duplicate-input",
                    "error",
                    f"pack reads #{child.nid} {child.describe()} twice; its "
                    "rows would be duplicated in the packed result",
                    pack,
                    child,
                )
                break
            seen.add(child.nid)
        fanin = len(pack.inputs)
        if fanin > ctx.pack_fanin_limit:
            ctx.emit(
                "lint.pack-fanin",
                "warn",
                f"pack fan-in {fanin} exceeds the removal threshold "
                f"({ctx.pack_fanin_limit}); the medium mutation will never "
                "remove this union and it ossifies into a serial barrier",
                pack,
                hint="raise pack_fanin_limit or stop splitting this subtree",
            )
        elif fanin == 1:
            ctx.emit(
                "lint.degenerate-pack",
                "info",
                "pack has a single input; it only copies data",
                pack,
                hint="splice the input through to the pack's consumers",
            )

    def _lint_slice(self, ctx: AnalysisContext, node: PlanNode) -> None:
        op: PartitionSlice = node.op
        if op.lo == op.hi:
            ctx.emit(
                "lint.empty-slice",
                "warn",
                f"{node.describe()} covers an empty range; its clone only "
                "burns a scheduler slot",
                node,
            )
            return
        if op.hi - op.lo < 2:
            ctx.emit(
                "lint.single-unit-slice",
                "info",
                f"{node.describe()} is a single fraction unit; dynamic "
                "partitioning cannot split it further",
                node,
            )
        source = node.inputs[0] if node.inputs else None
        if source is None:
            return
        shape = ctx.shapes.get(source.nid)
        if shape is not None and shape.rows_hi is not None and shape.rows_hi < 2:
            ctx.emit(
                "lint.split-no-benefit",
                "info",
                f"slicing #{source.nid} {source.describe()} with at most "
                f"{shape.rows_hi} row(s): the cost model says a split of "
                "fewer than two tuples cannot reduce execution time",
                node,
                source,
            )
