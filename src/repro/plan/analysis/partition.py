"""Pass 2: partition-safety analysis.

For every exchange union (``Pack``) the pass proves -- or refutes -- that
the partition branches flowing into it cover their common base exactly
once: no gap, no overlap, full coverage, in slice order.  Fan-outs are
tracked as exact :class:`fractions.Fraction` intervals per *base node*
(the node a ``PartitionSlice`` is laid over, or the column of a partial
``Scan``), propagated through clone subtrees, so the proof survives any
number of splits, nested dynamic partitions, and zipped operand packs.

Value partitions (``ValuePartition``) are checked separately: the value
ranges of sibling partitions must chain ``(-inf .. c1)(c1 .. c2)...(ck
.. +inf)`` exactly.

Packs prove *contiguity*; the union interval propagates upward (nested
packs legitimately re-assemble sub-intervals), and full coverage is
enforced where it must hold: at the plan outputs.

Rules: ``partition.overlap`` (error), ``partition.gap`` (error),
``partition.coverage`` (error, at outputs), ``partition.order`` (error),
``partition.misaligned`` (error), ``partition.value-coverage`` (error),
``partition.unknown-base`` (info).
"""

from __future__ import annotations

from fractions import Fraction

from ...operators.exchange import Pack
from ...operators.slice import FRACTION_UNITS, PartitionSlice, ValuePartition
from ..graph import PlanNode
from .framework import AnalysisContext, AnalysisPass

#: base key -> (lo, hi) fraction interval of that base covered by a node.
IntervalMap = dict[object, tuple[Fraction, Fraction]]

ZERO = Fraction(0)
ONE = Fraction(1)

#: Kinds whose output row *positions* no longer correspond to input
#: positions, so positional intervals must not propagate through them.
_INTERVAL_BARRIERS = frozenset({"vpartition", "topn", "tail_filter"})

#: Kinds that require every same-base operand to cover the same interval
#: (their evaluate() zips inputs tuple-for-tuple).
_ALIGNED_KINDS = frozenset({"calc", "groupby"})


class PartitionSafetyPass(AnalysisPass):
    """Interval propagation plus exact-tiling proofs at every pack."""

    name = "partition"

    def run(self, ctx: AnalysisContext) -> None:
        for node in ctx.nodes:  # topological
            ctx.intervals[node.nid] = self._intervals(ctx, node)
        for node in ctx.nodes:
            # Type, not kind: Gather (kind "gather") is a Pack subclass
            # and its cross-node union needs the same tiling proof.
            if isinstance(node.op, Pack):
                self._check_pack(ctx, node)
                self._check_value_partitions(ctx, node)
        self._check_output_coverage(ctx)

    # ------------------------------------------------------------------
    # Interval propagation
    # ------------------------------------------------------------------
    def _intervals(self, ctx: AnalysisContext, node: PlanNode) -> IntervalMap:
        if isinstance(node.op, PartitionSlice):
            return self._slice_intervals(ctx, node)
        if node.kind == "scan":
            op = node.op
            length = len(op.column)
            if length and (op.lo > 0 or op.hi < length):
                # A partial scan partitions its column: key by the
                # column's stable uid so sibling partial scans share a
                # base (an id() key would differ across runs and leak
                # allocation addresses into analysis output).
                key = ("column", op.column.uid)
                return {key: (Fraction(op.lo, length), Fraction(op.hi, length))}
            return {}
        if node.kind in _INTERVAL_BARRIERS:
            return {}
        if isinstance(node.op, Pack):
            return self._pack_intervals(ctx, node)
        merged: IntervalMap = {}
        conflicted: set[object] = set()
        for child in node.inputs:
            for base, interval in ctx.intervals.get(child.nid, {}).items():
                if base in conflicted:
                    continue
                previous = merged.get(base)
                if previous is None:
                    merged[base] = interval
                elif previous != interval:
                    if node.kind in _ALIGNED_KINDS:
                        ctx.emit(
                            "partition.misaligned",
                            "error",
                            f"{node.describe()} reads misaligned partitions of "
                            f"the same base: {_fmt(previous)} vs {_fmt(interval)}",
                            node,
                            hint="every vector operand of a clone must cover "
                            "the same partition range",
                        )
                    # Conflicting lineages: nothing downstream can be proven
                    # about this base through this node.  A dedicated set,
                    # not a None marker -- a later branch must not be able
                    # to "resolve" the conflict by overwriting it.
                    conflicted.add(base)
                    del merged[base]
        return merged

    def _slice_intervals(self, ctx: AnalysisContext, node: PlanNode) -> IntervalMap:
        op: PartitionSlice = node.op
        lo = Fraction(op.lo, FRACTION_UNITS)
        hi = Fraction(op.hi, FRACTION_UNITS)
        if not node.inputs:
            return {}
        src = node.inputs[0]
        src_map = ctx.intervals.get(src.nid, {})
        if isinstance(src.op, PartitionSlice) and src_map:
            # Nested slice: compose fractions relative to each base the
            # inner slice already covers (dynamic partitioning, Fig. 8).
            composed: IntervalMap = {}
            for base, (b_lo, b_hi) in src_map.items():
                width = b_hi - b_lo
                composed[base] = (b_lo + width * lo, b_lo + width * hi)
            return composed
        # Slice laid directly over a producer: that producer is the base.
        return {src.nid: (lo, hi)}

    def _pack_intervals(self, ctx: AnalysisContext, pack: PlanNode) -> IntervalMap:
        """A pack's coverage of each base is the union of its branches'.

        Mutations nest: a pack may replace a clone that itself covered
        only half of the base, so a pack legitimately re-assembles a
        *sub-interval*, not necessarily the whole base.  Contiguity of
        the branches is proven separately by :meth:`_check_pack`; here we
        only propagate the union so outer packs (and the final output
        check) can finish the proof.
        """
        maps = [ctx.intervals.get(child.nid, {}) for child in pack.inputs]
        bases: set[object] = set()
        for interval_map in maps:
            bases.update(interval_map)
        union: IntervalMap = {}
        for base in bases:
            entries = [m.get(base) for m in maps]
            if any(entry is None for entry in entries):
                # A branch of unknown lineage: the union is unprovable
                # (reported as ``partition.unknown-base`` at the pack).
                continue
            known = [e for e in entries if e is not None]
            union[base] = (min(e[0] for e in known), max(e[1] for e in known))
        return union

    # ------------------------------------------------------------------
    # Pack tiling proof
    # ------------------------------------------------------------------
    def _check_pack(self, ctx: AnalysisContext, pack: PlanNode) -> None:
        maps = [ctx.intervals.get(child.nid, {}) for child in pack.inputs]
        bases: set[object] = set()
        for interval_map in maps:
            bases.update(interval_map)
        for base in bases:
            entries = [m.get(base) for m in maps]
            known = [e for e in entries if e is not None]
            distinct = set(known)
            if len(distinct) <= 1:
                # Every input covers the same range (a shared operand such
                # as an unsplit join inner): nothing to tile.
                continue
            if len(known) < len(entries):
                ctx.emit(
                    "partition.unknown-base",
                    "info",
                    f"pack combines {len(known)} branch(es) partitioned over "
                    f"{self._base_name(ctx, base)} with {len(entries) - len(known)} "
                    "branch(es) of unknown lineage; tiling cannot be proven",
                    pack,
                )
                continue
            self._check_tiling(ctx, pack, base, entries)

    def _check_tiling(
        self,
        ctx: AnalysisContext,
        pack: PlanNode,
        base: object,
        entries: list[tuple[Fraction, Fraction]],
    ) -> None:
        base_name = self._base_name(ctx, base)
        order = sorted(range(len(entries)), key=lambda i: entries[i])
        if order != sorted(order):
            pretty = [_fmt(entries[i]) for i in range(len(entries))]
            ctx.emit(
                "partition.order",
                "error",
                f"pack inputs over {base_name} are out of slice order: "
                f"{', '.join(pretty)}; packed results would not match the "
                "serial output order",
                pack,
                hint="reorder the pack inputs by partition position",
            )
            entries = [entries[i] for i in order]
        previous_hi: Fraction | None = None
        for lo, hi in entries:
            if previous_hi is not None and lo < previous_hi:
                ctx.emit(
                    "partition.overlap",
                    "error",
                    f"partitions of {base_name} overlap: "
                    f"{_fmt((lo, hi))} re-covers rows below "
                    f"{_fmt_frac(previous_hi)}; packed results would "
                    "duplicate those rows",
                    pack,
                )
                break
            if previous_hi is not None and lo > previous_hi:
                ctx.emit(
                    "partition.gap",
                    "error",
                    f"partitions of {base_name} leave a gap: rows in "
                    f"[{_fmt_frac(previous_hi)}, {_fmt_frac(lo)}) are covered "
                    "by no branch; packed results would silently drop them",
                    pack,
                )
                break
            previous_hi = hi

    def _check_output_coverage(self, ctx: AnalysisContext) -> None:
        """Partitioned lineage must be fully re-assembled by the outputs.

        Packs only prove contiguity; a nested pack may legitimately cover
        a sub-interval of its base.  But by the time a result leaves the
        plan, every base it still tracks must be covered exactly once in
        full -- anything less means some rows never reached the output.
        """
        for out in ctx.plan.outputs:
            for base, (lo, hi) in ctx.intervals.get(out.nid, {}).items():
                if (lo, hi) != (ZERO, ONE):
                    ctx.emit(
                        "partition.coverage",
                        "error",
                        f"plan output #{out.nid} {out.describe()} was computed "
                        f"from only {_fmt((lo, hi))} of "
                        f"{self._base_name(ctx, base)}; the partitions were "
                        "never merged back to full coverage",
                        out,
                        hint="pack the missing partitions before the output",
                    )

    # ------------------------------------------------------------------
    # Value partition chains
    # ------------------------------------------------------------------
    def _check_value_partitions(self, ctx: AnalysisContext, pack: PlanNode) -> None:
        vparts: list[ValuePartition] = []
        sources: set[int] = set()
        for child in pack.inputs:
            found = self._find_vpartition(child, depth=4)
            if found is None:
                return  # not a value-partitioned fan-out (or not provable)
            vparts.append(found.op)
            sources.update(s.nid for s in found.inputs)
        if len(vparts) < 2 or len(sources) != 1:
            return
        bounds = sorted(
            (vp.lo if vp.lo is not None else float("-inf"), vp) for vp in vparts
        )
        previous_hi: float | int | None = None  # None = open below (start)
        for i, (__, vp) in enumerate(bounds):
            lo = vp.lo
            if i == 0:
                if lo is not None:
                    ctx.emit(
                        "partition.value-coverage",
                        "error",
                        f"lowest value partition starts at {lo!r}; values below "
                        "it fall into no partition",
                        pack,
                        hint="the first partition must be open below (lo=None)",
                    )
                    return
            elif lo != previous_hi:
                what = "overlap" if (lo is None or (previous_hi is not None and lo < previous_hi)) else "gap"
                ctx.emit(
                    "partition.value-coverage",
                    "error",
                    f"value partitions {what}: one range ends at "
                    f"{previous_hi!r} but the next starts at {lo!r}",
                    pack,
                )
                return
            previous_hi = vp.hi
        if previous_hi is not None:
            ctx.emit(
                "partition.value-coverage",
                "error",
                f"highest value partition stops at {previous_hi!r}; values at "
                "or above it fall into no partition",
                pack,
                hint="the last partition must be open above (hi=None)",
            )

    def _find_vpartition(self, node: PlanNode, depth: int) -> PlanNode | None:
        """The value-partition operator feeding this pack branch, if the
        branch is a short clone chain over one (clones keep it as their
        first vector input)."""
        if isinstance(node.op, ValuePartition):
            return node
        if depth == 0 or not node.inputs:
            return None
        return self._find_vpartition(node.inputs[0], depth - 1)

    # ------------------------------------------------------------------
    @staticmethod
    def _base_name(ctx: AnalysisContext, base: object) -> str:
        if isinstance(base, int):
            node = ctx.by_nid.get(base)
            if node is not None:
                return f"#{node.nid} {node.describe()}"
        if isinstance(base, tuple) and base and base[0] == "column":
            return "base column"
        return str(base)


def _fmt_frac(value: Fraction) -> str:
    return f"{float(value) * 100:.1f}%"


def _fmt(interval: tuple[Fraction, Fraction]) -> str:
    lo, hi = interval
    return f"[{_fmt_frac(lo)}, {_fmt_frac(hi)})"
