"""Shard-lineage rules for placed (cluster) plans.

Placement is a *where*, never a *what*: a plan must compute the same
bytes wherever its operators run.  The structural side of that claim is
what this pass proves:

* data may only cross a node boundary through an exchange-family
  operator (``exchange``/``gather``/``shuffle``) -- any other consumer
  reading a remote input would silently assume shared memory that the
  shared-nothing model does not provide;
* a gather that unions shard partials must union a *partition*: scans
  of the same column feeding different gather inputs may not overlap
  (rows double-counted) and should not leave gaps (rows dropped).

The pass is inert on placement-free plans -- no operator carries an
explicit ``placement``, nothing is emitted -- so it can sit in the
default pipeline without taxing single-machine users.
"""

from __future__ import annotations

from .framework import AnalysisContext, AnalysisPass

#: Kinds allowed to carry data across nodes (mirrors repro.cluster).
NET_KINDS = ("exchange", "gather", "shuffle")


class ShardLineagePass(AnalysisPass):
    """Cross-node edges and gather-union coverage."""

    name = "cluster"

    def run(self, ctx: AnalysisContext) -> None:
        # getattr: exotic operators outside the Operator hierarchy have
        # no placement attribute and simply count as unplaced.
        if all(
            getattr(node.op, "placement", None) is None
            for node in ctx.nodes
        ):
            return
        placements = self._placements(ctx)
        self._check_edges(ctx, placements)
        self._check_gathers(ctx)

    # ------------------------------------------------------------------
    def _placements(self, ctx: AnalysisContext) -> dict[int, int]:
        """Effective placements, mirroring the cluster executor's rule.

        Bounds against a concrete cluster size are the executor's job
        (the pass has no cluster in scope); structure is ours.
        """
        placements: dict[int, int] = {}
        for node in ctx.nodes:  # topological
            where = getattr(node.op, "placement", None)
            if where is None:
                where = placements[node.inputs[0].nid] if node.inputs else 0
            placements[node.nid] = where
        return placements

    def _check_edges(
        self, ctx: AnalysisContext, placements: dict[int, int]
    ) -> None:
        for node in ctx.nodes:
            if node.kind in NET_KINDS:
                continue
            here = placements[node.nid]
            for child in node.inputs:
                there = placements[child.nid]
                if there != here:
                    ctx.emit(
                        "cluster.cross-node-edge",
                        "error",
                        f"{node.describe()} on node {here} reads "
                        f"{child.describe()} on node {there} without an "
                        "exchange",
                        node,
                        child,
                        hint=(
                            "splice an Exchange/Gather/Shuffle on the "
                            "edge, or move one side's placement"
                        ),
                    )

    def _check_gathers(self, ctx: AnalysisContext) -> None:
        for node in ctx.nodes:
            if node.kind != "gather":
                continue
            # Scan ranges per column feeding each gather input, found by
            # walking every operator upstream of that input.
            by_column: dict[object, list[tuple[int, int]]] = {}
            lengths: dict[object, int] = {}
            for branch in node.inputs:
                for scan in self._scans_under(ctx, branch):
                    key = scan.op.column.cache_key()
                    by_column.setdefault(key, []).append(
                        (scan.op.lo, scan.op.hi)
                    )
                    lengths[key] = len(scan.op.column)
            for key, ranges in by_column.items():
                ranges.sort()
                prev_hi = None
                gap = False
                for lo, hi in ranges:
                    if prev_hi is not None and lo < prev_hi:
                        ctx.emit(
                            "cluster.gather-overlap",
                            "error",
                            f"{node.describe()} unions scans whose ranges "
                            f"overlap at [{lo}, {min(hi, prev_hi)}); rows "
                            "would be double-counted",
                            node,
                            hint="shard bounds must tile the column",
                        )
                        break
                    if prev_hi is not None and lo > prev_hi:
                        gap = True
                    prev_hi = max(hi, prev_hi) if prev_hi is not None else hi
                else:
                    if gap or (ranges and ranges[0][0] > 0) or (
                        prev_hi is not None and prev_hi < lengths[key]
                    ):
                        ctx.emit(
                            "cluster.gather-gap",
                            "warn",
                            f"{node.describe()} unions scans that leave "
                            "rows of a column uncovered",
                            node,
                            hint=(
                                "fine for intentional sub-range queries; "
                                "a bug if the gather stands for the whole "
                                "table"
                            ),
                        )

    def _scans_under(self, ctx: AnalysisContext, root):
        seen: set[int] = set()
        stack = [root]
        found = []
        while stack:
            node = stack.pop()
            if node.nid in seen:
                continue
            seen.add(node.nid)
            if node.kind == "scan":
                found.append(node)
            stack.extend(node.inputs)
        return found
