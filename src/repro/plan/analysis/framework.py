"""The multi-pass analysis framework: context, pass interface, driver.

``analyze_plan`` runs a sequence of :class:`AnalysisPass` objects over
one plan.  Passes share an :class:`AnalysisContext` that caches the
topological node order and the consumer map, and that accumulates both
diagnostics and cross-pass facts (the lineage pass publishes per-node
shapes; the partition pass publishes per-node partition intervals) so
later passes can build on earlier inference instead of re-deriving it.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Sequence

from ...errors import PlanError
from ..graph import Plan, PlanNode
from .diagnostics import AnalysisReport, Diagnostic

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .lineage import Shape
    from .partition import IntervalMap

#: Paper Section 2.3: exchange unions with more inputs than this cannot
#: be removed by the medium mutation any more (plan-explosion guard), so
#: the lint pass flags them as ossified serial barriers.
DEFAULT_PACK_FANIN_LIMIT = 15


class AnalysisContext:
    """Shared state for one analyzer run over one plan."""

    def __init__(self, plan: Plan, *, pack_fanin_limit: int = DEFAULT_PACK_FANIN_LIMIT) -> None:
        self.plan = plan
        self.pack_fanin_limit = pack_fanin_limit
        self.nodes: list[PlanNode] = plan.nodes()  # may raise on cycles
        self.by_nid: dict[int, PlanNode] = {node.nid: node for node in self.nodes}
        self.consumers: dict[int, list[PlanNode]] = {node.nid: [] for node in self.nodes}
        for node in self.nodes:
            for child in node.inputs:
                self.consumers[child.nid].append(node)
        self.diagnostics: list[Diagnostic] = []
        #: node id -> inferred output shape (published by the lineage pass).
        self.shapes: dict[int, "Shape"] = {}
        #: node id -> partition interval map (published by the partition pass).
        self.intervals: dict[int, "IntervalMap"] = {}

    def emit(
        self,
        rule: str,
        severity: str,
        message: str,
        *nodes: PlanNode,
        hint: str | None = None,
    ) -> None:
        self.diagnostics.append(
            Diagnostic(
                rule=rule,
                severity=severity,
                message=message,
                nodes=tuple(node.nid for node in nodes),
                hint=hint,
            )
        )


class AnalysisPass(ABC):
    """One rule family run over the whole plan."""

    #: Short name used as the rule-id prefix (``<name>.<rule>``).
    name: str = "pass"

    @abstractmethod
    def run(self, ctx: AnalysisContext) -> None:
        """Inspect ``ctx.plan`` and :meth:`~AnalysisContext.emit` findings."""


def default_passes() -> tuple[AnalysisPass, ...]:
    """The standard pass pipeline, in dependency order."""
    from .cluster import ShardLineagePass
    from .determinism import DeterminismPass
    from .lineage import LineagePass
    from .lints import LintPass
    from .partition import PartitionSafetyPass

    return (
        LineagePass(),
        PartitionSafetyPass(),
        DeterminismPass(),
        LintPass(),
        ShardLineagePass(),
    )


def analyze_plan(
    plan: Plan,
    *,
    passes: Sequence[AnalysisPass] | None = None,
    pack_fanin_limit: int = DEFAULT_PACK_FANIN_LIMIT,
) -> AnalysisReport:
    """Run the static analyzer over ``plan`` and collect diagnostics.

    Never raises on a malformed plan: structural impossibilities (cycles,
    empty output lists) come back as ``error`` diagnostics so callers can
    treat every outcome uniformly.
    """
    if not plan.outputs:
        return AnalysisReport(
            (
                Diagnostic(
                    rule="lint.no-outputs",
                    severity="error",
                    message="plan has no outputs; the graph is empty by reachability",
                    hint="call set_outputs()/build() with the result node(s)",
                ),
            )
        )
    try:
        ctx = AnalysisContext(plan, pack_fanin_limit=pack_fanin_limit)
    except PlanError as exc:
        return AnalysisReport(
            (
                Diagnostic(
                    rule="lint.cycle",
                    severity="error",
                    message=str(exc),
                    hint="a mutation rewired a node into its own input chain",
                ),
            )
        )
    for analysis_pass in passes if passes is not None else default_passes():
        analysis_pass.run(ctx)
    return AnalysisReport(tuple(ctx.diagnostics))
