"""Pass 3: determinism race detection.

Under the data-flow scheduler, clone subplans finish in timing-dependent
order; only the exchange union's input *positions* (slice order keys)
keep packed results deterministic.  This pass finds the two ways that
guarantee breaks:

* an **unordered pack** -- inputs without order keys -- whose result
  reaches an order-sensitive consumer (``TopN``/``TailFilter``, or a
  plan output) before any order-restoring barrier, so the query result
  depends on which clone the scheduler happened to finish first;
* a **wrong combiner** above a pack of partials: an ``AggrMerge`` or
  scalar ``Aggregate`` whose merge function is not the one that combines
  the partials' aggregate (the classic count-of-counts bug), or a
  ``Sort`` combiner whose key/direction differs from its partials'.

Rules: ``determinism.race`` (error), ``determinism.unordered-output``
(warn), ``determinism.unordered-pack`` (info), ``determinism.merge-func``
(error), ``determinism.mixed-partials`` (error),
``determinism.sort-combiner`` (error), ``determinism.duplicate-key``
(warn).
"""

from __future__ import annotations

from ...operators.aggregate import Aggregate
from ...operators.groupby import AggrMerge, GroupAggregate, merge_func_for
from ...operators.sort import Sort
from ..graph import PlanNode
from .framework import AnalysisContext, AnalysisPass

#: Operators whose output does not depend on their input's tuple order
#: (they sort, hash, or reduce): traversal of order-sensitivity stops.
_ORDER_BARRIERS = frozenset(
    {"sort", "groupby", "aggregate", "aggr_merge", "cand_union", "cand_intersect"}
)

#: Operators whose *semantics* read tuple order: first-k, grouped HAVING
#: over an assumed-grouped stream.
_ORDER_SENSITIVE = frozenset({"topn", "tail_filter"})


class DeterminismPass(AnalysisPass):
    """Order-key auditing plus combiner/partial consistency checks."""

    name = "determinism"

    def run(self, ctx: AnalysisContext) -> None:
        for node in ctx.nodes:
            if node.kind == "pack":
                self._check_order_keys(ctx, node)
            self._check_combiner(ctx, node)

    # ------------------------------------------------------------------
    # Unordered packs
    # ------------------------------------------------------------------
    def _check_order_keys(self, ctx: AnalysisContext, pack: PlanNode) -> None:
        keys = [child.order_key for child in pack.inputs]
        known = [k for k in keys if k is not None]
        if len(known) != len(set(known)):
            ctx.emit(
                "determinism.duplicate-key",
                "warn",
                f"pack inputs share order keys: {keys}; two branches claim "
                "the same partition position",
                pack,
            )
        if len(pack.inputs) < 2 or None not in keys:
            return
        sink = self._order_sensitive_sink(ctx, pack)
        if sink is not None and sink.kind in _ORDER_SENSITIVE:
            ctx.emit(
                "determinism.race",
                "error",
                f"pack without slice order keys feeds order-sensitive "
                f"{sink.describe()}; the result depends on clone completion "
                "order under the scheduler",
                pack,
                sink,
                hint="set order_key on every pack input, or sort before "
                f"the {sink.kind}",
            )
        elif sink is not None:
            ctx.emit(
                "determinism.unordered-output",
                "warn",
                "pack without slice order keys reaches a plan output; the "
                "result row order depends on scheduler timing",
                pack,
                hint="set order_key on every pack input",
            )
        else:
            ctx.emit(
                "determinism.unordered-pack",
                "info",
                "pack inputs carry no slice order keys; safe only because "
                "every consumer is order-insensitive",
                pack,
            )

    def _order_sensitive_sink(
        self, ctx: AnalysisContext, pack: PlanNode
    ) -> PlanNode | None:
        """The first order-sensitive consumer the pack's tuple order can
        reach, or a pseudo 'output' sink, or None when fully absorbed."""
        outputs = {out.nid for out in ctx.plan.outputs}
        seen: set[int] = set()
        frontier = [pack]
        reached_output: PlanNode | None = None
        while frontier:
            node = frontier.pop()
            if node.nid in seen:
                continue
            seen.add(node.nid)
            if node is not pack:
                if node.kind in _ORDER_SENSITIVE:
                    return node
                if node.kind in _ORDER_BARRIERS:
                    continue
            if node.nid in outputs:
                reached_output = node
            frontier.extend(ctx.consumers.get(node.nid, ()))
        return reached_output

    # ------------------------------------------------------------------
    # Combiner / partial consistency
    # ------------------------------------------------------------------
    def _check_combiner(self, ctx: AnalysisContext, node: PlanNode) -> None:
        source = node.inputs[0] if node.inputs else None
        if source is None or source.kind != "pack":
            return
        partials = source.inputs
        if isinstance(node.op, AggrMerge):
            funcs = {p.op.func for p in partials if isinstance(p.op, GroupAggregate)}
            self._check_merge_funcs(ctx, node, source, funcs, node.op.func)
        elif isinstance(node.op, Aggregate):
            funcs = {
                p.op.func
                for p in partials
                if isinstance(p.op, Aggregate)
                and ctx.shapes.get(p.nid) is not None
                and ctx.shapes[p.nid].family == "scalar"
            }
            self._check_merge_funcs(ctx, node, source, funcs, node.op.func)
        elif isinstance(node.op, Sort):
            for partial in partials:
                if not isinstance(partial.op, Sort):
                    continue
                if (
                    partial.op.descending != node.op.descending
                    or partial.op.by != node.op.by
                ):
                    ctx.emit(
                        "determinism.sort-combiner",
                        "error",
                        f"merge {node.describe()} disagrees with partial "
                        f"{partial.describe()}; merged output would not be "
                        "sorted",
                        node,
                        partial,
                    )

    def _check_merge_funcs(
        self,
        ctx: AnalysisContext,
        combiner: PlanNode,
        pack: PlanNode,
        partial_funcs: set[str],
        merge_func: str,
    ) -> None:
        if not partial_funcs:
            return
        if len(partial_funcs) > 1:
            ctx.emit(
                "determinism.mixed-partials",
                "error",
                f"pack combines partials of different aggregates "
                f"{sorted(partial_funcs)}; they cannot share one merge",
                pack,
                combiner,
            )
            return
        func = next(iter(partial_funcs))
        expected = merge_func_for(func)
        if merge_func != expected:
            ctx.emit(
                "determinism.merge-func",
                "error",
                f"partials compute {func!r} but the combiner merges with "
                f"{merge_func!r}; partial {func} results must be combined "
                f"with {expected!r}",
                combiner,
                pack,
                hint=f"use {expected!r} (e.g. count partials are summed)",
            )
