"""Pass 1: schema and column-lineage inference.

Propagates an output :class:`Shape` for every node bottom-up from the
``Scan``/``Literal`` leaves: the intermediate family the node emits
(column slice, candidate list, BAT, scalar), its value dtype, row-count
bounds, and the set of base columns its values descend from.  On the
way it flags type-impossible edges -- inputs an operator's ``evaluate``
would reject at run time -- and scalar/vector mismatches, subsuming and
extending the arity checks of :mod:`repro.plan.validate`.

Rules: ``lineage.arity`` (error), ``lineage.input-type`` (error),
``lineage.pack-mix`` (error), ``lineage.pack-dtype`` (error),
``lineage.aggregate-input`` (error), ``lineage.groupby-rows`` (warn),
``lineage.unknown-op`` (info).
"""

from __future__ import annotations

from dataclasses import dataclass

from ...operators.aggregate import Aggregate
from ...operators.calc import Calc
from ...operators.groupby import AggrMerge, GroupAggregate
from ...operators.scan import Scan
from ...operators.slice import PartitionSlice
from ...operators.sort import TopN
from ...storage.dtypes import DBL, LNG, OID, DataType
from ..graph import PlanNode
from ..validate import arity_of
from .framework import AnalysisContext, AnalysisPass

#: Intermediate families, matching the runtime types in repro.storage.column.
SLICE, CANDS, BAT, SCALAR, UNKNOWN = "slice", "cands", "bat", "scalar", "unknown"

#: Families that carry a (head, tail) pair usable as vector operands.
VECTOR = frozenset({SLICE, BAT})


@dataclass(frozen=True)
class Shape:
    """Statically inferred output description of one plan node."""

    family: str  # SLICE | CANDS | BAT | SCALAR | UNKNOWN
    dtype: DataType | None = None
    rows_lo: int = 0
    rows_hi: int | None = None  # None = unbounded / unknown
    columns: tuple[str, ...] = ()  # source base columns, "table.column"

    @property
    def is_vector(self) -> bool:
        return self.family in VECTOR

    def describe(self) -> str:
        dtype = self.dtype.name if self.dtype is not None else "?"
        if self.rows_hi is None:
            rows = f"{self.rows_lo}.."
        elif self.rows_hi == self.rows_lo:
            rows = str(self.rows_lo)
        else:
            rows = f"{self.rows_lo}..{self.rows_hi}"
        return f"{self.family}<{dtype}>[{rows}]"


_UNKNOWN = Shape(UNKNOWN)


def _merge_columns(shapes: list[Shape]) -> tuple[str, ...]:
    seen: set[str] = set()
    for shape in shapes:
        seen.update(shape.columns)
    return tuple(sorted(seen))


def _hi(*shapes: Shape) -> int | None:
    """Sum of row upper bounds; unknown if any is unknown."""
    total = 0
    for shape in shapes:
        if shape.rows_hi is None:
            return None
        total += shape.rows_hi
    return total


class LineagePass(AnalysisPass):
    """Bottom-up shape propagation plus type checking of every edge."""

    name = "lineage"

    def run(self, ctx: AnalysisContext) -> None:
        for node in ctx.nodes:  # topological: inputs are already shaped
            ctx.shapes[node.nid] = self._shape(ctx, node)

    # ------------------------------------------------------------------
    def _shape(self, ctx: AnalysisContext, node: PlanNode) -> Shape:
        spec = arity_of(node.op)
        if spec is None:
            ctx.emit(
                "lineage.unknown-op",
                "info",
                f"operator type {type(node.op).__name__} ({node.describe()}) is "
                "unknown to the analyzer; its edges are not checked",
                node,
            )
            return _UNKNOWN
        lo, hi = spec
        n = len(node.inputs)
        if n < lo or (hi is not None and n > hi):
            bound = f"{lo}" if hi == lo else f"{lo}..{hi or 'inf'}"
            ctx.emit(
                "lineage.arity",
                "error",
                f"{node.describe()} has {n} inputs, expected {bound}",
                node,
            )
            return _UNKNOWN
        ins = [ctx.shapes.get(child.nid, _UNKNOWN) for child in node.inputs]
        handler = getattr(self, f"_shape_{node.kind.replace('-', '_')}", None)
        if handler is None:
            return self._shape_default(ctx, node, ins)
        return handler(ctx, node, ins)

    def _bad_input(
        self,
        ctx: AnalysisContext,
        node: PlanNode,
        slot: int,
        expected: str,
        got: Shape,
        *,
        hint: str | None = None,
    ) -> Shape:
        if got.family != UNKNOWN:  # never cascade from unknowable inputs
            ctx.emit(
                "lineage.input-type",
                "error",
                f"{node.describe()} input {slot} must be {expected}, "
                f"but produces {got.describe()}",
                node,
                node.inputs[slot],
                hint=hint,
            )
        return _UNKNOWN

    # -- leaves --------------------------------------------------------
    def _shape_scan(self, ctx, node: PlanNode, ins) -> Shape:
        op: Scan = node.op
        rows = op.hi - op.lo
        name = node.label if node.label else op.column.name
        return Shape(SLICE, op.column.dtype, rows, rows, (name,))

    def _shape_literal(self, ctx, node: PlanNode, ins) -> Shape:
        return Shape(SCALAR, node.op.dtype, 1, 1)

    # -- partitioning --------------------------------------------------
    def _shape_slice(self, ctx, node: PlanNode, ins) -> Shape:
        src = ins[0]
        if src.family == SCALAR:
            return self._bad_input(
                ctx, node, 0, "a slice, BAT, or candidate list", src,
                hint="a positional slice of a scalar cannot be evaluated",
            )
        if src.family == UNKNOWN:
            return _UNKNOWN
        op: PartitionSlice = node.op
        from ...operators.slice import FRACTION_UNITS

        span = op.hi - op.lo
        rows_hi = None
        if src.rows_hi is not None:
            # floor arithmetic can shift one row either way; stay a bound.
            rows_hi = (src.rows_hi * span) // FRACTION_UNITS + 1
        return Shape(src.family, src.dtype, 0, rows_hi, src.columns)

    def _shape_vpartition(self, ctx, node: PlanNode, ins) -> Shape:
        src = ins[0]
        if src.family == UNKNOWN:
            return _UNKNOWN
        if not src.is_vector:
            return self._bad_input(ctx, node, 0, "a slice or BAT", src)
        return Shape(BAT, src.dtype, 0, src.rows_hi, src.columns)

    # -- filters -------------------------------------------------------
    def _shape_select(self, ctx, node: PlanNode, ins) -> Shape:
        src = ins[0]
        if src.family not in (SLICE, UNKNOWN):
            return self._bad_input(
                ctx, node, 0, "a column slice", src,
                hint="selections scan base columns; fetch values first if "
                "filtering an intermediate",
            )
        if len(ins) == 2 and ins[1].family not in (CANDS, UNKNOWN):
            return self._bad_input(ctx, node, 1, "a candidate list", ins[1])
        return Shape(CANDS, OID, 0, src.rows_hi, _merge_columns(ins))

    def _shape_cand_union(self, ctx, node: PlanNode, ins) -> Shape:
        return self._cand_combine(ctx, node, ins)

    def _shape_cand_intersect(self, ctx, node: PlanNode, ins) -> Shape:
        return self._cand_combine(ctx, node, ins)

    def _cand_combine(self, ctx, node: PlanNode, ins) -> Shape:
        for slot, shape in enumerate(ins):
            if shape.family not in (CANDS, UNKNOWN):
                return self._bad_input(ctx, node, slot, "a candidate list", shape)
        return Shape(CANDS, OID, 0, _hi(*ins), _merge_columns(ins))

    # -- tuple reconstruction ------------------------------------------
    def _shape_fetch(self, ctx, node: PlanNode, ins) -> Shape:
        rowids, view = ins
        if rowids.family not in (CANDS, BAT, UNKNOWN):
            return self._bad_input(
                ctx, node, 0, "a candidate list or BAT of row ids", rowids
            )
        if view.family not in (SLICE, UNKNOWN):
            return self._bad_input(
                ctx, node, 1, "a column slice", view,
                hint="fetch gathers from base columns; swap the inputs?",
            )
        return Shape(BAT, view.dtype, 0, rowids.rows_hi, _merge_columns(ins))

    def _shape_mirror(self, ctx, node: PlanNode, ins) -> Shape:
        src = ins[0]
        if src.family not in (CANDS, SLICE, UNKNOWN):
            return self._bad_input(ctx, node, 0, "candidates or a slice", src)
        return Shape(BAT, OID, src.rows_lo, src.rows_hi, src.columns)

    def _shape_heads(self, ctx, node: PlanNode, ins) -> Shape:
        src = ins[0]
        if src.family not in (BAT, UNKNOWN):
            return self._bad_input(ctx, node, 0, "a BAT", src)
        return Shape(CANDS, OID, src.rows_lo, src.rows_hi, src.columns)

    # -- joins ---------------------------------------------------------
    def _shape_join(self, ctx, node: PlanNode, ins) -> Shape:
        for slot, shape in enumerate(ins):
            if shape.family != UNKNOWN and not shape.is_vector:
                return self._bad_input(ctx, node, slot, "a vector (slice or BAT)", shape)
        outer, inner = ins
        rows_hi = None
        if outer.rows_hi is not None and inner.rows_hi is not None:
            rows_hi = outer.rows_hi * inner.rows_hi
        return Shape(BAT, OID, 0, rows_hi, _merge_columns(ins))

    def _shape_semijoin(self, ctx, node: PlanNode, ins) -> Shape:
        for slot, shape in enumerate(ins):
            if shape.family != UNKNOWN and not shape.is_vector:
                return self._bad_input(ctx, node, slot, "a vector (slice or BAT)", shape)
        outer = ins[0]
        return Shape(BAT, outer.dtype, 0, outer.rows_hi, _merge_columns(ins))

    # -- compute -------------------------------------------------------
    def _shape_calc(self, ctx, node: PlanNode, ins) -> Shape:
        a, b = ins
        for slot, shape in enumerate(ins):
            if shape.family == CANDS:
                return self._bad_input(
                    ctx, node, slot, "a scalar or vector", shape,
                    hint="candidate lists carry no values; fetch them first",
                )
        if UNKNOWN in (a.family, b.family):
            return _UNKNOWN
        op: Calc = node.op
        if a.family == SCALAR and b.family == SCALAR:
            dtype = self._calc_dtype(op, a.dtype, b.dtype)
            return Shape(SCALAR, dtype, 1, 1)
        dtype = self._calc_dtype(op, a.dtype, b.dtype)
        vectors = [s for s in (a, b) if s.is_vector]
        rows_hi = min(
            (s.rows_hi for s in vectors if s.rows_hi is not None), default=None
        )
        return Shape(BAT, dtype, 0, rows_hi, _merge_columns(ins))

    @staticmethod
    def _calc_dtype(op: Calc, a: DataType | None, b: DataType | None) -> DataType | None:
        if op.op == "/":
            return DBL
        if a is None or b is None:
            return None
        return DBL if (a is DBL or b is DBL) else LNG

    # -- ordering ------------------------------------------------------
    def _shape_sort(self, ctx, node: PlanNode, ins) -> Shape:
        src = ins[0]
        if src.family not in (BAT, UNKNOWN):
            return self._bad_input(
                ctx, node, 0, "a BAT", src,
                hint="sort consumes materialized (head, tail) pairs",
            )
        return Shape(BAT, src.dtype, src.rows_lo, src.rows_hi, src.columns)

    def _shape_topn(self, ctx, node: PlanNode, ins) -> Shape:
        src = ins[0]
        if src.family not in (BAT, UNKNOWN):
            return self._bad_input(ctx, node, 0, "a BAT", src)
        op: TopN = node.op
        rows_hi = op.n if src.rows_hi is None else min(op.n, src.rows_hi)
        return Shape(BAT, src.dtype, 0, rows_hi, src.columns)

    def _shape_tail_filter(self, ctx, node: PlanNode, ins) -> Shape:
        src = ins[0]
        if src.family not in (BAT, UNKNOWN):
            return self._bad_input(ctx, node, 0, "a BAT", src)
        return Shape(BAT, src.dtype, 0, src.rows_hi, src.columns)

    # -- aggregation ---------------------------------------------------
    def _shape_groupby(self, ctx, node: PlanNode, ins) -> Shape:
        op: GroupAggregate = node.op
        expected = 1 if op.func == "count" else 2
        if len(ins) != expected:
            ctx.emit(
                "lineage.arity",
                "error",
                f"grouped {op.func} takes {expected} input(s), got {len(ins)}",
                node,
            )
            return _UNKNOWN
        for slot, shape in enumerate(ins):
            if shape.family != UNKNOWN and not shape.is_vector:
                return self._bad_input(ctx, node, slot, "a vector (slice or BAT)", shape)
        if len(ins) == 2:
            keys, values = ins
            if (
                keys.rows_hi is not None
                and values.rows_hi is not None
                and (keys.rows_lo > values.rows_hi or values.rows_lo > keys.rows_hi)
            ):
                ctx.emit(
                    "lineage.groupby-rows",
                    "warn",
                    f"groupby keys ({keys.describe()}) and values "
                    f"({values.describe()}) can never be tuple-aligned",
                    node,
                    hint="keys and values must come from the same partition lineage",
                )
        value_dtype = ins[1].dtype if len(ins) == 2 else None
        dtype = LNG if op.func == "count" else (DBL if value_dtype is DBL else LNG)
        return Shape(BAT, dtype, 0, ins[0].rows_hi, _merge_columns(ins))

    def _shape_aggr_merge(self, ctx, node: PlanNode, ins) -> Shape:
        src = ins[0]
        if src.family not in (BAT, UNKNOWN):
            return self._bad_input(
                ctx, node, 0, "a BAT of (group, partial) pairs", src
            )
        return Shape(BAT, src.dtype, 0, src.rows_hi, src.columns)

    def _shape_aggregate(self, ctx, node: PlanNode, ins) -> Shape:
        op: Aggregate = node.op
        src = ins[0]
        if src.family == CANDS and op.func != "count":
            ctx.emit(
                "lineage.aggregate-input",
                "error",
                f"aggregate {op.func!r} over a candidate list has no values "
                "to reduce",
                node,
                node.inputs[0],
                hint="only count() accepts candidate lists; fetch values first",
            )
            return _UNKNOWN
        if op.func == "count":
            return Shape(SCALAR, LNG, 1, 1, src.columns)
        dtype = DBL if src.dtype is DBL else (None if src.dtype is None else LNG)
        return Shape(SCALAR, dtype, 1, 1, src.columns)

    # -- exchange ------------------------------------------------------
    def _shape_pack(self, ctx, node: PlanNode, ins) -> Shape:
        families = {shape.family for shape in ins if shape.family != UNKNOWN}
        if SLICE in families:
            slot = next(i for i, s in enumerate(ins) if s.family == SLICE)
            return self._bad_input(
                ctx, node, slot, "a BAT, candidate list, or scalar", ins[slot],
                hint="pack concatenates materialized intermediates, not views",
            )
        if len(families) > 1:
            ctx.emit(
                "lineage.pack-mix",
                "error",
                f"pack mixes intermediate families {sorted(families)}; all "
                "inputs must come from clones of the same operator",
                node,
            )
            return _UNKNOWN
        family = next(iter(families), UNKNOWN)
        dtypes = {shape.dtype for shape in ins if shape.dtype is not None}
        if family == BAT and len(dtypes) > 1:
            names = sorted(d.name for d in dtypes)
            ctx.emit(
                "lineage.pack-dtype",
                "error",
                f"pack input dtypes differ: {names}; packed values would be "
                "silently coerced or rejected at run time",
                node,
            )
        dtype = next(iter(dtypes)) if len(dtypes) == 1 else None
        columns = _merge_columns(ins)
        if family == SCALAR:
            return Shape(BAT, dtype, len(ins), len(ins), columns)
        if family == UNKNOWN:
            return _UNKNOWN
        return Shape(family, dtype if family == BAT else OID, 0, _hi(*ins), columns)

    def _shape_gather(self, ctx, node: PlanNode, ins) -> Shape:
        # A gather is a pack whose inputs arrive over the wire; bytes
        # and ordering rules are identical.
        return self._shape_pack(ctx, node, ins)

    def _shape_exchange(self, ctx, node: PlanNode, ins) -> Shape:
        # Pure transport: the intermediate is unchanged, only its node
        # changes (which lineage does not track).
        return ins[0]

    def _shape_shuffle(self, ctx, node: PlanNode, ins) -> Shape:
        src = ins[0]
        if src.family == UNKNOWN:
            return _UNKNOWN
        if src.family == SCALAR:
            return self._bad_input(
                ctx, node, 0, "a slice, BAT, or candidate list", src,
                hint="a scalar has no oid range to shuffle on",
            )
        # Keeps the rows inside its oid range: somewhere in [0, all].
        return Shape(src.family, src.dtype, 0, src.rows_hi, src.columns)

    # -- fallback ------------------------------------------------------
    def _shape_default(self, ctx, node: PlanNode, ins) -> Shape:
        # Known arity but no specific shape rule: propagate conservatively.
        return _UNKNOWN
