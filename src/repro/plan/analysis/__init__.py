"""Rule-based static analysis over plan graphs.

The correctness firewall for adaptive parallelization: every mutation
must leave the plan semantically equivalent to the serial one, and this
package proves the structural side of that claim without executing
anything.  :func:`analyze_plan` runs four passes over a plan and returns
structured diagnostics (rule id, severity, node ids, message, fix hint):

1. :class:`~repro.plan.analysis.lineage.LineagePass` -- schema and
   column-lineage inference; type-impossible edges.
2. :class:`~repro.plan.analysis.partition.PartitionSafetyPass` -- every
   fan-out tiles its base exactly once (no gap, no overlap).
3. :class:`~repro.plan.analysis.determinism.DeterminismPass` -- races
   between clone completion order and order-sensitive consumers; wrong
   partial-aggregate combiners.
4. :class:`~repro.plan.analysis.lints.LintPass` -- fan-in limits, dead
   slices, splits that cannot pay off.
5. :class:`~repro.plan.analysis.cluster.ShardLineagePass` -- placed
   (cluster) plans only: cross-node edges without an exchange, gather
   unions that double-count or drop shard rows.

Consumers: ``PlanMutator`` rejects mutation candidates that introduce
``error`` diagnostics, ``execute(..., analyze=True)`` refuses to run
broken plans, and the ``repro lint`` CLI command reports on demand.
See ``docs/plan_analysis.md`` for the rule catalog and severity policy.
"""

from .diagnostics import SEVERITIES, AnalysisReport, Diagnostic
from .framework import (
    DEFAULT_PACK_FANIN_LIMIT,
    AnalysisContext,
    AnalysisPass,
    analyze_plan,
    default_passes,
)
from .cluster import ShardLineagePass
from .determinism import DeterminismPass
from .lineage import LineagePass, Shape
from .lints import LintPass
from .partition import PartitionSafetyPass

__all__ = [
    "AnalysisContext",
    "AnalysisPass",
    "AnalysisReport",
    "DEFAULT_PACK_FANIN_LIMIT",
    "DeterminismPass",
    "ShardLineagePass",
    "Diagnostic",
    "LineagePass",
    "LintPass",
    "PartitionSafetyPass",
    "SEVERITIES",
    "Shape",
    "analyze_plan",
    "default_passes",
]
