"""Query plans as operator DAGs.

A :class:`Plan` is a directed acyclic graph of :class:`PlanNode` objects,
each wrapping one physical operator; edges carry intermediates.  This is
the structure adaptive parallelization morphs between invocations: nodes
are replaced by cloned copies over partitioned inputs, packs are inserted
and removed, and the whole graph stays executable after every step.
"""

from __future__ import annotations

import itertools
from hashlib import blake2b
from typing import Callable, Iterable, Iterator, Sequence

from ..errors import PlanError
from ..operators.base import Operator

_node_counter = itertools.count(1)

#: Digest width of plan fingerprints (collision odds are negligible at
#: 16 bytes while keys stay cheap to hash and compare).
_FINGERPRINT_BYTES = 16


def _fingerprint_into(roots: Sequence["PlanNode"], memo: dict[int, bytes]) -> None:
    """Fill ``memo`` (nid -> digest) for every node reachable from ``roots``.

    Iterative post-order: children are digested before their consumers,
    so arbitrarily deep partitioned plans do not hit the recursion limit.
    """
    _VISITING, _DONE = 0, 1
    state: dict[int, int] = {nid: _DONE for nid in memo}
    stack: list[PlanNode] = list(roots)
    while stack:
        node = stack[-1]
        mark = state.get(node.nid)
        if mark == _DONE:
            stack.pop()
            continue
        if mark is None:
            state[node.nid] = _VISITING
            pending = [c for c in node.inputs if state.get(c.nid) != _DONE]
            if pending:
                for child in pending:
                    if state.get(child.nid) == _VISITING:
                        raise PlanError(
                            f"plan contains a cycle near: {child.describe()}"
                        )
                stack.extend(pending)
                continue
        # All inputs digested: hash this node.  The digest mixes the
        # operator's cache key, the order key, and the input digests in
        # input order; fixed-width child digests keep the encoding
        # unambiguous.
        h = blake2b(digest_size=_FINGERPRINT_BYTES)
        h.update(repr((node.op.cache_key(), node.order_key)).encode())
        for child in node.inputs:
            h.update(memo[child.nid])
        memo[node.nid] = h.digest()
        state[node.nid] = _DONE
        stack.pop()


class PlanNode:
    """One operator instance in a plan.

    ``order_key`` records the base-column position of the partition this
    node works on; packs keep their inputs sorted by it so that packed
    results follow the serial order (paper Section 2.3).
    """

    __slots__ = ("nid", "op", "inputs", "order_key", "label")

    def __init__(
        self,
        op: Operator,
        inputs: Sequence["PlanNode"] = (),
        *,
        order_key: int | None = None,
        label: str | None = None,
    ) -> None:
        self.nid = next(_node_counter)
        self.op = op
        self.inputs: list[PlanNode] = list(inputs)
        self.order_key = order_key
        self.label = label

    @property
    def kind(self) -> str:
        return self.op.kind

    def fingerprint(self) -> bytes:
        """Structural fingerprint of the value this node computes.

        Derived from the operator's :meth:`~repro.operators.base.Operator.cache_key`,
        the ``order_key``, and the input fingerprints (in input order);
        leaves bottom out in :meth:`repro.storage.column.Column.cache_key`
        identity.  Two nodes with equal fingerprints compute bit-identical
        intermediates -- even across independent :meth:`Plan.copy` clones
        or adaptive-run mutations -- which is what makes cross-run result
        memoization (:mod:`repro.engine.memo`) stale-free by construction.
        """
        memo: dict[int, bytes] = {}
        _fingerprint_into([self], memo)
        return memo[self.nid]

    def describe(self) -> str:
        text = self.op.describe()
        if self.label:
            text = f"{text} <{self.label}>"
        return text

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"PlanNode(#{self.nid} {self.describe()})"


class Plan:
    """An executable operator DAG with named output nodes."""

    def __init__(self, outputs: Sequence[PlanNode] | None = None) -> None:
        self.outputs: list[PlanNode] = list(outputs) if outputs else []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add(
        self,
        op: Operator,
        inputs: Sequence[PlanNode] = (),
        *,
        order_key: int | None = None,
        label: str | None = None,
    ) -> PlanNode:
        """Create a node; it becomes part of the plan once reachable from
        an output (the graph is defined by reachability)."""
        return PlanNode(op, inputs, order_key=order_key, label=label)

    def set_outputs(self, outputs: Sequence[PlanNode]) -> None:
        self.outputs = list(outputs)

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def nodes(self) -> list[PlanNode]:
        """All nodes reachable from the outputs, in topological order
        (inputs before consumers).

        Iterative DFS with the exact visit order of the recursive
        formulation (children in input order, post-order append): this
        runs on every mutation, analysis, and submission, so deep
        partitioned plans must neither recurse to the limit nor pay a
        Python call per node.
        """
        order: list[PlanNode] = []
        state: dict[int, int] = {}  # 0 visiting, 1 done
        for root in self.outputs:
            if state.get(root.nid) == 1:
                continue
            state[root.nid] = 0
            stack = [(root, iter(root.inputs))]
            while stack:
                node, pending = stack[-1]
                for child in pending:
                    mark = state.get(child.nid)
                    if mark == 1:
                        continue
                    if mark == 0:
                        cycle = " -> ".join(n.describe() for n, __ in stack[-4:])
                        raise PlanError(f"plan contains a cycle near: {cycle}")
                    state[child.nid] = 0
                    stack.append((child, iter(child.inputs)))
                    break
                else:
                    state[node.nid] = 1
                    order.append(node)
                    stack.pop()
        return order

    def __len__(self) -> int:
        return len(self.nodes())

    def __iter__(self) -> Iterator[PlanNode]:
        return iter(self.nodes())

    def fingerprints(self) -> dict[int, bytes]:
        """Fingerprint of every reachable node, keyed by ``nid``.

        One shared post-order walk, so the whole plan costs O(nodes)
        regardless of DAG sharing; see :meth:`PlanNode.fingerprint`.
        """
        memo: dict[int, bytes] = {}
        _fingerprint_into(self.outputs, memo)
        return memo

    def consumers(self, target: PlanNode) -> list[PlanNode]:
        """Nodes that read ``target``'s output."""
        return [node for node in self.nodes() if target in node.inputs]

    def find(self, predicate: Callable[[PlanNode], bool]) -> list[PlanNode]:
        return [node for node in self.nodes() if predicate(node)]

    def count_kind(self, kind: str) -> int:
        return sum(1 for node in self.nodes() if node.kind == kind)

    # ------------------------------------------------------------------
    # Mutation primitives
    # ------------------------------------------------------------------
    def replace_node(self, old: PlanNode, new: PlanNode) -> None:
        """Redirect every consumer of ``old`` (and the output list) to
        ``new``; ``old`` drops out of the plan by unreachability."""
        for node in self.nodes():
            node.inputs = [new if child is old else child for child in node.inputs]
        self.outputs = [new if out is old else out for out in self.outputs]

    def splice_input(self, consumer: PlanNode, old: PlanNode, new: PlanNode) -> None:
        """Replace one input edge of ``consumer``."""
        if old not in consumer.inputs:
            raise PlanError(
                f"node #{consumer.nid} does not read #{old.nid}"
            )
        consumer.inputs = [new if child is old else child for child in consumer.inputs]

    # ------------------------------------------------------------------
    # Copying
    # ------------------------------------------------------------------
    def copy(self) -> "Plan":
        """Deep-copy the graph structure; operators are cloned so the new
        plan can be mutated independently (plan history administration)."""
        mapping: dict[int, PlanNode] = {}
        for node in self.nodes():  # topological: inputs exist before use
            clone = PlanNode(
                node.op.clone(),
                [mapping[child.nid] for child in node.inputs],
                order_key=node.order_key,
                label=node.label,
            )
            mapping[node.nid] = clone
        return Plan([mapping[out.nid] for out in self.outputs])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Plan(nodes={len(self)}, outputs={len(self.outputs)})"


def iter_edges(plan: Plan) -> Iterable[tuple[PlanNode, PlanNode]]:
    """All (producer, consumer) edges of a plan."""
    for node in plan.nodes():
        for child in node.inputs:
            yield child, node
