"""Text rendering of plans, loosely modelled on MAL listings."""

from __future__ import annotations

from .graph import Plan, PlanNode


def format_plan(plan: Plan, *, show_ids: bool = True) -> str:
    """A topologically ordered, one-line-per-operator listing.

    Every line shows the node, its operator, and the nodes it reads --
    close enough to a MAL listing (paper Figure 7) to eyeball data-flow
    dependencies.
    """
    lines = []
    for node in plan.nodes():
        refs = ",".join(f"X_{child.nid}" for child in node.inputs)
        prefix = f"X_{node.nid} := " if show_ids else ""
        suffix = f"({refs})" if refs else "()"
        marker = "  # output" if node in plan.outputs else ""
        lines.append(f"{prefix}{node.describe()}{suffix}{marker}")
    return "\n".join(lines)


def format_tree(plan: Plan, *, max_depth: int = 30) -> str:
    """An indented tree view rooted at each output (shared nodes are
    repeated with a back-reference marker)."""
    lines: list[str] = []
    seen: set[int] = set()

    def walk(node: PlanNode, depth: int) -> None:
        indent = "  " * depth
        if node.nid in seen:
            lines.append(f"{indent}#{node.nid} {node.describe()} (shared)")
            return
        seen.add(node.nid)
        lines.append(f"{indent}#{node.nid} {node.describe()}")
        if depth >= max_depth:
            lines.append(f"{indent}  ...")
            return
        for child in node.inputs:
            walk(child, depth + 1)

    for i, out in enumerate(plan.outputs):
        lines.append(f"output[{i}]:")
        walk(out, 1)
    return "\n".join(lines)
