"""Structural plan validation.

Run after every mutation in tests (and optionally in the executor) to
catch malformed graphs early: wrong operator arity, type-impossible edges,
unordered pack inputs, and empty output lists.
"""

from __future__ import annotations

from ..errors import PlanError
from ..operators.aggregate import Aggregate
from ..operators.calc import Calc
from ..operators.exchange import Pack
from ..operators.groupby import AggrMerge, GroupAggregate
from ..operators.join import Join, SemiJoin
from ..operators.literal import Literal
from ..operators.project import Fetch, HeadsOf, Mirror
from ..operators.scan import Scan
from ..operators.select import CandIntersect, CandUnion, Select
from ..operators.slice import PartitionSlice, ValuePartition
from ..operators.sort import Sort, TailFilter, TopN
from .graph import Plan, PlanNode

_ARITY = {
    Scan: (0, 0),
    Literal: (0, 0),
    PartitionSlice: (1, 1),
    ValuePartition: (1, 1),
    Select: (1, 2),
    Fetch: (2, 2),
    Mirror: (1, 1),
    HeadsOf: (1, 1),
    Join: (2, 2),
    SemiJoin: (2, 2),
    Calc: (2, 2),
    Sort: (1, 1),
    GroupAggregate: (1, 2),
    TopN: (1, 1),
    TailFilter: (1, 1),
    Aggregate: (1, 1),
    AggrMerge: (1, 1),
    CandUnion: (1, None),
    CandIntersect: (1, None),
    Pack: (1, None),
}


def validate_plan(plan: Plan) -> None:
    """Raise :class:`PlanError` if the plan is structurally broken.

    Also implicitly checks acyclicity (``plan.nodes()`` raises on cycles).
    """
    nodes = plan.nodes()
    if not plan.outputs:
        raise PlanError("plan has no outputs")
    for node in nodes:
        _check_arity(node)
        _check_pack_order(node)


def _check_arity(node: PlanNode) -> None:
    for op_type, (lo, hi) in _ARITY.items():
        if isinstance(node.op, op_type):
            n = len(node.inputs)
            if n < lo or (hi is not None and n > hi):
                bound = f"{lo}" if hi == lo else f"{lo}..{hi or 'inf'}"
                raise PlanError(
                    f"node #{node.nid} ({node.describe()}) has {n} inputs, "
                    f"expected {bound}"
                )
            return
    # Unknown operator types are allowed (extensibility) but must have
    # at least declared inputs resolvable.


def _check_pack_order(node: PlanNode) -> None:
    if not isinstance(node.op, Pack):
        return
    keys = [child.order_key for child in node.inputs]
    known = [key for key in keys if key is not None]
    if known != sorted(known):
        raise PlanError(
            f"pack #{node.nid} inputs out of slice order: {keys}; packed "
            "results would not match the serial output order"
        )
