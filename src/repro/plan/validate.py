"""Structural plan validation.

Run after every mutation in tests (and via :meth:`PlanBuilder.build`) to
catch malformed graphs early: wrong operator arity, unordered pack
inputs, and empty output lists.  This is the cheap, raise-on-error
subset of the full static analyzer in :mod:`repro.plan.analysis`; the
analyzer's lineage pass reuses :data:`ARITY` / :func:`arity_of` so the
two never disagree about operator signatures.
"""

from __future__ import annotations

from ..errors import PlanError
from ..operators.aggregate import Aggregate
from ..operators.base import Operator
from ..operators.calc import Calc
from ..operators.exchange import Pack
from ..operators.groupby import AggrMerge, GroupAggregate
from ..operators.join import Join, SemiJoin
from ..operators.literal import Literal
from ..operators.netexchange import Exchange, Shuffle
from ..operators.project import Fetch, HeadsOf, Mirror
from ..operators.scan import Scan
from ..operators.select import CandIntersect, CandUnion, Select
from ..operators.slice import PartitionSlice, ValuePartition
from ..operators.sort import Sort, TailFilter, TopN
from .graph import Plan, PlanNode

#: Operator type -> (min inputs, max inputs); ``None`` max means unbounded.
ARITY: dict[type, tuple[int, int | None]] = {
    Scan: (0, 0),
    Literal: (0, 0),
    PartitionSlice: (1, 1),
    ValuePartition: (1, 1),
    Select: (1, 2),
    Fetch: (2, 2),
    Mirror: (1, 1),
    HeadsOf: (1, 1),
    Join: (2, 2),
    SemiJoin: (2, 2),
    Calc: (2, 2),
    Sort: (1, 1),
    GroupAggregate: (1, 2),
    TopN: (1, 1),
    TailFilter: (1, 1),
    Aggregate: (1, 1),
    AggrMerge: (1, 1),
    CandUnion: (1, None),
    CandIntersect: (1, None),
    Pack: (1, None),
    # Cluster exchange family (Gather is a Pack subclass, found via MRO).
    Exchange: (1, 1),
    Shuffle: (1, 1),
}


def arity_of(op: Operator) -> tuple[int, int | None] | None:
    """The (min, max) input count declared for ``op``'s type.

    Exact-type dict lookup first; subclasses of known operators fall back
    to a method-resolution-order walk so a specialized ``Select`` still
    validates as a select.  Returns ``None`` for operator types the
    validator does not know (extensibility: unknown operators are allowed
    but reported as ``info`` by the analyzer).
    """
    spec = ARITY.get(type(op))
    if spec is not None:
        return spec
    for base in type(op).__mro__[1:]:
        spec = ARITY.get(base)
        if spec is not None:
            return spec
    return None


def validate_plan(plan: Plan) -> None:
    """Raise :class:`PlanError` if the plan is structurally broken.

    Also implicitly checks acyclicity (``plan.nodes()`` raises on cycles).
    Unknown operator types pass silently here; run the full analyzer
    (:func:`repro.plan.analysis.analyze_plan`) to have them surfaced as
    ``lineage.unknown-op`` info diagnostics.
    """
    nodes = plan.nodes()
    if not plan.outputs:
        raise PlanError("plan has no outputs")
    for node in nodes:
        _check_arity(node)
        _check_pack_order(node)


def unknown_operators(plan: Plan) -> list[PlanNode]:
    """Nodes whose operator type is absent from :data:`ARITY` (even via
    MRO); the analyzer turns these into explicit info diagnostics."""
    return [node for node in plan.nodes() if arity_of(node.op) is None]


def _check_arity(node: PlanNode) -> None:
    spec = arity_of(node.op)
    if spec is None:
        # Unknown operator type: no declared arity to enforce.  The
        # analyzer reports these explicitly via unknown_operators().
        return
    lo, hi = spec
    n = len(node.inputs)
    if n < lo or (hi is not None and n > hi):
        bound = f"{lo}" if hi == lo else f"{lo}..{hi or 'inf'}"
        raise PlanError(
            f"node #{node.nid} ({node.describe()}) has {n} inputs, "
            f"expected {bound}"
        )


def _check_pack_order(node: PlanNode) -> None:
    if not isinstance(node.op, Pack):
        return
    keys = [child.order_key for child in node.inputs]
    known = [key for key in keys if key is not None]
    if known != sorted(known):
        raise PlanError(
            f"pack #{node.nid} inputs out of slice order: {keys}; packed "
            "results would not match the serial output order"
        )
