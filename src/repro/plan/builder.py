"""Fluent construction of serial plans against a catalog.

The builder is the programmatic front door for users who skip the SQL
layer: it resolves table/column names, wires operator arities correctly,
and returns ordinary :class:`~repro.plan.graph.Plan` objects that the
adaptive and heuristic parallelizers both accept.
"""

from __future__ import annotations

from typing import Sequence

from ..errors import PlanError
from ..operators.aggregate import Aggregate
from ..operators.calc import Calc
from ..operators.groupby import GroupAggregate
from ..operators.join import Join, SemiJoin
from ..operators.literal import Literal
from ..operators.project import Fetch, Mirror
from ..operators.scan import Scan
from ..operators.select import CandIntersect, CandUnion, Predicate, Select
from ..operators.sort import Sort, TopN
from ..storage.catalog import Catalog
from .graph import Plan, PlanNode
from .validate import validate_plan


class PlanBuilder:
    """Accumulates nodes into one plan; call :meth:`build` with outputs."""

    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog
        self.plan = Plan()

    # -- leaves --------------------------------------------------------
    def scan(self, table: str, column: str) -> PlanNode:
        """Bind a base column of ``table`` into the plan."""
        col = self.catalog.column(table, column)
        return self.plan.add(Scan(col), label=f"{table}.{column}")

    def literal(self, value: float | int, dtype=None) -> PlanNode:
        """A scalar constant leaf."""
        return self.plan.add(Literal(value, dtype))

    # -- filters -------------------------------------------------------
    def select(
        self, source: PlanNode, predicate: Predicate, candidates: PlanNode | None = None
    ) -> PlanNode:
        """Filter ``source`` by ``predicate`` (optionally under candidates)."""
        inputs = [source] if candidates is None else [source, candidates]
        return self.plan.add(Select(predicate), inputs)

    def cand_union(self, parts: Sequence[PlanNode]) -> PlanNode:
        """Union of candidate branches (OR semantics)."""
        if not parts:
            raise PlanError("cand_union needs at least one branch")
        return self.plan.add(CandUnion(), list(parts))

    def cand_intersect(self, parts: Sequence[PlanNode]) -> PlanNode:
        """Intersection of candidate branches (AND semantics)."""
        if not parts:
            raise PlanError("cand_intersect needs at least one branch")
        return self.plan.add(CandIntersect(), list(parts))

    # -- tuple reconstruction ------------------------------------------
    def fetch(self, rowids: PlanNode, source: PlanNode) -> PlanNode:
        """Tuple reconstruction: values of ``source`` at ``rowids``."""
        return self.plan.add(Fetch(), [rowids, source])

    def mirror(self, source: PlanNode) -> PlanNode:
        """Oid-to-oid BAT of ``source`` (MAL ``bat.mirror``)."""
        return self.plan.add(Mirror(), [source])

    # -- joins -----------------------------------------------------------
    def join(self, outer: PlanNode, inner: PlanNode) -> PlanNode:
        """Hash equi-join; the outer side is the partitionable one."""
        return self.plan.add(Join(), [outer, inner])

    def semijoin(self, outer: PlanNode, inner: PlanNode, *, negate: bool = False) -> PlanNode:
        """Keep outer tuples with (no) inner matches (EXISTS / NOT IN)."""
        return self.plan.add(SemiJoin(negate=negate), [outer, inner])

    # -- compute ---------------------------------------------------------
    def calc(self, op: str, a: PlanNode, b: PlanNode) -> PlanNode:
        """Element-wise arithmetic ``a <op> b``."""
        return self.plan.add(Calc(op), [a, b])

    # -- aggregation -----------------------------------------------------
    def aggregate(self, func: str, source: PlanNode) -> PlanNode:
        """Scalar aggregation over ``source``."""
        return self.plan.add(Aggregate(func), [source])

    def group_aggregate(
        self, func: str, keys: PlanNode, values: PlanNode | None = None
    ) -> PlanNode:
        """Grouped aggregation: ``func(values) GROUP BY keys``."""
        if func == "count":
            if values is not None:
                raise PlanError("grouped count takes only the key input")
            return self.plan.add(GroupAggregate("count"), [keys])
        if values is None:
            raise PlanError(f"grouped {func} needs a value input")
        return self.plan.add(GroupAggregate(func), [keys, values])

    # -- ordering --------------------------------------------------------
    def sort(self, source: PlanNode, *, descending: bool = False, by: str = "tail") -> PlanNode:
        """Sort a BAT by its tail (or head)."""
        return self.plan.add(Sort(descending=descending, by=by), [source])

    def topn(self, source: PlanNode, n: int) -> PlanNode:
        """Keep the first ``n`` tuples (LIMIT)."""
        return self.plan.add(TopN(n), [source])

    # -- finish ----------------------------------------------------------
    def build(self, outputs: PlanNode | Sequence[PlanNode]) -> Plan:
        """Finalize the plan with the given output node(s).

        The finished plan is validated (arity, pack ordering, outputs)
        so malformed constructions fail here, at build time, rather than
        deep inside the scheduler with an operator-level error.
        """
        if isinstance(outputs, PlanNode):
            outputs = [outputs]
        self.plan.set_outputs(list(outputs))
        validate_plan(self.plan)
        return self.plan
