"""Plan statistics: operator counts and shape metrics (paper Table 5)."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from .graph import Plan


@dataclass(frozen=True)
class PlanStats:
    """Shape summary of one plan."""

    total_nodes: int
    by_kind: dict[str, int]
    max_pack_fanin: int
    depth: int

    @property
    def select_count(self) -> int:
        return self.by_kind.get("select", 0)

    @property
    def join_count(self) -> int:
        return self.by_kind.get("join", 0) + self.by_kind.get("semijoin", 0)

    @property
    def pack_count(self) -> int:
        return self.by_kind.get("pack", 0)

    def format(self) -> str:
        kinds = ", ".join(f"{k}={v}" for k, v in sorted(self.by_kind.items()))
        return (
            f"nodes={self.total_nodes} depth={self.depth} "
            f"max_pack_fanin={self.max_pack_fanin} [{kinds}]"
        )


def plan_stats(plan: Plan) -> PlanStats:
    """Compute :class:`PlanStats` for a plan."""
    nodes = plan.nodes()
    by_kind = Counter(node.kind for node in nodes)
    max_fanin = max(
        (len(node.inputs) for node in nodes if node.kind == "pack"), default=0
    )
    depth: dict[int, int] = {}
    deepest = 0
    for node in nodes:  # topological order: inputs first
        d = 1 + max((depth[c.nid] for c in node.inputs), default=0)
        depth[node.nid] = d
        deepest = max(deepest, d)
    return PlanStats(
        total_nodes=len(nodes),
        by_kind=dict(by_kind),
        max_pack_fanin=max_fanin,
        depth=deepest,
    )
