"""Plan export: JSON documents and Graphviz dot.

The paper's companion tools (Stethoscope [12]) visualize MAL plans as
data-flow graphs -- Figure 7 is such a rendering.  ``to_dot`` produces
the equivalent for our plans; ``to_json``/``plan_from_json`` give a
stable interchange format for storing morphed plans next to a query
cache (plans reference catalog columns by table/column name, so a
catalog with the same schema is needed to re-instantiate them).
"""

from __future__ import annotations

import json
from typing import Any

from ..errors import PlanError
from ..operators.aggregate import Aggregate
from ..operators.calc import Calc
from ..operators.exchange import Pack
from ..operators.groupby import AggrMerge, GroupAggregate
from ..operators.join import Join, SemiJoin
from ..operators.literal import Literal
from ..operators.project import Fetch, HeadsOf, Mirror
from ..operators.scan import Scan
from ..operators.select import (
    CandIntersect,
    CandUnion,
    EqualsPredicate,
    InPredicate,
    LikePredicate,
    RangePredicate,
    Select,
)
from ..operators.slice import PartitionSlice, ValuePartition
from ..operators.sort import Sort, TopN
from ..storage.catalog import Catalog
from .analysis import analyze_plan
from .graph import Plan, PlanNode

# ---------------------------------------------------------------------------
# Serialization
# ---------------------------------------------------------------------------


def _predicate_spec(predicate) -> dict[str, Any]:
    if isinstance(predicate, RangePredicate):
        return {
            "type": "range",
            "lo": predicate.lo,
            "hi": predicate.hi,
            "lo_inclusive": predicate.lo_inclusive,
            "hi_inclusive": predicate.hi_inclusive,
        }
    if isinstance(predicate, EqualsPredicate):
        return {"type": "equals", "value": predicate.value, "negate": predicate.negate}
    if isinstance(predicate, InPredicate):
        return {
            "type": "in",
            "values": list(predicate.values),
            "negate": predicate.negate,
        }
    if isinstance(predicate, LikePredicate):
        return {
            "type": "like",
            "pattern": predicate.pattern,
            "negate": predicate.negate,
        }
    raise PlanError(f"cannot serialize predicate {type(predicate).__name__}")


def _predicate_from_spec(spec: dict[str, Any]):
    kind = spec["type"]
    if kind == "range":
        return RangePredicate(
            spec["lo"],
            spec["hi"],
            lo_inclusive=spec["lo_inclusive"],
            hi_inclusive=spec["hi_inclusive"],
        )
    if kind == "equals":
        return EqualsPredicate(spec["value"], negate=spec["negate"])
    if kind == "in":
        return InPredicate(spec["values"], negate=spec["negate"])
    if kind == "like":
        return LikePredicate(spec["pattern"], negate=spec["negate"])
    raise PlanError(f"unknown predicate type {kind!r}")


def _op_spec(node: PlanNode, scan_names: dict[int, tuple[str, str]]) -> dict[str, Any]:
    op = node.op
    if isinstance(op, Scan):
        table_column = scan_names.get(node.nid)
        if table_column is None:
            raise PlanError(
                f"scan #{node.nid} has no table/column label; build scans "
                "through PlanBuilder or the SQL planner to export them"
            )
        table, column = table_column
        return {"kind": "scan", "table": table, "column": column,
                "lo": op.lo, "hi": op.hi}
    if isinstance(op, Select):
        return {"kind": "select", "predicate": _predicate_spec(op.predicate)}
    if isinstance(op, Fetch):
        return {"kind": "fetch", "alignment": op.alignment}
    if isinstance(op, SemiJoin):
        return {"kind": "semijoin", "negate": op.negate}
    if isinstance(op, Join):
        return {"kind": "join"}
    if isinstance(op, Mirror):
        return {"kind": "mirror"}
    if isinstance(op, HeadsOf):
        return {"kind": "heads"}
    if isinstance(op, Calc):
        return {"kind": "calc", "op": op.op}
    if isinstance(op, GroupAggregate):
        return {"kind": "groupby", "func": op.func}
    if isinstance(op, AggrMerge):
        return {"kind": "aggr_merge", "func": op.func}
    if isinstance(op, Aggregate):
        return {"kind": "aggregate", "func": op.func}
    if isinstance(op, Sort):
        return {"kind": "sort", "descending": op.descending, "by": op.by}
    if isinstance(op, TopN):
        return {"kind": "topn", "n": op.n}
    if isinstance(op, Pack):
        return {"kind": "pack"}
    if isinstance(op, CandUnion):
        return {"kind": "cand_union"}
    if isinstance(op, CandIntersect):
        return {"kind": "cand_intersect"}
    if isinstance(op, Literal):
        return {"kind": "literal", "value": op.value}
    if isinstance(op, PartitionSlice):
        return {"kind": "slice", "lo": op.lo, "hi": op.hi}
    if isinstance(op, ValuePartition):
        return {"kind": "vpartition", "lo": op.lo, "hi": op.hi}
    raise PlanError(f"cannot serialize operator kind {node.kind!r}")


def to_json(plan: Plan, *, analyze: bool = False) -> str:
    """Serialize a plan (operators, edges, outputs) to a JSON string.

    Scans are stored by table/column name using the ``table.column``
    labels that :class:`PlanBuilder` and the SQL planner attach.

    With ``analyze=True`` the static plan analyzer runs and its
    diagnostics ride along under a ``"diagnostics"`` key (with node ids
    rewritten to node *indexes* in the document), so an exported plan
    carries its own health report.  :func:`plan_from_json` ignores the
    key on import.
    """
    scan_names: dict[int, tuple[str, str]] = {}
    for node in plan.nodes():
        if node.kind == "scan" and node.label and "." in node.label:
            table, column = node.label.split(".", 1)
            scan_names[node.nid] = (table, column)
    nodes = []
    index = {node.nid: i for i, node in enumerate(plan.nodes())}
    for node in plan.nodes():
        nodes.append(
            {
                "op": _op_spec(node, scan_names),
                "inputs": [index[child.nid] for child in node.inputs],
                "order_key": node.order_key,
                "label": node.label,
            }
        )
    outputs = [index[out.nid] for out in plan.outputs]
    document: dict[str, Any] = {"version": 1, "nodes": nodes, "outputs": outputs}
    if analyze:
        report = analyze_plan(plan)
        diagnostics = []
        for diag in report.to_dicts():
            # nids are process-local counters; indexes survive round-trips.
            diag["nodes"] = [index[nid] for nid in diag["nodes"] if nid in index]
            diagnostics.append(diag)
        document["diagnostics"] = diagnostics
    return json.dumps(document)


def _op_from_spec(spec: dict[str, Any], catalog: Catalog):
    kind = spec["kind"]
    if kind == "scan":
        column = catalog.column(spec["table"], spec["column"])
        return Scan(column, spec["lo"], spec["hi"])
    if kind == "select":
        return Select(_predicate_from_spec(spec["predicate"]))
    if kind == "fetch":
        return Fetch(alignment=spec["alignment"])
    if kind == "semijoin":
        return SemiJoin(negate=spec["negate"])
    if kind == "join":
        return Join()
    if kind == "mirror":
        return Mirror()
    if kind == "heads":
        return HeadsOf()
    if kind == "calc":
        return Calc(spec["op"])
    if kind == "groupby":
        return GroupAggregate(spec["func"])
    if kind == "aggr_merge":
        return AggrMerge(spec["func"])
    if kind == "aggregate":
        return Aggregate(spec["func"])
    if kind == "sort":
        return Sort(descending=spec["descending"], by=spec["by"])
    if kind == "topn":
        return TopN(spec["n"])
    if kind == "pack":
        return Pack()
    if kind == "cand_union":
        return CandUnion()
    if kind == "cand_intersect":
        return CandIntersect()
    if kind == "literal":
        return Literal(spec["value"])
    if kind == "slice":
        return PartitionSlice(spec["lo"], spec["hi"])
    if kind == "vpartition":
        return ValuePartition(spec["lo"], spec["hi"])
    raise PlanError(f"unknown operator kind {kind!r}")


def plan_from_json(text: str, catalog: Catalog) -> Plan:
    """Re-instantiate a plan exported by :func:`to_json`."""
    document = json.loads(text)
    if document.get("version") != 1:
        raise PlanError(f"unsupported plan format version {document.get('version')!r}")
    built: list[PlanNode] = []
    for spec in document["nodes"]:
        node = PlanNode(
            _op_from_spec(spec["op"], catalog),
            [built[i] for i in spec["inputs"]],
            order_key=spec["order_key"],
            label=spec["label"],
        )
        built.append(node)
    return Plan([built[i] for i in document["outputs"]])


# ---------------------------------------------------------------------------
# Graphviz
# ---------------------------------------------------------------------------

_DOT_COLORS = {
    "select": "palegreen",
    "join": "lightblue",
    "semijoin": "lightblue",
    "pack": "burlywood",
    "fetch": "khaki",
    "groupby": "plum",
    "aggregate": "plum",
    "aggr_merge": "plum",
    "scan": "white",
    "slice": "whitesmoke",
}


def to_dot(plan: Plan, *, title: str = "plan") -> str:
    """A Graphviz dot rendering of the plan's data-flow graph.

    Colors follow the paper's tomograph convention (green selects, blue
    joins, brown exchange unions).
    """
    lines = [f'digraph "{title}" {{', "  rankdir=BT;", "  node [shape=box];"]
    for node in plan.nodes():
        color = _DOT_COLORS.get(node.kind, "lightgray")
        label = node.describe().replace('"', "'")
        emphasis = ", penwidth=2" if node in plan.outputs else ""
        lines.append(
            f'  n{node.nid} [label="{label}", style=filled, '
            f'fillcolor={color}{emphasis}];'
        )
    for node in plan.nodes():
        for child in node.inputs:
            lines.append(f"  n{child.nid} -> n{node.nid};")
    lines.append("}")
    return "\n".join(lines)
