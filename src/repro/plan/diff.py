"""Structural diffs between plans: what one mutation changed.

Adaptive parallelization mutates the plan between runs; `diff_plans`
summarizes the structural delta (operator counts per kind, pack fan-ins,
partition counts) so drivers can log plan evolution the way the paper's
companion tools visualize it.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from .analysis import AnalysisReport, analyze_plan
from .graph import Plan
from .stats import plan_stats


@dataclass(frozen=True)
class PlanDiff:
    """Summary of the structural change from ``before`` to ``after``."""

    added_by_kind: dict[str, int]
    removed_by_kind: dict[str, int]
    node_delta: int
    depth_delta: int
    pack_fanin_delta: int

    @property
    def is_noop(self) -> bool:
        return not self.added_by_kind and not self.removed_by_kind

    def format(self) -> str:
        if self.is_noop:
            return "no structural change"
        parts = []
        for kind, count in sorted(self.added_by_kind.items()):
            parts.append(f"+{count} {kind}")
        for kind, count in sorted(self.removed_by_kind.items()):
            parts.append(f"-{count} {kind}")
        summary = ", ".join(parts)
        return (
            f"{summary} (nodes {self.node_delta:+d}, depth "
            f"{self.depth_delta:+d}, max pack fan-in "
            f"{self.pack_fanin_delta:+d})"
        )


def diff_plans(before: Plan, after: Plan) -> PlanDiff:
    """Per-operator-kind structural delta between two plans."""
    before_counts = Counter(node.kind for node in before.nodes())
    after_counts = Counter(node.kind for node in after.nodes())
    added: dict[str, int] = {}
    removed: dict[str, int] = {}
    for kind in set(before_counts) | set(after_counts):
        delta = after_counts[kind] - before_counts[kind]
        if delta > 0:
            added[kind] = delta
        elif delta < 0:
            removed[kind] = -delta
    before_stats = plan_stats(before)
    after_stats = plan_stats(after)
    return PlanDiff(
        added_by_kind=added,
        removed_by_kind=removed,
        node_delta=after_stats.total_nodes - before_stats.total_nodes,
        depth_delta=after_stats.depth - before_stats.depth,
        pack_fanin_delta=after_stats.max_pack_fanin - before_stats.max_pack_fanin,
    )


@dataclass
class EvolutionLog:
    """Accumulates per-run diffs over an adaptive instance.

    With ``analyze=True`` every snapshot is also run through the static
    plan analyzer and the reports accumulate in :attr:`reports` (parallel
    to :attr:`snapshots`), so a driver can print "what changed and how
    healthy is it now" per iteration.
    """

    snapshots: list[Plan] = field(default_factory=list)
    analyze: bool = False
    reports: list[AnalysisReport] = field(default_factory=list)

    def observe(self, plan: Plan) -> PlanDiff | None:
        """Snapshot the plan; returns the diff against the previous one."""
        snapshot = plan.copy()
        previous = self.snapshots[-1] if self.snapshots else None
        self.snapshots.append(snapshot)
        if self.analyze:
            self.reports.append(analyze_plan(snapshot))
        if previous is None:
            return None
        return diff_plans(previous, snapshot)

    def diffs(self) -> list[PlanDiff]:
        return [
            diff_plans(a, b) for a, b in zip(self.snapshots, self.snapshots[1:])
        ]
