"""Text tomograph: per-thread operator timelines (paper Figures 19/20).

The paper's tomograph tool draws one row per hardware thread and one
colored box per operator execution; the fraction of colored area is the
multi-core utilization.  This text version uses one character per time
bucket: ``S`` select, ``J`` join, ``U`` exchange union (pack), ``F``
tuple reconstruction, ``G`` group-by, ``A`` aggregation, ``C`` calc,
``o`` anything else, ``.`` idle.
"""

from __future__ import annotations

from ..engine.profiler import QueryProfile

_KIND_CHARS = {
    "select": "S",
    "join": "J",
    "semijoin": "J",
    "pack": "U",
    "fetch": "F",
    "heads": "F",
    "mirror": "F",
    "groupby": "G",
    "aggr_merge": "G",
    "aggregate": "A",
    "calc": "C",
    "sort": "s",
    "topn": "t",
    "cand_union": "u",
    "cand_intersect": "u",
    "scan": "b",
    "slice": "b",
    "literal": "b",
}


def _paint_rows(
    boxes: list[tuple[str, float, float, int]],
    hardware_threads: int,
    t0: float,
    span: float,
    width: int,
) -> dict[int, list[str]]:
    """One character row per thread; each (kind, start, end, tid) box
    paints its kind character over its time buckets."""
    rows = {tid: ["."] * width for tid in range(hardware_threads)}
    for kind, start, end, tid in boxes:
        char = _KIND_CHARS.get(kind, "o")
        lo = int((start - t0) / span * width)
        hi = int((end - t0) / span * width)
        hi = max(hi, lo + 1)
        row = rows.setdefault(tid, ["."] * width)
        for i in range(lo, min(hi, width)):
            row[i] = char
    return rows


def _render_lines(
    rows: dict[int, list[str]],
    header: str,
    time_by_kind: dict[str, float],
) -> str:
    lines = [
        header,
        "  (S=select J=join U=union F=fetch G=groupby A=aggr C=calc .=idle)",
    ]
    for tid in sorted(rows):
        lines.append(f"  t{tid:>3} |{''.join(rows[tid])}|")
    busiest = sorted(time_by_kind.items(), key=lambda kv: -kv[1])[:6]
    detail = ", ".join(f"{kind}: {t * 1000:.1f} ms" for kind, t in busiest)
    lines.append(f"  core time by operator: {detail}")
    return "\n".join(lines)


def render_tomograph(
    profile: QueryProfile,
    hardware_threads: int,
    *,
    width: int = 100,
) -> str:
    """An ASCII per-thread timeline of one query execution."""
    if profile.finish_time is None:
        raise ValueError("profile has no finish time; did the query run?")
    t0 = profile.submit_time
    span = max(profile.finish_time - t0, 1e-12)
    rows = _paint_rows(
        [(r.kind, r.start, r.end, r.thread_id) for r in profile.records],
        hardware_threads,
        t0,
        span,
        width,
    )
    util = profile.multicore_utilization(hardware_threads)
    peak_gb = profile.peak_memory_bytes / 1e9
    header = (
        f"tomograph: span={span * 1000:.1f} ms, threads={hardware_threads}, "
        f"parallelism usage {util * 100:.1f}%, peak memory {peak_gb:.2f} GB"
    )
    return _render_lines(rows, header, profile.time_by_kind())


def render_trace_tomograph(
    source,
    hardware_threads: int,
    *,
    width: int = 100,
) -> str:
    """The tomograph re-expressed over a recorded trace.

    ``source`` is a :class:`repro.observe.Observer` or
    :class:`~repro.observe.spans.Tracer`; every ``task`` span (one per
    :class:`~repro.engine.profiler.OpRecord`, carrying ``thread``/
    ``socket`` attributes) becomes one box.  Unlike
    :func:`render_tomograph` this spans the tracer's *whole* timeline,
    so an adaptive instance's runs appear side by side -- the paper's
    per-query tomograph, industrialized.
    """
    tracer = getattr(source, "tracer", source)
    tasks = [s for s in tracer.spans if s.kind == "task" and s.t1 is not None]
    if not tasks:
        raise ValueError("trace has no finished task spans; did anything run?")
    t0 = min(s.t0 for s in tasks)
    t_end = max(s.t1 for s in tasks)
    span = max(t_end - t0, 1e-12)
    time_by_kind: dict[str, float] = {}
    boxes: list[tuple[str, float, float, int]] = []
    for s in tasks:
        tid = int(s.attrs.get("thread", 0))
        boxes.append((s.name, s.t0, s.t1, tid))
        time_by_kind[s.name] = time_by_kind.get(s.name, 0.0) + (s.t1 - s.t0)
    rows = _paint_rows(boxes, hardware_threads, t0, span, width)
    busy = sum(t1 - t0_ for __, t0_, t1, __tid in boxes)
    util = busy / (span * hardware_threads) if hardware_threads > 0 else 0.0
    header = (
        f"trace tomograph: span={span * 1000:.1f} ms, "
        f"threads={hardware_threads}, tasks={len(tasks)}, "
        f"parallelism usage {util * 100:.1f}%"
    )
    return _render_lines(rows, header, time_by_kind)


def utilization_summary(profile: QueryProfile, hardware_threads: int) -> dict:
    """Numbers behind Figures 19/20 and Table 5's utilization row."""
    if profile.finish_time is None:
        raise ValueError("profile has no finish time; did the query run?")
    return {
        "span_ms": (profile.finish_time - profile.submit_time) * 1000.0,
        "peak_memory_gb": profile.peak_memory_bytes / 1e9,
        "busy_core_seconds": profile.busy_core_seconds(),
        "multicore_utilization": profile.multicore_utilization(hardware_threads),
        "threads_used": profile.threads_used(),
        "operators_executed": len(profile.records),
    }
