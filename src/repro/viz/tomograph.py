"""Text tomograph: per-thread operator timelines (paper Figures 19/20).

The paper's tomograph tool draws one row per hardware thread and one
colored box per operator execution; the fraction of colored area is the
multi-core utilization.  This text version uses one character per time
bucket: ``S`` select, ``J`` join, ``U`` exchange union (pack), ``F``
tuple reconstruction, ``G`` group-by, ``A`` aggregation, ``C`` calc,
``o`` anything else, ``.`` idle.
"""

from __future__ import annotations

from ..engine.profiler import QueryProfile

_KIND_CHARS = {
    "select": "S",
    "join": "J",
    "semijoin": "J",
    "pack": "U",
    "fetch": "F",
    "heads": "F",
    "mirror": "F",
    "groupby": "G",
    "aggr_merge": "G",
    "aggregate": "A",
    "calc": "C",
    "sort": "s",
    "topn": "t",
    "cand_union": "u",
    "cand_intersect": "u",
    "scan": "b",
    "slice": "b",
    "literal": "b",
}


def render_tomograph(
    profile: QueryProfile,
    hardware_threads: int,
    *,
    width: int = 100,
) -> str:
    """An ASCII per-thread timeline of one query execution."""
    if profile.finish_time is None:
        raise ValueError("profile has no finish time; did the query run?")
    t0 = profile.submit_time
    span = max(profile.finish_time - t0, 1e-12)
    rows = {tid: ["."] * width for tid in range(hardware_threads)}
    for record in profile.records:
        char = _KIND_CHARS.get(record.kind, "o")
        start = int((record.start - t0) / span * width)
        stop = int((record.end - t0) / span * width)
        stop = max(stop, start + 1)
        row = rows.setdefault(record.thread_id, ["."] * width)
        for i in range(start, min(stop, width)):
            row[i] = char
    util = profile.multicore_utilization(hardware_threads)
    peak_gb = profile.peak_memory_bytes / 1e9
    lines = [
        f"tomograph: span={span * 1000:.1f} ms, threads={hardware_threads}, "
        f"parallelism usage {util * 100:.1f}%, peak memory {peak_gb:.2f} GB",
        "  (S=select J=join U=union F=fetch G=groupby A=aggr C=calc .=idle)",
    ]
    for tid in sorted(rows):
        lines.append(f"  t{tid:>3} |{''.join(rows[tid])}|")
    legend = profile.time_by_kind()
    busiest = sorted(legend.items(), key=lambda kv: -kv[1])[:6]
    detail = ", ".join(f"{kind}: {t * 1000:.1f} ms" for kind, t in busiest)
    lines.append(f"  core time by operator: {detail}")
    return "\n".join(lines)


def utilization_summary(profile: QueryProfile, hardware_threads: int) -> dict:
    """Numbers behind Figures 19/20 and Table 5's utilization row."""
    return {
        "span_ms": (profile.finish_time - profile.submit_time) * 1000.0,
        "peak_memory_gb": profile.peak_memory_bytes / 1e9,
        "busy_core_seconds": profile.busy_core_seconds(),
        "multicore_utilization": profile.multicore_utilization(hardware_threads),
        "threads_used": profile.threads_used(),
        "operators_executed": len(profile.records),
    }
