"""SVG comparison figure for the convergence-policy benchmark.

Renders a ``BENCH_convergence.json`` document (see
:mod:`repro.bench.convergence`) as a self-contained SVG -- no plotting
library involved, so the figure can be regenerated anywhere the package
runs.  Three panels:

1. runs-to-GME per query, grouped bars per policy (log would hide the
   warm-start collapse, so linear);
2. total simulated work per query, grouped bars per policy;
3. the repeated-workload trajectory: runs-to-GME per encounter of the
   same query against a shared experience store.
"""

from __future__ import annotations

#: Per-policy fill colors (colorblind-safe triad).
COLORS = {"cold": "#4477aa", "warmstart": "#ee6677", "bandit": "#228833"}
LABELS = {"cold": "credit/debit (cold)", "warmstart": "warm-start", "bandit": "bandit"}
POLICY_ORDER = ("cold", "warmstart", "bandit")

_FONT = "font-family=\"Helvetica,Arial,sans-serif\""


def _esc(text: str) -> str:
    return (
        str(text).replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )


def _nice_ceiling(value: float) -> float:
    """A round axis maximum >= value (1/2/5 ladder)."""
    if value <= 0:
        return 1.0
    magnitude = 1.0
    while magnitude * 10 <= value:
        magnitude *= 10
    while magnitude > value:
        magnitude /= 10
    for factor in (1, 2, 5, 10):
        if magnitude * factor >= value:
            return magnitude * factor
    return magnitude * 10


def _bar_panel(
    out: list[str],
    *,
    x: int,
    y: int,
    width: int,
    height: int,
    title: str,
    queries: list[str],
    values: dict[str, list[float]],
    unit: str,
) -> None:
    """One grouped-bar panel appended as SVG elements."""
    peak = _nice_ceiling(max(max(vals) for vals in values.values()))
    plot_x, plot_y = x + 52, y + 26
    plot_w, plot_h = width - 64, height - 56
    out.append(
        f'<text x="{x}" y="{y + 12}" {_FONT} font-size="13" '
        f'font-weight="bold" fill="#222">{_esc(title)}</text>'
    )
    # Gridlines + y labels at 0, 1/2, and full scale.
    for frac in (0.0, 0.5, 1.0):
        gy = plot_y + plot_h * (1 - frac)
        out.append(
            f'<line x1="{plot_x}" y1="{gy:.1f}" x2="{plot_x + plot_w}" '
            f'y2="{gy:.1f}" stroke="#ddd" stroke-width="1"/>'
        )
        label = f"{peak * frac:g}"
        out.append(
            f'<text x="{plot_x - 6}" y="{gy + 4:.1f}" {_FONT} font-size="10" '
            f'fill="#666" text-anchor="end">{_esc(label)}</text>'
        )
    out.append(
        f'<text x="{x + 8}" y="{plot_y + plot_h / 2:.1f}" {_FONT} '
        f'font-size="10" fill="#666" text-anchor="middle" '
        f'transform="rotate(-90 {x + 8} {plot_y + plot_h / 2:.1f})">'
        f"{_esc(unit)}</text>"
    )
    group_w = plot_w / max(len(queries), 1)
    bar_w = min(18.0, group_w * 0.8 / len(POLICY_ORDER))
    for qi, query in enumerate(queries):
        cx = plot_x + group_w * (qi + 0.5)
        start = cx - bar_w * len(POLICY_ORDER) / 2
        for pi, policy in enumerate(POLICY_ORDER):
            value = values[policy][qi]
            bar_h = plot_h * value / peak
            bx = start + pi * bar_w
            by = plot_y + plot_h - bar_h
            out.append(
                f'<rect x="{bx:.1f}" y="{by:.1f}" width="{bar_w - 1:.1f}" '
                f'height="{max(bar_h, 0.5):.1f}" fill="{COLORS[policy]}">'
                f"<title>{_esc(query)} / {_esc(LABELS[policy])}: "
                f"{value:g} {_esc(unit)}</title></rect>"
            )
        out.append(
            f'<text x="{cx:.1f}" y="{plot_y + plot_h + 14}" {_FONT} '
            f'font-size="10" fill="#444" text-anchor="middle">'
            f"{_esc(query)}</text>"
        )
    out.append(
        f'<line x1="{plot_x}" y1="{plot_y + plot_h}" x2="{plot_x + plot_w}" '
        f'y2="{plot_y + plot_h}" stroke="#888" stroke-width="1"/>'
    )


def _trajectory_panel(
    out: list[str],
    *,
    x: int,
    y: int,
    width: int,
    height: int,
    repeated: dict,
) -> None:
    runs = [e["runs_to_gme"] for e in repeated["encounters"]]
    peak = _nice_ceiling(max(runs))
    plot_x, plot_y = x + 52, y + 26
    plot_w, plot_h = width - 64, height - 56
    out.append(
        f'<text x="{x}" y="{y + 12}" {_FONT} font-size="13" '
        f'font-weight="bold" fill="#222">Repeated '
        f"{_esc(repeated['workload'])}: runs-to-GME per encounter "
        f"(warm ratio {repeated['warm_ratio']:.2f})</text>"
    )
    for frac in (0.0, 0.5, 1.0):
        gy = plot_y + plot_h * (1 - frac)
        out.append(
            f'<line x1="{plot_x}" y1="{gy:.1f}" x2="{plot_x + plot_w}" '
            f'y2="{gy:.1f}" stroke="#ddd" stroke-width="1"/>'
        )
        out.append(
            f'<text x="{plot_x - 6}" y="{gy + 4:.1f}" {_FONT} font-size="10" '
            f'fill="#666" text-anchor="end">{peak * frac:g}</text>'
        )
    step = plot_w / max(len(runs) - 1, 1)
    points = []
    for i, value in enumerate(runs):
        px = plot_x + step * i
        py = plot_y + plot_h * (1 - value / peak)
        points.append(f"{px:.1f},{py:.1f}")
        out.append(
            f'<circle cx="{px:.1f}" cy="{py:.1f}" r="4" '
            f'fill="{COLORS["warmstart"]}">'
            f"<title>encounter {i + 1}: {value} runs</title></circle>"
        )
        out.append(
            f'<text x="{px:.1f}" y="{py - 9:.1f}" {_FONT} font-size="10" '
            f'fill="#444" text-anchor="middle">{value}</text>'
        )
        out.append(
            f'<text x="{px:.1f}" y="{plot_y + plot_h + 14}" {_FONT} '
            f'font-size="10" fill="#444" text-anchor="middle">'
            f"enc {i + 1}</text>"
        )
    out.append(
        f'<polyline points="{" ".join(points)}" fill="none" '
        f'stroke="{COLORS["warmstart"]}" stroke-width="2"/>'
    )
    out.append(
        f'<line x1="{plot_x}" y1="{plot_y + plot_h}" x2="{plot_x + plot_w}" '
        f'y2="{plot_y + plot_h}" stroke="#888" stroke-width="1"/>'
    )


def render_policy_figure(report: dict) -> str:
    """The full comparison figure for one convergence report, as SVG."""
    queries = list(report["queries"])
    runs = {
        p: [float(report["queries"][q][p]["runs_to_gme"]) for q in queries]
        for p in POLICY_ORDER
    }
    work = {
        p: [report["queries"][q][p]["total_work_ms"] for q in queries]
        for p in POLICY_ORDER
    }
    width, panel_h = 880, 190
    height = panel_h * 3 + 70
    out = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
        f'<text x="16" y="22" {_FONT} font-size="15" font-weight="bold" '
        f'fill="#111">Convergence policies: learned DOP vs the paper\'s '
        f"credit/debit walk "
        f"({'quick' if report['quick'] else 'full'} mode)</text>",
    ]
    # Legend.
    lx = 16
    for policy in POLICY_ORDER:
        out.append(
            f'<rect x="{lx}" y="30" width="12" height="12" '
            f'fill="{COLORS[policy]}"/>'
        )
        label = LABELS[policy]
        out.append(
            f'<text x="{lx + 16}" y="40" {_FONT} font-size="11" '
            f'fill="#333">{_esc(label)}</text>'
        )
        lx += 16 + 7 * len(label) + 24
    _bar_panel(
        out,
        x=16,
        y=52,
        width=width - 32,
        height=panel_h,
        title="Runs to GME band (learning latency; lower is better)",
        queries=queries,
        values=runs,
        unit="runs",
    )
    _bar_panel(
        out,
        x=16,
        y=52 + panel_h,
        width=width - 32,
        height=panel_h,
        title="Total simulated work per convergence episode (lower is better)",
        queries=queries,
        values=work,
        unit="ms",
    )
    _trajectory_panel(
        out,
        x=16,
        y=52 + panel_h * 2,
        width=width - 32,
        height=panel_h,
        repeated=report["repeated"],
    )
    out.append("</svg>")
    return "\n".join(out) + "\n"
