"""Chrome-tracing export of query profiles.

``to_chrome_trace`` converts a :class:`~repro.engine.profiler.QueryProfile`
into the Trace Event Format consumed by ``chrome://tracing`` and Perfetto:
one row per hardware thread, one complete event per operator execution.
This is the modern equivalent of the paper's tomograph renderings
(Figures 19/20) for interactive inspection.
"""

from __future__ import annotations

import json

from ..engine.profiler import QueryProfile

_KIND_CATEGORY = {
    "select": "filter",
    "fetch": "reconstruction",
    "heads": "reconstruction",
    "mirror": "reconstruction",
    "join": "join",
    "semijoin": "join",
    "pack": "exchange",
    "cand_union": "exchange",
    "cand_intersect": "exchange",
    "groupby": "aggregation",
    "aggregate": "aggregation",
    "aggr_merge": "aggregation",
    "calc": "compute",
    "sort": "compute",
    "topn": "compute",
    "scan": "binding",
    "slice": "binding",
    "literal": "binding",
    "vpartition": "binding",
}


def to_chrome_trace(
    profile: QueryProfile, *, process_name: str = "query"
) -> str:
    """Serialize a finished profile to a Trace Event Format JSON string.

    Simulated seconds are mapped to trace microseconds.
    """
    if profile.finish_time is None:
        raise ValueError("profile has no finish time; did the query run?")
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "args": {"name": process_name},
        }
    ]
    t0 = profile.submit_time
    for record in profile.records:
        events.append(
            {
                "name": record.describe,
                "cat": _KIND_CATEGORY.get(record.kind, "other"),
                "ph": "X",
                "pid": 1,
                "tid": record.thread_id,
                "ts": (record.start - t0) * 1e6,
                "dur": record.duration * 1e6,
                "args": {
                    "kind": record.kind,
                    "tuples_in": record.tuples_in,
                    "tuples_out": record.tuples_out,
                    "cpu_cycles": record.cpu_cycles,
                    "mem_bytes": record.mem_bytes,
                    "socket": record.socket_id,
                },
            }
        )
    return json.dumps({"traceEvents": events, "displayTimeUnit": "ms"})
