"""Visualization: text tomograph and ASCII figure plots."""

from .ascii_plot import bar_chart, line_plot
from .convergence import render_convergence_report
from .policies import render_policy_figure
from .scaleout import render_scaleout_figure
from .tomograph import (
    render_tomograph,
    render_trace_tomograph,
    utilization_summary,
)
from .trace import to_chrome_trace

__all__ = [
    "bar_chart",
    "line_plot",
    "render_convergence_report",
    "render_policy_figure",
    "render_scaleout_figure",
    "render_tomograph",
    "render_trace_tomograph",
    "to_chrome_trace",
    "utilization_summary",
]
