"""Rich text report of one adaptive parallelization instance.

Combines the run trace (Figure 11 style), the credit/debit ledger, a
mutation-kind histogram, and serial-vs-GME plan statistics into one
printable document; the CLI's ``adapt --trace`` uses it.
"""

from __future__ import annotations

from collections import Counter

from ..core.adaptive import AdaptiveResult
from ..plan.stats import plan_stats
from .ascii_plot import line_plot


def render_convergence_report(
    result: AdaptiveResult, *, max_trace_rows: int = 30
) -> str:
    """A multi-section text report for an :class:`AdaptiveResult`."""
    lines: list[str] = []
    lines.append(
        f"adaptive parallelization: serial {result.serial_time * 1000:.2f} ms "
        f"-> GME {result.gme_time * 1000:.2f} ms (x{result.speedup:.1f}) "
        f"at run {result.gme_run}; best observed "
        f"{result.best_time * 1000:.2f} ms; converged after "
        f"{result.total_runs} runs"
    )

    # Mutation histogram.
    schemes = Counter(m.scheme for m in result.mutations)
    kinds = Counter(m.target_kind for m in result.mutations)
    if result.mutations:
        scheme_text = ", ".join(f"{k}: {v}" for k, v in schemes.most_common())
        kind_text = ", ".join(f"{k}: {v}" for k, v in kinds.most_common())
        lines.append(f"mutations by scheme: {scheme_text}")
        lines.append(f"mutations by target: {kind_text}")

    # Plan shape: GME vs final.
    best = plan_stats(result.best_plan)
    lines.append(f"GME plan: {best.format()}")
    if result.final_plan is not None:
        final = plan_stats(result.final_plan)
        lines.append(f"final plan: {final.format()}")

    # Ledger table (head of the trace).
    lines.append("")
    lines.append("run   time(ms)    roi      credit    debit  note")
    shown = result.history[: max_trace_rows]
    for record in shown:
        note = ""
        if record.is_outlier:
            note = "outlier peak (forgiven)"
        elif record.index == result.gme_run:
            note = "<- GME"
        lines.append(
            f"{record.index:>3} {record.exec_time * 1000:10.2f}  "
            f"{record.roi:+6.3f}  {record.credit:8.2f} {record.debit:8.2f}  {note}"
        )
    if result.total_runs > max_trace_rows:
        lines.append(f"... ({result.total_runs - max_trace_rows} more runs)")

    # ASCII trace.
    lines.append("")
    lines.append(
        line_plot(
            {"exec time": result.exec_times()},
            title="execution time vs run",
        )
    )
    return "\n".join(lines)
