"""SVG figure for the scale-out benchmark.

Renders a ``BENCH_scaleout.json`` document (see
:mod:`repro.bench.scaleout`) as a self-contained SVG with no plotting
library.  Two panels:

1. speedup vs node count against the ideal linear diagonal -- the
   shared-nothing scaling headline;
2. the skew straggler story: response time on a balanced map, on the
   placement-skewed map, and on the skewed map after the adaptive
   layer's placement mutations re-homed the hoarded shards.
"""

from __future__ import annotations

#: Panel colors (colorblind-safe).
COLORS = {
    "measured": "#4477aa",
    "ideal": "#bbbbbb",
    "balanced": "#228833",
    "skewed": "#ee6677",
    "adapted": "#4477aa",
}

_FONT = 'font-family="Helvetica,Arial,sans-serif"'


def _esc(text: str) -> str:
    return (
        str(text).replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )


def _nice_ceiling(value: float) -> float:
    """A round axis maximum >= value (1/2/5 ladder)."""
    if value <= 0:
        return 1.0
    magnitude = 1.0
    while magnitude * 10 <= value:
        magnitude *= 10
    while magnitude > value:
        magnitude /= 10
    for factor in (1, 2, 5, 10):
        if magnitude * factor >= value:
            return magnitude * factor
    return magnitude * 10


def _speedup_panel(
    out: list[str],
    *,
    x: int,
    y: int,
    width: int,
    height: int,
    sweep: list[dict],
) -> None:
    counts = [row["nodes"] for row in sweep]
    speedups = [row["speedup"] for row in sweep]
    peak = _nice_ceiling(max(max(speedups), max(counts)))
    plot_x, plot_y = x + 52, y + 26
    plot_w, plot_h = width - 64, height - 56
    out.append(
        f'<text x="{x}" y="{y + 12}" {_FONT} font-size="13" '
        f'font-weight="bold" fill="#222">Speedup vs nodes '
        f"(uniform shard map; higher is better)</text>"
    )
    for frac in (0.0, 0.5, 1.0):
        gy = plot_y + plot_h * (1 - frac)
        out.append(
            f'<line x1="{plot_x}" y1="{gy:.1f}" x2="{plot_x + plot_w}" '
            f'y2="{gy:.1f}" stroke="#ddd" stroke-width="1"/>'
        )
        out.append(
            f'<text x="{plot_x - 6}" y="{gy + 4:.1f}" {_FONT} font-size="10" '
            f'fill="#666" text-anchor="end">{peak * frac:g}x</text>'
        )
    span = max(counts[-1] - counts[0], 1)

    def px_of(count: int) -> float:
        return plot_x + plot_w * (count - counts[0]) / span

    def py_of(value: float) -> float:
        return plot_y + plot_h * (1 - value / peak)

    # Ideal linear scaling reference.
    out.append(
        f'<line x1="{px_of(counts[0]):.1f}" y1="{py_of(counts[0]):.1f}" '
        f'x2="{px_of(counts[-1]):.1f}" y2="{py_of(counts[-1]):.1f}" '
        f'stroke="{COLORS["ideal"]}" stroke-width="1.5" '
        f'stroke-dasharray="6 4"/>'
    )
    out.append(
        f'<text x="{px_of(counts[-1]) - 4:.1f}" '
        f'y="{py_of(counts[-1]) - 6:.1f}" {_FONT} font-size="10" '
        f'fill="#999" text-anchor="end">ideal</text>'
    )
    points = []
    for row in sweep:
        px, py = px_of(row["nodes"]), py_of(row["speedup"])
        points.append(f"{px:.1f},{py:.1f}")
        out.append(
            f'<circle cx="{px:.1f}" cy="{py:.1f}" r="4" '
            f'fill="{COLORS["measured"]}"><title>{row["nodes"]} node(s): '
            f'{row["speedup"]:.2f}x ({row["response_s"]:.6f} s)</title>'
            f"</circle>"
        )
        out.append(
            f'<text x="{px:.1f}" y="{py - 9:.1f}" {_FONT} font-size="10" '
            f'fill="#444" text-anchor="middle">{row["speedup"]:.2f}x</text>'
        )
        out.append(
            f'<text x="{px:.1f}" y="{plot_y + plot_h + 14}" {_FONT} '
            f'font-size="10" fill="#444" text-anchor="middle">'
            f'{row["nodes"]}</text>'
        )
    out.append(
        f'<polyline points="{" ".join(points)}" fill="none" '
        f'stroke="{COLORS["measured"]}" stroke-width="2"/>'
    )
    out.append(
        f'<line x1="{plot_x}" y1="{plot_y + plot_h}" x2="{plot_x + plot_w}" '
        f'y2="{plot_y + plot_h}" stroke="#888" stroke-width="1"/>'
    )
    out.append(
        f'<text x="{plot_x + plot_w / 2:.1f}" y="{plot_y + plot_h + 28}" '
        f'{_FONT} font-size="10" fill="#666" text-anchor="middle">nodes'
        f"</text>"
    )


def _skew_panel(
    out: list[str],
    *,
    x: int,
    y: int,
    width: int,
    height: int,
    skew: dict,
) -> None:
    bars = [
        ("balanced", "balanced map", skew["balanced_s"]),
        ("skewed", "skewed map", skew["skewed_s"]),
        ("adapted", "skewed + placement moves", skew["adapted_s"]),
    ]
    peak = _nice_ceiling(max(value for _, _, value in bars))
    plot_x, plot_y = x + 52, y + 26
    plot_w, plot_h = width - 64, height - 56
    moves = len(skew["placement_moves"])
    out.append(
        f'<text x="{x}" y="{y + 12}" {_FONT} font-size="13" '
        f'font-weight="bold" fill="#222">Straggler gap at '
        f"{skew['nodes']} nodes: {skew['gap_before']:.2f}x &#8594; "
        f"{skew['gap_after']:.2f}x after {moves} placement move(s)</text>"
    )
    for frac in (0.0, 0.5, 1.0):
        gy = plot_y + plot_h * (1 - frac)
        out.append(
            f'<line x1="{plot_x}" y1="{gy:.1f}" x2="{plot_x + plot_w}" '
            f'y2="{gy:.1f}" stroke="#ddd" stroke-width="1"/>'
        )
        out.append(
            f'<text x="{plot_x - 6}" y="{gy + 4:.1f}" {_FONT} font-size="10" '
            f'fill="#666" text-anchor="end">{peak * frac:g}</text>'
        )
    out.append(
        f'<text x="{x + 8}" y="{plot_y + plot_h / 2:.1f}" {_FONT} '
        f'font-size="10" fill="#666" text-anchor="middle" '
        f'transform="rotate(-90 {x + 8} {plot_y + plot_h / 2:.1f})">'
        f"response (s)</text>"
    )
    group_w = plot_w / len(bars)
    bar_w = min(64.0, group_w * 0.5)
    for i, (key, label, value) in enumerate(bars):
        cx = plot_x + group_w * (i + 0.5)
        bar_h = plot_h * value / peak
        out.append(
            f'<rect x="{cx - bar_w / 2:.1f}" '
            f'y="{plot_y + plot_h - bar_h:.1f}" width="{bar_w:.1f}" '
            f'height="{max(bar_h, 0.5):.1f}" fill="{COLORS[key]}">'
            f"<title>{_esc(label)}: {value:.6f} s</title></rect>"
        )
        out.append(
            f'<text x="{cx:.1f}" y="{plot_y + plot_h - bar_h - 5:.1f}" '
            f'{_FONT} font-size="10" fill="#444" text-anchor="middle">'
            f"{value:.4f}</text>"
        )
        out.append(
            f'<text x="{cx:.1f}" y="{plot_y + plot_h + 14}" {_FONT} '
            f'font-size="10" fill="#444" text-anchor="middle">'
            f"{_esc(label)}</text>"
        )
    out.append(
        f'<line x1="{plot_x}" y1="{plot_y + plot_h}" x2="{plot_x + plot_w}" '
        f'y2="{plot_y + plot_h}" stroke="#888" stroke-width="1"/>'
    )


def render_scaleout_figure(report: dict) -> str:
    """The scale-out figure for one report, as a self-contained SVG."""
    width, panel_h = 880, 210
    skew = report.get("skew", {})
    has_skew = "gap_before" in skew
    height = panel_h * (2 if has_skew else 1) + 46
    out = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
        f'<text x="16" y="22" {_FONT} font-size="15" font-weight="bold" '
        f'fill="#111">Shared-nothing scale-out '
        f"({'quick' if report['quick'] else 'full'} mode, "
        f"{report['workload']['rows']} rows, "
        f"{report['workload']['node_threads']} threads/node)</text>",
    ]
    _speedup_panel(
        out,
        x=16,
        y=34,
        width=width - 32,
        height=panel_h,
        sweep=report["sweep"],
    )
    if has_skew:
        _skew_panel(
            out,
            x=16,
            y=34 + panel_h,
            width=width - 32,
            height=panel_h,
            skew=skew,
        )
    out.append("</svg>")
    return "\n".join(out) + "\n"
