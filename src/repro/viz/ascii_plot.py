"""Minimal ASCII line/bar plots for benchmark output.

The benchmark harness reproduces the paper's figures as terminal
plots: execution time vs run number (Figures 11, 14, 15), grouped bars
(Figures 12, 16, 17, 18).
"""

from __future__ import annotations

from typing import Mapping, Sequence


def line_plot(
    series: Mapping[str, Sequence[float]],
    *,
    title: str = "",
    height: int = 12,
    width: int = 72,
    ylabel: str = "time (s)",
    xlabel: str = "run",
) -> str:
    """Plot one or more numeric series against their index."""
    if not series:
        raise ValueError("nothing to plot")
    marks = "*+xo#@%&"
    all_values = [v for values in series.values() for v in values]
    if not all_values:
        raise ValueError("series are empty")
    top = max(all_values)
    bottom = min(0.0, min(all_values))
    span = max(top - bottom, 1e-12)
    longest = max(len(values) for values in series.values())
    grid = [[" "] * width for _ in range(height)]
    for si, (__, values) in enumerate(series.items()):
        mark = marks[si % len(marks)]
        for i, value in enumerate(values):
            x = int(i / max(longest - 1, 1) * (width - 1))
            y = height - 1 - int((value - bottom) / span * (height - 1))
            grid[y][x] = mark
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{top:10.3g} +" + "-" * width)
    for row in grid:
        lines.append(" " * 11 + "|" + "".join(row))
    lines.append(f"{bottom:10.3g} +" + "-" * width)
    lines.append(" " * 12 + f"{xlabel} 0..{longest - 1}   [{ylabel}]")
    legend = "   ".join(
        f"{marks[i % len(marks)]}={name}" for i, name in enumerate(series)
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)


def bar_chart(
    groups: Sequence[str],
    series: Mapping[str, Sequence[float]],
    *,
    title: str = "",
    width: int = 46,
    unit: str = "s",
) -> str:
    """Grouped horizontal bars: one block of bars per group label."""
    if not series:
        raise ValueError("nothing to plot")
    peak = max((v for values in series.values() for v in values), default=0.0)
    peak = max(peak, 1e-12)
    name_w = max(len(name) for name in series)
    lines = []
    if title:
        lines.append(title)
    for gi, group in enumerate(groups):
        lines.append(f"{group}:")
        for name, values in series.items():
            value = values[gi]
            filled = int(value / peak * width)
            bar = "#" * filled
            lines.append(f"  {name:<{name_w}} |{bar:<{width}}| {value:.4g} {unit}")
    return "\n".join(lines)
