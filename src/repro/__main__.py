"""``python -m repro`` entry point."""

import os
import sys

from .cli import main

try:
    sys.exit(main())
except BrokenPipeError:
    # Downstream pipe closed early (e.g. ``repro lint --json | head``).
    # Redirect stdout to devnull so the interpreter's exit-time flush
    # does not raise a second time, and exit with the conventional 128+SIGPIPE.
    os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    sys.exit(141)
