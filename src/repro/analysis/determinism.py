"""Determinism lints (rule family ``determinism.*``).

The engine's core guarantee is that a plan's result -- and its canonical
trace -- is bit-identical at any host worker count.  Anything that leaks
host state into computed values breaks that silently.  Four lints:

* ``determinism.unseeded-rng`` (error) -- ``np.random.default_rng()``
  with no seed, any legacy ``np.random.*`` module-level call, or a
  stdlib ``random.*`` draw.  All randomness in the repo flows from
  ``Config.seed`` through explicit ``Generator`` objects.
* ``determinism.host-time`` (warn) -- ``time.time`` / ``perf_counter``
  / ``datetime.now`` outside the host-only module families (observe's
  host spans, the evaluation pool's stats, the bench harness, the
  analyzer itself).  Host clocks must never feed simulated time,
  canonical traces, or cache keys.
* ``determinism.id-key`` (error) -- an ``id(...)`` call outside the
  host-only families.  CPython ids are allocation addresses: two runs of
  the same plan produce different ids, so an id-derived key poisons
  memo fingerprints and canonical output.
* ``determinism.set-iteration`` (warn) -- iterating (or ``list()`` /
  ``"".join()``-ing) a syntactic set expression without ``sorted()``.
  Set iteration order depends on insertion history and hash seeds; in
  canonical output paths it must be sorted first.
"""

from __future__ import annotations

import ast

from .framework import CodeContext, CodeRule
from .source import call_name, walk_with_stack

#: Module-name prefixes allowed to read host clocks / use id().
HOST_ONLY_PREFIXES = (
    "repro.observe",
    "repro.engine.evalpool",
    # Host-side evaluation transport: the shared-memory codec keys its
    # buffer-alias maps on object identity (which physical ndarray is
    # this a view of?) -- per-process lookup tables, never fingerprints.
    "repro.engine.backends",
    "repro.engine.shm",
    # The live serving engine stamps host_batch_ms on responses -- a
    # host-side observability field, stripped from every deterministic
    # surface (canonical bytes, ServeReport goldens).
    "repro.serve.engine",
    "repro.bench",
    "repro.analysis",
    "repro.cli",
)

_HOST_TIME_CALLS = {
    "time.time", "time.time_ns", "time.perf_counter",
    "time.perf_counter_ns", "time.monotonic", "time.monotonic_ns",
    "time.process_time", "perf_counter", "perf_counter_ns", "monotonic",
    "datetime.now", "datetime.utcnow", "datetime.datetime.now",
    "datetime.datetime.utcnow", "date.today", "datetime.date.today",
}

#: Seeded construction entry points of the new numpy RNG API.
_SEEDED_RNG_FUNCS = {"default_rng", "Generator", "SeedSequence",
                     "PCG64", "Philox", "SFC64", "MT19937"}

_STDLIB_RANDOM_DRAWS = {
    "random", "randint", "randrange", "getrandbits", "uniform", "choice",
    "choices", "sample", "shuffle", "gauss", "normalvariate", "betavariate",
    "expovariate", "triangular",
}


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


class DeterminismRule(CodeRule):
    """The ``determinism.*`` family over every analyzed module."""

    name = "determinism"

    def _host_only(self, module_name: str) -> bool:
        return module_name.startswith(HOST_ONLY_PREFIXES)

    def run(self, ctx: CodeContext) -> None:
        host_only = self._host_only(ctx.module.name)
        for node, stack in walk_with_stack(ctx.module.tree):
            if isinstance(node, ast.Call):
                self._check_call(ctx, node, stack, host_only)
            elif isinstance(node, ast.For) and _is_set_expr(node.iter):
                ctx.emit(
                    "determinism.set-iteration",
                    "warn",
                    "iteration over a set: order depends on hash seeds "
                    "and insertion history",
                    line=node.lineno,
                    hint="wrap the iterable in sorted(...) before any "
                    "order-sensitive use",
                )

    def _check_call(
        self,
        ctx: CodeContext,
        node: ast.Call,
        stack: list[ast.AST],
        host_only: bool,
    ) -> None:
        name = call_name(node)
        if name is None:
            return
        parts = name.split(".")

        # -- unseeded / legacy RNG ------------------------------------
        if len(parts) >= 2 and parts[0] in ("np", "numpy") and (
            parts[1] == "random"
        ):
            func = parts[-1]
            if func == "random" and len(parts) == 2:
                pass  # bare `np.random` is not a call target
            elif func in _SEEDED_RNG_FUNCS:
                if not node.args and not node.keywords:
                    ctx.emit(
                        "determinism.unseeded-rng",
                        "error",
                        f"{name}() without a seed draws from OS entropy",
                        line=node.lineno,
                        hint="thread the seed from Config.seed (see "
                        "Config.rng / derive_seed)",
                    )
            else:
                ctx.emit(
                    "determinism.unseeded-rng",
                    "error",
                    f"legacy global-state RNG call {name}()",
                    line=node.lineno,
                    hint="use an explicit np.random.default_rng(seed) "
                    "Generator",
                )
        elif parts[0] == "random" and len(parts) == 2 and (
            parts[1] in _STDLIB_RANDOM_DRAWS
        ):
            ctx.emit(
                "determinism.unseeded-rng",
                "error",
                f"stdlib global-state RNG call {name}()",
                line=node.lineno,
                hint="use an explicit seeded np.random Generator",
            )

        # -- host clocks ----------------------------------------------
        elif name in _HOST_TIME_CALLS and not host_only:
            ctx.emit(
                "determinism.host-time",
                "warn",
                f"host clock read {name}() outside the host-only module "
                "families",
                line=node.lineno,
                hint="simulated time comes from the scheduler; host "
                "timings belong in repro.observe / repro.bench",
            )

        # -- id()-derived keys ----------------------------------------
        elif (
            name == "id"
            and not host_only
            and len(node.args) == 1
            and not node.keywords
        ):
            ctx.emit(
                "determinism.id-key",
                "error",
                "id(...) is an allocation address: it differs across "
                "runs and poisons fingerprints/cache keys",
                line=node.lineno,
                hint="key on a stable identity (Column.uid, PlanNode.nid) "
                "instead",
            )

        # -- unsorted set consumption ---------------------------------
        elif (
            isinstance(node.func, ast.Name)
            and node.func.id in ("list", "tuple")
            and node.args
            and _is_set_expr(node.args[0])
        ) or (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "join"
            and node.args
            and _is_set_expr(node.args[0])
        ):
            ctx.emit(
                "determinism.set-iteration",
                "warn",
                "materializing a set without sorting: element order "
                "depends on hash seeds",
                line=node.lineno,
                hint="use sorted(...) when the order can reach output "
                "or a cache key",
            )
