"""Runtime mutation sanitizer for the evaluation pipeline.

Static certification (:mod:`repro.analysis.certificates`) proves what it
can from source; the sanitizer catches what slips through -- a kernel
that mutates shared buffers via a path the taint pass cannot see
(ufuncs with ``out=``, ``ndarray.__isub__`` called explicitly, C
extensions).  It is a *runtime* cross-check of the engine's three
execution invariants, enabled with ``execute(..., sanitize=True)`` or
``REPRO_SANITIZE=1``:

1. **Input immutability** -- every dispatch batch's input intermediates
   are checksummed (crc32 over their buffers) before evaluation and
   re-verified after: a kernel that wrote a shared buffer in place is
   caught the same round, named, with the operator and input that
   changed.
2. **Commit order** -- the dispatch-order commit barrier is the
   determinism linchpin: results must be committed strictly in
   collection order, so the first occurrences of job indexes in batch
   order must be exactly ``0, 1, 2, ...``.
3. **Trace fingerprint** -- every committed value folds into a rolling
   fingerprint; :func:`verify_dual_run` executes a plan at ``workers=1``
   and ``workers=N`` and requires bit-identical fingerprints.

Checksumming reads every input buffer once per dispatch round, so the
sanitizer costs host wall-clock (bounded in ``docs/perf.md``); it never
changes simulated time or results.  Off by default.
"""

from __future__ import annotations

import struct
import weakref
import zlib
from typing import TYPE_CHECKING, Any, Sequence

import numpy as np

from ..errors import SanitizerError
from ..storage.column import BAT, Candidates, ColumnSlice, Scalar

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..config import SimulationConfig
    from ..plan.graph import Plan

#: Binary layout of one fingerprint fold: (sid, nid, value checksum).
_COMMIT_STRUCT = struct.Struct("<qqI").pack
#: Binary layout of a slice window: (lo, hi).
_WINDOW_STRUCT = struct.Struct("<qq").pack

#: One dispatch-batch entry handed to the sanitizer:
#: ``(sid, nid, operator name, [(input nid, input value), ...])``.
BatchEntry = tuple[int, int, str, list[tuple[int, Any]]]
#: Per-entry, per-input baseline checksums of one dispatch round.
Snapshot = list[list[int]]


def _crc_array(crc: int, array: np.ndarray) -> int:
    # Fast path first: a contiguous numeric array is crc'd straight off
    # its buffer in one C call.  Non-contiguous views and object arrays
    # raise from zlib and take the slow branch.
    try:
        return zlib.crc32(array, crc)
    except (TypeError, ValueError, BufferError):
        if array.dtype.hasobject:
            # Object arrays have no stable buffer; hash their reprs.
            return zlib.crc32(repr(array.tolist()).encode(), crc)
        return zlib.crc32(np.ascontiguousarray(array).tobytes(), crc)


def _crc_bat(value: BAT) -> int:
    return _crc_array(_crc_array(0, value.head), value.tail)


def _crc_slice(value: ColumnSlice) -> int:
    return _crc_array(zlib.crc32(_WINDOW_STRUCT(value.lo, value.hi)), value.values)


def _crc_candidates(value: Candidates) -> int:
    return _crc_array(zlib.crc32(b"u" if value.unique else b"-"), value.oids)


def _crc_scalar(value: Scalar) -> int:
    return zlib.crc32(repr((value.dtype.name, value.value)).encode())


def _crc_ndarray(value: np.ndarray) -> int:
    return _crc_array(0, value)


# Exact-type dispatch: checksum_intermediate runs a few hundred thousand
# times per sanitized workload, so the common path is one dict lookup
# instead of an isinstance chain (subclasses fall through to it below).
_CRC_DISPATCH: dict[type, Any] = {
    BAT: _crc_bat,
    ColumnSlice: _crc_slice,
    Candidates: _crc_candidates,
    Scalar: _crc_scalar,
    np.ndarray: _crc_ndarray,
}


def checksum_intermediate(value: Any) -> int:
    """crc32 over every buffer reachable from one intermediate.

    A :class:`ColumnSlice` checksums its *value view* -- bytes of the
    shared base-column buffer -- so a kernel mutating the base column
    through any other view of it is still caught.
    """
    handler = _CRC_DISPATCH.get(type(value))
    if handler is not None:
        return handler(value)
    if value is None:
        return 0
    for base, fallback in _CRC_DISPATCH.items():
        if isinstance(value, base):
            return fallback(value)
    return zlib.crc32(repr(value).encode())


#: Process-wide at-commit checksum keyed by ``id(value)``.  Memoized
#: intermediates are re-committed (under fresh submissions, often fresh
#: Sanitizer instances) on every cache hit; their bytes were already
#: read at first commit, so re-commits reuse the recorded checksum
#: instead of re-reading the buffer.  A ``weakref.finalize`` evicts
#: each entry when its object dies, so ids can never alias.  (If a
#: kernel mutates a cached value, the stale baseline makes the next
#: verify read flag it -- exactly the right outcome.)
_OBJECT_CRC: dict[int, int] = {}

#: At-commit checksums of slices over *read-only* base columns, keyed
#: by ``(column uid, lo, hi)``.  Column uids are minted from a
#: process-wide counter and never reused, and slices over an immutable
#: buffer always checksum the same, so the key is sound even across
#: fresh slice objects (every run re-partitions a scan into new
#: ColumnSlice views of the same windows).  Mutations through the
#: ``setflags`` escape hatch leave the cached baseline stale, which the
#: next verify read flags -- the right outcome.  Cleared wholesale at
#: the size cap so dead columns cannot accumulate entries forever.
_SLICE_CRC: dict[tuple[int, int, int], int] = {}
_SLICE_CRC_LIMIT = 65536


class Sanitizer:
    """Verifies execution invariants around each dispatch round.

    One instance per :class:`~repro.engine.scheduler.Simulator`; all
    calls happen on the main thread (snapshot before the batch is
    handed to the pool, verification after it drains), so the sanitizer
    itself needs no locking.
    """

    def __init__(self) -> None:
        #: Rolling crc32 over committed (node, value) pairs.
        self._fingerprint = 0
        #: Checksum of every committed intermediate, keyed by
        #: ``(sid, nid)``.  Doubles as the snapshot baseline: a value's
        #: at-commit checksum is exactly its expected pre-dispatch
        #: checksum, so snapshots are dict lookups, not buffer reads --
        #: and a mutation in *any* round between commit and use is
        #: caught, not just one in the round that evaluated the mutator.
        self._commit_crc: dict[tuple[int, int], int] = {}
        self.batches_checked = 0
        self.buffers_checked = 0
        self.commits_recorded = 0

    # -- invariant 1: input immutability -------------------------------
    def snapshot_inputs(self, entries: Sequence[BatchEntry]) -> Snapshot:
        """Baseline checksums for every input of every batch entry.

        Inputs are committed intermediates, so their baselines were
        already computed by :meth:`record_commit`; only values that
        never passed through a commit (injected by tests) are read here.
        """
        snapshot: Snapshot = []
        for sid, _nid, _name, inputs in entries:
            sums = []
            for in_nid, value in inputs:
                crc = self._commit_crc.get((sid, in_nid))
                if crc is None:
                    crc = checksum_intermediate(value)
                    self.buffers_checked += 1
                sums.append(crc)
            snapshot.append(sums)
        self.batches_checked += 1
        return snapshot

    def verify_inputs(
        self, snapshot: Snapshot, entries: Sequence[BatchEntry]
    ) -> None:
        """Re-checksum after evaluation; raise naming any mutation.

        One intermediate commonly feeds many entries of the same batch
        (a scan slice fanned out to every partition's select), so each
        distinct input is re-read once per round, not once per consumer.
        """
        fresh: dict[tuple[int, int], int] = {}
        for before, (sid, nid, name, inputs) in zip(snapshot, entries):
            for pos, (old, (in_nid, value)) in enumerate(zip(before, inputs)):
                key = (sid, in_nid)
                new = fresh.get(key)
                if new is None:
                    new = fresh[key] = checksum_intermediate(value)
                    self.buffers_checked += 1
                if new != old:
                    raise SanitizerError(
                        f"kernel mutated a shared input buffer: "
                        f"{name}(nid={nid}) input #{pos} checksum "
                        f"{old:08x} -> {new:08x}; operators must treat "
                        "inputs as immutable (see docs/static_analysis.md)"
                    )

    def verify_round(self, entries: Sequence[BatchEntry]) -> None:
        """:meth:`snapshot_inputs` + :meth:`verify_inputs` in one pass.

        The hot path the scheduler calls once per dispatch round: every
        input's baseline is its at-commit checksum, so no pre-evaluation
        snapshot is needed -- one post-evaluation read per distinct
        input, compared straight against :attr:`_commit_crc`.  Inputs
        that never passed through a commit (injected by tests) are
        adopted as their own baseline.
        """
        fresh: dict[tuple[int, int], int] = {}
        commit_crc = self._commit_crc
        checksum = checksum_intermediate
        checked = 0
        for sid, nid, name, inputs in entries:
            for pos, (in_nid, value) in enumerate(inputs):
                key = (sid, in_nid)
                new = fresh.get(key)
                if new is None:
                    new = fresh[key] = checksum(value)
                    checked += 1
                old = commit_crc.get(key)
                if old is None:
                    commit_crc[key] = new
                elif new != old:
                    raise SanitizerError(
                        f"kernel mutated a shared input buffer: "
                        f"{name}(nid={nid}) input #{pos} checksum "
                        f"{old:08x} -> {new:08x}; operators must treat "
                        "inputs as immutable (see docs/static_analysis.md)"
                    )
        self.buffers_checked += checked
        self.batches_checked += 1

    def verify_dispatch(self, batch: Sequence[Any], n_results: int) -> None:
        """Verify one scheduler dispatch round in a single pass.

        The scheduler's hot-path entry point: ``batch`` is its dispatch
        entry list (duck-typed ``.sub.sid``, ``.sub.values``, ``.node``,
        ``.job_index``), walked directly so no per-round
        :data:`BatchEntry` tuples are materialized.  Semantically
        :meth:`verify_round` + :meth:`check_commit_order`.
        """
        fresh: dict[tuple[int, int], int] = {}
        commit_crc = self._commit_crc
        checksum = checksum_intermediate
        checked = 0
        job_indexes = []
        for entry in batch:
            job_indexes.append(entry.job_index)
            sub = entry.sub
            sid = sub.sid
            values = sub.values
            node = entry.node
            for pos, child in enumerate(node.inputs):
                key = (sid, child.nid)
                new = fresh.get(key)
                if new is None:
                    new = fresh[key] = checksum(values[child.nid])
                    checked += 1
                old = commit_crc.get(key)
                if old is None:
                    commit_crc[key] = new
                elif new != old:
                    raise SanitizerError(
                        f"kernel mutated a shared input buffer: "
                        f"{type(node.op).__name__}(nid={node.nid}) input "
                        f"#{pos} checksum {old:08x} -> {new:08x}; "
                        "operators must treat inputs as immutable (see "
                        "docs/static_analysis.md)"
                    )
        self.buffers_checked += checked
        self.batches_checked += 1
        self.check_commit_order(job_indexes, n_results)

    # -- invariant 2: dispatch-order commit barrier --------------------
    def check_commit_order(
        self, job_indexes: Sequence[int], n_results: int
    ) -> None:
        """First occurrences of job indexes must be ``0, 1, 2, ...``.

        ``job_indexes`` are the per-entry indexes in batch (collection)
        order; ``-1`` marks memo-peeked entries, repeats mark same-batch
        fingerprint sharing.
        """
        expected = 0
        seen: set[int] = set()
        for index in job_indexes:
            if index < 0:
                continue
            if index in seen:
                continue
            if index != expected:
                raise SanitizerError(
                    f"commit barrier violated: job index {index} committed "
                    f"where {expected} was expected; results must be "
                    "consumed strictly in dispatch order"
                )
            seen.add(index)
            expected += 1
        if expected != n_results:
            raise SanitizerError(
                f"commit barrier violated: batch produced {n_results} "
                f"results but only {expected} were claimed in dispatch order"
            )

    # -- invariant 3: rolling trace fingerprint ------------------------
    def record_commit(self, sid: int, nid: int, value: Any) -> None:
        """Fold one committed value into the rolling fingerprint (and
        remember its checksum as the snapshot baseline)."""
        object_crc = _OBJECT_CRC
        oid = id(value)
        crc = object_crc.get(oid)
        if crc is None:
            if (
                type(value) is ColumnSlice
                and not value.column.values.flags.writeable
            ):
                key = (value.column.uid, value.lo, value.hi)
                crc = _SLICE_CRC.get(key)
                if crc is None:
                    crc = checksum_intermediate(value)
                    if len(_SLICE_CRC) >= _SLICE_CRC_LIMIT:
                        _SLICE_CRC.clear()
                    _SLICE_CRC[key] = crc
            else:
                crc = checksum_intermediate(value)
                try:
                    weakref.finalize(value, object_crc.pop, oid, None)
                except TypeError:
                    pass  # not weak-referenceable (None, ints): skip
                else:
                    object_crc[oid] = crc
        self._commit_crc[(sid, nid)] = crc
        self._fingerprint = zlib.crc32(
            _COMMIT_STRUCT(sid, nid, crc), self._fingerprint
        )
        self.commits_recorded += 1

    @property
    def fingerprint(self) -> str:
        """Hex fingerprint of every commit so far (order-sensitive)."""
        return f"{self._fingerprint:08x}"

    def stats(self) -> dict[str, int | str]:
        return {
            "batches_checked": self.batches_checked,
            "buffers_checked": self.buffers_checked,
            "commits_recorded": self.commits_recorded,
            "fingerprint": self.fingerprint,
        }


def verify_dual_run(
    plan: "Plan",
    config: "SimulationConfig | None" = None,
    *,
    workers: int | None = None,
) -> str:
    """Execute ``plan`` serially and at ``workers`` and cross-check.

    Both runs execute under the sanitizer; their rolling commit
    fingerprints must match bit-for-bit (the engine's central
    determinism guarantee).  Returns the common fingerprint.
    """
    from ..config import SimulationConfig
    from ..engine.evalpool import EvalPool, default_workers
    from ..engine.scheduler import Simulator

    if config is None:
        config = SimulationConfig()
    if workers is None:
        workers = max(2, default_workers())
    fingerprints: list[str] = []
    for count in (1, workers):
        sanitizer = Sanitizer()
        pool = EvalPool(count) if count > 1 else None
        try:
            simulator = Simulator(config, evalpool=pool, sanitizer=sanitizer)
            sid = simulator.submit(plan)
            simulator.run()
            simulator.result(sid)
        finally:
            if pool is not None:
                pool.close()
        fingerprints.append(sanitizer.fingerprint)
    if fingerprints[0] != fingerprints[1]:
        raise SanitizerError(
            f"dual-run fingerprint mismatch: workers=1 -> "
            f"{fingerprints[0]}, workers={workers} -> {fingerprints[1]}; "
            "results are not worker-invariant"
        )
    return fingerprints[0]
