"""Kernel purity / effect analysis (rule family ``purity.*``).

An operator kernel -- the ``evaluate`` / ``work_profile`` / ``mask``
methods dispatched by the evaluation pool -- must be a pure function of
its inputs: column buffers are shared across worker threads (and, for
the planned process backend, mapped into shared memory), so an in-place
write to anything reachable from the inputs is a data race and silently
corrupts sibling partitions.

The analysis is a forward taint pass over each kernel's AST.  *Tainted*
names alias caller-owned memory:

* every parameter starts tainted (``self``, ``inputs``, ...);
* slice subscripts (``x[a:b]``) of tainted values stay tainted -- numpy
  slicing returns a **view** of the same buffer;
* constant subscripts (``inputs[0]``) stay tainted -- indexing a Python
  sequence aliases the element;
* attribute access on tainted values stays tainted (``bat.tail``);
* boolean/fancy indexing, arithmetic, comparisons, and calls produce
  fresh arrays and *drop* taint -- except the known aliasing calls
  (``np.asarray``, ``.view()``, ``.reshape()``, ``.astype(copy=False)``
  and friends), which forward it.

Rules:

* ``purity.inplace-write`` (error) -- a subscript/attribute store or an
  augmented assignment whose target is tainted: ``out[lo:hi] = v``,
  ``bat.tail += 1``, ``inputs[0].head[:] = 0``.
* ``purity.mutating-call`` (error) -- an in-place method on a tainted
  array (``.sort()``, ``.fill()``, ``.partition()``, ...), a mutating
  numpy free function (``np.copyto``, ``np.place``, ...) targeting a
  tainted array, or ``.setflags(write=True)`` undoing the read-only
  guard on a base column.
* ``purity.module-state`` (error) -- a kernel (or a same-module helper
  it calls) writes module-level state: a ``global`` rebind, or mutation
  of a module-level container.

Writes rooted at ``self`` are deliberately left to the concurrency
family (``concurrency.self-mutation``) so each finding has one home.

:func:`analyze_kernel` returns the raw :class:`KernelEffects` -- the
certificate builder (:mod:`repro.analysis.certificates`) reuses it to
derive ``pure`` and ``view_returning`` without a second walk.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from .framework import CodeContext, CodeRule
from .source import (
    SourceModule,
    assigned_names,
    call_name,
    dotted_name,
    is_slice_subscript,
    root_name,
)

#: Methods the evaluation pool dispatches -- the kernel surface.
KERNEL_METHODS = ("evaluate", "work_profile", "mask")

#: Calls that forward aliasing from argument to result.
_ALIAS_FUNCS = {"np.asarray", "numpy.asarray", "np.ascontiguousarray",
                "numpy.ascontiguousarray", "memoryview"}
#: Sequence wrappers whose *elements* still alias the originals.
_SEQ_TRANSPARENT = {"enumerate", "zip", "reversed", "iter", "tuple", "list",
                    "sorted"}
#: Zero-copy (or possibly zero-copy) ndarray methods, plus the repo's
#: own view-handing methods (``Column.slice``, ``ColumnSlice.oids``).
_ALIAS_METHODS = {"view", "reshape", "ravel", "squeeze", "transpose",
                  "swapaxes", "diagonal", "slice", "oids"}
#: ndarray methods that mutate the receiver in place.
_MUTATING_METHODS = {"sort", "fill", "resize", "put", "partition",
                     "itemset", "byteswap"}
#: Container methods that mutate the receiver in place.
_CONTAINER_MUTATORS = {"append", "extend", "insert", "add", "update",
                       "clear", "pop", "popitem", "remove", "discard",
                       "setdefault"}
#: numpy free functions whose *first argument* is written in place.
_MUTATING_NP_FUNCS = {"copyto", "put", "place", "putmask", "fill_diagonal"}


@dataclass
class KernelEffects:
    """Raw effect findings of one kernel function."""

    #: ``(line, description)`` of in-place writes to tainted targets.
    inplace_writes: list[tuple[int, str]] = field(default_factory=list)
    #: ``(line, description)`` of mutating calls on tainted receivers.
    mutating_calls: list[tuple[int, str]] = field(default_factory=list)
    #: ``(line, description)`` of module-state writes.
    module_writes: list[tuple[int, str]] = field(default_factory=list)
    #: ``(line, description)`` of writes rooted at ``self`` (reported by
    #: the concurrency family, surfaced here for the certificate).
    self_writes: list[tuple[int, str]] = field(default_factory=list)
    #: The kernel can return a view aliasing an input buffer.
    view_return: bool = False

    @property
    def pure(self) -> bool:
        """No effects visible outside the call (view returns allowed)."""
        return not (
            self.inplace_writes
            or self.mutating_calls
            or self.module_writes
            or self.self_writes
        )


def _expr_taint(node: ast.AST, tainted: set[str]) -> bool:
    """Whether evaluating ``node`` can alias caller-owned memory."""
    if isinstance(node, ast.Name):
        return node.id in tainted
    if isinstance(node, ast.Attribute):
        return _expr_taint(node.value, tainted)
    if isinstance(node, ast.Subscript):
        if not _expr_taint(node.value, tainted):
            return False
        # Slices are views; constant indexes alias sequence elements;
        # everything else (masks, fancy index arrays) copies.
        return isinstance(node.slice, (ast.Slice, ast.Constant))
    if isinstance(node, ast.Call):
        name = call_name(node)
        if name in _ALIAS_FUNCS and node.args:
            return _expr_taint(node.args[0], tainted)
        if name in _SEQ_TRANSPARENT:
            return any(_expr_taint(arg, tainted) for arg in node.args)
        if name is not None and name.split(".")[-1] in (
            _VIEW_TRANSPARENT_CTORS
        ):
            return any(
                _expr_taint(arg, tainted) for arg in node.args
            ) or any(
                _expr_taint(kw.value, tainted) for kw in node.keywords
            )
        if isinstance(node.func, ast.Attribute):
            method = node.func.attr
            if method in _ALIAS_METHODS:
                return _expr_taint(node.func.value, tainted)
            if method == "astype":
                nocopy = any(
                    kw.arg == "copy"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is False
                    for kw in node.keywords
                )
                return nocopy and _expr_taint(node.func.value, tainted)
        return False
    if isinstance(node, (ast.Tuple, ast.List)):
        return any(_expr_taint(elt, tainted) for elt in node.elts)
    if isinstance(node, ast.IfExp):
        return _expr_taint(node.body, tainted) or _expr_taint(
            node.orelse, tainted
        )
    if isinstance(node, ast.Starred):
        return _expr_taint(node.value, tainted)
    if isinstance(node, ast.NamedExpr):
        return _expr_taint(node.value, tainted)
    return False


def _target_desc(node: ast.AST) -> str:
    return ast.unparse(node) if hasattr(ast, "unparse") else "<target>"


def _bind(target: ast.AST, value_tainted: bool, tainted: set[str]) -> None:
    for name in assigned_names(target):
        if value_tainted:
            tainted.add(name)
        else:
            tainted.discard(name)


class _KernelVisitor(ast.NodeVisitor):
    """One forward pass over a kernel body, in document order."""

    def __init__(self, tainted: set[str], module_globals: set[str]) -> None:
        self.tainted = tainted
        self.module_globals = module_globals
        self.declared_global: set[str] = set()
        self.effects = KernelEffects()

    # -- write classification ------------------------------------------
    def _record_store(self, target: ast.AST, line: int) -> None:
        """Classify a Subscript/Attribute store or AugAssign target."""
        root = root_name(target)
        desc = _target_desc(target)
        if root == "self":
            self.effects.self_writes.append((line, desc))
            return
        if root is not None and root in self.module_globals:
            self.effects.module_writes.append((line, desc))
            return
        if isinstance(target, ast.Name):
            if target.id in self.declared_global:
                self.effects.module_writes.append((line, desc))
            elif target.id in self.tainted:
                self.effects.inplace_writes.append((line, desc))
            return
        if _expr_taint(
            target.value if isinstance(target, (ast.Subscript, ast.Attribute))
            else target,
            self.tainted,
        ):
            self.effects.inplace_writes.append((line, desc))

    # -- statements ----------------------------------------------------
    def visit_Global(self, node: ast.Global) -> None:
        self.declared_global.update(node.names)

    def visit_Assign(self, node: ast.Assign) -> None:
        self.visit(node.value)
        value_tainted = _expr_taint(node.value, self.tainted)
        for target in node.targets:
            if isinstance(target, (ast.Subscript, ast.Attribute)):
                self._record_store(target, node.lineno)
            elif isinstance(target, ast.Name) and (
                target.id in self.declared_global
            ):
                self.effects.module_writes.append(
                    (node.lineno, _target_desc(target))
                )
            else:
                self._bind_target(target, node.value, value_tainted)

    def _bind_target(
        self, target: ast.AST, value: ast.AST, value_tainted: bool
    ) -> None:
        # Unpack `a, b = x, y` elementwise so taint stays precise.
        if isinstance(target, (ast.Tuple, ast.List)) and isinstance(
            value, (ast.Tuple, ast.List)
        ) and len(target.elts) == len(value.elts):
            for t, v in zip(target.elts, value.elts):
                self._bind_target(t, v, _expr_taint(v, self.tainted))
            return
        _bind(target, value_tainted, self.tainted)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is None:
            return
        self.visit(node.value)
        if isinstance(node.target, (ast.Subscript, ast.Attribute)):
            self._record_store(node.target, node.lineno)
        else:
            _bind(
                node.target,
                _expr_taint(node.value, self.tainted),
                self.tainted,
            )

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self.visit(node.value)
        self._record_store(node.target, node.lineno)

    def visit_For(self, node: ast.For) -> None:
        # Iterating a tainted sequence hands out aliases of its elements.
        _bind(node.target, _expr_taint(node.iter, self.tainted), self.tainted)
        self.generic_visit(node)

    def visit_withitem(self, node: ast.withitem) -> None:
        if node.optional_vars is not None:
            _bind(
                node.optional_vars,
                _expr_taint(node.context_expr, self.tainted),
                self.tainted,
            )
        self.generic_visit(node)

    # -- calls ---------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        line = node.lineno
        desc = _target_desc(node)
        if isinstance(node.func, ast.Attribute):
            method = node.func.attr
            recv = node.func.value
            recv_root = root_name(recv)
            recv_tainted = _expr_taint(recv, self.tainted)
            recv_global = recv_root in self.module_globals
            if method in _MUTATING_METHODS or (
                method in _CONTAINER_MUTATORS
            ):
                if recv_root == "self":
                    self.effects.self_writes.append((line, desc))
                elif recv_global:
                    self.effects.module_writes.append((line, desc))
                elif recv_tainted:
                    self.effects.mutating_calls.append((line, desc))
            elif method == "setflags" and recv_tainted:
                if any(
                    kw.arg in ("write", "writeable")
                    and not (
                        isinstance(kw.value, ast.Constant)
                        and kw.value.value is False
                    )
                    for kw in node.keywords
                ):
                    self.effects.mutating_calls.append((line, desc))
        name = call_name(node)
        if name is not None:
            parts = name.split(".")
            if (
                len(parts) == 2
                and parts[0] in ("np", "numpy")
                and parts[1] in _MUTATING_NP_FUNCS
                and node.args
                and _expr_taint(node.args[0], self.tainted)
            ):
                self.effects.mutating_calls.append((line, desc))
        self.generic_visit(node)

    def visit_Return(self, node: ast.Return) -> None:
        if node.value is not None and _returns_view(node.value, self.tainted):
            self.effects.view_return = True
        self.generic_visit(node)


#: Intermediate constructors that wrap -- not copy -- their arguments.
_VIEW_TRANSPARENT_CTORS = {"BAT", "Candidates", "ColumnSlice"}


def _returns_view(expr: ast.AST, tainted: set[str]) -> bool:
    """Whether a return expression can alias an input buffer.

    Structural: the returned value itself (or a buffer handed to one of
    the wrapping intermediate constructors -- ``BAT``, ``Candidates``,
    ``ColumnSlice``) aliases a tainted value.  Tainted names consumed by
    scalar-producing calls (``len(x)``, ``x.sum()``) do not count.
    """
    if isinstance(expr, (ast.Tuple, ast.List)):
        return any(_returns_view(elt, tainted) for elt in expr.elts)
    if isinstance(expr, ast.IfExp):
        return _returns_view(expr.body, tainted) or _returns_view(
            expr.orelse, tainted
        )
    if isinstance(expr, ast.Call):
        name = call_name(expr)
        if name is not None and name.split(".")[-1] in (
            _VIEW_TRANSPARENT_CTORS
        ):
            return any(
                _returns_view(arg, tainted) for arg in expr.args
            ) or any(
                _returns_view(kw.value, tainted) for kw in expr.keywords
            )
        return _expr_taint(expr, tainted)
    if isinstance(expr, ast.Name):
        return expr.id in tainted and expr.id != "self"
    return _expr_taint(expr, tainted)


def module_mutable_globals(module: SourceModule) -> set[str]:
    """Module-level names bound to mutable containers."""
    names: set[str] = set()
    ctor_names = {"dict", "list", "set", "defaultdict", "OrderedDict",
                  "Counter", "deque"}
    for stmt in module.tree.body:
        targets: list[ast.AST] = []
        value: ast.AST | None = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if value is None:
            continue
        mutable = isinstance(
            value,
            (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp,
             ast.SetComp),
        )
        if isinstance(value, ast.Call):
            fname = call_name(value)
            mutable = fname is not None and fname.split(".")[-1] in ctor_names
        if mutable:
            for target in targets:
                for name in assigned_names(target):
                    if name != "__all__":
                        names.add(name)
    return names


def analyze_kernel(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
    module_globals: set[str] | None = None,
) -> KernelEffects:
    """Run the taint pass over one kernel function."""
    args = func.args
    params = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    if args.vararg:
        params.append(args.vararg.arg)
    if args.kwarg:
        params.append(args.kwarg.arg)
    visitor = _KernelVisitor(set(params), module_globals or set())
    for stmt in func.body:
        visitor.visit(stmt)
    return visitor.effects


def _helper_functions(
    module: SourceModule, kernels: list[ast.FunctionDef]
) -> list[ast.FunctionDef]:
    """Module-level helpers called (one level deep) from the kernels."""
    called: set[str] = set()
    for kernel in kernels:
        for node in ast.walk(kernel):
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name is not None and "." not in name:
                    called.add(name)
    helpers = []
    for node in module.tree.body:
        if isinstance(node, ast.FunctionDef) and node.name in called:
            helpers.append(node)
    return helpers


class PurityRule(CodeRule):
    """The ``purity.*`` family over kernel methods."""

    name = "purity"

    def run(self, ctx: CodeContext) -> None:
        module = ctx.module
        mutable_globals = module_mutable_globals(module)
        kernels: list[ast.FunctionDef] = []
        owners: list[str] = []
        for func, cls in module.functions():
            if cls is not None and func.name in KERNEL_METHODS:
                kernels.append(func)
                owners.append(f"{cls.name}.{func.name}")
        for helper in _helper_functions(module, kernels):
            kernels.append(helper)
            owners.append(helper.name)
        for func, owner in zip(kernels, owners):
            effects = analyze_kernel(func, mutable_globals)
            for line, desc in effects.inplace_writes:
                ctx.emit(
                    "purity.inplace-write",
                    "error",
                    f"{owner} writes a shared input buffer in place: {desc}",
                    line=line,
                    hint="materialize a fresh array (np.copy / arithmetic) "
                    "before writing",
                )
            for line, desc in effects.mutating_calls:
                ctx.emit(
                    "purity.mutating-call",
                    "error",
                    f"{owner} calls an in-place mutator on shared input "
                    f"data: {desc}",
                    line=line,
                    hint="use the copying variant (np.sort over .sort(), "
                    "fresh output buffers over out=)",
                )
            for line, desc in effects.module_writes:
                ctx.emit(
                    "purity.module-state",
                    "error",
                    f"{owner} writes module-level state: {desc}",
                    line=line,
                    hint="kernels run concurrently on pool workers; pass "
                    "state through operator params instead",
                )
