"""Source discovery and AST utilities for the codebase analyzer.

The codebase analyzer (:mod:`repro.analysis`) works on plain
:mod:`ast` trees -- no imports are executed, no new dependencies -- so
it can be pointed at the installed :mod:`repro` package, at a directory,
or at a single fixture file.  This module owns the boring half: finding
the files, parsing them once, mapping paths to dotted module names, and
the handful of AST helpers every rule family shares.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from ..errors import AnalysisError


@dataclass(frozen=True)
class SourceModule:
    """One parsed source file."""

    #: Dotted module name, e.g. ``repro.operators.select`` (best effort
    #: for files outside a package: the bare stem).
    name: str
    #: Path as given (kept relative when the caller passed relative).
    path: str
    tree: ast.Module = field(repr=False)

    def functions(self) -> Iterator[tuple[ast.FunctionDef, ast.ClassDef | None]]:
        """Every function/method with its enclosing class (None at module level).

        Nested functions are *not* yielded separately -- rules see them
        while walking their enclosing function, which is where closure
        semantics live.
        """
        for node in self.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node, None
            elif isinstance(node, ast.ClassDef):
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        yield item, node

    def classes(self) -> Iterator[ast.ClassDef]:
        for node in self.tree.body:
            if isinstance(node, ast.ClassDef):
                yield node


def module_name_for(path: Path) -> str:
    """Best-effort dotted module name of ``path``.

    Walks up while ``__init__.py`` siblings exist, so files inside the
    ``repro`` package resolve to ``repro.engine.scheduler``-style names
    wherever the package happens to live on disk.
    """
    parts = [path.stem] if path.stem != "__init__" else []
    parent = path.resolve().parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts) if parts else path.stem


def parse_file(path: str | Path) -> SourceModule:
    """Parse one python file into a :class:`SourceModule`."""
    p = Path(path)
    try:
        text = p.read_text()
    except OSError as exc:
        raise AnalysisError(f"cannot read {p}: {exc}") from exc
    try:
        tree = ast.parse(text, filename=str(p))
    except SyntaxError as exc:
        raise AnalysisError(f"cannot parse {p}: {exc}") from exc
    return SourceModule(name=module_name_for(p), path=str(p), tree=tree)


def discover(paths: Iterable[str | Path]) -> list[SourceModule]:
    """Parse every ``*.py`` file under the given files/directories.

    Directories are walked recursively; results are ordered by path so
    reports are stable regardless of filesystem iteration order.
    """
    files: list[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        elif p.is_file():
            files.append(p)
        else:
            raise AnalysisError(f"no such file or directory: {p}")
    if not files:
        raise AnalysisError("nothing to analyze: no python files found")
    return [parse_file(f) for f in sorted(set(files), key=str)]


def default_package_path() -> Path:
    """The installed :mod:`repro` package directory (the default target)."""
    import repro

    return Path(repro.__file__).resolve().parent


# ----------------------------------------------------------------------
# Shared AST helpers
# ----------------------------------------------------------------------
def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def root_name(node: ast.AST) -> str | None:
    """The leftmost Name of an expression chain (through calls/subscripts).

    ``view.column.values[lo:hi]`` -> ``view``; ``np.arange(n)`` -> ``np``.
    """
    while True:
        if isinstance(node, ast.Attribute):
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Call):
            node = node.func
        elif isinstance(node, ast.Name):
            return node.id
        else:
            return None


def call_name(node: ast.Call) -> str | None:
    """Dotted name of the called target, e.g. ``np.random.shuffle``."""
    return dotted_name(node.func)


def assigned_names(target: ast.AST) -> Iterator[str]:
    """Plain names bound by an assignment target (tuples unpacked)."""
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from assigned_names(elt)


def is_slice_subscript(node: ast.AST) -> bool:
    """True for ``x[a:b]``-style subscripts (numpy returns a *view*).

    Non-slice subscripts (boolean masks, fancy index arrays, scalars)
    copy, so only slice subscripts propagate aliasing.
    """
    return isinstance(node, ast.Subscript) and isinstance(node.slice, ast.Slice)


def enclosing_with_lock(stack: list[ast.AST]) -> bool:
    """True when the innermost statements sit inside ``with <..lock..>:``.

    The single-lock pattern check is syntactic: any context-manager
    expression whose dotted name mentions ``lock`` counts.
    """
    for frame in stack:
        if isinstance(frame, (ast.With, ast.AsyncWith)):
            for item in frame.items:
                name = dotted_name(item.context_expr)
                if name is None and isinstance(item.context_expr, ast.Call):
                    name = call_name(item.context_expr)
                if name is not None and "lock" in name.lower():
                    return True
    return False


def walk_with_stack(
    root: ast.AST,
) -> Iterator[tuple[ast.AST, list[ast.AST]]]:
    """Yield ``(node, ancestors)`` pairs in document order.

    ``ancestors`` is the live stack from ``root`` down to the node's
    parent -- callers must not keep references across iterations.
    """
    stack: list[ast.AST] = []

    def visit(node: ast.AST) -> Iterator[tuple[ast.AST, list[ast.AST]]]:
        yield node, stack
        stack.append(node)
        for child in ast.iter_child_nodes(node):
            yield from visit(child)
        stack.pop()

    yield from visit(root)
