"""The one diagnostic shape shared by every analyzer in the repo.

Both static analyzers -- the *plan* analyzer (:mod:`repro.plan.analysis`,
``repro lint``) and the *codebase* analyzer (:mod:`repro.analysis`,
``repro analyze``) -- report through the same :class:`Diagnostic` record
and :class:`AnalysisReport` collection, so their text output, ``--json``
documents, and exit codes follow one convention:

* a plan finding anchors on plan **node ids** (``nodes``),
* a source finding anchors on a **file and line** (``file``/``line``),
* everything else -- rule id, severity, message, fix hint -- is common.

Severity policy (see ``docs/plan_analysis.md`` / ``docs/static_analysis.md``):

* ``error`` -- the subject is broken: executing the plan (or running the
  kernel off the main thread) would crash or silently produce results
  different from the serial engine's.
* ``warn`` -- correct today but fragile: a structural smell that blocks
  further adaptation, or code one refactor away from nondeterminism.
* ``info`` -- an observation (unknown operator, unprovable property)
  that limits what the analyzer can guarantee.

Exit-code convention (:func:`exit_code`): ``0`` when clean (infos never
fail a run), ``1`` on errors -- and, under ``--strict``, on warnings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

#: Ordered severities, most severe first.
SEVERITIES = ("error", "warn", "info")


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one analysis rule."""

    rule: str
    severity: str  # "error" | "warn" | "info"
    message: str
    nodes: tuple[int, ...] = ()
    hint: str | None = None
    #: Source location for codebase findings (None for plan findings).
    file: str | None = None
    line: int | None = None

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    def format(self) -> str:
        where = ""
        if self.file is not None:
            where = f" {self.file}"
            if self.line is not None:
                where += f":{self.line}"
        if self.nodes:
            where += " @ " + ", ".join(f"#{nid}" for nid in self.nodes)
        text = f"{self.severity:5s} {self.rule}{where}: {self.message}"
        if self.hint:
            text += f" (hint: {self.hint})"
        return text

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly form (used by plan export, ``repro lint --json``
        and ``repro analyze --format json``)."""
        doc: dict[str, Any] = {
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
            "nodes": list(self.nodes),
        }
        if self.hint:
            doc["hint"] = self.hint
        if self.file is not None:
            doc["file"] = self.file
            doc["line"] = self.line
        return doc


@dataclass(frozen=True)
class AnalysisReport:
    """All diagnostics from one analyzer run over one subject."""

    diagnostics: tuple[Diagnostic, ...] = field(default_factory=tuple)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def by_severity(self, severity: str) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity == severity)

    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        return self.by_severity("error")

    @property
    def warnings(self) -> tuple[Diagnostic, ...]:
        return self.by_severity("warn")

    @property
    def infos(self) -> tuple[Diagnostic, ...]:
        return self.by_severity("info")

    @property
    def has_errors(self) -> bool:
        return any(d.severity == "error" for d in self.diagnostics)

    @property
    def has_warnings(self) -> bool:
        return any(d.severity == "warn" for d in self.diagnostics)

    def by_rule(self, rule: str) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.rule == rule)

    @property
    def rules(self) -> set[str]:
        """The distinct rule ids that fired."""
        return {d.rule for d in self.diagnostics}

    def summary(self) -> str:
        """One-line count summary, e.g. ``2 errors, 1 warning``."""
        counts = [
            (len(self.errors), "error(s)"),
            (len(self.warnings), "warning(s)"),
            (len(self.infos), "info"),
        ]
        parts = [f"{n} {label}" for n, label in counts if n]
        return ", ".join(parts) if parts else "clean"

    def format(self) -> str:
        """Multi-line listing, most severe first."""
        rank = {severity: i for i, severity in enumerate(SEVERITIES)}
        ordered = sorted(
            self.diagnostics,
            key=lambda d: (rank[d.severity], d.file or "", d.line or 0),
        )
        return "\n".join(d.format() for d in ordered)

    def to_dicts(self) -> list[dict[str, Any]]:
        return [d.to_dict() for d in self.diagnostics]


def exit_code(report: AnalysisReport, *, strict: bool = False) -> int:
    """The shared ``repro lint`` / ``repro analyze`` exit-code convention.

    ``1`` when the report carries errors -- or warnings under
    ``strict`` -- and ``0`` otherwise.  Infos never fail a run.
    """
    if report.has_errors:
        return 1
    if strict and report.has_warnings:
        return 1
    return 0


def report_document(report: AnalysisReport, **extra: Any) -> dict[str, Any]:
    """The shared ``--json`` document shape of both analyzer CLIs.

    ``extra`` entries (subject name, certificate registry, baseline
    counts) are merged at the top level after the common keys.
    """
    doc: dict[str, Any] = {
        "version": 1,
        "summary": {
            "errors": len(report.errors),
            "warnings": len(report.warnings),
            "infos": len(report.infos),
            "clean": len(report) == 0,
        },
        "findings": report.to_dicts(),
    }
    doc.update(extra)
    return doc
