"""Concurrency lints (rule family ``concurrency.*``).

The evaluation pool runs kernels on worker threads while the scheduler's
collect / evaluate / commit barrier keeps results deterministic.  That
contract survives only if code reachable from the pool follows the
repo's concurrency idioms -- one lock per shared structure, every
mutation under it, kernels touching nothing but their inputs.  Four
lints:

* ``concurrency.self-mutation`` (error) -- a kernel method
  (``evaluate`` / ``work_profile`` / ``mask``) writes ``self``.  One
  operator instance is evaluated for many partitions concurrently;
  instance state is shared state.
* ``concurrency.global-write`` (error) -- a ``global`` rebind in a
  pool-reachable module outside a ``with <lock>:`` block.
* ``concurrency.lock-discipline`` (error) -- ``<lock>.acquire()``
  without a matching ``release()`` in a ``finally`` block.  The repo
  idiom is ``with self._lock:`` (see ``IntermediateCache``); a bare
  acquire leaks the lock on any exception path.
* ``concurrency.unlocked-shared-state`` (error) -- a class that owns a
  ``_lock`` mutates its shared attributes outside ``with self._lock:``
  in some method (``__init__`` excepted: the object is not yet shared
  while it is being constructed).
"""

from __future__ import annotations

import ast

from .framework import CodeContext, CodeRule
from .purity import _CONTAINER_MUTATORS, _MUTATING_METHODS, KERNEL_METHODS
from .source import (
    SourceModule,
    dotted_name,
    enclosing_with_lock,
    root_name,
    walk_with_stack,
)

#: Module families whose code can run on evaluation-pool workers.
POOL_REACHABLE_PREFIXES = (
    "repro.operators",
    "repro.engine",
    "repro.storage",
)

_SELF_MUTATORS = _MUTATING_METHODS | _CONTAINER_MUTATORS


def _is_self_attr_store(target: ast.AST) -> bool:
    return root_name(target) == "self" and isinstance(
        target, (ast.Attribute, ast.Subscript)
    )


def _class_owns_lock(cls: ast.ClassDef) -> bool:
    """Whether the class binds ``self._lock`` anywhere."""
    for node in ast.walk(cls):
        if (
            isinstance(node, ast.Assign)
            and any(
                isinstance(t, ast.Attribute)
                and t.attr == "_lock"
                and root_name(t) == "self"
                for t in node.targets
            )
        ):
            return True
    return False


def _receiver_mentions_lock(node: ast.AST) -> bool:
    name = dotted_name(node)
    return name is not None and "lock" in name.lower()


class ConcurrencyRule(CodeRule):
    """The ``concurrency.*`` family."""

    name = "concurrency"

    def _pool_reachable(self, module: SourceModule) -> bool:
        # Fixture files outside the repro package are always checked so
        # the analyzer can be exercised on synthetic bad kernels.
        if not module.name.startswith("repro."):
            return True
        return module.name.startswith(POOL_REACHABLE_PREFIXES)

    def run(self, ctx: CodeContext) -> None:
        module = ctx.module
        pool_reachable = self._pool_reachable(module)
        for cls in module.classes():
            self._check_kernel_self_mutation(ctx, cls)
            if _class_owns_lock(cls):
                self._check_lock_class(ctx, cls)
        for node, stack in walk_with_stack(module.tree):
            if isinstance(node, ast.FunctionDef):
                self._check_lock_discipline(ctx, node)
            if pool_reachable and isinstance(node, ast.Global):
                self._check_global_write(ctx, node, stack)

    # -- kernels must not write self -----------------------------------
    def _check_kernel_self_mutation(
        self, ctx: CodeContext, cls: ast.ClassDef
    ) -> None:
        for item in cls.body:
            if not isinstance(item, ast.FunctionDef):
                continue
            if item.name not in KERNEL_METHODS:
                continue
            for node in ast.walk(item):
                line: int | None = None
                if isinstance(node, (ast.Assign, ast.AnnAssign)):
                    targets = (
                        node.targets
                        if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    if any(_is_self_attr_store(t) for t in targets):
                        line = node.lineno
                elif isinstance(node, ast.AugAssign) and _is_self_attr_store(
                    node.target
                ):
                    line = node.lineno
                elif (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _SELF_MUTATORS
                    and root_name(node.func.value) == "self"
                ):
                    line = node.lineno
                if line is not None:
                    ctx.emit(
                        "concurrency.self-mutation",
                        "error",
                        f"{cls.name}.{item.name} mutates operator instance "
                        "state; one instance serves many partitions "
                        "concurrently",
                        line=line,
                        hint="return the value instead, or move the state "
                        "into the evaluation inputs",
                    )

    # -- global rebinds need the lock ----------------------------------
    def _check_global_write(
        self, ctx: CodeContext, node: ast.Global, stack: list[ast.AST]
    ) -> None:
        func = next(
            (
                f
                for f in reversed(stack)
                if isinstance(f, (ast.FunctionDef, ast.AsyncFunctionDef))
            ),
            None,
        )
        if func is None:
            return
        names = set(node.names)
        for stmt, inner_stack in walk_with_stack(func):
            is_write = (
                isinstance(stmt, ast.Assign)
                and any(
                    isinstance(t, ast.Name) and t.id in names
                    for t in stmt.targets
                )
            ) or (
                isinstance(stmt, ast.AugAssign)
                and isinstance(stmt.target, ast.Name)
                and stmt.target.id in names
            )
            if is_write and not enclosing_with_lock(inner_stack):
                ctx.emit(
                    "concurrency.global-write",
                    "error",
                    f"unlocked write to module global "
                    f"{', '.join(sorted(names))} in {func.name}; pool "
                    "workers read this concurrently",
                    line=stmt.lineno,
                    hint="guard the write with a module-level lock "
                    "(with _lock: ...)",
                )

    # -- bare acquire without finally-release --------------------------
    def _check_lock_discipline(
        self, ctx: CodeContext, func: ast.FunctionDef
    ) -> None:
        acquires: list[ast.Call] = []
        released_in_finally = False
        for node, stack in walk_with_stack(func):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and _receiver_mentions_lock(node.func.value)
            ):
                continue
            if node.func.attr == "acquire":
                acquires.append(node)
            elif node.func.attr == "release":
                released_in_finally = any(
                    isinstance(frame, ast.Try)
                    and any(
                        node in ast.walk(stmt) for stmt in frame.finalbody
                    )
                    for frame in stack
                ) or released_in_finally
        if acquires and not released_in_finally:
            for call in acquires:
                ctx.emit(
                    "concurrency.lock-discipline",
                    "error",
                    f"{func.name} acquires a lock without releasing it "
                    "in a finally block",
                    line=call.lineno,
                    hint="prefer `with lock:`; it releases on every exit "
                    "path",
                )

    # -- lock-owning classes mutate only under the lock ----------------
    def _check_lock_class(self, ctx: CodeContext, cls: ast.ClassDef) -> None:
        for item in cls.body:
            if not isinstance(item, ast.FunctionDef):
                continue
            if item.name == "__init__":
                continue
            for node, stack in walk_with_stack(item):
                line: int | None = None
                what = ""
                if isinstance(node, (ast.Assign, ast.AugAssign)):
                    targets = (
                        node.targets
                        if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    stores = [t for t in targets if _is_self_attr_store(t)]
                    if stores:
                        line = node.lineno
                        what = ast.unparse(stores[0])
                elif (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _SELF_MUTATORS
                    and root_name(node.func.value) == "self"
                ):
                    line = node.lineno
                    what = ast.unparse(node.func.value)
                if line is not None and not enclosing_with_lock(stack):
                    ctx.emit(
                        "concurrency.unlocked-shared-state",
                        "error",
                        f"{cls.name}.{item.name} mutates {what} outside "
                        "`with self._lock:` although the class owns a lock",
                        line=line,
                        hint="take the lock around every mutation, or "
                        "document and remove the lock if the class is "
                        "single-threaded",
                    )
