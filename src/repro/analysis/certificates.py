"""Parallel-safety certificates for operator kernels.

A certificate is the machine-readable verdict of the static analyzer
(:mod:`repro.analysis.purity`) about one operator class:

* ``pure`` -- the kernel methods (``evaluate`` / ``work_profile`` /
  ``mask``) have no effects visible outside the call: no in-place write
  to shared input buffers, no instance or module state.  Pure kernels
  are safe to dispatch on evaluation-pool worker threads.
* ``picklable_params`` -- the class is importable at module level (not
  defined inside a function), so instances can cross a process boundary
  for the planned process/shared-memory backend (ROADMAP).
* ``shared_memory_eligible`` -- ``pure and picklable_params``: the
  kernel could run in another process against shared-memory column
  buffers.
* ``view_returning`` -- the kernel can return a numpy **view** aliasing
  an input buffer (zero-copy fast paths).  Harmless for threads; a
  process backend must materialize these results before shipping them.

The :class:`CertificateRegistry` is what the evaluation pool consults,
**fail-closed**: an operator with no certificate -- or a certificate
with findings -- is never evaluated off the main thread
(:class:`~repro.errors.UncertifiedKernelError`).  Unknown classes (e.g.
operators defined in tests) are certified on demand from their source;
classes whose source cannot be read stay uncertified.
"""

from __future__ import annotations

import ast
import inspect
import json
import textwrap
import threading
from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from ..errors import UncertifiedKernelError
from .purity import (
    KERNEL_METHODS,
    analyze_kernel,
    module_mutable_globals,
)
from .source import parse_file

#: Bumped when the certificate semantics change.
CERTIFICATE_VERSION = 1


@dataclass(frozen=True)
class OperatorCertificate:
    """The analyzer's parallel-safety verdict for one operator class."""

    operator: str
    module: str
    pure: bool
    picklable_params: bool
    shared_memory_eligible: bool
    view_returning: bool
    #: Human-readable findings when not pure (empty for pure kernels).
    issues: tuple[str, ...] = ()

    def to_dict(self) -> dict[str, Any]:
        return {
            "operator": self.operator,
            "module": self.module,
            "pure": self.pure,
            "picklable_params": self.picklable_params,
            "shared_memory_eligible": self.shared_memory_eligible,
            "view_returning": self.view_returning,
            "issues": list(self.issues),
        }

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "OperatorCertificate":
        return cls(
            operator=doc["operator"],
            module=doc["module"],
            pure=bool(doc["pure"]),
            picklable_params=bool(doc["picklable_params"]),
            shared_memory_eligible=bool(doc["shared_memory_eligible"]),
            view_returning=bool(doc["view_returning"]),
            issues=tuple(doc.get("issues", ())),
        )


# Parsed module globals, cached per source file (host-side cache; the
# registry itself guards concurrent access with its lock).
_module_globals_cache: dict[str, set[str]] = {}
_module_globals_lock = threading.Lock()


def _globals_for_source_file(path: str | None) -> set[str]:
    if path is None:
        return set()
    with _module_globals_lock:
        cached = _module_globals_cache.get(path)
        if cached is not None:
            return cached
    try:
        module = parse_file(path)
        names = module_mutable_globals(module)
    except Exception:
        names = set()
    with _module_globals_lock:
        _module_globals_cache[path] = names
    return names


def _kernel_functions(cls: type) -> Iterable[tuple[str, Any]]:
    """(name, function) for each kernel method, resolved through the MRO."""
    for name in KERNEL_METHODS:
        for base in cls.__mro__:
            if name in vars(base):
                func = inspect.unwrap(vars(base)[name])
                if not getattr(func, "__isabstractmethod__", False):
                    yield name, func
                break


def certify_type(cls: type) -> OperatorCertificate:
    """Statically certify one operator class from its source."""
    issues: list[str] = []
    view_returning = False
    analyzed_any = False
    for name, func in _kernel_functions(cls):
        try:
            src = textwrap.dedent(inspect.getsource(func))
            tree = ast.parse(src)
        except (OSError, TypeError, SyntaxError) as exc:
            issues.append(f"{name}: source unavailable ({exc})")
            continue
        node = tree.body[0]
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            issues.append(f"{name}: not a plain function")
            continue
        analyzed_any = True
        try:
            source_file = inspect.getsourcefile(func)
        except TypeError:
            source_file = None
        effects = analyze_kernel(node, _globals_for_source_file(source_file))
        # Only evaluate/mask results become intermediates; work_profile
        # returns counters, so its return expressions cannot alias.
        if name != "work_profile":
            view_returning = view_returning or effects.view_return
        for _line, desc in effects.inplace_writes:
            issues.append(f"{name}: in-place write to shared input ({desc})")
        for _line, desc in effects.mutating_calls:
            issues.append(f"{name}: mutating call on shared input ({desc})")
        for _line, desc in effects.module_writes:
            issues.append(f"{name}: writes module-level state ({desc})")
        for _line, desc in effects.self_writes:
            issues.append(f"{name}: mutates instance state ({desc})")
    if not analyzed_any and not issues:
        issues.append("no analyzable kernel methods found")
    pure = analyzed_any and not issues
    picklable = "<locals>" not in cls.__qualname__
    return OperatorCertificate(
        operator=cls.__name__,
        module=cls.__module__,
        pure=pure,
        picklable_params=picklable,
        shared_memory_eligible=pure and picklable,
        view_returning=view_returning,
        issues=tuple(issues),
    )


class CertificateRegistry:
    """All known certificates, keyed by operator class name.

    ``get`` certifies unknown classes on demand so operators defined in
    tests work without pre-registration; classes whose source cannot be
    analyzed simply stay impure, which the fail-closed gate rejects.
    """

    def __init__(
        self, certificates: Iterable[OperatorCertificate] = ()
    ) -> None:
        self._by_class: dict[type, OperatorCertificate] = {}
        self._by_name: dict[str, OperatorCertificate] = {}
        self._lock = threading.Lock()
        for cert in certificates:
            self._by_name[cert.operator] = cert

    def get(self, cls: type) -> OperatorCertificate:
        with self._lock:
            cert = self._by_class.get(cls)
            if cert is None:
                # Prefer a class match; fall back to a name match only
                # for certificates loaded from JSON (no class object).
                cert = self._by_name.get(cls.__name__)
            if cert is not None:
                self._by_class.setdefault(cls, cert)
                return cert
        cert = certify_type(cls)
        with self._lock:
            self._by_class[cls] = cert
            self._by_name.setdefault(cert.operator, cert)
        return cert

    def check(self, op: Any, boundary: str = "thread") -> OperatorCertificate:
        """Gate one operator instance; raise fail-closed when unsafe.

        ``boundary`` names what the kernel is about to cross:
        ``"thread"`` requires purity; ``"process"`` additionally
        requires picklable parameters (``shared_memory_eligible``) --
        the instance itself must survive a pipe and evaluate against
        shared-memory column views in another address space.
        """
        cert = self.get(type(op))
        if not cert.pure:
            detail = "; ".join(cert.issues) or "no certificate"
            raise UncertifiedKernelError(
                f"refusing to dispatch {type(op).__name__} off the main "
                f"thread: {detail} (run with workers=1, or fix the kernel "
                "and re-run `repro analyze`)"
            )
        if boundary == "process" and not cert.shared_memory_eligible:
            raise UncertifiedKernelError(
                f"refusing to ship {type(op).__name__} across a process "
                "boundary: its parameters are not picklable (class defined "
                "inside a function?); use backend='thread' or make the "
                "class importable at module level"
            )
        return cert

    def certificates(self) -> list[OperatorCertificate]:
        with self._lock:
            merged = dict(self._by_name)
            for cert in self._by_class.values():
                merged[cert.operator] = cert
        return sorted(merged.values(), key=lambda c: c.operator)

    def to_document(self) -> dict[str, Any]:
        return {
            "version": CERTIFICATE_VERSION,
            "certificates": [c.to_dict() for c in self.certificates()],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_document(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_document(cls, doc: Mapping[str, Any]) -> "CertificateRegistry":
        return cls(
            OperatorCertificate.from_dict(entry)
            for entry in doc.get("certificates", ())
        )


def registered_operator_classes() -> list[type]:
    """Every concrete Operator subclass exported by :mod:`repro.operators`."""
    import repro.operators as ops

    classes = []
    for name in ops.__all__:
        obj = getattr(ops, name)
        if (
            isinstance(obj, type)
            and issubclass(obj, ops.Operator)
            and not inspect.isabstract(obj)
        ):
            classes.append(obj)
    return classes


def build_registry() -> CertificateRegistry:
    """Certify every registered operator from source."""
    registry = CertificateRegistry()
    for cls in registered_operator_classes():
        registry.get(cls)
    return registry


_default_registry: CertificateRegistry | None = None
_default_lock = threading.Lock()


def default_registry() -> CertificateRegistry:
    """The lazily-built process-wide registry the evaluation pool uses."""
    global _default_registry
    with _default_lock:
        if _default_registry is None:
            _default_registry = build_registry()
        return _default_registry
