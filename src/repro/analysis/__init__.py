"""Codebase-level static analysis: the kernel parallel-safety certifier.

Where :mod:`repro.plan.analysis` proves properties of *plan graphs*,
this package proves properties of the *code* the engine runs -- the
other half of the adaptive-parallelization correctness argument.  The
paper's premise is that mutated plans stay semantically equivalent to
the serial plan; that only holds if the operator kernels themselves are
pure, deterministic functions of their inputs.  Three rule families
check exactly that, over plain :mod:`ast` trees (nothing is imported or
executed):

* :mod:`~repro.analysis.purity` -- kernels must not write shared input
  buffers, module state, or instance state (taint-based aliasing
  analysis of numpy views).
* :mod:`~repro.analysis.determinism` -- no unseeded randomness, host
  clocks, ``id()``-derived keys, or unsorted set iteration outside the
  host-only module families.
* :mod:`~repro.analysis.concurrency` -- pool-reachable code follows the
  repo's locking idioms; kernels never mutate ``self``.

Verdicts are materialized as per-operator **parallel-safety
certificates** (:mod:`~repro.analysis.certificates`) that the
evaluation pool consults fail-closed before dispatching a kernel off
the main thread, and the **runtime sanitizer**
(:mod:`~repro.analysis.sanitize`) cross-checks at execution time what
static analysis cannot see.  The ``repro analyze`` CLI runs the whole
thing over the repo; see ``docs/static_analysis.md``.
"""

from .certificates import (
    CERTIFICATE_VERSION,
    CertificateRegistry,
    OperatorCertificate,
    build_registry,
    certify_type,
    default_registry,
    registered_operator_classes,
)
from .concurrency import POOL_REACHABLE_PREFIXES, ConcurrencyRule
from .determinism import HOST_ONLY_PREFIXES, DeterminismRule
from .diagnostics import (
    SEVERITIES,
    AnalysisReport,
    Diagnostic,
    exit_code,
    report_document,
)
from .framework import (
    Baseline,
    CodeContext,
    CodeRule,
    Suppression,
    analyze_files,
    analyze_modules,
    default_rules,
)
from .purity import KERNEL_METHODS, KernelEffects, PurityRule, analyze_kernel
from .sanitize import Sanitizer, checksum_intermediate, verify_dual_run
from .source import SourceModule, default_package_path, discover, parse_file

__all__ = [
    "AnalysisReport",
    "Baseline",
    "CERTIFICATE_VERSION",
    "CertificateRegistry",
    "CodeContext",
    "CodeRule",
    "ConcurrencyRule",
    "DeterminismRule",
    "Diagnostic",
    "HOST_ONLY_PREFIXES",
    "KERNEL_METHODS",
    "KernelEffects",
    "OperatorCertificate",
    "POOL_REACHABLE_PREFIXES",
    "PurityRule",
    "SEVERITIES",
    "Sanitizer",
    "SourceModule",
    "Suppression",
    "analyze_files",
    "analyze_kernel",
    "analyze_modules",
    "build_registry",
    "certify_type",
    "checksum_intermediate",
    "default_package_path",
    "default_registry",
    "default_rules",
    "discover",
    "exit_code",
    "parse_file",
    "registered_operator_classes",
    "report_document",
    "verify_dual_run",
]
