"""Rule framework of the codebase analyzer.

A :class:`CodeRule` inspects one parsed :class:`~repro.analysis.source.SourceModule`
at a time and emits :class:`~repro.analysis.diagnostics.Diagnostic`
records through a :class:`CodeContext`.  :func:`analyze_files` wires the
three built-in rule families -- kernel purity
(:mod:`repro.analysis.purity`), determinism
(:mod:`repro.analysis.determinism`), and concurrency
(:mod:`repro.analysis.concurrency`) -- over a set of files and folds the
findings into one :class:`~repro.analysis.diagnostics.AnalysisReport`.

Baselines: a JSON suppression file (:class:`Baseline`) mutes known
findings by ``(rule, file)`` so ``repro analyze --strict`` can gate CI
while a flagged module is being fixed.  The intent is a ratchet: the
baseline shrinks to empty, never grows silently -- suppressed findings
are still counted and reported in the summary.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from ..errors import AnalysisError
from .diagnostics import AnalysisReport, Diagnostic
from .source import SourceModule, discover


class CodeContext:
    """Collects diagnostics while rules walk one module."""

    def __init__(self, module: SourceModule) -> None:
        self.module = module
        self.diagnostics: list[Diagnostic] = []

    def emit(
        self,
        rule: str,
        severity: str,
        message: str,
        *,
        line: int | None = None,
        hint: str | None = None,
    ) -> None:
        self.diagnostics.append(
            Diagnostic(
                rule=rule,
                severity=severity,
                message=message,
                hint=hint,
                file=self.module.path,
                line=line,
            )
        )


class CodeRule:
    """Base class of one analysis rule family."""

    #: Rule-id prefix, e.g. ``purity`` (rules emit ``purity.<check>``).
    name: str = "rule"

    def applies_to(self, module: SourceModule) -> bool:
        """Whether this rule family inspects ``module`` at all."""
        return True

    def run(self, ctx: CodeContext) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


@dataclass(frozen=True)
class Suppression:
    """One baseline entry: mute ``rule`` findings in ``file``."""

    rule: str
    file: str

    def matches(self, diag: Diagnostic) -> bool:
        if diag.rule != self.rule:
            return False
        # Paths match on suffix so a baseline written from the repo root
        # still applies when the analyzer runs on absolute paths.
        path = diag.file or ""
        return path == self.file or path.endswith("/" + self.file)


class Baseline:
    """A set of suppressions loaded from (or written to) a JSON file."""

    def __init__(self, suppressions: Sequence[Suppression] = ()) -> None:
        self.suppressions = list(suppressions)

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        try:
            document = json.loads(Path(path).read_text())
        except OSError as exc:
            raise AnalysisError(f"cannot read baseline {path}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise AnalysisError(f"malformed baseline {path}: {exc}") from exc
        entries = document.get("suppressions", document) if isinstance(
            document, dict
        ) else document
        if not isinstance(entries, list):
            raise AnalysisError(f"malformed baseline {path}: expected a list")
        suppressions = []
        for entry in entries:
            try:
                suppressions.append(
                    Suppression(rule=entry["rule"], file=entry["file"])
                )
            except (TypeError, KeyError) as exc:
                raise AnalysisError(
                    f"malformed baseline entry {entry!r}: needs rule and file"
                ) from exc
        return cls(suppressions)

    @classmethod
    def from_report(cls, report: AnalysisReport) -> "Baseline":
        """A baseline muting exactly the given report's findings."""
        seen: dict[tuple[str, str], Suppression] = {}
        for diag in report:
            key = (diag.rule, diag.file or "")
            if key not in seen:
                seen[key] = Suppression(rule=diag.rule, file=diag.file or "")
        return cls(list(seen.values()))

    def to_json(self) -> str:
        entries = sorted(
            ({"rule": s.rule, "file": s.file} for s in self.suppressions),
            key=lambda e: (e["file"], e["rule"]),
        )
        return json.dumps({"suppressions": entries}, indent=2) + "\n"

    def split(
        self, report: AnalysisReport
    ) -> tuple[AnalysisReport, AnalysisReport]:
        """(kept, suppressed) partition of ``report``."""
        kept: list[Diagnostic] = []
        muted: list[Diagnostic] = []
        for diag in report:
            if any(s.matches(diag) for s in self.suppressions):
                muted.append(diag)
            else:
                kept.append(diag)
        return AnalysisReport(tuple(kept)), AnalysisReport(tuple(muted))


def default_rules() -> list[CodeRule]:
    """The three built-in rule families, in reporting order."""
    from .concurrency import ConcurrencyRule
    from .determinism import DeterminismRule
    from .purity import PurityRule

    return [PurityRule(), DeterminismRule(), ConcurrencyRule()]


def analyze_modules(
    modules: Iterable[SourceModule], rules: Sequence[CodeRule] | None = None
) -> AnalysisReport:
    """Run rule families over already-parsed modules."""
    if rules is None:
        rules = default_rules()
    diagnostics: list[Diagnostic] = []
    for module in modules:
        ctx = CodeContext(module)
        for rule in rules:
            if rule.applies_to(module):
                rule.run(ctx)
        diagnostics.extend(ctx.diagnostics)
    return AnalysisReport(tuple(diagnostics))


def analyze_files(
    paths: Iterable[str | Path], rules: Sequence[CodeRule] | None = None
) -> AnalysisReport:
    """Discover, parse, and analyze ``paths`` (files or directories)."""
    return analyze_modules(discover(paths), rules)
