"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``
    Show version and the simulated machine presets.
``run SQL``
    Execute a SQL query against a generated workload dataset, serially
    or parallelized, optionally printing the plan and a tomograph.
``adapt (--query NAME | SQL)``
    Adaptively parallelize a query and report the convergence outcome;
    ``--verbose`` adds the mutation trace with analyzer summaries.
``lint (--query NAME | --sql SQL | --plan-json FILE)``
    Run the static plan analyzer and print its diagnostics; exits
    non-zero on errors (and, with ``--strict``, on warnings).
    ``--json`` prints the shared machine-readable report document.
``analyze [PATHS ...]``
    Run the codebase analyzer (kernel purity, determinism, concurrency
    lints) over the installed ``repro`` package or the given paths, and
    print the per-operator parallel-safety certificate registry.  Same
    severity and exit-code convention as ``lint``; ``--baseline FILE``
    suppresses known findings, ``--write-baseline FILE`` records the
    current ones.  See ``docs/static_analysis.md``.
``bench NAME``
    Run one of the paper's experiments (``fig11``, ``fig12`` ...) and
    print its paper-vs-measured report.  ``bench --wallclock`` instead
    measures host wall-clock of full adaptive instances with the
    cross-run result cache off vs on (see ``docs/perf.md``).
``chaos``
    Fault-injection demo (see ``docs/robustness.md``): a resilient
    closed-loop workload rides out injected operator crashes,
    stragglers, and disconnects, then an adaptive-parallelization
    instance converges under the same chaos; both are bit-reproducible
    for a fixed ``--seed``.
``trace (--query NAME | --sql SQL)``
    Execute (or, with ``--adaptive``, adaptively parallelize) a query
    under the observability layer and write the trace: Chrome
    ``trace_event`` JSON for Perfetto/chrome://tracing (default), one
    span per line (``--format jsonl``), or the canonical byte-stable
    document (``--format canonical``).  See ``docs/observability.md``.
``metrics (--query NAME | --sql SQL)``
    Same execution, but print the metrics registry in Prometheus text
    exposition format.
``serve``
    Run the multi-tenant SQL service (see ``docs/serving.md``): an
    asyncio TCP listener speaking newline-delimited JSON plus HTTP
    (``GET /metrics`` Prometheus scrapes, ``GET /healthz``,
    ``POST /query``), with per-tenant SLO classes and weighted-fair
    admission control.  ``--loadgen PRESET`` instead drives a seeded,
    deterministic load run (e.g. ``quick`` = 1000 clients across 3
    tenants) against the same service core in simulated time -- the
    per-tenant p50/p99 SLO report is byte-identical for a fixed seed
    -- while the live ``/metrics`` endpoint stays scrapeable;
    ``--chaos light`` adds fault injection, ``--max-p99-ms`` /
    ``--max-abandoned`` turn the report into a CI gate.

    Examples::

        repro serve --port 7744
        repro serve --loadgen quick --chaos light --report slo.json
        echo '{"op":"hello","tenant":"gold"}' | nc 127.0.0.1 7744
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from . import __version__
from .config import SimulationConfig, four_socket_machine, two_socket_machine
from .core import AdaptiveParallelizer, HeuristicParallelizer
from .engine import execute
from .errors import ReproError
from .plan import analyze_plan, format_plan, plan_from_json, plan_stats, to_dot
from .sql import plan_sql
from .viz import render_convergence_report, render_tomograph
from .workloads import TpcdsDataset, TpchDataset

_EXPERIMENTS = {
    "fig01": ("fig01_dop", "run"),
    "fig11": ("fig11_trace", "run"),
    "fig12": ("fig12_skew", "run"),
    "fig14": ("fig14_select", "run"),
    "fig15": ("fig15_join", "run"),
    "fig16": ("fig16_workload", "run"),
    "fig17": ("fig17_tpcds", "run"),
    "fig18": ("fig18_robustness", "run"),
    "fig18chaos": ("fig18_chaos", "run"),
    "fig19": ("fig19_util", "run"),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Adaptive query parallelization (EDBT 2016) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="show version and machine presets")

    run = sub.add_parser("run", help="execute a SQL query on a workload dataset")
    run.add_argument("sql", help="the SQL text")
    _dataset_args(run)
    run.add_argument(
        "--parallelize",
        choices=("none", "adaptive", "heuristic"),
        default="none",
        help="how to parallelize the serial plan (default: none)",
    )
    run.add_argument(
        "--partitions", type=int, default=32, help="heuristic partition count"
    )
    run.add_argument("--show-plan", action="store_true", help="print the plan")
    run.add_argument(
        "--tomograph", action="store_true", help="print the execution tomograph"
    )
    run.add_argument("--dot", metavar="FILE", help="write the plan as Graphviz dot")

    adapt = sub.add_parser("adapt", help="adaptively parallelize a query")
    group = adapt.add_mutually_exclusive_group(required=True)
    group.add_argument("--query", help="a named workload query, e.g. q6 or ds1")
    group.add_argument("--sql", help="ad-hoc SQL text")
    _dataset_args(adapt)
    adapt.add_argument(
        "--trace", action="store_true", help="print the per-run trace"
    )
    adapt.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="host workers evaluating ready operators "
        "(default: usable cpu count; results are identical for any N)",
    )
    _backend_arg(adapt)
    adapt.add_argument(
        "--verbose",
        action="store_true",
        help="print each mutation with its analyzer summary",
    )
    adapt.add_argument(
        "--policy",
        default=None,
        metavar="P",
        help="convergence policy: credit_debit (default), "
        "warmstart+credit_debit, or bandit",
    )
    adapt.add_argument(
        "--experience",
        default=None,
        metavar="FILE",
        help="persistent DOP experience store (created if missing); "
        "warm-capable policies read it, every policy records into it",
    )
    adapt.add_argument(
        "--explain",
        action="store_true",
        help="print the per-run DOP decision provenance",
    )

    learn = sub.add_parser(
        "learn", help="inspect a DOP experience store"
    )
    learn.add_argument(
        "store", metavar="FILE", help="experience-store JSON file"
    )
    learn.add_argument(
        "--json",
        action="store_true",
        help="print the machine-readable store document",
    )
    learn.add_argument(
        "--limit",
        type=int,
        default=None,
        metavar="N",
        help="show at most N records (most recently used last)",
    )

    lint = sub.add_parser("lint", help="statically analyze a plan")
    source = lint.add_mutually_exclusive_group(required=True)
    source.add_argument("--query", help="a named workload query, e.g. q6 or ds1")
    source.add_argument("--sql", help="ad-hoc SQL text")
    source.add_argument(
        "--plan-json", metavar="FILE", help="a plan exported with to_json"
    )
    _dataset_args(lint)
    lint.add_argument(
        "--strict", action="store_true", help="exit non-zero on warnings too"
    )
    lint.add_argument(
        "--json",
        action="store_true",
        help="print the machine-readable report document",
    )

    analyze = sub.add_parser(
        "analyze",
        help="statically analyze the codebase (kernel parallel safety)",
    )
    analyze.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help="files or directories to analyze "
        "(default: the installed repro package)",
    )
    analyze.add_argument(
        "--strict", action="store_true", help="exit non-zero on warnings too"
    )
    analyze.add_argument(
        "--json",
        action="store_true",
        help="print the machine-readable report document",
    )
    analyze.add_argument(
        "--baseline",
        metavar="FILE",
        help="JSON suppression file; matching findings are muted",
    )
    analyze.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="write the current findings as a suppression baseline and exit 0",
    )
    analyze.add_argument(
        "--certificates",
        metavar="FILE",
        help="also write the operator certificate registry as JSON",
    )
    analyze.add_argument(
        "--no-registry",
        action="store_true",
        help="skip building the operator certificate registry",
    )

    bench = sub.add_parser("bench", help="run one of the paper's experiments")
    bench.add_argument(
        "name",
        nargs="?",
        choices=sorted(_EXPERIMENTS) + ["list"],
        help="experiment id (or 'list')",
    )
    bench.add_argument(
        "--wallclock",
        action="store_true",
        help="measure host wall-clock of adaptive instances, cache off vs on",
    )
    bench.add_argument(
        "--quick", action="store_true", help="wallclock: smaller data, fewer runs"
    )
    bench.add_argument(
        "--output",
        metavar="FILE",
        default="BENCH_wallclock.json",
        help="wallclock: where to write the JSON report",
    )
    bench.add_argument(
        "--min-hit-rate",
        type=float,
        default=None,
        metavar="X",
        help="wallclock: fail if any workload's cache hit rate is below X",
    )
    bench.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        metavar="X",
        help="wallclock: fail if any workload's host speedup is below X",
    )
    bench.add_argument(
        "--workers",
        default=None,
        metavar="N[,M...]",
        help="wallclock: comma-separated evaluation-pool worker counts to "
        "sweep (workers=1 is always included; default: 1 and host cpu count)",
    )
    bench.add_argument(
        "--max-worker-slowdown",
        type=float,
        default=None,
        metavar="X",
        help="wallclock: fail if any pooled run is more than X times "
        "slower than workers=1",
    )
    bench.add_argument(
        "--backend",
        default=None,
        metavar="B[,B...]",
        help="wallclock: comma-separated evaluation backends to sweep "
        "(e.g. 'thread,process'; default: thread)",
    )
    bench.add_argument(
        "--min-process-speedup",
        type=float,
        default=None,
        metavar="X",
        help="wallclock: fail if the process backend's worker speedup is "
        "below X (skipped on single-cpu hosts or when process is not swept)",
    )
    bench.add_argument(
        "--convergence",
        action="store_true",
        help="compare convergence policies (cold credit/debit vs "
        "warm-start vs bandit) across the workload suite",
    )
    bench.add_argument(
        "--max-warm-ratio",
        type=float,
        default=None,
        metavar="X",
        help="convergence: fail unless warm-started runs-to-GME is at "
        "most X times the cold value on the repeated workload",
    )
    bench.add_argument(
        "--min-bandit-win",
        type=float,
        default=None,
        metavar="X",
        help="convergence: fail unless the bandit's total simulated work "
        "beats credit/debit on at least fraction X of the suite",
    )
    bench.add_argument(
        "--scaleout",
        action="store_true",
        help="shared-nothing scale-out: speedup vs nodes, skew straggler "
        "gap before/after placement mutations, and a node-failure run",
    )
    bench.add_argument(
        "--nodes",
        default=None,
        metavar="N[,M...]",
        help="scaleout: comma-separated node counts to sweep "
        "(default: 1,2,4)",
    )
    bench.add_argument(
        "--min-scaleout-speedup",
        type=float,
        default=None,
        metavar="X",
        help="scaleout: fail if the largest swept node count's speedup "
        "over one node is below X",
    )
    bench.add_argument(
        "--max-skew-gap",
        type=float,
        default=None,
        metavar="X",
        help="scaleout: fail if the straggler gap after placement "
        "mutations is above X (1.0 means fully closed)",
    )
    bench.add_argument(
        "--figure",
        metavar="FILE",
        default=None,
        help="convergence/scaleout: also export the comparison SVG here",
    )

    chaos = sub.add_parser(
        "chaos", help="fault-injection demo: resilience + convergence under chaos"
    )
    _dataset_args(chaos)
    chaos.add_argument(
        "--query", default="q6", help="workload query to hammer (default: q6)"
    )
    chaos.add_argument(
        "--clients", type=int, default=6, help="closed-loop clients (default: 6)"
    )
    chaos.add_argument(
        "--horizon",
        type=float,
        default=2.0,
        help="workload horizon, simulated seconds (default: 2.0)",
    )
    chaos.add_argument(
        "--level",
        choices=("light", "heavy"),
        default="light",
        help="fault-plan preset (default: light)",
    )
    chaos.add_argument(
        "--seed", type=int, default=20160315, help="simulation seed"
    )
    chaos.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="client-side timeout per submission, simulated seconds",
    )
    chaos.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="host workers evaluating ready operators "
        "(results are identical for any N)",
    )
    _backend_arg(chaos)
    chaos.add_argument(
        "--no-adapt",
        action="store_true",
        help="skip the adaptive-convergence-under-chaos half",
    )

    trace = sub.add_parser(
        "trace", help="run a query under the tracer and export the trace"
    )
    _observe_args(trace)
    trace.add_argument(
        "--format",
        choices=("chrome", "jsonl", "canonical"),
        default="chrome",
        help="output format (default: chrome trace_event, Perfetto-ready)",
    )
    trace.add_argument(
        "--out",
        metavar="FILE",
        default=None,
        help="write here instead of stdout",
    )

    metrics = sub.add_parser(
        "metrics", help="run a query and print Prometheus-format metrics"
    )
    _observe_args(metrics)
    metrics.add_argument(
        "--out",
        metavar="FILE",
        default=None,
        help="write here instead of stdout",
    )

    serve = sub.add_parser(
        "serve",
        help="run the multi-tenant SQL service (or a seeded loadgen run)",
        description=(
            "Serve SQL over TCP (NDJSON sessions + HTTP /metrics, /healthz, "
            "POST /query) with per-tenant SLO classes and weighted-fair "
            "admission; --loadgen runs a deterministic seeded load instead "
            "and prints its per-tenant SLO report. See docs/serving.md."
        ),
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=0,
        help="TCP port (default 0: the kernel picks a free one)",
    )
    _dataset_args(serve)
    _backend_arg(serve)
    serve.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="host threads evaluating ready operators",
    )
    serve.add_argument(
        "--tenants", metavar="FILE", default=None,
        help="tenant directory JSON (default: gold/silver/bronze)",
    )
    serve.add_argument(
        "--loadgen", metavar="PRESET", default=None,
        help="run a seeded load instead of serving forever "
        "(tiny, smoke, quick = 1000 clients / 3 tenants, full)",
    )
    serve.add_argument(
        "--chaos", choices=("none", "light", "heavy"), default="none",
        help="fault injection level for --loadgen (default: none)",
    )
    serve.add_argument(
        "--seed", type=int, default=None,
        help="loadgen seed (fixed seed => byte-identical SLO report)",
    )
    serve.add_argument(
        "--report", metavar="FILE", default=None,
        help="write the loadgen SLO report JSON here",
    )
    serve.add_argument(
        "--max-p99-ms", type=float, default=None,
        help="gate: fail when the overall p99 exceeds this (ms, simulated)",
    )
    serve.add_argument(
        "--max-abandoned", type=int, default=None,
        help="gate: fail when more than this many queries were abandoned",
    )
    return parser


def _backend_arg(parser: argparse.ArgumentParser) -> None:
    from .engine.backends import available_backends

    parser.add_argument(
        "--backend",
        choices=available_backends(),
        default=None,
        help="evaluation backend running ready-operator batches "
        "(default: thread, or the REPRO_EVAL_BACKEND env var; "
        "results are identical for any backend)",
    )


def _observe_args(parser: argparse.ArgumentParser) -> None:
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--query", help="a named workload query, e.g. q6 or ds1")
    source.add_argument("--sql", help="ad-hoc SQL text")
    _dataset_args(parser)
    parser.add_argument(
        "--adaptive",
        action="store_true",
        help="trace a whole adaptive instance instead of one execution",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="host threads evaluating ready operators "
        "(canonical output is identical for any N)",
    )
    parser.add_argument(
        "--host-time",
        action="store_true",
        help="also stamp spans with host wall-clock times "
        "(stripped from canonical output)",
    )


def _dataset_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workload", choices=("tpch", "tpcds"), default="tpch",
        help="which generated dataset to query (default: tpch)",
    )
    parser.add_argument(
        "--sf", type=int, default=None, help="scale factor (default: paper's)"
    )
    parser.add_argument(
        "--machine", choices=("2socket", "4socket"), default="2socket",
        help="simulated machine preset",
    )


def _dataset(args) -> TpchDataset | TpcdsDataset:
    if args.workload == "tpch":
        return TpchDataset(scale_factor=args.sf if args.sf else 10)
    return TpcdsDataset(scale_factor=args.sf if args.sf else 100)


def _config(args, dataset) -> SimulationConfig:
    machine = two_socket_machine() if args.machine == "2socket" else four_socket_machine()
    return dataset.sim_config(machine=machine)


def _format_outputs(outputs) -> list[str]:
    lines = []
    for i, out in enumerate(outputs):
        value = getattr(out, "value", None)
        if value is not None:
            lines.append(f"  output[{i}] = {value}")
        elif hasattr(out, "head"):
            pairs = list(zip(out.head.tolist(), out.tail.tolist()))
            shown = ", ".join(f"{k}:{v}" for k, v in pairs[:8])
            more = "" if len(pairs) <= 8 else f" ... ({len(pairs)} groups)"
            lines.append(f"  output[{i}] = {{{shown}}}{more}")
        else:
            lines.append(f"  output[{i}] = {out!r}")
    return lines


def _cmd_info() -> int:
    print(f"repro {__version__} -- adaptive query parallelization (EDBT 2016)")
    for preset in (two_socket_machine(), four_socket_machine()):
        print(f"  {preset.describe()}")
    return 0


def _cmd_run(args) -> int:
    dataset = _dataset(args)
    config = _config(args, dataset)
    plan = plan_sql(args.sql, dataset.catalog)
    label = "serial"
    if args.parallelize == "heuristic":
        plan = HeuristicParallelizer(args.partitions).parallelize(plan)
        label = f"heuristic({args.partitions})"
    elif args.parallelize == "adaptive":
        adaptive = AdaptiveParallelizer(config).optimize(plan)
        plan = adaptive.best_plan
        label = (
            f"adaptive (x{adaptive.speedup:.1f} after {adaptive.total_runs} runs)"
        )
    if args.show_plan:
        print(format_plan(plan))
    if args.dot:
        with open(args.dot, "w") as handle:
            handle.write(to_dot(plan))
        print(f"wrote {args.dot}")
    result = execute(plan, config)
    print(f"{label}: {result.response_time * 1000:.2f} ms simulated")
    print(f"plan: {plan_stats(plan).format()}")
    for line in _format_outputs(result.outputs):
        print(line)
    if args.tomograph:
        print(render_tomograph(result.profile, config.machine.hardware_threads))
    return 0


def _cmd_adapt(args) -> int:
    dataset = _dataset(args)
    config = _config(args, dataset)
    if args.query:
        plan = dataset.plan(args.query)
        name = args.query
    else:
        plan = plan_sql(args.sql, dataset.catalog)
        name = "ad-hoc query"
    from .engine.evalpool import default_workers

    workers = args.workers if args.workers is not None else default_workers()
    parallelizer = AdaptiveParallelizer(
        config,
        workers=workers,
        backend=args.backend,
        policy=args.policy,
        experience=args.experience,
    )
    try:
        adaptive = parallelizer.optimize(plan)
        explain_lines = parallelizer.explain(adaptive) if args.explain else []
    finally:
        parallelizer.close()
    print(f"{name}: serial {adaptive.serial_time * 1000:.2f} ms -> "
          f"GME {adaptive.gme_time * 1000:.2f} ms "
          f"(x{adaptive.speedup:.1f}) at run {adaptive.gme_run}; "
          f"converged after {adaptive.total_runs} runs")
    if parallelizer.policy != "credit_debit" or args.experience:
        warm = "warm-started" if adaptive.warm_start else "cold"
        print(f"policy: {adaptive.policy} ({warm}), "
              f"runs to GME band: {adaptive.runs_to_gme}, "
              f"total simulated work {adaptive.total_work * 1000:.2f} ms")
    print(f"best plan: {plan_stats(adaptive.best_plan).format()}")
    if explain_lines:
        print("DOP decision provenance:")
        for line in explain_lines:
            print(f"  {line}")
    if args.verbose:
        for i, mutation in enumerate(adaptive.mutations):
            report = adaptive.reports[i] if i < len(adaptive.reports) else None
            summary = report.summary() if report is not None else "not analyzed"
            print(f"  [{i + 1:3d}] {mutation.description} -- analyzer: {summary}")
            if report is not None and report.has_warnings:
                for diag in report.warnings:
                    print(f"        {diag.format()}")
        for rejection in adaptive.rejections:
            print(f"  [rejected] {rejection.result.description}")
            for diag in rejection.report.errors:
                print(f"        {diag.format()}")
    if args.trace:
        print(render_convergence_report(adaptive))
    return 0


def _cmd_learn(args) -> int:
    import json
    import os

    from .learn import ExperienceStore

    if not os.path.exists(args.store):
        raise ReproError(f"no experience store at {args.store}")
    store = ExperienceStore(args.store)
    try:
        records = store.records()
        stats = store.stats()
        if args.limit is not None:
            records = records[-args.limit:]
        if args.json:
            print(json.dumps(
                {
                    "store": args.store,
                    "records": [r.as_dict() for r in records],
                    "size_bytes": store.current_bytes,
                    "capacity_bytes": store.capacity_bytes,
                    "load_skipped": stats.load_skipped,
                },
                indent=2,
            ))
            return 0
        print(f"{args.store}: {len(records)} record(s), "
              f"{store.current_bytes}/{store.capacity_bytes} bytes used")
        if stats.load_skipped:
            print(f"  ({stats.load_skipped} malformed record(s) skipped on load)")
        for rec in records:
            print(f"  {rec.plan[:12]}.. on {rec.machine}: dop={rec.dop} "
                  f"(x{rec.speedup:.1f} at run {rec.gme_run}/{rec.total_runs}, "
                  f"policy {rec.policy}, {rec.updates} instance(s))")
        return 0
    finally:
        store.close()


def _cmd_lint(args) -> int:
    dataset = _dataset(args)
    if args.plan_json:
        try:
            with open(args.plan_json) as handle:
                document = handle.read()
        except OSError as exc:
            raise ReproError(f"cannot read plan file: {exc}") from exc
        try:
            plan = plan_from_json(document, dataset.catalog)
        except (ValueError, KeyError, TypeError) as exc:
            raise ReproError(f"malformed plan file {args.plan_json}: {exc}") from exc
        name = args.plan_json
    elif args.query:
        plan = dataset.plan(args.query)
        name = args.query
    else:
        plan = plan_sql(args.sql, dataset.catalog)
        name = "ad-hoc query"
    report = analyze_plan(plan)
    if args.json:
        import json

        from .analysis import report_document

        print(json.dumps(report_document(report, subject=name), indent=2))
    else:
        print(f"{name}: {report.summary()}")
        if report.diagnostics:
            print(report.format())
    from .analysis import exit_code

    return exit_code(report, strict=args.strict)


def _cmd_analyze(args) -> int:
    import json

    from .analysis import (
        Baseline,
        analyze_files,
        build_registry,
        default_package_path,
        exit_code,
        report_document,
    )

    paths = args.paths or [default_package_path()]
    report = analyze_files(paths)
    if args.write_baseline:
        baseline = Baseline.from_report(report)
        with open(args.write_baseline, "w") as handle:
            handle.write(baseline.to_json())
        print(
            f"wrote {len(baseline.suppressions)} suppression(s) to "
            f"{args.write_baseline}"
        )
        return 0
    suppressed_count = 0
    if args.baseline:
        report, suppressed = Baseline.load(args.baseline).split(report)
        suppressed_count = len(suppressed)
    registry = None if args.no_registry else build_registry()
    if args.certificates and registry is not None:
        with open(args.certificates, "w") as handle:
            handle.write(registry.to_json())
    if args.json:
        extra = {"subject": "codebase", "suppressed": suppressed_count}
        if registry is not None:
            extra["certificates"] = registry.to_document()
        print(json.dumps(report_document(report, **extra), indent=2))
    else:
        print(f"codebase: {report.summary()}")
        if suppressed_count:
            print(f"  ({suppressed_count} finding(s) muted by baseline)")
        if report.diagnostics:
            print(report.format())
        if registry is not None:
            certs = registry.certificates()
            pure = sum(1 for c in certs if c.pure)
            views = sum(1 for c in certs if c.view_returning)
            print(
                f"certificates: {len(certs)} operator(s), {pure} pure, "
                f"{len(certs) - pure} refused, {views} view-returning"
            )
            for cert in certs:
                if not cert.pure:
                    issues = "; ".join(cert.issues)
                    print(f"  refused {cert.operator}: {issues}")
    return exit_code(report, strict=args.strict)


def _cmd_bench(args) -> int:
    if args.scaleout:
        return _cmd_bench_scaleout(args)
    if args.convergence:
        return _cmd_bench_convergence(args)
    if args.wallclock:
        return _cmd_bench_wallclock(args)
    if args.name is None:
        raise ReproError(
            "bench needs an experiment name (or "
            "--wallclock/--convergence/--scaleout)"
        )
    if args.name == "list":
        for name, (module, __) in sorted(_EXPERIMENTS.items()):
            print(f"  {name}: repro.bench.experiments.{module}")
        return 0
    module_name, func_name = _EXPERIMENTS[args.name]
    import importlib

    module = importlib.import_module(f"repro.bench.experiments.{module_name}")
    result = getattr(module, func_name)()
    result.report.print()
    return 0


def _cmd_bench_wallclock(args) -> int:
    import json

    from .bench.wallclock import check_report, format_report, run_wallclock

    workers = None
    if args.workers is not None:
        try:
            workers = [int(part) for part in str(args.workers).split(",") if part]
        except ValueError:
            raise ReproError(
                f"--workers wants comma-separated integers, got {args.workers!r}"
            ) from None
    backends = None
    if args.backend is not None:
        backends = [
            part.strip() for part in str(args.backend).split(",") if part.strip()
        ]
    report = run_wallclock(quick=args.quick, workers=workers, backends=backends)
    print(format_report(report))
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.output}")
    check_report(
        report,
        min_hit_rate=args.min_hit_rate,
        min_speedup=args.min_speedup,
        max_worker_slowdown=args.max_worker_slowdown,
        min_process_speedup=args.min_process_speedup,
    )
    return 0


def _cmd_bench_convergence(args) -> int:
    import json

    from .bench.convergence import (
        check_convergence_report,
        format_convergence_report,
        run_convergence,
    )

    report = run_convergence(quick=args.quick)
    print(format_convergence_report(report))
    output = args.output
    if output == "BENCH_wallclock.json":  # the bench-wide default
        output = "BENCH_convergence.json"
    if output:
        with open(output, "w") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(f"wrote {output}")
    if args.figure:
        from .viz.policies import render_policy_figure

        with open(args.figure, "w") as handle:
            handle.write(render_policy_figure(report))
        print(f"wrote {args.figure}")
    check_convergence_report(
        report,
        max_warm_ratio=args.max_warm_ratio,
        min_bandit_win=args.min_bandit_win,
    )
    return 0


def _cmd_bench_scaleout(args) -> int:
    import json

    from .bench.scaleout import (
        DEFAULT_NODES,
        check_scaleout_report,
        format_scaleout_report,
        run_scaleout,
    )

    nodes = DEFAULT_NODES
    if args.nodes is not None:
        try:
            nodes = tuple(int(part) for part in str(args.nodes).split(",") if part)
        except ValueError:
            raise ReproError(
                f"--nodes wants comma-separated integers, got {args.nodes!r}"
            ) from None
    report = run_scaleout(quick=args.quick, nodes=nodes)
    print(format_scaleout_report(report))
    output = args.output
    if output == "BENCH_wallclock.json":  # the bench-wide default
        output = "BENCH_scaleout.json"
    if output:
        with open(output, "w") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(f"wrote {output}")
    if args.figure:
        from .viz.scaleout import render_scaleout_figure

        with open(args.figure, "w") as handle:
            handle.write(render_scaleout_figure(report))
        print(f"wrote {args.figure}")
    check_scaleout_report(
        report,
        min_speedup=args.min_scaleout_speedup,
        max_skew_gap=args.max_skew_gap,
    )
    return 0


def _cmd_chaos(args) -> int:
    from .chaos import CHAOS_HEAVY, CHAOS_LIGHT, FaultInjector
    from .concurrency import ClientSpec, ResilienceConfig, ResilientWorkload

    dataset = _dataset(args)
    config = _config(args, dataset).with_seed(args.seed)
    fault_plan = CHAOS_LIGHT if args.level == "light" else CHAOS_HEAVY
    serial = dataset.plan(args.query)
    plan = HeuristicParallelizer(config.effective_threads).parallelize(serial)

    print(f"chaos level: {args.level} "
          f"(exception {fault_plan.operator_exception_rate:.3f}, "
          f"straggler {fault_plan.straggler_rate:.3f}, "
          f"mem-pressure {fault_plan.mem_pressure_rate:.3f}, "
          f"disconnect {fault_plan.disconnect_rate:.3f})")

    workload = ResilientWorkload(
        config,
        [ClientSpec(name=f"c{i}", plans=[plan]) for i in range(args.clients)],
        horizon=args.horizon,
        faults=fault_plan,
        resilience=ResilienceConfig(timeout=args.timeout),
        workers=args.workers,
        backend=args.backend,
    )
    report = workload.run()
    print(f"workload: {args.clients} clients x {args.horizon:g}s simulated on "
          f"{args.query} -- {report.completed()} completed, "
          f"{report.throughput():.1f} q/s")
    print(f"  faults injected: {report.faults_injected} "
          f"(retries {report.retries}, timeouts {report.timeouts}, "
          f"disconnects {report.disconnects}, DOP sheds {report.shed_dop}, "
          f"abandoned {report.abandoned})")
    print(f"  admission: peak in-flight {report.peak_in_flight}, "
          f"waits {report.admission_waits}, "
          f"peak queue depth {report.peak_queue_depth}")
    if report.completed():
        print(f"  response: p50 {report.p50_response * 1000:.1f} ms, "
              f"p99 {report.p99_response * 1000:.1f} ms")
    else:
        print("  response: no queries completed inside the horizon")

    if args.no_adapt:
        return 0
    # The convergence half runs under the calibrated Figure-18 chaos
    # mix: service-preset exception rates abort roughly half of all
    # adaptive runs (hundreds of dispatches each), which no bounded
    # retry budget survives -- the workload layer absorbs those, the
    # adaptive driver must outlast a rarer hard-failure rate.
    from .bench.experiments.fig18_chaos import CHAOS_PLAN

    clean = AdaptiveParallelizer(config).optimize(serial)
    injector = FaultInjector(CHAOS_PLAN, seed=config.derive_seed("cli.chaos"))
    chaotic = AdaptiveParallelizer(config, faults=injector).optimize(serial)
    ratio = chaotic.gme_time / clean.gme_time
    print(f"adaptive convergence on {args.query}:")
    print(f"  fault-free: serial {clean.serial_time * 1000:.2f} ms -> "
          f"GME {clean.gme_time * 1000:.2f} ms (x{clean.speedup:.1f}) "
          f"at run {clean.gme_run}/{clean.total_runs}")
    print(f"  under chaos: serial {chaotic.serial_time * 1000:.2f} ms -> "
          f"GME {chaotic.gme_time * 1000:.2f} ms (x{chaotic.speedup:.1f}) "
          f"at run {chaotic.gme_run}/{chaotic.total_runs}, "
          f"{injector.stats.total} faults absorbed, "
          f"{chaotic.fault_retries} runs retried")
    print(f"  chaos GME / clean GME: {ratio:.2f}")
    return 0


def _observed_run(args):
    """Execute the requested query with an observer attached."""
    from .observe import Observer

    dataset = _dataset(args)
    config = _config(args, dataset)
    if args.query:
        plan = dataset.plan(args.query)
        name = args.query
    else:
        plan = plan_sql(args.sql, dataset.catalog)
        name = "ad-hoc query"
    observer = Observer(host_time=args.host_time)
    if args.adaptive:
        parallelizer = AdaptiveParallelizer(
            config, workers=args.workers, observe=observer
        )
        try:
            parallelizer.optimize(plan)
        finally:
            parallelizer.close()
    else:
        execute(plan, config, workers=args.workers, trace=observer)
    observer.finish()
    return name, observer


def _emit(text: str, out: str | None, what: str) -> None:
    if out is None:
        print(text, end="" if text.endswith("\n") else "\n")
        return
    try:
        with open(out, "w") as handle:
            handle.write(text)
            if not text.endswith("\n"):
                handle.write("\n")
    except OSError as exc:
        raise ReproError(f"cannot write {what} to {out}: {exc}") from exc
    print(f"wrote {out}")


def _cmd_trace(args) -> int:
    name, observer = _observed_run(args)
    if args.format == "chrome":
        text = observer.to_chrome_trace(trace_name=name)
    elif args.format == "jsonl":
        text = observer.to_jsonl()
    else:
        text = observer.canonical_json()
    _emit(text, args.out, f"{args.format} trace")
    return 0


def _cmd_metrics(args) -> int:
    __, observer = _observed_run(args)
    _emit(observer.to_prometheus(), args.out, "metrics")
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    try:
        return asyncio.run(_serve_async(args))
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        return 0


async def _http_get(host: str, port: int, path: str) -> str:
    """One-shot HTTP GET against our own server (scrape liveness)."""
    import asyncio

    reader, writer = await asyncio.open_connection(host, port)
    writer.write(f"GET {path} HTTP/1.1\r\nHost: {host}\r\n\r\n".encode())
    await writer.drain()
    data = await reader.read()
    writer.close()
    await writer.wait_closed()
    return data.partition(b"\r\n\r\n")[2].decode()


async def _serve_async(args) -> int:
    import asyncio
    import functools
    import json
    import signal
    from pathlib import Path

    from .serve import ReproServer, build_service, parse_tenants, preset

    if args.loadgen is not None and args.workload != "tpch":
        print("error: --loadgen drives TPC-H statement mixes; use --workload tpch",
              file=sys.stderr)
        return 1
    if args.workload == "tpch":
        dataset = TpchDataset(scale_factor=args.sf if args.sf else 1)
    else:
        dataset = TpcdsDataset(scale_factor=args.sf if args.sf else 100)
    config = _config(args, dataset)
    if args.seed is not None:
        config = config.with_seed(args.seed)
    tenants = None
    if args.tenants is not None:
        tenants = parse_tenants(Path(args.tenants).read_text())
    server = ReproServer(
        config,
        dataset.catalog,
        tenants=tenants,
        host=args.host,
        port=args.port,
        workers=args.workers,
        backend=args.backend,
    )
    await server.start()
    print(f"serving on {server.host}:{server.port} "
          f"(tenants: {', '.join(s.name for s in server.directory)})")
    print(f"  metrics: http://{server.host}:{server.port}/metrics")

    if args.loadgen is None:
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop.set)
            except NotImplementedError:  # pragma: no cover - non-POSIX
                pass
        await stop.wait()
        print("shutting down...")
        await server.stop()
        return 0

    # Loadgen mode: the deterministic service runs on a worker thread
    # while this loop keeps answering /metrics scrapes -- live
    # observability of a byte-reproducible run.
    spec = preset(args.loadgen, chaos=args.chaos, seed=args.seed)
    service = build_service(
        spec,
        config=config.with_seed(spec.seed),
        catalog=dataset.catalog,
        workers=args.workers,
        backend=args.backend,
        metrics=server.metrics,
        metrics_lock=server.metrics_lock,
    )
    print(f"loadgen {spec.name}: {spec.total_clients} clients, "
          f"{len(spec.mixes)} tenants, chaos {spec.chaos}, seed {spec.seed}")
    loop = asyncio.get_running_loop()
    run = loop.run_in_executor(
        None, functools.partial(service.run, seed=spec.seed)
    )
    scrapes = 0
    while not run.done():
        await asyncio.sleep(0.05)
        text = await _http_get(server.host, server.port, "/metrics")
        if "repro_serve_" in text or text.startswith("#"):
            scrapes += 1
    report = await run
    text = await _http_get(server.host, server.port, "/metrics")
    if "repro_serve_" in text:
        scrapes += 1
    print(f"  /metrics answered {scrapes} scrape(s) during the run")
    print(report.format())
    doc = report.as_dict()
    if args.report is not None:
        Path(args.report).write_text(
            json.dumps(doc, indent=2, sort_keys=True) + "\n"
        )
        print(f"report written to {args.report}")
    await server.stop()
    failed = False
    if args.max_p99_ms is not None and doc["totals"]["p99_ms"] > args.max_p99_ms:
        print(f"gate FAIL: overall p99 {doc['totals']['p99_ms']:.1f} ms "
              f"> {args.max_p99_ms:.1f} ms", file=sys.stderr)
        failed = True
    if (args.max_abandoned is not None
            and doc["totals"]["abandoned"] > args.max_abandoned):
        print(f"gate FAIL: {doc['totals']['abandoned']} abandoned "
              f"> {args.max_abandoned}", file=sys.stderr)
        failed = True
    return 2 if failed else 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "info":
            return _cmd_info()
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "adapt":
            return _cmd_adapt(args)
        if args.command == "learn":
            return _cmd_learn(args)
        if args.command == "lint":
            return _cmd_lint(args)
        if args.command == "analyze":
            return _cmd_analyze(args)
        if args.command == "bench":
            return _cmd_bench(args)
        if args.command == "chaos":
            return _cmd_chaos(args)
        if args.command == "trace":
            return _cmd_trace(args)
        if args.command == "metrics":
            return _cmd_metrics(args)
        if args.command == "serve":
            return _cmd_serve(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    raise AssertionError("unreachable")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
