"""repro: adaptive query parallelization in a multi-core column store.

A faithful, laptop-scale reproduction of "Adaptive query parallelization
in multi-core column stores" (Gawade & Kersten, EDBT 2016): a columnar
execution engine on a simulated multi-core machine, plus the paper's
adaptive parallelization framework (plan morphing + convergence), the
heuristic/work-stealing/Vectorwise baselines, and the full experiment
suite.

Quickstart::

    from repro import TpchDataset, AdaptiveParallelizer

    dataset = TpchDataset(scale_factor=10)
    config = dataset.sim_config()
    result = AdaptiveParallelizer(config).optimize(dataset.plan("q6"))
    print(result.speedup, result.gme_run, result.total_runs)
"""

from .chaos import (
    CHAOS_HEAVY,
    CHAOS_LIGHT,
    FaultInjector,
    FaultKind,
    FaultPlan,
)
from .concurrency import (
    ClientSpec,
    ConcurrentWorkload,
    ResilienceConfig,
    ResilientWorkload,
    WorkloadReport,
)
from .config import (
    NOISY,
    QUIET,
    MachineSpec,
    NoiseConfig,
    SimulationConfig,
    four_socket_machine,
    laptop_machine,
    two_socket_machine,
)
from .core import (
    AdaptiveParallelizer,
    AdaptiveResult,
    ConvergenceParams,
    ConvergenceTracker,
    HeuristicParallelizer,
    PlanMutator,
    WorkStealingConfig,
    WorkStealingExecutor,
)
from .engine import ExecutionResult, Simulator, execute
from .errors import ReproError
from .learn import (
    BanditAdvisor,
    DopDecision,
    ExperienceRecord,
    ExperienceStore,
    machine_signature,
    plan_signature,
    resolve_policy,
)
from .observe import Observer
from .plan import Plan, PlanBuilder, format_plan, plan_stats, validate_plan
from .sql import plan_sql
from .storage import BAT, Candidates, Catalog, Column, Scalar, Table
from .workloads import TpcdsDataset, TpchDataset

__version__ = "1.0.0"

__all__ = [
    "AdaptiveParallelizer",
    "AdaptiveResult",
    "BAT",
    "BanditAdvisor",
    "CHAOS_HEAVY",
    "CHAOS_LIGHT",
    "Candidates",
    "Catalog",
    "ClientSpec",
    "Column",
    "ConcurrentWorkload",
    "ConvergenceParams",
    "ConvergenceTracker",
    "DopDecision",
    "ExecutionResult",
    "ExperienceRecord",
    "ExperienceStore",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "HeuristicParallelizer",
    "MachineSpec",
    "NOISY",
    "NoiseConfig",
    "Observer",
    "Plan",
    "PlanBuilder",
    "PlanMutator",
    "QUIET",
    "ReproError",
    "ResilienceConfig",
    "ResilientWorkload",
    "Scalar",
    "SimulationConfig",
    "Simulator",
    "Table",
    "TpcdsDataset",
    "TpchDataset",
    "WorkStealingConfig",
    "WorkStealingExecutor",
    "WorkloadReport",
    "execute",
    "format_plan",
    "four_socket_machine",
    "laptop_machine",
    "machine_signature",
    "plan_signature",
    "plan_sql",
    "plan_stats",
    "resolve_policy",
    "two_socket_machine",
    "validate_plan",
    "__version__",
]
